//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this workspace has no network access to a
//! crates registry, so this vendored crate provides the subset of the
//! criterion 0.5 API the `mla-bench` targets use — [`Criterion`],
//! benchmark groups, [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical sampling, each benchmark body is
//! timed over a small fixed number of iterations and a single line per
//! benchmark is printed:
//!
//! ```text
//! bench kendall_distance/64 ... 1.23 µs/iter
//! ```
//!
//! Set `MLA_BENCH_ITERS` to change the iteration count (default 3; `1`
//! makes `cargo test`'s smoke run of the bench targets as cheap as
//! possible).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How many times each benchmark body runs (`MLA_BENCH_ITERS`, default 3).
fn iterations() -> u64 {
    std::env::var("MLA_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

/// Formats a per-iteration duration human-readably.
fn per_iter(total: Duration, iters: u64) -> String {
    let nanos = total.as_nanos() as f64 / iters as f64;
    if nanos < 1_000.0 {
        format!("{nanos:.0} ns/iter")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs/iter", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms/iter", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s/iter", nanos / 1_000_000_000.0)
    }
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is fixed in this stand-in.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement time is fixed.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into_benchmark_id()), &mut f);
        self
    }

    /// Runs a benchmark that borrows a per-instance input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.into_benchmark_id()),
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.iters > 0 {
        println!(
            "bench {label} ... {}",
            per_iter(bencher.elapsed, bencher.iters)
        );
    }
}

/// Times closures; handed to every benchmark body.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over a small fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = iterations();
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let iters = iterations();
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters += iters;
    }
}

/// Batch sizing hint; accepted for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Throughput annotation; accepted for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name, parameter, or both.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// Converts to the display form.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench-target `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
