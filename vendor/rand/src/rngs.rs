//! Seedable generators: [`SmallRng`] (xoshiro256++) and [`StdRng`].

use crate::{RngCore, SeedableRng};

/// A small, fast, seedable generator: xoshiro256++ (the algorithm upstream
/// `rand`'s `SmallRng` uses on 64-bit platforms).
///
/// Not cryptographically secure; streams are stable for a fixed seed within
/// this vendored crate but do not match upstream `rand 0.8` byte-for-byte.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Exposes the raw xoshiro256++ state, for checkpoint/restore.
    #[must_use]
    pub fn to_state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`Self::to_state`].
    ///
    /// The all-zero state is a fixed point of xoshiro256++ and can never be
    /// produced by [`SeedableRng::from_seed`] or by stepping, so it is
    /// rejected by substituting the same canonical non-zero state
    /// `from_seed` falls back to.
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return Self::from_seed([0; 32]);
        }
        Self { s }
    }

    fn step(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (lane, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        Self { s }
    }
}

/// The "standard" generator. In this offline stand-in it is the same
/// algorithm as [`SmallRng`]; upstream it is ChaCha12.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng(SmallRng);

impl StdRng {
    /// Exposes the raw generator state, for checkpoint/restore.
    #[must_use]
    pub fn to_state(&self) -> [u64; 4] {
        self.0.to_state()
    }

    /// Rebuilds a generator from a state captured by [`Self::to_state`].
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        Self(SmallRng::from_state(s))
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        Self(SmallRng::from_seed(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = SmallRng::from_state(a.to_state());
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // The degenerate all-zero state maps onto the canonical fallback
        // instead of the xoshiro fixed point.
        let mut z = SmallRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }
}
