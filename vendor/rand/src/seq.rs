//! Sequence utilities: [`SliceRandom`].

use crate::{Rng, RngCore};

/// Random operations on slices: uniform choice and Fisher–Yates shuffle.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Returns a uniformly random element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}
