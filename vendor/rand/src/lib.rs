//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access to a
//! crates registry, so this vendored crate provides the (small) subset of
//! the `rand 0.8` API the workspace actually uses, with deterministic,
//! seedable generators:
//!
//! * [`RngCore`] / [`Rng`] — `next_u32`/`next_u64`/`fill_bytes`, plus the
//!   extension methods `gen`, `gen_range`, `gen_bool`, `gen_ratio`;
//! * [`SeedableRng`] — `from_seed` and the `seed_from_u64` splitmix64
//!   expansion (same constants as upstream `rand_core`);
//! * [`rngs::SmallRng`] — xoshiro256++, the same algorithm upstream
//!   `SmallRng` uses on 64-bit platforms;
//! * [`seq::SliceRandom`] — `choose` and Fisher–Yates `shuffle`.
//!
//! The implementation is *API*-compatible, not *stream*-compatible: a given
//! seed does not reproduce upstream `rand`'s exact byte stream. Everything
//! in this workspace only relies on seeded determinism within one build,
//! which this crate guarantees.

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable generator, with the `seed_from_u64` splitmix64 expansion.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` via splitmix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // splitmix64, same constants as upstream rand_core.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits of a `u64`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for ::core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for ::core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return (lo as i64).wrapping_add(rng.next_u64() as i64) as $t;
                }
                (lo as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (unit_f64(rng) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for ::core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} not in [0, 1]");
        unit_f64(self) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(numerator <= denominator);
        assert!(denominator > 0);
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Re-export of the commonly `use`d items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}
