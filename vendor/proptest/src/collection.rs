//! Collection strategies: [`vec()`](fn@vec).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for [`vec()`](fn@vec): a half-open range, an inclusive
/// range, or an exact length.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<::core::ops::Range<usize>> for SizeRange {
    fn from(r: ::core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<::core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: ::core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec length range");
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        Self {
            lo: len,
            hi_inclusive: len,
        }
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`](fn@vec).
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.lo + rng.below(self.size.hi_inclusive - self.size.lo + 1);
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}
