//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this workspace has no network access to a
//! crates registry, so this vendored crate implements the subset of the
//! proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`];
//! * the [`Strategy`] trait with `prop_map`, `prop_flat_map` and
//!   `prop_perturb`, implemented for integer ranges, tuples, [`Just`] and
//!   simple string patterns (`&str`);
//! * [`arbitrary::any`] for the primitive types;
//! * [`collection::vec`] with a `Range<usize>` length;
//! * [`test_runner::TestRng`] and [`ProptestConfig`].
//!
//! Unlike upstream proptest this stand-in does **not** shrink failing
//! inputs; it reports the failing case's generated value and seed instead.
//! Generation is fully deterministic per test name and case index, so a
//! reported failure always reproduces.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Everything the property tests `use`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pattern in strategy) { body }`
/// becomes a `#[test]` that evaluates `body` over `config.cases`
/// deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($pat:pat in $strategy:expr) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __strategy = $strategy;
                let __seed = $crate::test_runner::fnv1a(stringify!($name));
                let mut __rejected: u32 = 0;
                let mut __case: u32 = 0;
                while __case < __config.cases {
                    let mut __rng =
                        $crate::TestRng::deterministic(__seed, (__case + __rejected) as u64);
                    let __value =
                        $crate::Strategy::gen_value(&__strategy, &mut __rng);
                    let __debug = format!("{:?}", &__value);
                    // catch_unwind so a body that panics outright (unwrap,
                    // assert!) still gets its generated input reported.
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| -> ::std::result::Result<(), $crate::TestCaseError> {
                            let $pat = __value;
                            $body
                            ::std::result::Result::Ok(())
                        }),
                    );
                    match __outcome {
                        ::std::result::Result::Ok(::std::result::Result::Ok(())) => __case += 1,
                        ::std::result::Result::Ok(::std::result::Result::Err(
                            $crate::TestCaseError::Reject,
                        )) => {
                            __rejected += 1;
                            assert!(
                                __rejected < 4096,
                                "proptest {}: too many prop_assume! rejections",
                                stringify!($name),
                            );
                        }
                        ::std::result::Result::Ok(::std::result::Result::Err(
                            $crate::TestCaseError::Fail(__msg),
                        )) => {
                            panic!(
                                "proptest {} failed at case {} (input = {}):\n{}",
                                stringify!($name), __case, __debug, __msg,
                            );
                        }
                        ::std::result::Result::Err(__payload) => {
                            panic!(
                                "proptest {} panicked at case {} (input = {}): {}",
                                stringify!($name),
                                __case,
                                __debug,
                                $crate::test_runner::panic_message(&__payload),
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(__l == __r, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
        );
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}
