//! The [`Strategy`] trait and its built-in implementations.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply draws a value from a deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and draws from
    /// the produced strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Maps generated values through `f`, handing `f` its own RNG.
    fn prop_perturb<O: std::fmt::Debug, F: Fn(Self::Value, TestRng) -> O>(
        self,
        f: F,
    ) -> Perturb<Self, F>
    where
        Self: Sized,
    {
        Perturb { inner: self, f }
    }

    /// Keeps only values satisfying `f`, retrying generation when rejected.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// See [`Strategy::prop_perturb`].
#[derive(Clone, Copy, Debug)]
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value, TestRng) -> O> Strategy for Perturb<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        let value = self.inner.gen_value(rng);
        let child = TestRng::deterministic(rng.next_u64(), 0);
        (self.f)(value, child)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..4096 {
            let value = self.inner.gen_value(rng);
            if (self.f)(&value) {
                return value;
            }
        }
        panic!("prop_filter: {}: too many rejections", self.whence);
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for ::core::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for ::core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for ::core::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
        impl Strategy for ::core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return (lo as i64).wrapping_add(rng.next_u64() as i64) as $t;
                }
                (lo as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(i8, i16, i32, i64, isize);

impl Strategy for ::core::ops::Range<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String-pattern strategy.
///
/// Upstream proptest interprets a `&str` as a full regular expression. This
/// stand-in supports the patterns the workspace uses: `.{lo,hi}` (a string
/// of `lo..=hi` arbitrary printable-ish characters, newlines included).
/// Any other pattern yields strings of up to 64 arbitrary characters, which
/// is a sound over-approximation for the "never panics on garbage" tests it
/// feeds.
impl Strategy for &str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repetition(self).unwrap_or((0, 64));
        let len = lo + rng.below(hi - lo + 1);
        (0..len).map(|_| random_char(rng)).collect()
    }
}

/// Parses `.{lo,hi}` into `(lo, hi)`.
fn parse_dot_repetition(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// A character drawn from a mix of ASCII, whitespace and a few multibyte
/// code points, to exercise parser edge cases.
fn random_char(rng: &mut TestRng) -> char {
    const EXOTIC: [char; 8] = ['é', 'λ', '∞', '🦀', '\u{0}', '\t', '\n', '\u{7f}'];
    match rng.below(8) {
        0 => EXOTIC[rng.below(EXOTIC.len())],
        1 => char::from(rng.below(32) as u8),
        _ => char::from(32 + rng.below(95) as u8),
    }
}
