//! Test-runner plumbing: configuration, case outcomes and the
//! deterministic generation RNG.

/// Per-block configuration, set with `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many generated cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Outcome of a single generated case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and is not counted.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Extracts the human-readable message from a caught panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// FNV-1a hash of a string; seeds the per-test RNG stream.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The RNG handed to strategies (and to `prop_perturb` closures):
/// splitmix64, keyed by test name and case index.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test stream keyed by `seed`.
    pub fn deterministic(seed: u64, case: u64) -> Self {
        Self {
            state: seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Returns the next random `u64` (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns the next random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `usize` in `[0, bound)`. Panics when `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "TestRng::below: empty range");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
