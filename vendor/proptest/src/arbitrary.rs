//! [`any`] and the [`Arbitrary`] trait for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`: uniform over the whole domain.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the canonical strategy generating any `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning several orders of magnitude;
        // avoids NaN/Inf so arithmetic-heavy properties stay meaningful.
        rng.unit_f64() * 2e6 - 1e6
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32(rng.next_u32() % 0xD800).unwrap_or('\u{FFFD}')
    }
}
