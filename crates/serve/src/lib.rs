//! # `mla-serve`
//!
//! The multi-tenant serving daemon over the session layer of `mla-sim`:
//! a [`Server`] keeps a table of named [`TenantSession`]s, routes each
//! to a logical **shard**, applies reveal frames through the same batch
//! executor as the simulation engine, answers position/cost queries
//! mid-stream, and can checkpoint / restore **all** tenants at once —
//! across a real process boundary — such that replaying the remaining
//! reveals is bit-identical to the uninterrupted run.
//!
//! The wire protocol is length-prefixed JSON frames
//! ([`mla_runner::wire`]); one request object in, one response object
//! out. Every response carries `"ok"`; failures carry a machine-readable
//! `"code"` plus a human-readable `"error"` and never tear down the
//! server (panic-safety is lint-enforced on this crate).
//!
//! The `mla-serve` binary wraps [`serve_loop`] around stdin/stdout (the
//! default) or a TCP listener, with `--restore`/`--checkpoint` flags for
//! crash recovery. See `docs/ARCHITECTURE.md` § "Sessions and
//! checkpoints" for the protocol reference.
//!
//! [`TenantSession`]: mla_sim::TenantSession

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod hex;
mod server;

pub use hex::{decode_hex, encode_hex};
pub use server::{serve_loop, Reply, Server};
