//! The multi-tenant session server and its request dispatcher.
//!
//! One [`Server`] owns a name → session table. Requests are JSON
//! objects with an `"op"` field; [`Server::handle`] maps each to a
//! response object that always carries `"ok"`. Failures are data, not
//! panics: `{"ok": false, "code": "...", "error": "..."}` with a stable
//! machine-readable code, so a misbehaving client can never tear down
//! the other tenants.
//!
//! ## Operations
//!
//! | op           | required fields                          | effect |
//! |--------------|------------------------------------------|--------|
//! | `open`       | `tenant`, `topology`, `n`, `policy`      | create a session (`backend`, `seed`, `record`, `check_feasibility`, `target`, `shard` optional) |
//! | `reveal`     | `tenant`, `a`, `b`                       | serve one reveal |
//! | `reveals`    | `tenant`, `events` (`[[a,b],…]`)         | serve a frame through the batch executor |
//! | `position`   | `tenant`, `node`                         | arrangement position mid-stream |
//! | `cost`       | `tenant`                                 | exact cost totals so far |
//! | `outcome`    | `tenant`                                 | totals plus the current permutation |
//! | `tenants`    | —                                        | list tenants with shard placement |
//! | `migrate`    | `tenant`, `shard`                        | reassign the tenant's shard label |
//! | `close`      | `tenant`                                 | drop the session |
//! | `checkpoint` | — (`path` optional)                      | serialize **all** tenants; to a file, or inline as hex |
//! | `restore`    | `bytes` (hex) or `path`                  | replace the table from a checkpoint |
//! | `shutdown`   | —                                        | checkpoint to the default path (if any) and stop |
//!
//! ## Shards
//!
//! Shards are logical placement labels (`0..shards`): routing metadata
//! that a fleet scheduler would act on, carried through checkpoints and
//! reassigned by `migrate`. They never influence outcomes — the
//! determinism contract makes a session's result independent of where
//! (and with how many threads) it runs, which is exactly what makes
//! live migration safe.

use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};

use mla_graph::{RevealEvent, Topology};
use mla_permutation::codec::{put_len, ByteReader};
use mla_permutation::{Node, Permutation};
use mla_runner::{read_frame, write_frame, Json, WireError};
use mla_sim::checkpoint;
use mla_sim::{
    decode_session, encode_session, open_session, BackendKind, CheckpointError, PolicyKind,
    RecordMode, SessionSpec, SimError, TenantSession,
};

use crate::hex::{decode_hex, encode_hex};

/// One tenant: a live session plus its shard placement label.
struct Tenant {
    session: Box<dyn TenantSession>,
    shard: usize,
}

/// The multi-tenant session server. See the crate docs for the
/// operation table.
pub struct Server {
    tenants: BTreeMap<String, Tenant>,
    /// Number of logical shards; placement labels are `0..shards`.
    shards: usize,
    /// Worker threads handed to every session's batched apply path.
    threads: usize,
    /// Default target of `checkpoint`/`shutdown` checkpoints.
    checkpoint_path: Option<PathBuf>,
    /// Round-robin cursor for default shard assignment.
    next_shard: usize,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("tenants", &self.tenants.len())
            .field("shards", &self.shards)
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

/// What the serve loop should do after a response.
#[derive(Debug)]
pub enum Reply {
    /// Send the response and keep serving.
    Continue(Json),
    /// Send the response, then stop the loop.
    Shutdown(Json),
}

/// The `{"ok": true}` response seed.
fn ok_response() -> Json {
    Json::object().field("ok", true)
}

/// A structured failure response.
fn err_response(code: &str, error: impl Into<String>) -> Json {
    Json::object()
        .field("ok", false)
        .field("code", code)
        .field("error", error.into())
}

/// The stable error code of a session-layer failure.
fn sim_code(err: &SimError) -> &'static str {
    match err {
        SimError::Graph(_) => "graph",
        SimError::FeasibilityViolation { .. } => "feasibility",
        _ => "bad-request",
    }
}

/// A required string field, or the `bad-request` response.
fn want_str<'a>(request: &'a Json, key: &str) -> Result<&'a str, Json> {
    request
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| err_response("bad-request", format!("missing string field {key:?}")))
}

/// A required unsigned-integer field, or the `bad-request` response.
fn want_usize(request: &Json, key: &str) -> Result<usize, Json> {
    request
        .get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| err_response("bad-request", format!("missing integer field {key:?}")))
}

impl Server {
    /// An empty server with `shards` placement labels (clamped to ≥ 1)
    /// and `threads` workers per batched apply (`0` = available
    /// parallelism).
    #[must_use]
    pub fn new(shards: usize, threads: usize) -> Self {
        Server {
            tenants: BTreeMap::new(),
            shards: shards.max(1),
            threads,
            checkpoint_path: None,
            next_shard: 0,
        }
    }

    /// Sets the default file `checkpoint` and `shutdown` write to.
    #[must_use]
    pub fn checkpoint_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Live tenant count.
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Serializes every tenant (name, shard, session state) into one
    /// sealed server checkpoint. Sessions are nested as their own sealed
    /// blobs, so a tenant extracted from a server checkpoint is itself a
    /// valid [`decode_session`] input.
    #[must_use]
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        let mut body = Vec::new();
        put_len(&mut body, self.tenants.len());
        for (name, tenant) in &self.tenants {
            put_len(&mut body, name.len());
            body.extend_from_slice(name.as_bytes());
            put_len(&mut body, tenant.shard);
            let blob = encode_session(tenant.session.as_ref());
            put_len(&mut body, blob.len());
            body.extend_from_slice(&blob);
        }
        checkpoint::seal(&body)
    }

    /// Replaces the tenant table from [`Server::checkpoint_bytes`]
    /// output. Shard labels are remapped modulo the **current** shard
    /// count (the label is placement metadata; a restore into a smaller
    /// deployment must still place every tenant somewhere).
    ///
    /// On any error the existing table is left untouched.
    ///
    /// # Errors
    ///
    /// A structured [`CheckpointError`] for malformed input — container
    /// damage, duplicate or non-UTF-8 tenant names, or a corrupt nested
    /// session.
    pub fn restore_bytes(&mut self, bytes: &[u8]) -> Result<usize, CheckpointError> {
        let body = checkpoint::open(bytes)?;
        let mut r = ByteReader::new(body);
        let count = r.count(body.len(), "tenant")?;
        let mut tenants = BTreeMap::new();
        for _ in 0..count {
            let name_len = r.count(body.len(), "tenant-name byte")?;
            let name = std::str::from_utf8(r.bytes(name_len)?)
                .map_err(|_| CheckpointError::malformed("tenant name is not UTF-8".to_string()))?
                .to_owned();
            let shard = r.count(usize::MAX, "shard label")?;
            let blob_len = r.count(body.len(), "session-checkpoint byte")?;
            let mut session = decode_session(r.bytes(blob_len)?)?;
            session.set_threads(self.threads);
            let tenant = Tenant {
                session,
                shard: shard % self.shards,
            };
            if tenants.insert(name.clone(), tenant).is_some() {
                return Err(CheckpointError::malformed(format!(
                    "duplicate tenant {name:?} in checkpoint"
                )));
            }
        }
        r.finish()?;
        self.tenants = tenants;
        self.next_shard = self.tenants.len() % self.shards;
        Ok(count)
    }

    /// Handles one request; the returned [`Reply`] tells the serve loop
    /// whether to keep going.
    pub fn handle(&mut self, request: &Json) -> Reply {
        let Some(op) = request.get("op").and_then(Json::as_str) else {
            return Reply::Continue(err_response("bad-request", "missing string field \"op\""));
        };
        if op == "shutdown" {
            let mut response = ok_response().field("shutdown", true);
            if let Some(path) = self.checkpoint_path.clone() {
                match self.write_checkpoint(&path) {
                    Ok(()) => response = response.field("path", path.display().to_string()),
                    Err(error) => return Reply::Shutdown(err_response("io", error)),
                }
            }
            return Reply::Shutdown(response);
        }
        let response = match self.dispatch(op, request) {
            Ok(response) | Err(response) => response,
        };
        Reply::Continue(response)
    }

    fn dispatch(&mut self, op: &str, request: &Json) -> Result<Json, Json> {
        match op {
            "open" => self.op_open(request),
            "reveal" => self.op_reveal(request),
            "reveals" => self.op_reveals(request),
            "position" => self.op_position(request),
            "cost" => self.op_cost(request),
            "outcome" => self.op_outcome(request),
            "tenants" => Ok(self.op_tenants()),
            "migrate" => self.op_migrate(request),
            "close" => self.op_close(request),
            "checkpoint" => self.op_checkpoint(request),
            "restore" => self.op_restore(request),
            other => Err(err_response("unknown-op", format!("unknown op {other:?}"))),
        }
    }

    fn tenant_mut(&mut self, request: &Json) -> Result<&mut Tenant, Json> {
        let name = want_str(request, "tenant")?;
        match self.tenants.get_mut(name) {
            Some(tenant) => Ok(tenant),
            None => Err(err_response(
                "unknown-tenant",
                format!("no tenant {name:?}"),
            )),
        }
    }

    fn op_open(&mut self, request: &Json) -> Result<Json, Json> {
        let name = want_str(request, "tenant")?.to_owned();
        if self.tenants.contains_key(&name) {
            return Err(err_response(
                "duplicate-tenant",
                format!("tenant {name:?} is already open"),
            ));
        }
        let spec = parse_spec(request)?;
        let shard = match request.get("shard") {
            None => {
                let shard = self.next_shard;
                self.next_shard = (self.next_shard + 1) % self.shards;
                shard
            }
            Some(value) => self.parse_shard(value)?,
        };
        let mut session =
            open_session(spec).map_err(|err| err_response("bad-request", err.to_string()))?;
        session.set_threads(self.threads);
        let response = ok_response()
            .field("tenant", name.as_str())
            .field("shard", shard)
            .field("algorithm", session.algorithm_name());
        self.tenants.insert(name, Tenant { session, shard });
        Ok(response)
    }

    fn parse_shard(&self, value: &Json) -> Result<usize, Json> {
        let shard = value
            .as_usize()
            .ok_or_else(|| err_response("bad-request", "shard must be an unsigned integer"))?;
        if shard >= self.shards {
            return Err(err_response(
                "bad-request",
                format!("shard {shard} out of range for {} shards", self.shards),
            ));
        }
        Ok(shard)
    }

    fn op_reveal(&mut self, request: &Json) -> Result<Json, Json> {
        let a = want_usize(request, "a")?;
        let b = want_usize(request, "b")?;
        let tenant = self.tenant_mut(request)?;
        let event = parse_event(a, b, tenant.session.spec().n)?;
        tenant
            .session
            .apply_events(&[event])
            .map_err(|err| err_response(sim_code(&err), err.to_string()))?;
        Ok(cost_fields(ok_response(), tenant.session.as_ref()))
    }

    fn op_reveals(&mut self, request: &Json) -> Result<Json, Json> {
        let entries = request
            .get("events")
            .and_then(Json::as_array)
            .ok_or_else(|| err_response("bad-request", "missing array field \"events\""))?;
        let tenant = self.tenant_mut(request)?;
        let n = tenant.session.spec().n;
        let mut events = Vec::with_capacity(entries.len());
        for entry in entries {
            let pair = entry.as_array().unwrap_or(&[]);
            let (a, b) = match (pair.first(), pair.get(1), pair.len()) {
                (Some(a), Some(b), 2) => (a.as_usize(), b.as_usize()),
                _ => (None, None),
            };
            let (Some(a), Some(b)) = (a, b) else {
                return Err(err_response(
                    "bad-request",
                    "each event must be a two-integer array [a, b]",
                ));
            };
            events.push(parse_event(a, b, n)?);
        }
        let applied = tenant
            .session
            .apply_events(&events)
            .map_err(|err| err_response(sim_code(&err), err.to_string()))?;
        Ok(cost_fields(
            ok_response().field("applied", applied),
            tenant.session.as_ref(),
        ))
    }

    fn op_position(&mut self, request: &Json) -> Result<Json, Json> {
        let node = want_usize(request, "node")?;
        let tenant = self.tenant_mut(request)?;
        if node >= tenant.session.spec().n {
            return Err(err_response(
                "bad-request",
                format!(
                    "node {node} out of range for n = {}",
                    tenant.session.spec().n
                ),
            ));
        }
        let position = tenant
            .session
            .position_of(Node::new(node))
            .map_err(|err| err_response(sim_code(&err), err.to_string()))?;
        Ok(ok_response()
            .field("node", node)
            .field("position", position))
    }

    fn op_cost(&mut self, request: &Json) -> Result<Json, Json> {
        let tenant = self.tenant_mut(request)?;
        Ok(cost_fields(ok_response(), tenant.session.as_ref())
            .field("algorithm", tenant.session.algorithm_name()))
    }

    fn op_outcome(&mut self, request: &Json) -> Result<Json, Json> {
        let tenant = self.tenant_mut(request)?;
        let outcome = tenant.session.outcome();
        let perm: Vec<Json> = outcome
            .final_perm
            .iter()
            .map(|node| Json::from(node.index()))
            .collect();
        Ok(cost_fields(ok_response(), tenant.session.as_ref())
            .field("total_cost", outcome.total_cost)
            .field("perm", Json::Array(perm)))
    }

    fn op_tenants(&self) -> Json {
        let list: Vec<Json> = self
            .tenants
            .iter()
            .map(|(name, tenant)| {
                Json::object()
                    .field("tenant", name.as_str())
                    .field("shard", tenant.shard)
                    .field("algorithm", tenant.session.algorithm_name())
                    .field("steps", tenant.session.steps())
                    .field("n", tenant.session.spec().n)
            })
            .collect();
        ok_response()
            .field("shards", self.shards)
            .field("tenants", Json::Array(list))
    }

    fn op_migrate(&mut self, request: &Json) -> Result<Json, Json> {
        let shard = self.parse_shard(
            request
                .get("shard")
                .ok_or_else(|| err_response("bad-request", "missing integer field \"shard\""))?,
        )?;
        let name = want_str(request, "tenant")?.to_owned();
        let tenant = self.tenant_mut(request)?;
        tenant.shard = shard;
        Ok(ok_response().field("tenant", name).field("shard", shard))
    }

    fn op_close(&mut self, request: &Json) -> Result<Json, Json> {
        let name = want_str(request, "tenant")?;
        match self.tenants.remove(name) {
            Some(_) => Ok(ok_response().field("tenant", name)),
            None => Err(err_response(
                "unknown-tenant",
                format!("no tenant {name:?}"),
            )),
        }
    }

    fn op_checkpoint(&self, request: &Json) -> Result<Json, Json> {
        let response = ok_response().field("tenants", self.tenants.len());
        let path = match request.get("path") {
            Some(value) => {
                Some(PathBuf::from(value.as_str().ok_or_else(|| {
                    err_response("bad-request", "path must be a string")
                })?))
            }
            None => self.checkpoint_path.clone(),
        };
        match path {
            Some(path) => {
                self.write_checkpoint(&path)
                    .map_err(|error| err_response("io", error))?;
                Ok(response.field("path", path.display().to_string()))
            }
            None => Ok(response.field("bytes", encode_hex(&self.checkpoint_bytes()))),
        }
    }

    fn write_checkpoint(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.checkpoint_bytes())
            .map_err(|err| format!("writing checkpoint {}: {err}", path.display()))
    }

    fn op_restore(&mut self, request: &Json) -> Result<Json, Json> {
        let bytes = match (request.get("bytes"), request.get("path")) {
            (Some(value), None) => {
                let text = value
                    .as_str()
                    .ok_or_else(|| err_response("bad-request", "bytes must be a hex string"))?;
                decode_hex(text).map_err(|error| err_response("bad-request", error))?
            }
            (None, Some(value)) => {
                let path = value
                    .as_str()
                    .ok_or_else(|| err_response("bad-request", "path must be a string"))?;
                std::fs::read(path).map_err(|err| {
                    err_response("io", format!("reading checkpoint {path}: {err}"))
                })?
            }
            _ => {
                return Err(err_response(
                    "bad-request",
                    "restore takes exactly one of \"bytes\" or \"path\"",
                ))
            }
        };
        let count = self
            .restore_bytes(&bytes)
            .map_err(|err| err_response("checkpoint", err.to_string()))?;
        Ok(ok_response().field("tenants", count))
    }
}

/// Appends the exact cost totals of a session to a response.
fn cost_fields(response: Json, session: &dyn TenantSession) -> Json {
    response
        .field("steps", session.steps())
        .field("moving_cost", session.moving_cost())
        .field("rearranging_cost", session.rearranging_cost())
}

/// A bounds-checked reveal event (the check keeps [`Node::new`]'s
/// capacity panic unreachable from wire input).
fn parse_event(a: usize, b: usize, n: usize) -> Result<RevealEvent, Json> {
    if a >= n || b >= n {
        return Err(err_response(
            "bad-request",
            format!("reveal ({a}, {b}) out of range for n = {n}"),
        ));
    }
    Ok(RevealEvent::new(Node::new(a), Node::new(b)))
}

/// Builds the [`SessionSpec`] of an `open` request.
fn parse_spec(request: &Json) -> Result<SessionSpec, Json> {
    let topology = match want_str(request, "topology")? {
        "cliques" => Topology::Cliques,
        "lines" => Topology::Lines,
        other => {
            return Err(err_response(
                "bad-request",
                format!("unknown topology {other:?} (want \"cliques\" or \"lines\")"),
            ))
        }
    };
    let n = want_usize(request, "n")?;
    let policy = match want_str(request, "policy")? {
        "rand" => PolicyKind::Rand,
        "fair" => PolicyKind::Fair,
        "smaller-moves" => PolicyKind::SmallerMoves,
        "det" => PolicyKind::Det,
        "opt" => PolicyKind::Opt,
        other => {
            return Err(err_response(
                "bad-request",
                format!(
                    "unknown policy {other:?} (want \"rand\", \"fair\", \"smaller-moves\", \
                     \"det\" or \"opt\")"
                ),
            ))
        }
    };
    let backend = match request.get("backend").and_then(Json::as_str) {
        None | Some("segment") => BackendKind::Segment,
        Some("dense") => BackendKind::Dense,
        Some(other) => {
            return Err(err_response(
                "bad-request",
                format!("unknown backend {other:?} (want \"dense\" or \"segment\")"),
            ))
        }
    };
    let seed = match request.get("seed") {
        None => 0,
        Some(value) => value
            .as_u64()
            .ok_or_else(|| err_response("bad-request", "seed must be an unsigned integer"))?,
    };
    let mut spec = SessionSpec::new(topology, n, policy, backend, seed);
    match request.get("record") {
        None => {}
        Some(value) => {
            let mode = match (value.as_str(), value.as_usize()) {
                (Some("full"), _) => RecordMode::Full,
                (Some("off"), _) => RecordMode::Off,
                (None, Some(window)) => RecordMode::Window(window),
                _ => {
                    return Err(err_response(
                        "bad-request",
                        "record must be \"full\", \"off\" or a window size",
                    ))
                }
            };
            spec = spec.record(mode);
        }
    }
    match request.get("check_feasibility") {
        None => {}
        Some(value) => {
            let on = value.as_bool().ok_or_else(|| {
                err_response("bad-request", "check_feasibility must be a boolean")
            })?;
            spec = spec.check_feasibility(on);
        }
    }
    if let Some(value) = request.get("target") {
        let entries = value
            .as_array()
            .ok_or_else(|| err_response("bad-request", "target must be an array of nodes"))?;
        let mut nodes = Vec::with_capacity(entries.len());
        for entry in entries {
            let index = entry.as_usize().ok_or_else(|| {
                err_response("bad-request", "target entries must be unsigned integers")
            })?;
            if index >= n {
                return Err(err_response(
                    "bad-request",
                    format!("target node {index} out of range for n = {n}"),
                ));
            }
            nodes.push(Node::new(index));
        }
        let target = Permutation::from_nodes(nodes)
            .map_err(|err| err_response("bad-request", err.to_string()))?;
        spec = spec.target(target);
    }
    Ok(spec)
}

/// Serves frames from `reader` until end of stream, a `shutdown` op, or
/// a wire-level failure. Returns `true` iff a `shutdown` op stopped the
/// loop — on a TCP daemon, end-of-stream means "peer disconnected, keep
/// accepting" while shutdown means "exit the process".
///
/// Malformed JSON in a well-framed payload gets a `bad-json` error
/// response and the loop continues (the frame boundary is intact). A
/// broken frame header, truncation or an I/O failure desyncs the byte
/// stream: the loop sends a best-effort `wire` error and returns the
/// failure.
///
/// # Errors
///
/// [`WireError`] when the stream desyncs or the transport fails.
pub fn serve_loop(
    server: &mut Server,
    reader: &mut impl BufRead,
    writer: &mut impl Write,
) -> Result<bool, WireError> {
    loop {
        match read_frame(reader) {
            Ok(None) => return Ok(false),
            Ok(Some(request)) => match server.handle(&request) {
                Reply::Continue(response) => write_frame(writer, &response)?,
                Reply::Shutdown(response) => {
                    write_frame(writer, &response)?;
                    return Ok(true);
                }
            },
            Err(WireError::Json(err)) => {
                write_frame(writer, &err_response("bad-json", err.to_string()))?;
            }
            Err(err) => {
                let _ = write_frame(writer, &err_response("wire", err.to_string()));
                return Err(err);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(response: &Json) -> bool {
        response.get("ok").and_then(Json::as_bool) == Some(true)
    }

    fn code(response: &Json) -> &str {
        response.get("code").and_then(Json::as_str).unwrap_or("")
    }

    fn continue_response(reply: Reply) -> Json {
        match reply {
            Reply::Continue(response) => response,
            Reply::Shutdown(response) => panic!("unexpected shutdown: {response:?}"),
        }
    }

    fn request(text: &str) -> Json {
        Json::parse(text).unwrap()
    }

    fn open_tenant(server: &mut Server, name: &str, n: usize) -> Json {
        continue_response(server.handle(&request(&format!(
            "{{\"op\":\"open\",\"tenant\":\"{name}\",\"topology\":\"cliques\",\
             \"n\":{n},\"policy\":\"rand\",\"seed\":7}}"
        ))))
    }

    #[test]
    fn open_reveal_query_close_lifecycle() {
        let mut server = Server::new(4, 1);
        let opened = open_tenant(&mut server, "t0", 8);
        assert!(ok(&opened), "{opened:?}");
        assert_eq!(opened.get("shard").and_then(Json::as_usize), Some(0));

        let served = continue_response(server.handle(&request(
            "{\"op\":\"reveals\",\"tenant\":\"t0\",\"events\":[[0,1],[2,3],[0,2]]}",
        )));
        assert!(ok(&served), "{served:?}");
        assert_eq!(served.get("steps").and_then(Json::as_usize), Some(3));
        assert_eq!(served.get("applied").and_then(Json::as_usize), Some(3));

        let position = continue_response(server.handle(&request(
            "{\"op\":\"position\",\"tenant\":\"t0\",\"node\":5}",
        )));
        assert!(ok(&position), "{position:?}");
        assert!(position.get("position").and_then(Json::as_usize).is_some());

        let outcome =
            continue_response(server.handle(&request("{\"op\":\"outcome\",\"tenant\":\"t0\"}")));
        assert_eq!(
            outcome
                .get("perm")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(8)
        );

        let closed =
            continue_response(server.handle(&request("{\"op\":\"close\",\"tenant\":\"t0\"}")));
        assert!(ok(&closed), "{closed:?}");
        let gone =
            continue_response(server.handle(&request("{\"op\":\"cost\",\"tenant\":\"t0\"}")));
        assert_eq!(code(&gone), "unknown-tenant");
    }

    #[test]
    fn malformed_requests_get_stable_error_codes() {
        let mut server = Server::new(2, 1);
        let opened = open_tenant(&mut server, "t0", 4);
        assert!(ok(&opened), "{opened:?}");
        let cases = [
            ("{\"n\":4}", "bad-request"),
            ("{\"op\":\"frobnicate\"}", "unknown-op"),
            ("{\"op\":\"cost\",\"tenant\":\"nope\"}", "unknown-tenant"),
            (
                "{\"op\":\"open\",\"tenant\":\"t0\",\"topology\":\"cliques\",\"n\":4,\
                 \"policy\":\"rand\"}",
                "duplicate-tenant",
            ),
            (
                "{\"op\":\"open\",\"tenant\":\"t1\",\"topology\":\"rings\",\"n\":4,\
                 \"policy\":\"rand\"}",
                "bad-request",
            ),
            (
                "{\"op\":\"open\",\"tenant\":\"t1\",\"topology\":\"cliques\",\"n\":4,\
                 \"policy\":\"opt\"}",
                "bad-request",
            ),
            (
                "{\"op\":\"reveal\",\"tenant\":\"t0\",\"a\":0,\"b\":9}",
                "bad-request",
            ),
            (
                "{\"op\":\"reveals\",\"tenant\":\"t0\",\"events\":[[0]]}",
                "bad-request",
            ),
            (
                "{\"op\":\"migrate\",\"tenant\":\"t0\",\"shard\":7}",
                "bad-request",
            ),
            ("{\"op\":\"restore\",\"bytes\":\"zz\"}", "bad-request"),
            ("{\"op\":\"restore\",\"bytes\":\"00ff\"}", "checkpoint"),
        ];
        for (text, want) in cases {
            let response = continue_response(server.handle(&request(text)));
            assert_eq!(code(&response), want, "{text} -> {response:?}");
        }
        // A merge of two nodes already in one component is a graph error.
        let merged = continue_response(server.handle(&request(
            "{\"op\":\"reveal\",\"tenant\":\"t0\",\"a\":0,\"b\":1}",
        )));
        assert!(ok(&merged), "{merged:?}");
        let again = continue_response(server.handle(&request(
            "{\"op\":\"reveal\",\"tenant\":\"t0\",\"a\":0,\"b\":1}",
        )));
        assert_eq!(code(&again), "graph");
    }

    #[test]
    fn server_checkpoint_roundtrips_every_tenant() {
        let mut server = Server::new(3, 1);
        for (index, name) in ["alpha", "beta", "gamma"].iter().enumerate() {
            let opened = open_tenant(&mut server, name, 8 + index);
            assert!(ok(&opened), "{opened:?}");
        }
        let served = continue_response(server.handle(&request(
            "{\"op\":\"reveals\",\"tenant\":\"beta\",\"events\":[[0,1],[2,3]]}",
        )));
        assert!(ok(&served), "{served:?}");
        let migrated = continue_response(server.handle(&request(
            "{\"op\":\"migrate\",\"tenant\":\"alpha\",\"shard\":2}",
        )));
        assert!(ok(&migrated), "{migrated:?}");

        let bytes = server.checkpoint_bytes();
        let mut restored = Server::new(3, 1);
        assert_eq!(restored.restore_bytes(&bytes).unwrap(), 3);
        let before = continue_response(server.handle(&request("{\"op\":\"tenants\"}")));
        let after = continue_response(restored.handle(&request("{\"op\":\"tenants\"}")));
        assert_eq!(before, after);

        // Replay after restore matches replay without the roundtrip.
        let frame = "{\"op\":\"reveals\",\"tenant\":\"beta\",\"events\":[[4,5],[0,2]]}";
        let direct = continue_response(server.handle(&request(frame)));
        let resumed = continue_response(restored.handle(&request(frame)));
        assert_eq!(direct, resumed);
    }

    #[test]
    fn restore_remaps_shards_into_smaller_deployments() {
        let mut server = Server::new(8, 1);
        let opened = open_tenant(&mut server, "t0", 6);
        assert!(ok(&opened), "{opened:?}");
        let migrated = continue_response(server.handle(&request(
            "{\"op\":\"migrate\",\"tenant\":\"t0\",\"shard\":5}",
        )));
        assert!(ok(&migrated), "{migrated:?}");
        let mut smaller = Server::new(2, 1);
        smaller.restore_bytes(&server.checkpoint_bytes()).unwrap();
        let listed = continue_response(smaller.handle(&request("{\"op\":\"tenants\"}")));
        let tenants = listed.get("tenants").and_then(Json::as_array).unwrap();
        assert_eq!(tenants[0].get("shard").and_then(Json::as_usize), Some(1));
    }

    #[test]
    fn corrupt_server_checkpoints_are_structured_errors() {
        let mut server = Server::new(2, 1);
        let opened = open_tenant(&mut server, "t0", 8);
        assert!(ok(&opened), "{opened:?}");
        let good = server.checkpoint_bytes();
        let mut fresh = Server::new(2, 1);
        for cut in 0..good.len() {
            assert!(fresh.restore_bytes(&good[..cut]).is_err(), "cut {cut}");
            assert_eq!(fresh.tenant_count(), 0, "table must stay untouched");
        }
        let mut flipped = good.clone();
        flipped[good.len() / 2] ^= 0x10;
        assert!(fresh.restore_bytes(&flipped).is_err());
    }

    #[test]
    fn serve_loop_speaks_the_wire_protocol() {
        let mut server = Server::new(2, 1);
        let mut input = Vec::new();
        for text in [
            "{\"op\":\"open\",\"tenant\":\"t0\",\"topology\":\"lines\",\"n\":6,\
             \"policy\":\"det\"}",
            "{\"op\":\"reveal\",\"tenant\":\"t0\",\"a\":0,\"b\":1}",
            "not json",
            "{\"op\":\"shutdown\"}",
        ] {
            if let Ok(message) = Json::parse(text) {
                write_frame(&mut input, &message).unwrap();
            } else {
                input.extend_from_slice(format!("{}\n{text}\n", text.len()).as_bytes());
            }
        }
        let mut output = Vec::new();
        let shut_down =
            serve_loop(&mut server, &mut std::io::Cursor::new(input), &mut output).unwrap();
        assert!(shut_down);
        let mut r = std::io::Cursor::new(output);
        let mut responses = Vec::new();
        while let Some(response) = read_frame(&mut r).unwrap() {
            responses.push(response);
        }
        assert_eq!(responses.len(), 4);
        assert!(ok(&responses[0]), "{:?}", responses[0]);
        assert!(ok(&responses[1]), "{:?}", responses[1]);
        assert_eq!(code(&responses[2]), "bad-json");
        assert_eq!(
            responses[3].get("shutdown").and_then(Json::as_bool),
            Some(true)
        );
    }
}
