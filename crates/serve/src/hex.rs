//! Hex transport encoding for checkpoint blobs.
//!
//! Checkpoints are binary; the wire protocol is JSON. Lowercase hex is
//! the simplest encoding that survives JSON strings untouched, and the
//! blobs it carries are small (session state is `O(n)`), so the 2×
//! expansion is irrelevant next to debuggability.

/// Encodes bytes as lowercase hex.
#[must_use]
pub fn encode_hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &byte in bytes {
        out.push(DIGITS[usize::from(byte >> 4)] as char);
        out.push(DIGITS[usize::from(byte & 0xf)] as char);
    }
    out
}

/// Decodes the output of [`encode_hex`] (both nibble cases accepted).
///
/// # Errors
///
/// A description of the first violation: odd length, or a non-hex byte
/// with its offset.
pub fn decode_hex(text: &str) -> Result<Vec<u8>, String> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(format!("odd hex length {}", bytes.len()));
    }
    let nibble = |at: usize| -> Result<u8, String> {
        match bytes[at] {
            b @ b'0'..=b'9' => Ok(b - b'0'),
            b @ b'a'..=b'f' => Ok(b - b'a' + 10),
            b @ b'A'..=b'F' => Ok(b - b'A' + 10),
            other => Err(format!("non-hex byte {other:#04x} at offset {at}")),
        }
    };
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for at in (0..bytes.len()).step_by(2) {
        out.push((nibble(at)? << 4) | nibble(at + 1)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_all_byte_values() {
        let bytes: Vec<u8> = (0..=255).collect();
        let text = encode_hex(&bytes);
        assert_eq!(decode_hex(&text).unwrap(), bytes);
        assert_eq!(decode_hex(&text.to_uppercase()).unwrap(), bytes);
        assert_eq!(decode_hex("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(decode_hex("abc").unwrap_err().contains("odd"));
        assert!(decode_hex("zz").unwrap_err().contains("offset 0"));
        assert!(decode_hex("00g0").unwrap_err().contains("offset 2"));
    }
}
