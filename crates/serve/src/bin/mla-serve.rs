//! The serving daemon: length-prefixed JSON frames on stdin/stdout (the
//! default) or a TCP listener, over a multi-tenant [`Server`].
//!
//! ```text
//! mla-serve [--tcp ADDR] [--shards N] [--threads N]
//!           [--restore PATH] [--checkpoint PATH]
//! ```
//!
//! `--restore PATH` loads a server checkpoint before serving (the
//! crash-recovery path). `--checkpoint PATH` sets the default target of
//! `checkpoint` and `shutdown` ops. On TCP, connections are served one
//! at a time — tenants persist across connections; a `shutdown` op ends
//! the process.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpListener;
use std::process::ExitCode;

use mla_serve::{serve_loop, Server};

/// Parsed command line.
struct Args {
    tcp: Option<String>,
    shards: usize,
    threads: usize,
    restore: Option<String>,
    checkpoint: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tcp: None,
        shards: 1,
        threads: 0,
        restore: None,
        checkpoint: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} requires a {what} argument"))
        };
        match flag.as_str() {
            "--tcp" => args.tcp = Some(value("host:port")?),
            "--shards" => {
                args.shards = value("count")?
                    .parse()
                    .map_err(|err| format!("--shards: {err}"))?;
            }
            "--threads" => {
                args.threads = value("count")?
                    .parse()
                    .map_err(|err| format!("--threads: {err}"))?;
            }
            "--restore" => args.restore = Some(value("path")?),
            "--checkpoint" => args.checkpoint = Some(value("path")?),
            "--help" | "-h" => {
                return Err("usage: mla-serve [--tcp ADDR] [--shards N] [--threads N] \
                     [--restore PATH] [--checkpoint PATH]"
                    .to_owned())
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let mut server = Server::new(args.shards, args.threads);
    if let Some(path) = &args.checkpoint {
        server = server.checkpoint_path(path);
    }
    if let Some(path) = &args.restore {
        let bytes = std::fs::read(path).map_err(|err| format!("reading {path}: {err}"))?;
        let tenants = server
            .restore_bytes(&bytes)
            .map_err(|err| format!("restoring {path}: {err}"))?;
        eprintln!("mla-serve: restored {tenants} tenant(s) from {path}");
    }
    match &args.tcp {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut reader = stdin.lock();
            let mut writer = BufWriter::new(stdout.lock());
            serve_loop(&mut server, &mut reader, &mut writer).map_err(|err| err.to_string())?;
            writer.flush().map_err(|err| err.to_string())
        }
        Some(addr) => serve_tcp(&mut server, addr),
    }
}

/// Accepts connections one at a time; the server (and its tenants)
/// outlives each connection. A `shutdown` op — or a listener failure —
/// ends the process; per-connection wire errors only end that
/// connection.
fn serve_tcp(server: &mut Server, addr: &str) -> Result<(), String> {
    let listener = TcpListener::bind(addr).map_err(|err| format!("binding {addr}: {err}"))?;
    let local = listener
        .local_addr()
        .map_err(|err| format!("local addr: {err}"))?;
    // The kernel may have picked the port (`:0`): announce the bound
    // address on stderr so test harnesses can connect.
    eprintln!("mla-serve: listening on {local}");
    for stream in listener.incoming() {
        let stream = stream.map_err(|err| format!("accepting on {local}: {err}"))?;
        let mut reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|err| format!("cloning stream: {err}"))?,
        );
        let mut writer = BufWriter::new(stream);
        match serve_loop(server, &mut reader, &mut writer) {
            Ok(shut_down) => {
                let _ = writer.flush();
                if shut_down {
                    return Ok(());
                }
                // Peer disconnected; tenants persist, keep accepting.
            }
            Err(err) => eprintln!("mla-serve: connection error: {err}"),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("mla-serve: {message}");
            ExitCode::FAILURE
        }
    }
}
