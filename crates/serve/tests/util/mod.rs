//! Subprocess driver for the `mla-serve` daemon: spawn the real binary,
//! speak the wire protocol over its pipes, and kill it hard (SIGKILL)
//! to simulate crashes. Shared by the crash-recovery and soak suites.

use std::io::BufReader;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

use mla_runner::{read_frame, write_frame, Json};

/// A live `mla-serve` subprocess with its wire pipes.
pub struct Daemon {
    child: Child,
    stdin: Option<ChildStdin>,
    stdout: BufReader<ChildStdout>,
}

impl Daemon {
    /// Spawns the daemon binary built by this test profile.
    pub fn spawn(args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_mla-serve"))
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn mla-serve");
        let stdin = child.stdin.take().expect("child stdin");
        let stdout = BufReader::new(child.stdout.take().expect("child stdout"));
        Daemon {
            child,
            stdin: Some(stdin),
            stdout,
        }
    }

    /// Sends one request (JSON text) and returns the response.
    pub fn request(&mut self, text: &str) -> Json {
        let message = Json::parse(text).expect("request must be valid JSON");
        let stdin = self.stdin.as_mut().expect("daemon stdin already closed");
        write_frame(stdin, &message).expect("write request frame");
        read_frame(&mut self.stdout)
            .expect("read response frame")
            .expect("daemon closed the stream mid-conversation")
    }

    /// Sends a request and asserts the response is `"ok": true`.
    pub fn request_ok(&mut self, text: &str) -> Json {
        let response = self.request(text);
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {text} failed: {response:?}"
        );
        response
    }

    /// SIGKILL — the crash being recovered from. No shutdown op, no
    /// flush, no goodbye.
    pub fn kill9(mut self) {
        self.child.kill().expect("kill -9 the daemon");
        let _ = self.child.wait();
    }

    /// Clean shutdown through the protocol; waits for process exit.
    pub fn shutdown(mut self) {
        let response = self.request("{\"op\":\"shutdown\"}");
        assert_eq!(response.get("shutdown").and_then(Json::as_bool), Some(true));
        drop(self.stdin.take());
        let status = self.child.wait().expect("wait for daemon exit");
        assert!(status.success(), "daemon exited with {status:?}");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Never leak a daemon when an assertion fails mid-test.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Renders `[[a,b],…]` for a `reveals` request.
pub fn events_json(events: &[(usize, usize)]) -> String {
    let entries: Vec<String> = events.iter().map(|&(a, b)| format!("[{a},{b}]")).collect();
    format!("[{}]", entries.join(","))
}
