//! Crash recovery across a **real process boundary**: a daemon is
//! killed with SIGKILL mid-stream and a fresh process restores its
//! checkpoint; replaying the remaining reveals must be bit-identical to
//! an uninterrupted in-process run — same exact costs, same final
//! permutation.

mod util;

use std::path::PathBuf;

use mla_adversary::{random_clique_instance, random_line_instance, MergeShape};
use mla_graph::{RevealEvent, Topology};
use mla_permutation::Permutation;
use mla_runner::Json;
use mla_sim::{open_session, BackendKind, PolicyKind, SessionSpec};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use util::{events_json, Daemon};

fn instance_pairs(topology: Topology, n: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let events = match topology {
        Topology::Cliques => random_clique_instance(n, MergeShape::Uniform, &mut rng)
            .events()
            .to_vec(),
        Topology::Lines => random_line_instance(n, MergeShape::Uniform, &mut rng)
            .events()
            .to_vec(),
    };
    events
        .iter()
        .map(|e| (e.a().index(), e.b().index()))
        .collect()
}

fn to_events(pairs: &[(usize, usize)]) -> Vec<RevealEvent> {
    pairs
        .iter()
        .map(|&(a, b)| {
            RevealEvent::new(mla_permutation::Node::new(a), mla_permutation::Node::new(b))
        })
        .collect()
}

fn tmp_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name)
}

/// One grid cell, end to end: serve a prefix in process A, checkpoint,
/// SIGKILL it, restore in process B, serve the remainder, and compare
/// against the uninterrupted in-process reference.
fn assert_subprocess_recovery(
    name: &str,
    topology: Topology,
    policy: PolicyKind,
    backend: BackendKind,
) {
    let n = 16;
    let seed = 29;
    let pairs = instance_pairs(topology, n, 41);
    let cut = pairs.len() / 2;

    // Uninterrupted in-process reference.
    let mut spec = SessionSpec::new(topology, n, policy, backend, seed);
    let target = Permutation::random(n, &mut SmallRng::seed_from_u64(77));
    let target_json: Vec<String> = target.iter().map(|node| node.index().to_string()).collect();
    if policy == PolicyKind::Opt {
        spec = spec.target(target.clone());
    }
    let mut reference = open_session(spec).unwrap();
    reference.apply_events(&to_events(&pairs)).unwrap();
    let want = reference.outcome();

    let ckpt = tmp_path(&format!("crash-{name}.ckpt"));
    let ckpt_str = ckpt.to_str().unwrap();
    let (topo_str, policy_str, backend_str) = (
        match topology {
            Topology::Cliques => "cliques",
            Topology::Lines => "lines",
        },
        match policy {
            PolicyKind::Rand => "rand",
            PolicyKind::Fair => "fair",
            PolicyKind::SmallerMoves => "smaller-moves",
            PolicyKind::Det => "det",
            PolicyKind::Opt => "opt",
        },
        match backend {
            BackendKind::Dense => "dense",
            BackendKind::Segment => "segment",
        },
    );
    let target_field = if policy == PolicyKind::Opt {
        format!(",\"target\":[{}]", target_json.join(","))
    } else {
        String::new()
    };

    // Process A: open, serve the prefix, checkpoint, die hard.
    let mut first = Daemon::spawn(&["--checkpoint", ckpt_str, "--shards", "4"]);
    first.request_ok(&format!(
        "{{\"op\":\"open\",\"tenant\":\"{name}\",\"topology\":\"{topo_str}\",\"n\":{n},\
         \"policy\":\"{policy_str}\",\"backend\":\"{backend_str}\",\"seed\":{seed}\
         {target_field}}}"
    ));
    first.request_ok(&format!(
        "{{\"op\":\"reveals\",\"tenant\":\"{name}\",\"events\":{}}}",
        events_json(&pairs[..cut])
    ));
    first.request_ok("{\"op\":\"checkpoint\"}");
    first.kill9();

    // Process B: restore, serve the remainder, compare.
    let mut second = Daemon::spawn(&["--restore", ckpt_str, "--shards", "4"]);
    second.request_ok(&format!(
        "{{\"op\":\"reveals\",\"tenant\":\"{name}\",\"events\":{}}}",
        events_json(&pairs[cut..])
    ));
    let outcome = second.request_ok(&format!("{{\"op\":\"outcome\",\"tenant\":\"{name}\"}}"));
    second.shutdown();

    assert_eq!(
        outcome.get("total_cost").and_then(Json::as_u128),
        Some(want.total_cost),
        "{name}: total cost diverged across the process boundary"
    );
    assert_eq!(
        outcome.get("moving_cost").and_then(Json::as_u128),
        Some(want.moving_cost),
        "{name}: moving cost diverged"
    );
    assert_eq!(
        outcome.get("rearranging_cost").and_then(Json::as_u128),
        Some(want.rearranging_cost),
        "{name}: rearranging cost diverged"
    );
    let perm: Vec<usize> = outcome
        .get("perm")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|v| v.as_usize().unwrap())
        .collect();
    let want_perm: Vec<usize> = want.final_perm.iter().map(|node| node.index()).collect();
    assert_eq!(perm, want_perm, "{name}: final permutation diverged");
}

#[test]
fn rand_cliques_segment_recovers_across_processes() {
    assert_subprocess_recovery(
        "rand-cliques-segment",
        Topology::Cliques,
        PolicyKind::Rand,
        BackendKind::Segment,
    );
}

#[test]
fn fair_lines_segment_recovers_across_processes() {
    assert_subprocess_recovery(
        "fair-lines-segment",
        Topology::Lines,
        PolicyKind::Fair,
        BackendKind::Segment,
    );
}

#[test]
fn smaller_moves_cliques_dense_recovers_across_processes() {
    assert_subprocess_recovery(
        "smaller-cliques-dense",
        Topology::Cliques,
        PolicyKind::SmallerMoves,
        BackendKind::Dense,
    );
}

#[test]
fn det_lines_dense_recovers_across_processes() {
    assert_subprocess_recovery(
        "det-lines-dense",
        Topology::Lines,
        PolicyKind::Det,
        BackendKind::Dense,
    );
}

#[test]
fn opt_cliques_segment_recovers_across_processes() {
    assert_subprocess_recovery(
        "opt-cliques-segment",
        Topology::Cliques,
        PolicyKind::Opt,
        BackendKind::Segment,
    );
}

/// The daemon also speaks the protocol over TCP; a session opened on
/// one connection survives to the next, and `shutdown` ends the
/// process.
#[test]
fn tcp_daemon_serves_across_connections() {
    use std::io::{BufRead, BufReader, BufWriter};
    use std::net::TcpStream;
    use std::process::{Command, Stdio};

    use mla_runner::{read_frame, write_frame};

    let mut child = Command::new(env!("CARGO_BIN_EXE_mla-serve"))
        .args(["--tcp", "127.0.0.1:0"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mla-serve --tcp");
    let mut stderr = BufReader::new(child.stderr.take().expect("child stderr"));
    let mut line = String::new();
    stderr.read_line(&mut line).expect("read listen banner");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("address in listen banner")
        .to_owned();

    let request = |stream: &TcpStream, text: &str| -> Json {
        let mut writer = BufWriter::new(stream.try_clone().expect("clone stream"));
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        write_frame(&mut writer, &Json::parse(text).expect("request json"))
            .expect("write tcp frame");
        read_frame(&mut reader)
            .expect("read tcp frame")
            .expect("response")
    };

    {
        let first = TcpStream::connect(&addr).expect("connect");
        let opened = request(
            &first,
            "{\"op\":\"open\",\"tenant\":\"t0\",\"topology\":\"cliques\",\"n\":8,\
             \"policy\":\"rand\",\"seed\":3}",
        );
        assert_eq!(opened.get("ok").and_then(Json::as_bool), Some(true));
        // Drop the connection without shutdown: tenants must survive.
    }
    {
        let second = TcpStream::connect(&addr).expect("reconnect");
        let cost = request(&second, "{\"op\":\"cost\",\"tenant\":\"t0\"}");
        assert_eq!(cost.get("ok").and_then(Json::as_bool), Some(true));
        let done = request(&second, "{\"op\":\"shutdown\"}");
        assert_eq!(done.get("shutdown").and_then(Json::as_bool), Some(true));
    }
    let status = child.wait().expect("wait for tcp daemon");
    assert!(status.success(), "daemon exited with {status:?}");
}
