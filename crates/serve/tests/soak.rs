//! The 64-tenant soak: a long interleaved session script against the
//! real daemon — reveals in ragged frames, mid-stream position/cost
//! queries, shard migrations, and two `kill -9` + restore cycles — with
//! every tenant's final costs and permutation checked against a
//! single-process reference run. A wall-clock budget keeps the suite
//! CI-friendly.

mod util;

use std::path::PathBuf;
use std::time::{Duration, Instant};

use mla_adversary::{random_clique_instance, random_line_instance, MergeShape};
use mla_graph::{RevealEvent, Topology};
use mla_permutation::Node;
use mla_runner::Json;
use mla_sim::{open_session, BackendKind, PolicyKind, RunOutcome, SessionSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use util::{events_json, Daemon};

const TENANTS: usize = 64;
const SHARDS: usize = 8;
/// Generous CI budget; the soak takes well under this on a laptop.
const WALL_CLOCK_BUDGET: Duration = Duration::from_secs(120);

struct TenantPlan {
    name: String,
    topology: Topology,
    policy: PolicyKind,
    backend: BackendKind,
    n: usize,
    seed: u64,
    pairs: Vec<(usize, usize)>,
}

fn plan_tenants() -> Vec<TenantPlan> {
    let policies = [
        PolicyKind::Rand,
        PolicyKind::Fair,
        PolicyKind::SmallerMoves,
        PolicyKind::Det,
    ];
    (0..TENANTS)
        .map(|index| {
            let topology = if index % 2 == 0 {
                Topology::Cliques
            } else {
                Topology::Lines
            };
            let n = 8 + (index % 7) * 2;
            let seed = 1_000 + index as u64;
            let mut rng = SmallRng::seed_from_u64(seed);
            let events = match topology {
                Topology::Cliques => random_clique_instance(n, MergeShape::Uniform, &mut rng)
                    .events()
                    .to_vec(),
                Topology::Lines => random_line_instance(n, MergeShape::Uniform, &mut rng)
                    .events()
                    .to_vec(),
            };
            TenantPlan {
                name: format!("tenant-{index:02}"),
                topology,
                policy: policies[index % policies.len()],
                backend: if index % 3 == 0 {
                    BackendKind::Dense
                } else {
                    BackendKind::Segment
                },
                n,
                seed,
                pairs: events
                    .iter()
                    .map(|e| (e.a().index(), e.b().index()))
                    .collect(),
            }
        })
        .collect()
}

fn reference_outcome(plan: &TenantPlan) -> RunOutcome {
    let spec = SessionSpec::new(plan.topology, plan.n, plan.policy, plan.backend, plan.seed);
    let mut session = open_session(spec).unwrap();
    let events: Vec<RevealEvent> = plan
        .pairs
        .iter()
        .map(|&(a, b)| RevealEvent::new(Node::new(a), Node::new(b)))
        .collect();
    session.apply_events(&events).unwrap();
    session.outcome()
}

fn open_request(plan: &TenantPlan) -> String {
    format!(
        "{{\"op\":\"open\",\"tenant\":\"{}\",\"topology\":\"{}\",\"n\":{},\
         \"policy\":\"{}\",\"backend\":\"{}\",\"seed\":{}}}",
        plan.name,
        match plan.topology {
            Topology::Cliques => "cliques",
            Topology::Lines => "lines",
        },
        plan.n,
        match plan.policy {
            PolicyKind::Rand => "rand",
            PolicyKind::Fair => "fair",
            PolicyKind::SmallerMoves => "smaller-moves",
            PolicyKind::Det => "det",
            PolicyKind::Opt => "opt",
        },
        match plan.backend {
            BackendKind::Dense => "dense",
            BackendKind::Segment => "segment",
        },
        plan.seed,
    )
}

#[test]
fn soak_64_tenants_survive_two_kill9_cycles_with_identical_costs() {
    let start = Instant::now();
    let plans = plan_tenants();
    let references: Vec<RunOutcome> = plans.iter().map(reference_outcome).collect();
    let total_events: usize = plans.iter().map(|p| p.pairs.len()).sum();

    let ckpt = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("soak.ckpt");
    let ckpt_str = ckpt.to_str().unwrap().to_owned();
    let shards_str = SHARDS.to_string();
    let spawn = |restore: bool| {
        let mut args = vec![
            "--checkpoint",
            ckpt_str.as_str(),
            "--shards",
            shards_str.as_str(),
        ];
        if restore {
            args.push("--restore");
            args.push(ckpt_str.as_str());
        }
        Daemon::spawn(&args)
    };

    let mut daemon = spawn(false);
    for plan in &plans {
        daemon.request_ok(&open_request(plan));
    }

    // Interleave: random tenant, random frame size, with queries and
    // migrations sprinkled in. Two kill -9 + restore cycles at roughly
    // 1/3 and 2/3 of total progress.
    let mut script_rng = SmallRng::seed_from_u64(0xbeef);
    let mut cursors = vec![0usize; plans.len()];
    let mut served = 0usize;
    let mut kills = [false, false];
    loop {
        let remaining: Vec<usize> = (0..plans.len())
            .filter(|&i| cursors[i] < plans[i].pairs.len())
            .collect();
        let Some(&tenant) = remaining.get(script_rng.gen_range(0..remaining.len().max(1))) else {
            break;
        };
        let plan = &plans[tenant];
        let cursor = cursors[tenant];
        let frame = script_rng
            .gen_range(1usize..=4)
            .min(plan.pairs.len() - cursor);
        let response = daemon.request_ok(&format!(
            "{{\"op\":\"reveals\",\"tenant\":\"{}\",\"events\":{}}}",
            plan.name,
            events_json(&plan.pairs[cursor..cursor + frame])
        ));
        cursors[tenant] += frame;
        served += frame;
        assert_eq!(
            response.get("steps").and_then(Json::as_usize),
            Some(cursors[tenant]),
            "{} step count drifted",
            plan.name
        );

        // Mid-stream queries: positions must be in range, costs exact.
        if script_rng.gen_range(0..4) == 0 {
            let node = script_rng.gen_range(0..plan.n);
            let position = daemon.request_ok(&format!(
                "{{\"op\":\"position\",\"tenant\":\"{}\",\"node\":{node}}}",
                plan.name
            ));
            let at = position.get("position").and_then(Json::as_usize).unwrap();
            assert!(at < plan.n, "{}: position {at} out of range", plan.name);
        }
        if script_rng.gen_range(0..6) == 0 {
            let shard = script_rng.gen_range(0..SHARDS);
            daemon.request_ok(&format!(
                "{{\"op\":\"migrate\",\"tenant\":\"{}\",\"shard\":{shard}}}",
                plan.name
            ));
        }

        // Crash cycles.
        let progress = served as f64 / total_events as f64;
        for (slot, threshold) in [(0usize, 1.0 / 3.0), (1, 2.0 / 3.0)] {
            if !kills[slot] && progress >= threshold {
                kills[slot] = true;
                daemon.request_ok("{\"op\":\"checkpoint\"}");
                daemon.kill9();
                daemon = spawn(true);
                let listed = daemon.request_ok("{\"op\":\"tenants\"}");
                let count = listed
                    .get("tenants")
                    .and_then(Json::as_array)
                    .map(<[Json]>::len);
                assert_eq!(count, Some(TENANTS), "tenant lost in restore");
            }
        }
    }
    assert!(kills[0] && kills[1], "both crash cycles must have run");

    // Every tenant's final state matches the single-process reference.
    for (plan, want) in plans.iter().zip(&references) {
        let outcome = daemon.request_ok(&format!(
            "{{\"op\":\"outcome\",\"tenant\":\"{}\"}}",
            plan.name
        ));
        assert_eq!(
            outcome.get("moving_cost").and_then(Json::as_u128),
            Some(want.moving_cost),
            "{}: moving cost diverged",
            plan.name
        );
        assert_eq!(
            outcome.get("rearranging_cost").and_then(Json::as_u128),
            Some(want.rearranging_cost),
            "{}: rearranging cost diverged",
            plan.name
        );
        let perm: Vec<usize> = outcome
            .get("perm")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|v| v.as_usize().unwrap())
            .collect();
        let want_perm: Vec<usize> = want.final_perm.iter().map(|node| node.index()).collect();
        assert_eq!(perm, want_perm, "{}: final permutation diverged", plan.name);
    }
    daemon.shutdown();

    let elapsed = start.elapsed();
    assert!(
        elapsed < WALL_CLOCK_BUDGET,
        "soak blew its CI budget: {elapsed:?} >= {WALL_CLOCK_BUDGET:?}"
    );
}
