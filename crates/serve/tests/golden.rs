//! Golden checkpoint compatibility: a fixture produced by the version-1
//! codec is committed to the repository, and this suite proves that
//! today's decoder still accepts it **and** resumes it to the exact
//! historical outcome. Any incompatible codec change trips this test —
//! the fix is a version bump plus a migration path, never a silent
//! format break.
//!
//! Regenerate (after an intentional, versioned format change) with:
//!
//! ```text
//! cargo test -p mla-serve --test golden -- --ignored
//! ```

use mla_graph::{RevealEvent, Topology};
use mla_permutation::Node;
use mla_sim::{decode_session, encode_session, open_session, BackendKind, PolicyKind, SessionSpec};

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/session-v1.ckpt");

/// The fixture's reveal script: a fixed merge tournament on 12 nodes
/// (hardcoded, so the fixture never depends on adversary-generator
/// internals). Merges pair **distant** nodes so every step forces real
/// movement — the costs pinned below are non-trivial. The checkpoint
/// was taken after [`CUT`] reveals.
const EVENTS: [(usize, usize); 11] = [
    (0, 6),
    (1, 7),
    (2, 8),
    (0, 1),
    (3, 9),
    (4, 10),
    (2, 3),
    (5, 11),
    (0, 2),
    (4, 5),
    (0, 4),
];
const CUT: usize = 6;

/// Historical values pinned at fixture-generation time. `regenerate`
/// prints fresh ones.
const MID_TOTAL_COST: u128 = 19;
const FINAL_TOTAL_COST: u128 = 37;

fn fixture_spec() -> SessionSpec {
    SessionSpec::new(
        Topology::Cliques,
        12,
        PolicyKind::Rand,
        BackendKind::Segment,
        42,
    )
}

fn events(range: std::ops::Range<usize>) -> Vec<RevealEvent> {
    EVENTS[range]
        .iter()
        .map(|&(a, b)| RevealEvent::new(Node::new(a), Node::new(b)))
        .collect()
}

#[test]
fn golden_fixture_still_decodes_and_resumes_to_the_historical_outcome() {
    let bytes = std::fs::read(FIXTURE)
        .expect("missing fixture — run `cargo test -p mla-serve --test golden -- --ignored`");
    let mut session = decode_session(&bytes).expect("version-1 fixture must keep decoding");

    let spec = session.spec().clone();
    assert_eq!(spec, fixture_spec(), "fixture spec drifted");
    assert_eq!(session.steps(), CUT);
    assert_eq!(session.outcome().total_cost, MID_TOTAL_COST);

    session.apply_events(&events(CUT..EVENTS.len())).unwrap();
    let resumed = session.outcome();
    assert_eq!(resumed.total_cost, FINAL_TOTAL_COST);

    // The resumed historical session and a fresh uninterrupted run are
    // bit-identical — the crash-recovery contract, pinned across codec
    // versions.
    let mut fresh = open_session(fixture_spec()).unwrap();
    fresh.apply_events(&events(0..EVENTS.len())).unwrap();
    assert_eq!(resumed, fresh.outcome());
}

#[test]
fn reencoding_the_fixture_is_byte_stable() {
    let bytes = std::fs::read(FIXTURE)
        .expect("missing fixture — run `cargo test -p mla-serve --test golden -- --ignored`");
    let session = decode_session(&bytes).unwrap();
    assert_eq!(
        encode_session(session.as_ref()),
        bytes,
        "decode → encode must reproduce the committed bytes exactly"
    );
}

#[test]
#[ignore = "writes the committed fixture; run only after an intentional format change"]
fn regenerate_golden_fixture() {
    let mut session = open_session(fixture_spec()).unwrap();
    session.apply_events(&events(0..CUT)).unwrap();
    let bytes = encode_session(session.as_ref());
    let mid_total = session.outcome().total_cost;
    session.apply_events(&events(CUT..EVENTS.len())).unwrap();
    let final_total = session.outcome().total_cost;
    std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden")).unwrap();
    std::fs::write(FIXTURE, &bytes).unwrap();
    println!(
        "wrote {} bytes to {FIXTURE}\nMID_TOTAL_COST = {mid_total}\nFINAL_TOTAL_COST = {final_total}",
        bytes.len()
    );
}
