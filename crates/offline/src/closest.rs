//! Closest feasible permutation for a *current* graph state.
//!
//! This is the primitive behind both the `Det` online algorithm (Section 2
//! of the paper: "update the permutation to an arbitrary MinLA of `G_i`
//! that minimizes the distance to `π0`") and the offline lower bound `Δ* =
//! min { d(π0, π) : π feasible for G_k }` (Observation 7).

use mla_graph::{GraphState, Topology};
use mla_permutation::{Node, Permutation};

use crate::blocks::{free_order_block, oriented_block, BlockDescriptor};
use crate::config::LopConfig;
use crate::error::OfflineError;
use crate::placement::{place_blocks, placement_lower_bound, Placement};

/// Splits the state's components into block descriptors (size ≥ 2) and
/// free singleton nodes, with internal orders fixed optimally per topology.
#[must_use]
pub fn state_blocks(state: &GraphState, pi0: &Permutation) -> (Vec<BlockDescriptor>, Vec<Node>) {
    let mut blocks = Vec::new();
    let mut free = Vec::new();
    for component in state.components() {
        if component.len() == 1 {
            free.push(component[0]);
        } else {
            let descriptor = match state.topology() {
                Topology::Cliques => free_order_block(&component, pi0),
                // components() yields lines in path order.
                Topology::Lines => oriented_block(&component, pi0),
            };
            blocks.push(descriptor);
        }
    }
    (blocks, free)
}

/// Finds a feasible permutation of `state` minimizing the Kendall tau
/// distance to `pi0` — exactly when the block count permits, heuristically
/// otherwise (per `config.strategy`).
///
/// The result's `exact` flag reports whether the returned distance is the
/// true minimum `Δ*`.
///
/// # Errors
///
/// * [`OfflineError::SizeMismatch`] if `pi0` has a different node count;
/// * [`OfflineError::TooManyBlocks`] under
///   [`LopStrategy::Exact`](crate::LopStrategy::Exact) when the instance
///   has more multi-node components than `config.max_exact_blocks`.
pub fn closest_feasible(
    state: &GraphState,
    pi0: &Permutation,
    config: &LopConfig,
) -> Result<Placement, OfflineError> {
    if pi0.len() != state.n() {
        return Err(OfflineError::SizeMismatch {
            expected: state.n(),
            actual: pi0.len(),
        });
    }
    let (blocks, free) = state_blocks(state, pi0);
    place_blocks(pi0, &blocks, &free, config)
}

/// A valid lower bound on `Δ* = min d(π0, feasible)` for the state,
/// computable in polynomial time regardless of the block count.
///
/// # Panics
///
/// Panics if `pi0` has a different node count than the state.
#[must_use]
pub fn feasible_distance_lower_bound(state: &GraphState, pi0: &Permutation) -> u64 {
    assert_eq!(pi0.len(), state.n(), "permutation/state size mismatch");
    let (blocks, free) = state_blocks(state, pi0);
    placement_lower_bound(pi0, &blocks, &free)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_graph::RevealEvent;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn ev(a: usize, b: usize) -> RevealEvent {
        RevealEvent::new(Node::new(a), Node::new(b))
    }

    #[test]
    fn closest_is_feasible_and_distance_is_correct() {
        let mut state = GraphState::new(Topology::Cliques, 6);
        state.apply(ev(0, 4)).unwrap();
        state.apply(ev(1, 5)).unwrap();
        let pi0 = Permutation::from_indices(&[0, 1, 2, 3, 4, 5]).unwrap();
        let placement = closest_feasible(&state, &pi0, &LopConfig::default()).unwrap();
        assert!(state.is_minla(&placement.perm));
        assert_eq!(placement.distance, pi0.kendall_distance(&placement.perm));
        assert!(placement.exact);
        // {0,4} and {1,5} must each become contiguous: moving 4 next to 0
        // and 5 next to 1 costs at least... check optimality by brute force
        // over all permutations of 6 nodes.
        let mut best = u64::MAX;
        let mut indices = vec![0usize, 1, 2, 3, 4, 5];
        fn rec(
            indices: &mut Vec<usize>,
            at: usize,
            state: &GraphState,
            pi0: &Permutation,
            best: &mut u64,
        ) {
            if at == indices.len() {
                let perm = Permutation::from_indices(indices).unwrap();
                if state.is_minla(&perm) {
                    *best = (*best).min(pi0.kendall_distance(&perm));
                }
                return;
            }
            for i in at..indices.len() {
                indices.swap(at, i);
                rec(indices, at + 1, state, pi0, best);
                indices.swap(at, i);
            }
        }
        rec(&mut indices, 0, &state, &pi0, &mut best);
        assert_eq!(placement.distance, best);
    }

    #[test]
    fn closest_for_lines_respects_orientation() {
        let mut state = GraphState::new(Topology::Lines, 5);
        state.apply(ev(3, 1)).unwrap();
        state.apply(ev(1, 0)).unwrap();
        // Path 3-1-0. π0 = identity: reversed orientation 0-1-3 is cheaper.
        let pi0 = Permutation::identity(5);
        let placement = closest_feasible(&state, &pi0, &LopConfig::default()).unwrap();
        assert!(state.is_minla(&placement.perm));
        assert_eq!(placement.distance, pi0.kendall_distance(&placement.perm));
    }

    #[test]
    fn exhaustive_line_optimality_small() {
        // Cross-check closest_feasible against brute force over all
        // feasible permutations for random small line states.
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10 {
            let n = 6;
            let mut state = GraphState::new(Topology::Lines, n);
            // Build two short paths.
            state.apply(ev(0, 1)).unwrap();
            state.apply(ev(1, 2)).unwrap();
            state.apply(ev(3, 4)).unwrap();
            let pi0 = Permutation::random(n, &mut rng);
            let placement = closest_feasible(&state, &pi0, &LopConfig::default()).unwrap();
            let mut best = u64::MAX;
            let mut indices: Vec<usize> = (0..n).collect();
            fn rec(
                indices: &mut Vec<usize>,
                at: usize,
                state: &GraphState,
                pi0: &Permutation,
                best: &mut u64,
            ) {
                if at == indices.len() {
                    let perm = Permutation::from_indices(indices).unwrap();
                    if state.is_minla(&perm) {
                        *best = (*best).min(pi0.kendall_distance(&perm));
                    }
                    return;
                }
                for i in at..indices.len() {
                    indices.swap(at, i);
                    rec(indices, at + 1, state, pi0, best);
                    indices.swap(at, i);
                }
            }
            rec(&mut indices, 0, &state, &pi0, &mut best);
            assert_eq!(placement.distance, best);
            let _ = rng.gen::<u64>();
        }
    }

    #[test]
    fn lower_bound_never_exceeds_exact() {
        let mut rng = SmallRng::seed_from_u64(17);
        for _ in 0..10 {
            let n = 8;
            let mut state = GraphState::new(Topology::Cliques, n);
            state.apply(ev(0, 1)).unwrap();
            state.apply(ev(2, 3)).unwrap();
            state.apply(ev(4, 5)).unwrap();
            let pi0 = Permutation::random(n, &mut rng);
            let bound = feasible_distance_lower_bound(&state, &pi0);
            let exact = closest_feasible(&state, &pi0, &LopConfig::default()).unwrap();
            assert!(bound <= exact.distance);
        }
    }

    #[test]
    fn size_mismatch_is_an_error() {
        let state = GraphState::new(Topology::Cliques, 4);
        let pi0 = Permutation::identity(5);
        assert!(matches!(
            closest_feasible(&state, &pi0, &LopConfig::default()),
            Err(OfflineError::SizeMismatch {
                expected: 4,
                actual: 5
            })
        ));
    }

    #[test]
    fn empty_graph_returns_pi0() {
        let state = GraphState::new(Topology::Lines, 5);
        let pi0 = Permutation::from_indices(&[4, 2, 0, 1, 3]).unwrap();
        let placement = closest_feasible(&state, &pi0, &LopConfig::default()).unwrap();
        assert_eq!(placement.perm, pi0);
        assert_eq!(placement.distance, 0);
    }
}
