//! Offline optimum (`Opt`) bounds for a complete request sequence.
//!
//! `Opt` is the minimum total update cost of any offline algorithm that
//! maintains feasibility at every step. The paper's Observation 7 lower
//! bounds it by `Δ* = min { d(π0, π) : π feasible for G_k }`. The
//! achievability side depends on the topology:
//!
//! * **lines** — `Δ*` is achievable: intermediate components are
//!   contiguous sub-paths of final paths, so any final-feasible permutation
//!   is feasible at every step; jump there on the first reveal. Hence
//!   `Opt = Δ*` and [`offline_optimum`] returns matching bounds.
//! * **cliques** — a final-feasible permutation may scatter an intermediate
//!   sub-clique (see `tests/feasibility_nesting.rs` in the workspace root),
//!   so `Δ*` is only a lower bound. The merge-tree-consistent layout from
//!   [`hierarchical_block`](crate::hierarchical_block) *is* feasible at
//!   every step, giving the achievable upper bound.

use mla_graph::{Instance, Topology};
use mla_permutation::{Node, Permutation};

use crate::blocks::{hierarchical_block, BlockDescriptor};
use crate::closest::{closest_feasible, state_blocks};
use crate::config::LopConfig;
use crate::error::OfflineError;
use crate::placement::{place_blocks, placement_lower_bound};

/// Bounds on the offline optimum of an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptBounds {
    /// A valid lower bound on `Opt` (equals `Δ*` when `exact_lower`).
    pub lower: u64,
    /// An achievable upper bound on `Opt` (the cost of a concrete feasible
    /// trajectory: jump to `upper_perm` at the first reveal and stay).
    pub upper: u64,
    /// The final permutation realizing `lower` when the exact solver ran
    /// (feasible for `G_k`; for lines also feasible at every step).
    pub lower_perm: Option<Permutation>,
    /// The final permutation of the upper-bound trajectory (feasible at
    /// every step of the sequence).
    pub upper_perm: Permutation,
    /// Whether `lower` is exactly `Δ*` (the exact placement solver ran).
    pub exact_lower: bool,
}

impl OptBounds {
    /// Returns `true` if the bounds pin `Opt` exactly.
    #[must_use]
    pub fn is_tight(&self) -> bool {
        self.lower == self.upper
    }
}

/// Computes offline optimum bounds for the instance starting from `pi0`.
///
/// # Errors
///
/// * [`OfflineError::SizeMismatch`] if `pi0` does not cover `instance.n()`
///   nodes;
/// * [`OfflineError::TooManyBlocks`] when
///   [`LopStrategy::Exact`](crate::LopStrategy::Exact) is configured and
///   the instance exceeds the exact block limit.
///
/// # Examples
///
/// ```
/// use mla_graph::{Instance, RevealEvent, Topology};
/// use mla_offline::{offline_optimum, LopConfig};
/// use mla_permutation::{Node, Permutation};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let instance = Instance::new(
///     Topology::Lines,
///     4,
///     vec![RevealEvent::new(Node::new(0), Node::new(3))],
/// )?;
/// let pi0 = Permutation::identity(4);
/// let bounds = offline_optimum(&instance, &pi0, &LopConfig::default())?;
/// // Bringing 3 next to 0 (or vice versa) costs 2 adjacent swaps.
/// assert_eq!(bounds.lower, 2);
/// assert!(bounds.is_tight());
/// # Ok(())
/// # }
/// ```
pub fn offline_optimum(
    instance: &Instance,
    pi0: &Permutation,
    config: &LopConfig,
) -> Result<OptBounds, OfflineError> {
    if pi0.len() != instance.n() {
        return Err(OfflineError::SizeMismatch {
            expected: instance.n(),
            actual: pi0.len(),
        });
    }
    let final_state = instance.final_state();
    let placement = closest_feasible(&final_state, pi0, config)?;

    match instance.topology() {
        Topology::Lines => {
            // Δ* is exact when the solver was exact; always achievable.
            let lower = if placement.exact {
                placement.distance
            } else {
                placement_lower_bound_for(&final_state, pi0)
            };
            Ok(OptBounds {
                lower,
                upper: placement.distance,
                lower_perm: placement.exact.then(|| placement.perm.clone()),
                upper_perm: placement.perm,
                exact_lower: placement.exact,
            })
        }
        Topology::Cliques => {
            // Lower: Δ* (exact) or the pairwise bound. Upper: merge-tree
            // consistent layout, feasible at every step.
            let lower = if placement.exact {
                placement.distance
            } else {
                placement_lower_bound_for(&final_state, pi0)
            };
            let tree = instance.merge_tree();
            let mut blocks: Vec<BlockDescriptor> = Vec::new();
            let mut free: Vec<Node> = Vec::new();
            for root in tree.roots() {
                if tree.size_of(root) == 1 {
                    free.push(tree.leaf_node(root));
                } else {
                    blocks.push(hierarchical_block(&tree, root, pi0));
                }
            }
            let hier = place_blocks(pi0, &blocks, &free, config)?;
            // The hierarchical layout is one particular feasible final
            // permutation, so it can never beat Δ*.
            debug_assert!(hier.distance >= lower || !placement.exact);
            Ok(OptBounds {
                lower,
                upper: hier.distance.max(lower),
                lower_perm: placement.exact.then_some(placement.perm),
                upper_perm: hier.perm,
                exact_lower: placement.exact,
            })
        }
    }
}

fn placement_lower_bound_for(state: &mla_graph::GraphState, pi0: &Permutation) -> u64 {
    let (blocks, free) = state_blocks(state, pi0);
    placement_lower_bound(pi0, &blocks, &free)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LopStrategy;
    use mla_graph::RevealEvent;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn ev(a: usize, b: usize) -> RevealEvent {
        RevealEvent::new(Node::new(a), Node::new(b))
    }

    #[test]
    fn lines_bounds_are_tight() {
        let instance = Instance::new(Topology::Lines, 5, vec![ev(0, 2), ev(2, 4)]).unwrap();
        let pi0 = Permutation::identity(5);
        let bounds = offline_optimum(&instance, &pi0, &LopConfig::default()).unwrap();
        assert!(bounds.is_tight());
        assert!(bounds.exact_lower);
        let state = instance.final_state();
        assert!(state.is_minla(&bounds.upper_perm));
        assert_eq!(bounds.upper, pi0.kendall_distance(&bounds.upper_perm));
    }

    #[test]
    fn clique_upper_perm_is_feasible_at_every_step() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10 {
            let n = 10;
            // Random merge order.
            let mut events = Vec::new();
            let mut state = mla_graph::GraphState::new(Topology::Cliques, n);
            while state.component_count() > 1 {
                let components = state.components();
                let i = rng.gen_range(0..components.len());
                let mut j = rng.gen_range(0..components.len());
                while j == i {
                    j = rng.gen_range(0..components.len());
                }
                let e = RevealEvent::new(components[i][0], components[j][0]);
                state.apply(e).unwrap();
                events.push(e);
            }
            let instance = Instance::new(Topology::Cliques, n, events).unwrap();
            let pi0 = Permutation::random(n, &mut rng);
            let bounds = offline_optimum(&instance, &pi0, &LopConfig::default()).unwrap();
            assert!(bounds.lower <= bounds.upper);
            // Replay: upper_perm must be a MinLA of every intermediate G_i.
            let mut replay = mla_graph::GraphState::new(Topology::Cliques, n);
            assert!(replay.is_minla(&bounds.upper_perm));
            for &e in instance.events() {
                replay.apply(e).unwrap();
                assert!(
                    replay.is_minla(&bounds.upper_perm),
                    "hierarchical layout infeasible mid-sequence"
                );
            }
        }
    }

    #[test]
    fn empty_instance_has_zero_opt() {
        let instance = Instance::new(Topology::Cliques, 4, vec![]).unwrap();
        let pi0 = Permutation::from_indices(&[3, 1, 2, 0]).unwrap();
        let bounds = offline_optimum(&instance, &pi0, &LopConfig::default()).unwrap();
        assert_eq!(bounds.lower, 0);
        assert_eq!(bounds.upper, 0);
        assert_eq!(bounds.upper_perm, pi0);
    }

    #[test]
    fn heuristic_strategy_gives_valid_sandwich() {
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 12;
        let mut events = Vec::new();
        let mut state = mla_graph::GraphState::new(Topology::Cliques, n);
        for _ in 0..6 {
            let components = state.components();
            let i = rng.gen_range(0..components.len());
            let mut j = rng.gen_range(0..components.len());
            while j == i {
                j = rng.gen_range(0..components.len());
            }
            let e = RevealEvent::new(components[i][0], components[j][0]);
            state.apply(e).unwrap();
            events.push(e);
        }
        let instance = Instance::new(Topology::Cliques, n, events).unwrap();
        let pi0 = Permutation::random(n, &mut rng);
        let heuristic_config = LopConfig {
            strategy: LopStrategy::Heuristic,
            ..LopConfig::default()
        };
        let exact_config = LopConfig::default();
        let heuristic = offline_optimum(&instance, &pi0, &heuristic_config).unwrap();
        let exact = offline_optimum(&instance, &pi0, &exact_config).unwrap();
        assert!(heuristic.lower <= exact.lower);
        assert!(heuristic.upper >= exact.lower);
        assert!(exact.exact_lower);
        assert!(!heuristic.exact_lower);
    }

    #[test]
    fn size_mismatch_error() {
        let instance = Instance::new(Topology::Lines, 3, vec![]).unwrap();
        let pi0 = Permutation::identity(4);
        assert!(matches!(
            offline_optimum(&instance, &pi0, &LopConfig::default()),
            Err(OfflineError::SizeMismatch {
                expected: 3,
                actual: 4
            })
        ));
    }
}
