//! Error types for the offline solvers.

use std::error::Error;
use std::fmt;

/// Error returned by the offline optimum solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OfflineError {
    /// An exact solver was requested but the instance has too many blocks.
    TooManyBlocks {
        /// Number of blocks in the instance.
        blocks: usize,
        /// The configured exact limit.
        max: usize,
    },
    /// The exact general-MinLA solver was called with too many nodes.
    TooLarge {
        /// Number of nodes.
        n: usize,
        /// The solver's hard limit.
        max: usize,
    },
    /// The reference permutation does not cover the instance's node set.
    SizeMismatch {
        /// Nodes in the instance.
        expected: usize,
        /// Nodes in the permutation.
        actual: usize,
    },
    /// A certifying oracle was handed a degenerate model (no nodes, a
    /// zero-length interval unit, or fewer nodes than the guest class
    /// admits).
    EmptyModel,
    /// An edge list handed to the path-reconstruction bridge is not a
    /// disjoint union of simple paths.
    NotAPathUnion {
        /// Nodes in the instance.
        n: usize,
        /// Edges in the offending list.
        edges: usize,
    },
    /// A series-parallel chain or forest is structurally invalid; the
    /// index names the first offending gadget (or chain).
    BadChain {
        /// Zero-based index of the offending gadget or chain.
        gadget: usize,
    },
}

impl fmt::Display for OfflineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OfflineError::TooManyBlocks { blocks, max } => {
                write!(
                    f,
                    "exact solver limited to {max} blocks, instance has {blocks}"
                )
            }
            OfflineError::TooLarge { n, max } => {
                write!(
                    f,
                    "exact MinLA solver limited to {max} nodes, graph has {n}"
                )
            }
            OfflineError::SizeMismatch { expected, actual } => {
                write!(
                    f,
                    "permutation covers {actual} nodes, instance has {expected}"
                )
            }
            OfflineError::EmptyModel => {
                write!(f, "oracle model is empty or degenerate")
            }
            OfflineError::NotAPathUnion { n, edges } => {
                write!(
                    f,
                    "edge list ({edges} edges over {n} nodes) is not a disjoint union of paths"
                )
            }
            OfflineError::BadChain { gadget } => {
                write!(f, "series-parallel chain invalid at gadget {gadget}")
            }
        }
    }
}

impl Error for OfflineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            OfflineError::TooManyBlocks {
                blocks: 30,
                max: 12
            }
            .to_string(),
            "exact solver limited to 12 blocks, instance has 30"
        );
        assert_eq!(
            OfflineError::TooLarge { n: 30, max: 20 }.to_string(),
            "exact MinLA solver limited to 20 nodes, graph has 30"
        );
        assert_eq!(
            OfflineError::SizeMismatch {
                expected: 8,
                actual: 9
            }
            .to_string(),
            "permutation covers 9 nodes, instance has 8"
        );
        assert_eq!(
            OfflineError::EmptyModel.to_string(),
            "oracle model is empty or degenerate"
        );
        assert_eq!(
            OfflineError::NotAPathUnion { n: 4, edges: 5 }.to_string(),
            "edge list (5 edges over 4 nodes) is not a disjoint union of paths"
        );
        assert_eq!(
            OfflineError::BadChain { gadget: 2 }.to_string(),
            "series-parallel chain invalid at gadget 2"
        );
    }

    #[test]
    fn implements_error_and_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<OfflineError>();
    }
}
