//! # `mla-offline`
//!
//! Offline optimum solvers for the online learning MinLA workspace.
//!
//! The paper's competitive analysis compares online algorithms against the
//! offline optimum `Opt` and its lower bound `Δ* = min { d(π0, π) : π
//! feasible for G_k }` (Observation 7). Computing `Δ*` is a linear ordering
//! problem over component blocks — NP-hard in general (*grouping by
//! swapping*) — so this crate provides a ladder of solvers:
//!
//! * [`closest_feasible`] / [`place_blocks`] — the central primitive: a
//!   feasible permutation closest to `π0`, exact (subset DP over blocks ×
//!   free prefix) or heuristic (Borda + local search + interleave DP);
//! * [`offline_optimum`] — `Opt` bounds for a full instance: exact for
//!   lines, a `[Δ*, hierarchical]` sandwich for cliques;
//! * [`solve_exact_dp`] / [`solve_branch_bound`] / [`solve_local_search`] /
//!   [`brute_force`] — pure LOP solvers over a [`BlockWeights`] matrix;
//! * [`minla_exact`] — exact general MinLA (`O(2ⁿ·n)`, `n ≤ 20`), used to
//!   validate the model's structural facts;
//! * [`minla_anneal`] — simulated annealing for arbitrary guest graphs
//!   (extension beyond the paper);
//! * the [`oracle`] subsystem — **certifying polynomial-time oracles**
//!   for the tractable guest classes: linear-time proper-interval MinLA
//!   ([`interval_minla`]), polynomial series-parallel chain MinLA
//!   ([`series_parallel_minla`]) and the exact MaxLA duals
//!   ([`maxla_cliques`], [`maxla_path`], [`maxla_cycle`]), each
//!   returning an [`OracleResult`] whose [`Certificate`] the
//!   independent [`verify_certificate`] checker re-validates in
//!   `O(n log n + m)`.
//!
//! # Examples
//!
//! ```
//! use mla_graph::{Instance, RevealEvent, Topology};
//! use mla_offline::{offline_optimum, LopConfig};
//! use mla_permutation::{Node, Permutation};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two cliques {0,2} and {1,3} must become contiguous.
//! let instance = Instance::new(
//!     Topology::Cliques,
//!     4,
//!     vec![
//!         RevealEvent::new(Node::new(0), Node::new(2)),
//!         RevealEvent::new(Node::new(1), Node::new(3)),
//!     ],
//! )?;
//! let pi0 = Permutation::identity(4);
//! let bounds = offline_optimum(&instance, &pi0, &LopConfig::default())?;
//! assert_eq!(bounds.lower, 1); // swap 1 and 2 once: [0,2,1,3]
//! assert!(bounds.is_tight());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod anneal;
mod blocks;
mod closest;
mod config;
mod error;
mod exact;
mod lop;
mod opt;
pub mod oracle;
mod placement;
mod weights;

pub use anneal::{minla_anneal, AnnealConfig};
pub use blocks::{free_order_block, hierarchical_block, oriented_block, BlockDescriptor};
pub use closest::{closest_feasible, feasible_distance_lower_bound, state_blocks};
pub use config::{LopConfig, LopStrategy};
pub use error::OfflineError;
pub use exact::{arrangement_value, minla_exact, minla_exact_closest, EXACT_MINLA_MAX_NODES};
pub use lop::{
    borda_seed, brute_force, solve_branch_bound, solve_exact_dp, solve_local_search, LopSolution,
};
pub use opt::{offline_optimum, OptBounds};
pub use oracle::{
    gadget_profile, interval_minla, maxla_cliques, maxla_cycle, maxla_path,
    oracle_arrangement_value, paths_from_edges, series_parallel_minla, spread_weights,
    verify_certificate, Certificate, CertificateError, CliqueSpreadCertificate,
    ClosedFormCertificate, GadgetShape, GuestClass, IntervalCertificate, IntervalModel, Objective,
    OracleResult, ProfileTable, SpCertificate, SpChain, SpChainWitness, SpForest, SpGadget,
};
pub use placement::{
    place_blocks, place_blocks_exact, place_blocks_heuristic, placement_lower_bound, Placement,
};
pub use weights::BlockWeights;
