//! Block placement: arrange blocks and free nodes to minimize the Kendall
//! tau distance to a reference permutation.
//!
//! Given block descriptors (fixed internal orders) and free nodes
//! (unconstrained singletons), this module finds an arrangement that keeps
//! every block contiguous and minimizes the total inversions against `π0`.
//! Free nodes may appear in `π0`-relative order in some optimal solution
//! (uncrossing two free nodes never increases the cost), so the search
//! space is: an order of the blocks interleaved into the `π0`-ordered free
//! sequence.
//!
//! * [`place_blocks_exact`] — subset DP over blocks × free prefix,
//!   `O(m · 2^B · B)`; exact, for few blocks;
//! * [`place_blocks_heuristic`] — Borda seed + LOP local search on the
//!   block order, then an exact interleave DP for that fixed order;
//! * [`place_blocks`] — dispatcher honoring [`LopConfig`];
//! * [`placement_lower_bound`] — a valid lower bound on the optimal
//!   distance, minimizing every pairwise interaction independently.

use mla_permutation::{Node, Permutation};

use crate::blocks::BlockDescriptor;
use crate::config::{LopConfig, LopStrategy};
use crate::error::OfflineError;
use crate::lop::{borda_seed, solve_local_search};
use crate::weights::BlockWeights;

/// Result of a placement: the arrangement and its exact Kendall tau
/// distance to the reference permutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// The constructed arrangement (every block contiguous, internal
    /// orders as given by the descriptors).
    pub perm: Permutation,
    /// `d(π0, perm)` — intra-block plus placement cost.
    pub distance: u64,
    /// `true` if produced by an exact solver (distance is the optimum for
    /// the given internal orders).
    pub exact: bool,
}

/// Precomputed per-block data shared by both solvers.
struct PlacementTables {
    /// Sorted `π0` positions of each block.
    block_positions: Vec<Vec<u32>>,
    /// Free nodes sorted by `π0` position.
    free_sorted: Vec<Node>,
    /// `pa[j][i] = Σ_{i' < i} A[j][i']` where `A[j][i]` counts block-`j`
    /// nodes with `π0` position below free node `i`'s.
    pa: Vec<Vec<u64>>,
    weights: BlockWeights,
    intra_total: u64,
}

impl PlacementTables {
    fn new(pi0: &Permutation, blocks: &[BlockDescriptor], free: &[Node]) -> Self {
        let block_positions: Vec<Vec<u32>> = blocks
            .iter()
            .map(|b| {
                let mut positions: Vec<u32> =
                    b.nodes.iter().map(|&v| pi0.position_of(v) as u32).collect();
                positions.sort_unstable();
                positions
            })
            .collect();
        let mut free_sorted = free.to_vec();
        free_sorted.sort_by_key(|&v| pi0.position_of(v));
        let m = free_sorted.len();
        let pa = block_positions
            .iter()
            .map(|positions| {
                let mut pa = Vec::with_capacity(m + 1);
                pa.push(0u64);
                let mut below = 0usize; // pointer into sorted positions
                let mut acc = 0u64;
                for &f in &free_sorted {
                    let fpos = pi0.position_of(f) as u32;
                    while below < positions.len() && positions[below] < fpos {
                        below += 1;
                    }
                    acc += below as u64;
                    pa.push(acc);
                }
                pa
            })
            .collect();
        let weights = BlockWeights::from_sorted_positions(&block_positions);
        let intra_total = blocks.iter().map(|b| b.intra_cost).sum();
        PlacementTables {
            block_positions,
            free_sorted,
            pa,
            weights,
            intra_total,
        }
    }

    /// Cost of all (block j, free node) pairs when block `j` is placed
    /// after exactly `i` free nodes.
    fn block_free_cost(&self, j: usize, i: usize) -> u64 {
        let m = self.free_sorted.len() as u64;
        let size = self.block_positions[j].len() as u64;
        let before = self.pa[j][i];
        let after = (m - i as u64) * size - (self.pa[j][m as usize] - self.pa[j][i]);
        before + after
    }
}

/// Validates that `blocks` and `free` partition the node set of `pi0`.
fn validate_partition(pi0: &Permutation, blocks: &[BlockDescriptor], free: &[Node]) {
    let n = pi0.len();
    let mut seen = vec![false; n];
    let mut count = 0usize;
    let mut mark = |v: Node| {
        assert!(v.index() < n, "{v} out of range 0..{n}");
        assert!(!seen[v.index()], "{v} assigned twice");
        seen[v.index()] = true;
        count += 1;
    };
    for block in blocks {
        for &v in &block.nodes {
            mark(v);
        }
    }
    for &v in free {
        mark(v);
    }
    assert_eq!(count, n, "blocks and free nodes must cover all {n} nodes");
}

/// Builds the final permutation from the chosen item sequence.
/// Items: `Err(i)` = free node index `i` (into the sorted free list),
/// `Ok(j)` = block `j`.
fn build_permutation(
    tables: &PlacementTables,
    blocks: &[BlockDescriptor],
    items: &[Result<usize, usize>],
) -> Permutation {
    let mut order = Vec::new();
    for &item in items {
        match item {
            Ok(j) => order.extend(blocks[j].nodes.iter().copied()),
            Err(i) => order.push(tables.free_sorted[i]),
        }
    }
    Permutation::from_nodes(order).expect("placement covers every node exactly once")
}

/// Exact placement via DP over (free prefix, block subset).
///
/// Returns `None` if `blocks.len() > config_max` or the DP table would
/// exceed roughly half a billion entries.
///
/// # Panics
///
/// Panics if `blocks` and `free` do not partition the nodes of `pi0`.
#[must_use]
pub fn place_blocks_exact(
    pi0: &Permutation,
    blocks: &[BlockDescriptor],
    free: &[Node],
    config_max: usize,
) -> Option<Placement> {
    validate_partition(pi0, blocks, free);
    let b = blocks.len();
    if b > config_max || b >= usize::BITS as usize - 1 {
        return None;
    }
    let tables = PlacementTables::new(pi0, blocks, free);
    let m = tables.free_sorted.len();
    let states = (m + 1).checked_mul(1usize << b)?;
    if states > 1 << 29 {
        return None;
    }
    let full: usize = (1usize << b) - 1;
    let width = full + 1;
    // dp[i * width + set]
    let mut dp = vec![u64::MAX; (m + 1) * width];
    dp[0] = 0;
    for i in 0..=m {
        for set in 0..width {
            // Arrival via free node: dp[i][set] <- dp[i-1][set].
            if i > 0 {
                let prev = dp[(i - 1) * width + set];
                if prev < dp[i * width + set] {
                    dp[i * width + set] = prev;
                }
            }
            let base = dp[i * width + set];
            if base == u64::MAX {
                continue;
            }
            // Place each absent block next.
            let mut absent = full & !set;
            while absent != 0 {
                let j = absent.trailing_zeros() as usize;
                absent &= absent - 1;
                let mut cross = 0u64;
                let mut present = set;
                while present != 0 {
                    let p = present.trailing_zeros() as usize;
                    present &= present - 1;
                    cross += tables.weights.weight(p, j);
                }
                let cost = base + cross + tables.block_free_cost(j, i);
                let idx = i * width + (set | (1 << j));
                if cost < dp[idx] {
                    dp[idx] = cost;
                }
            }
        }
    }
    let best = dp[m * width + full];
    debug_assert_ne!(best, u64::MAX);

    // Reconstruct backwards.
    let mut items: Vec<Result<usize, usize>> = Vec::with_capacity(m + b);
    let mut i = m;
    let mut set = full;
    while i > 0 || set != 0 {
        let current = dp[i * width + set];
        if i > 0 && dp[(i - 1) * width + set] == current {
            items.push(Err(i - 1));
            i -= 1;
            continue;
        }
        let mut found = false;
        let mut present = set;
        while present != 0 {
            let j = present.trailing_zeros() as usize;
            present &= present - 1;
            let prev_set = set & !(1 << j);
            let prev = dp[i * width + prev_set];
            if prev == u64::MAX {
                continue;
            }
            let mut cross = 0u64;
            let mut others = prev_set;
            while others != 0 {
                let p = others.trailing_zeros() as usize;
                others &= others - 1;
                cross += tables.weights.weight(p, j);
            }
            if prev + cross + tables.block_free_cost(j, i) == current {
                items.push(Ok(j));
                set = prev_set;
                found = true;
                break;
            }
        }
        assert!(found, "placement DP reconstruction failed");
    }
    items.reverse();
    let perm = build_permutation(&tables, blocks, &items);
    Some(Placement {
        perm,
        distance: tables.intra_total + best,
        exact: true,
    })
}

/// Heuristic placement: block order from a Borda seed improved by LOP
/// local search (block-block terms only), then an exact interleave DP for
/// that fixed order. Polynomial: `O(B³ + m·B)`.
///
/// # Panics
///
/// Panics if `blocks` and `free` do not partition the nodes of `pi0`.
#[must_use]
pub fn place_blocks_heuristic(
    pi0: &Permutation,
    blocks: &[BlockDescriptor],
    free: &[Node],
) -> Placement {
    validate_partition(pi0, blocks, free);
    let tables = PlacementTables::new(pi0, blocks, free);
    let b = blocks.len();
    let m = tables.free_sorted.len();
    if b == 0 {
        let items: Vec<Result<usize, usize>> = (0..m).map(Err).collect();
        let perm = build_permutation(&tables, blocks, &items);
        return Placement {
            perm,
            distance: tables.intra_total,
            exact: true,
        };
    }
    let seed = borda_seed(&tables.weights);
    let lop = solve_local_search(&tables.weights, &seed);
    let order = lop.order;

    // Interleave DP over (free placed, blocks placed) for the fixed order.
    // prefix_w[j] = Σ_{j' < j} w[order[j']][order[j]].
    let prefix_w: Vec<u64> = (0..b)
        .map(|j| {
            (0..j)
                .map(|jp| tables.weights.weight(order[jp], order[j]))
                .sum()
        })
        .collect();
    let width = b + 1;
    let mut dp = vec![u64::MAX; (m + 1) * width];
    dp[0] = 0;
    for i in 0..=m {
        for j in 0..=b {
            let mut best = u64::MAX;
            if i > 0 {
                best = best.min(dp[(i - 1) * width + j]);
            }
            if j > 0 {
                let prev = dp[i * width + (j - 1)];
                if prev != u64::MAX {
                    best =
                        best.min(prev + prefix_w[j - 1] + tables.block_free_cost(order[j - 1], i));
                }
            }
            if i == 0 && j == 0 {
                continue;
            }
            dp[i * width + j] = best;
        }
    }
    let best = dp[m * width + b];

    // Reconstruct.
    let mut items: Vec<Result<usize, usize>> = Vec::with_capacity(m + b);
    let (mut i, mut j) = (m, b);
    while i > 0 || j > 0 {
        let current = dp[i * width + j];
        if i > 0 && dp[(i - 1) * width + j] == current {
            items.push(Err(i - 1));
            i -= 1;
        } else {
            debug_assert!(j > 0);
            items.push(Ok(order[j - 1]));
            j -= 1;
        }
    }
    items.reverse();
    let perm = build_permutation(&tables, blocks, &items);
    Placement {
        perm,
        distance: tables.intra_total + best,
        exact: false,
    }
}

/// Places blocks according to the configured strategy.
///
/// # Errors
///
/// With [`LopStrategy::Exact`], returns
/// [`OfflineError::TooManyBlocks`] when the instance exceeds
/// `config.max_exact_blocks`. [`LopStrategy::Auto`] silently falls back to
/// the heuristic; [`LopStrategy::Heuristic`] always uses it.
///
/// # Panics
///
/// Panics if `blocks` and `free` do not partition the nodes of `pi0`.
pub fn place_blocks(
    pi0: &Permutation,
    blocks: &[BlockDescriptor],
    free: &[Node],
    config: &LopConfig,
) -> Result<Placement, OfflineError> {
    match config.strategy {
        LopStrategy::Exact => place_blocks_exact(pi0, blocks, free, config.max_exact_blocks).ok_or(
            OfflineError::TooManyBlocks {
                blocks: blocks.len(),
                max: config.max_exact_blocks,
            },
        ),
        LopStrategy::Heuristic => Ok(place_blocks_heuristic(pi0, blocks, free)),
        LopStrategy::Auto => match place_blocks_exact(pi0, blocks, free, config.max_exact_blocks) {
            Some(placement) => Ok(placement),
            None => Ok(place_blocks_heuristic(pi0, blocks, free)),
        },
    }
}

/// A valid lower bound on the optimal placement distance: every pairwise
/// interaction (block–block and block–free) minimized independently, plus
/// the fixed intra-block costs. `O(B² + m·B)` after table construction.
///
/// # Panics
///
/// Panics if `blocks` and `free` do not partition the nodes of `pi0`.
#[must_use]
pub fn placement_lower_bound(pi0: &Permutation, blocks: &[BlockDescriptor], free: &[Node]) -> u64 {
    validate_partition(pi0, blocks, free);
    let tables = PlacementTables::new(pi0, blocks, free);
    let b = blocks.len();
    let m = tables.free_sorted.len();
    let mut bound = tables.intra_total;
    // Block-block pairs.
    bound += tables
        .weights
        .unordered_lower_bound(&(0..b).collect::<Vec<_>>());
    // Block-free pairs: for each (block, free node), the cheaper side.
    for j in 0..b {
        let size = tables.block_positions[j].len() as u64;
        for i in 0..m {
            let below = tables.pa[j][i + 1] - tables.pa[j][i]; // A[j][i]
            bound += below.min(size - below);
        }
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::free_order_block;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn nodes(indices: &[usize]) -> Vec<Node> {
        indices.iter().map(|&i| Node::new(i)).collect()
    }

    /// Random partition of `0..n` into blocks of at least 2 nodes plus free
    /// singletons.
    fn random_partition(
        n: usize,
        max_blocks: usize,
        rng: &mut SmallRng,
    ) -> (Vec<Vec<Node>>, Vec<Node>) {
        let mut ids: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            ids.swap(i, j);
        }
        let mut blocks = Vec::new();
        let mut cursor = 0usize;
        while blocks.len() < max_blocks && cursor + 2 <= n {
            let remaining = n - cursor;
            if remaining < 2 {
                break;
            }
            let take = rng.gen_range(2..=remaining.min(4));
            blocks.push(nodes(&ids[cursor..cursor + take]));
            cursor += take;
            if rng.gen_bool(0.3) {
                break;
            }
        }
        let free = nodes(&ids[cursor..]);
        (blocks, free)
    }

    /// Brute-force optimum over all block orders and interleavings by
    /// enumerating permutations of items (blocks as atoms + free nodes).
    fn brute_force_distance(pi0: &Permutation, blocks: &[BlockDescriptor], free: &[Node]) -> u64 {
        let mut items: Vec<Vec<Node>> = blocks.iter().map(|b| b.nodes.clone()).collect();
        items.extend(free.iter().map(|&v| vec![v]));
        let k = items.len();
        let mut indices: Vec<usize> = (0..k).collect();
        let mut best = u64::MAX;
        fn rec(
            indices: &mut Vec<usize>,
            at: usize,
            items: &[Vec<Node>],
            pi0: &Permutation,
            best: &mut u64,
        ) {
            if at == indices.len() {
                let mut order = Vec::new();
                for &i in indices.iter() {
                    order.extend(items[i].iter().copied());
                }
                let perm = Permutation::from_nodes(order).unwrap();
                *best = (*best).min(pi0.kendall_distance(&perm));
                return;
            }
            for i in at..indices.len() {
                indices.swap(at, i);
                rec(indices, at + 1, items, pi0, best);
                indices.swap(at, i);
            }
        }
        rec(&mut indices, 0, &items, pi0, &mut best);
        best
    }

    #[test]
    fn exact_placement_matches_brute_force() {
        let mut rng = SmallRng::seed_from_u64(11);
        for trial in 0..15 {
            let n = rng.gen_range(4..8);
            let pi0 = Permutation::random(n, &mut rng);
            let (block_sets, free) = random_partition(n, 2, &mut rng);
            let blocks: Vec<BlockDescriptor> = block_sets
                .iter()
                .map(|b| free_order_block(b, &pi0))
                .collect();
            let placement = place_blocks_exact(&pi0, &blocks, &free, 16).unwrap();
            // The placement's claimed distance is its real distance.
            assert_eq!(
                placement.distance,
                pi0.kendall_distance(&placement.perm),
                "trial {trial}: claimed distance must match"
            );
            // And it is optimal among all item orders (free nodes atomic too:
            // brute force covers every interleaving, including non-π0-ordered
            // free sequences).
            let brute = brute_force_distance(&pi0, &blocks, &free);
            assert_eq!(placement.distance, brute, "trial {trial}");
        }
    }

    #[test]
    fn heuristic_placement_distance_is_consistent() {
        let mut rng = SmallRng::seed_from_u64(23);
        for _ in 0..15 {
            let n = rng.gen_range(6..14);
            let pi0 = Permutation::random(n, &mut rng);
            let (block_sets, free) = random_partition(n, 3, &mut rng);
            let blocks: Vec<BlockDescriptor> = block_sets
                .iter()
                .map(|b| free_order_block(b, &pi0))
                .collect();
            let placement = place_blocks_heuristic(&pi0, &blocks, &free);
            assert_eq!(placement.distance, pi0.kendall_distance(&placement.perm));
            // Heuristic never beats the exact solver.
            let exact = place_blocks_exact(&pi0, &blocks, &free, 16).unwrap();
            assert!(placement.distance >= exact.distance);
        }
    }

    #[test]
    fn lower_bound_is_valid() {
        let mut rng = SmallRng::seed_from_u64(37);
        for _ in 0..20 {
            let n = rng.gen_range(4..10);
            let pi0 = Permutation::random(n, &mut rng);
            let (block_sets, free) = random_partition(n, 2, &mut rng);
            let blocks: Vec<BlockDescriptor> = block_sets
                .iter()
                .map(|b| free_order_block(b, &pi0))
                .collect();
            let bound = placement_lower_bound(&pi0, &blocks, &free);
            let exact = place_blocks_exact(&pi0, &blocks, &free, 16).unwrap();
            assert!(bound <= exact.distance);
        }
    }

    #[test]
    fn no_blocks_returns_pi0() {
        let pi0 = Permutation::from_indices(&[2, 0, 1]).unwrap();
        let free = nodes(&[0, 1, 2]);
        let placement = place_blocks_heuristic(&pi0, &[], &free);
        assert_eq!(placement.perm, pi0);
        assert_eq!(placement.distance, 0);
        let exact = place_blocks_exact(&pi0, &[], &free, 16).unwrap();
        assert_eq!(exact.perm, pi0);
        assert_eq!(exact.distance, 0);
    }

    #[test]
    fn single_block_spanning_everything() {
        let pi0 = Permutation::from_indices(&[3, 1, 0, 2]).unwrap();
        let block = free_order_block(&nodes(&[0, 1, 2, 3]), &pi0);
        let placement = place_blocks_exact(&pi0, &[block], &[], 16).unwrap();
        // π0-induced internal order: distance 0.
        assert_eq!(placement.distance, 0);
        assert_eq!(placement.perm, pi0);
    }

    #[test]
    fn strategy_dispatch() {
        let pi0 = Permutation::identity(6);
        let blocks = vec![
            free_order_block(&nodes(&[0, 3]), &pi0),
            free_order_block(&nodes(&[1, 4]), &pi0),
        ];
        let free = nodes(&[2, 5]);
        let mut config = LopConfig {
            strategy: LopStrategy::Exact,
            max_exact_blocks: 1,
            ..LopConfig::default()
        };
        assert!(matches!(
            place_blocks(&pi0, &blocks, &free, &config),
            Err(OfflineError::TooManyBlocks { blocks: 2, max: 1 })
        ));
        config.strategy = LopStrategy::Auto;
        let auto = place_blocks(&pi0, &blocks, &free, &config).unwrap();
        assert!(!auto.exact); // fell back to the heuristic
        config.max_exact_blocks = 12;
        let exact = place_blocks(&pi0, &blocks, &free, &config).unwrap();
        assert!(exact.exact);
        assert!(auto.distance >= exact.distance);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn partition_validation_rejects_overlap() {
        let pi0 = Permutation::identity(3);
        let blocks = vec![free_order_block(&nodes(&[0, 1]), &pi0)];
        let _ = place_blocks_heuristic(&pi0, &blocks, &nodes(&[1, 2]));
    }

    #[test]
    #[should_panic(expected = "must cover all")]
    fn partition_validation_rejects_missing() {
        let pi0 = Permutation::identity(3);
        let _ = place_blocks_heuristic(&pi0, &[], &nodes(&[0, 1]));
    }
}
