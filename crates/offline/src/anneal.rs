//! Simulated annealing for general-graph MinLA.
//!
//! The paper's restricted topologies admit exact offline reasoning, but the
//! general MinLA problem the paper builds on is NP-hard. This heuristic is
//! provided as an extension: it lets the examples and benches explore
//! arbitrary guest graphs, and it cross-checks [`minla_exact`] on small
//! instances in tests.
//!
//! [`minla_exact`]: crate::minla_exact

use mla_permutation::{Node, Permutation};
use rand::Rng;

use crate::exact::arrangement_value;

/// Annealing schedule parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealConfig {
    /// Total number of proposed moves.
    pub iterations: u64,
    /// Starting temperature (in cost units).
    pub initial_temperature: f64,
    /// Multiplicative cooling factor applied every `iterations / 100`
    /// moves.
    pub cooling: f64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            iterations: 200_000,
            initial_temperature: 10.0,
            cooling: 0.95,
        }
    }
}

/// Approximates a minimum linear arrangement by simulated annealing with
/// position-swap moves. Returns the best arrangement found and its value.
///
/// # Panics
///
/// Panics if an edge endpoint is out of `0..n`.
///
/// # Examples
///
/// ```
/// use mla_offline::{minla_anneal, AnnealConfig};
/// use mla_permutation::Node;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let edges = [(Node::new(0), Node::new(2)), (Node::new(2), Node::new(1))];
/// let mut rng = SmallRng::seed_from_u64(1);
/// let (value, _) = minla_anneal(3, &edges, &AnnealConfig::default(), &mut rng);
/// assert_eq!(value, 2); // path 0-2-1 laid out contiguously
/// ```
#[must_use]
pub fn minla_anneal<R: Rng + ?Sized>(
    n: usize,
    edges: &[(Node, Node)],
    config: &AnnealConfig,
    rng: &mut R,
) -> (u64, Permutation) {
    if n <= 1 {
        return (0, Permutation::identity(n));
    }
    // Adjacency lists for incremental move evaluation.
    let mut adjacency: Vec<Vec<Node>> = vec![Vec::new(); n];
    for &(u, v) in edges {
        assert!(
            u.index() < n && v.index() < n,
            "edge ({u}, {v}) out of range"
        );
        adjacency[u.index()].push(v);
        adjacency[v.index()].push(u);
    }

    let mut current = Permutation::random(n, rng);
    let mut current_value = arrangement_value(&current, edges) as i64;
    let mut best = current.clone();
    let mut best_value = current_value;

    let mut temperature = config.initial_temperature.max(f64::MIN_POSITIVE);
    let cooling_interval = (config.iterations / 100).max(1);

    // Stretch of all edges incident to `v`, excluding the u-v edge twice
    // when u and v are adjacent (handled by computing jointly).
    let local_cost = |perm: &Permutation, v: Node| -> i64 {
        adjacency[v.index()]
            .iter()
            .map(|&u| perm.position_of(v).abs_diff(perm.position_of(u)) as i64)
            .sum()
    };

    for iteration in 0..config.iterations {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i == j {
            continue;
        }
        let a = current.node_at(i);
        let b = current.node_at(j);
        let before = local_cost(&current, a) + local_cost(&current, b);
        // Swap positions of a and b.
        swap_nodes(&mut current, i, j);
        let after = local_cost(&current, a) + local_cost(&current, b);
        let delta = after - before;
        let accept = delta <= 0 || {
            let p = (-(delta as f64) / temperature).exp();
            rng.gen_bool(p.clamp(0.0, 1.0))
        };
        if accept {
            current_value += delta;
            if current_value < best_value {
                best_value = current_value;
                best = current.clone();
            }
        } else {
            swap_nodes(&mut current, i, j);
        }
        if iteration % cooling_interval == cooling_interval - 1 {
            temperature *= config.cooling;
        }
    }
    // mla-lint: allow(cast-hygiene): the annealing value is a non-negative inversion count <= n^2; this debug_assert re-derives it exactly
    debug_assert_eq!(best_value as u64, arrangement_value(&best, edges));
    // mla-lint: allow(cast-hygiene): the annealing value is a non-negative inversion count <= n^2, certified by the debug_assert above
    (best_value as u64, best)
}

/// Swaps the nodes at two (not necessarily adjacent) positions.
fn swap_nodes(perm: &mut Permutation, i: usize, j: usize) {
    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
    // Express as block ops: move hi node next to lo, swap, move back —
    // simpler: rebuild via adjacent swaps is wasteful; use the two-block
    // trick: reverse the two singleton blocks via move_block.
    // Simplest correct implementation: move node at hi to lo, then the
    // node now at lo+1 (previously at lo) back to hi.
    if lo == hi {
        return;
    }
    let _ = perm.move_block(hi..hi + 1, lo);
    let _ = perm.move_block(lo + 1..lo + 2, hi);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::minla_exact;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn swap_nodes_swaps_exactly_two() {
        let mut perm = Permutation::identity(5);
        swap_nodes(&mut perm, 1, 3);
        assert_eq!(perm.to_index_vec(), vec![0, 3, 2, 1, 4]);
        swap_nodes(&mut perm, 3, 1);
        assert_eq!(perm.to_index_vec(), vec![0, 1, 2, 3, 4]);
        swap_nodes(&mut perm, 0, 4);
        assert_eq!(perm.to_index_vec(), vec![4, 1, 2, 3, 0]);
    }

    #[test]
    fn anneal_matches_exact_on_small_graphs() {
        let mut rng = SmallRng::seed_from_u64(99);
        // A few structured small graphs.
        let cases: Vec<(usize, Vec<(Node, Node)>)> = vec![
            // Path of 6.
            (
                6,
                (0..5).map(|i| (Node::new(i), Node::new(i + 1))).collect(),
            ),
            // K_4 plus an isolated node.
            (5, {
                let mut e = Vec::new();
                for i in 0..4 {
                    for j in (i + 1)..4 {
                        e.push((Node::new(i), Node::new(j)));
                    }
                }
                e
            }),
            // Star with 5 leaves.
            (6, (1..6).map(|i| (Node::new(0), Node::new(i))).collect()),
        ];
        for (n, edges) in cases {
            let (exact_value, _) = minla_exact(n, &edges).unwrap();
            let config = AnnealConfig {
                iterations: 60_000,
                ..AnnealConfig::default()
            };
            let (anneal_value, perm) = minla_anneal(n, &edges, &config, &mut rng);
            assert_eq!(arrangement_value(&perm, &edges), anneal_value);
            assert_eq!(
                anneal_value, exact_value,
                "annealing should solve n={n} exactly"
            );
        }
    }

    #[test]
    fn anneal_trivial_sizes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let (v0, p0) = minla_anneal(0, &[], &AnnealConfig::default(), &mut rng);
        assert_eq!((v0, p0.len()), (0, 0));
        let (v1, p1) = minla_anneal(1, &[], &AnnealConfig::default(), &mut rng);
        assert_eq!((v1, p1.len()), (0, 1));
    }

    #[test]
    fn anneal_never_reports_wrong_value() {
        let mut rng = SmallRng::seed_from_u64(7);
        let edges: Vec<(Node, Node)> = vec![
            (Node::new(0), Node::new(5)),
            (Node::new(5), Node::new(3)),
            (Node::new(2), Node::new(7)),
            (Node::new(1), Node::new(6)),
            (Node::new(4), Node::new(0)),
        ];
        let config = AnnealConfig {
            iterations: 20_000,
            ..AnnealConfig::default()
        };
        let (value, perm) = minla_anneal(8, &edges, &config, &mut rng);
        assert_eq!(value, arrangement_value(&perm, &edges));
    }
}
