//! Linear ordering problem (LOP) solvers over a [`BlockWeights`] matrix.
//!
//! Finding the block order minimizing `Σ_{i before j} w[i][j]` is NP-hard in
//! general (it is the *grouping by swapping* problem, Garey–Johnson SR21),
//! so this module offers a ladder of solvers:
//!
//! * [`solve_exact_dp`] — Held–Karp subset DP, `O(2^B · B²)`, exact up to
//!   ~20 blocks;
//! * [`solve_branch_bound`] — depth-first branch and bound with the
//!   unordered-pair lower bound, exact with a configurable node budget;
//! * [`solve_local_search`] — best-insertion local search from a seed
//!   order, polynomial and used for large instances;
//! * [`brute_force`] — factorial enumeration for cross-checking tests.

use crate::weights::BlockWeights;

/// A block order together with its cross cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LopSolution {
    /// Block indices, left to right.
    pub order: Vec<usize>,
    /// Total cross cost `Σ_{i before j} w[i][j]`.
    pub cost: u64,
}

/// Exact Held–Karp subset DP. `O(2^B · B²)` time, `O(2^B)` space.
///
/// # Panics
///
/// Panics if `weights.block_count() > 25` (the DP table would not fit in
/// memory); use [`solve_branch_bound`] or [`solve_local_search`] instead.
#[must_use]
pub fn solve_exact_dp(weights: &BlockWeights) -> LopSolution {
    let b = weights.block_count();
    assert!(b <= 25, "subset DP limited to 25 blocks, got {b}");
    if b == 0 {
        return LopSolution {
            order: Vec::new(),
            cost: 0,
        };
    }
    let full: usize = (1usize << b) - 1;
    let mut dp = vec![u64::MAX; full + 1];
    dp[0] = 0;
    for set in 0..=full {
        let base = dp[set];
        if base == u64::MAX {
            continue;
        }
        // Try appending each absent block j after the blocks in `set`.
        let mut absent = full & !set;
        while absent != 0 {
            let j = absent.trailing_zeros() as usize;
            absent &= absent - 1;
            let mut append_cost = 0u64;
            let mut present = set;
            while present != 0 {
                let i = present.trailing_zeros() as usize;
                present &= present - 1;
                append_cost += weights.weight(i, j);
            }
            let candidate = base + append_cost;
            let next = set | (1 << j);
            if candidate < dp[next] {
                dp[next] = candidate;
            }
        }
    }
    // Reconstruct backwards: find the last block of each optimal prefix.
    let mut order = vec![0usize; b];
    let mut set = full;
    for slot in (0..b).rev() {
        let mut found = false;
        let mut present = set;
        while present != 0 {
            let j = present.trailing_zeros() as usize;
            present &= present - 1;
            let prev = set & !(1 << j);
            if dp[prev] == u64::MAX {
                continue;
            }
            let mut append_cost = 0u64;
            let mut others = prev;
            while others != 0 {
                let i = others.trailing_zeros() as usize;
                others &= others - 1;
                append_cost += weights.weight(i, j);
            }
            if dp[prev] + append_cost == dp[set] {
                order[slot] = j;
                set = prev;
                found = true;
                break;
            }
        }
        assert!(found, "DP reconstruction failed");
    }
    LopSolution {
        order,
        cost: dp[full],
    }
}

/// Exact depth-first branch and bound using
/// [`BlockWeights::unordered_lower_bound`] for pruning. Explores at most
/// `node_limit` search nodes; returns `None` if the budget is exhausted
/// before optimality is proven.
#[must_use]
pub fn solve_branch_bound(weights: &BlockWeights, node_limit: u64) -> Option<LopSolution> {
    let b = weights.block_count();
    if b == 0 {
        return Some(LopSolution {
            order: Vec::new(),
            cost: 0,
        });
    }
    // Start from the local-search solution as the incumbent.
    let mut incumbent = solve_local_search(weights, &borda_seed(weights));
    let mut nodes_visited = 0u64;

    struct Frame {
        prefix: Vec<usize>,
        remaining: Vec<usize>,
        cost: u64,
    }
    let mut stack = vec![Frame {
        prefix: Vec::new(),
        remaining: (0..b).collect(),
        cost: 0,
    }];
    while let Some(frame) = stack.pop() {
        nodes_visited += 1;
        if nodes_visited > node_limit {
            return None;
        }
        if frame.remaining.is_empty() {
            if frame.cost < incumbent.cost {
                incumbent = LopSolution {
                    order: frame.prefix,
                    cost: frame.cost,
                };
            }
            continue;
        }
        let bound = frame.cost + weights.unordered_lower_bound(&frame.remaining);
        if bound >= incumbent.cost && incumbent.cost > 0 {
            continue;
        }
        if bound >= incumbent.cost {
            continue;
        }
        // Expand: order children by optimistic appended cost so promising
        // branches are explored first (stack: push worst first).
        let mut children: Vec<(u64, usize)> = frame
            .remaining
            .iter()
            .map(|&j| {
                let append: u64 = frame.prefix.iter().map(|&i| weights.weight(i, j)).sum();
                (append, j)
            })
            .collect();
        children.sort_unstable_by_key(|&(append, _)| std::cmp::Reverse(append));
        for (append, j) in children {
            let mut prefix = frame.prefix.clone();
            prefix.push(j);
            let remaining: Vec<usize> = frame
                .remaining
                .iter()
                .copied()
                .filter(|&x| x != j)
                .collect();
            // Extra forced cost: nothing beyond append (cross with the rest
            // is bounded below inside the child's own bound).
            stack.push(Frame {
                prefix,
                remaining,
                cost: frame.cost + append,
            });
        }
    }
    Some(incumbent)
}

/// Seed order by *Borda score*: blocks sorted by the mean `π0` position of
/// their nodes, which is optimal for many benign instances and a strong
/// starting point for local search.
#[must_use]
pub fn borda_seed(weights: &BlockWeights) -> Vec<usize> {
    // Mean position is not directly recoverable from weights, but the
    // tournament score Σ_j w[j][i] (total cost of placing i last) induces
    // the same kind of ranking: blocks that "want" to be left have small
    // incoming weight sums. Normalize by size to avoid biasing toward
    // large blocks.
    let b = weights.block_count();
    let mut keyed: Vec<(f64, usize)> = (0..b)
        .map(|i| {
            let incoming: u64 = (0..b)
                .filter(|&j| j != i)
                .map(|j| weights.weight(j, i))
                .sum();
            let size = weights.size(i).max(1) as f64;
            (incoming as f64 / size, i)
        })
        .collect();
    keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    keyed.into_iter().map(|(_, i)| i).collect()
}

/// Best-insertion local search: repeatedly remove a block and reinsert it
/// at the position minimizing the order cost, until a fixpoint. `O(B³)`
/// per round, at most `B²` rounds in theory, few in practice.
#[must_use]
pub fn solve_local_search(weights: &BlockWeights, seed: &[usize]) -> LopSolution {
    let b = weights.block_count();
    assert_eq!(seed.len(), b, "seed must order all blocks");
    let mut order = seed.to_vec();
    let mut cost = weights.order_cost(&order);
    let mut improved = true;
    while improved {
        improved = false;
        for idx in 0..b {
            let block = order[idx];
            // Delta of moving `block` from idx to every other slot.
            // Walk left and right accumulating swap deltas.
            let mut best_delta = 0i64;
            let mut best_slot = idx;
            let mut running = 0i64;
            for slot in (0..idx).rev() {
                let other = order[slot];
                running +=
                    weights.weight(block, other) as i64 - weights.weight(other, block) as i64;
                if running < best_delta {
                    best_delta = running;
                    best_slot = slot;
                }
            }
            running = 0;
            for (slot, &other) in order.iter().enumerate().skip(idx + 1) {
                running +=
                    weights.weight(other, block) as i64 - weights.weight(block, other) as i64;
                if running < best_delta {
                    best_delta = running;
                    best_slot = slot;
                }
            }
            if best_slot != idx {
                let block = order.remove(idx);
                order.insert(best_slot, block);
                // mla-lint: allow(cast-hygiene): the improvement delta is bounded by the current cost; the debug_assert below re-derives the exact cost
                cost = (cost as i64 + best_delta) as u64;
                improved = true;
            }
        }
    }
    debug_assert_eq!(cost, weights.order_cost(&order));
    LopSolution { order, cost }
}

/// Factorial brute force; exact reference for tests.
///
/// # Panics
///
/// Panics if there are more than 9 blocks.
#[must_use]
pub fn brute_force(weights: &BlockWeights) -> LopSolution {
    let b = weights.block_count();
    assert!(b <= 9, "brute force limited to 9 blocks, got {b}");
    let mut order: Vec<usize> = (0..b).collect();
    let mut best = LopSolution {
        order: order.clone(),
        cost: weights.order_cost(&order),
    };
    permute(&mut order, 0, &mut |candidate| {
        let cost = weights.order_cost(candidate);
        if cost < best.cost {
            best = LopSolution {
                order: candidate.to_vec(),
                cost,
            };
        }
    });
    best
}

fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_permutation::{Node, Permutation};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_weights(blocks: usize, nodes_per_block: usize, seed: u64) -> BlockWeights {
        let n = blocks * nodes_per_block;
        let mut rng = SmallRng::seed_from_u64(seed);
        let pi0 = Permutation::random(n, &mut rng);
        let mut assignment: Vec<Vec<Node>> = vec![Vec::new(); blocks];
        for i in 0..n {
            assignment[i % blocks].push(Node::new(i));
        }
        let _ = rng.gen::<u64>();
        BlockWeights::from_blocks(&pi0, &assignment)
    }

    #[test]
    fn exact_dp_matches_brute_force() {
        for seed in 0..10 {
            let weights = random_weights(6, 3, seed);
            let dp = solve_exact_dp(&weights);
            let brute = brute_force(&weights);
            assert_eq!(dp.cost, brute.cost, "seed {seed}");
            assert_eq!(weights.order_cost(&dp.order), dp.cost);
        }
    }

    #[test]
    fn branch_bound_matches_brute_force() {
        for seed in 0..10 {
            let weights = random_weights(7, 2, seed);
            let bb = solve_branch_bound(&weights, 10_000_000).expect("budget is ample");
            let brute = brute_force(&weights);
            assert_eq!(bb.cost, brute.cost, "seed {seed}");
        }
    }

    #[test]
    fn branch_bound_budget_exhaustion_returns_none() {
        // A cyclic (Condorcet-style) tournament: the root lower bound is
        // strictly below the optimum, so pruning cannot close the search
        // immediately and the tiny budget must be exhausted.
        let positions: Vec<Vec<u32>> = vec![vec![0, 5, 7], vec![1, 3, 8], vec![2, 4, 6]];
        let weights = BlockWeights::from_sorted_positions(&positions);
        let lb = weights.unordered_lower_bound(&[0, 1, 2]);
        let optimum = brute_force(&weights).cost;
        assert!(lb < optimum, "instance must not be root-prunable");
        assert!(solve_branch_bound(&weights, 2).is_none());
    }

    #[test]
    fn local_search_never_worse_than_seed() {
        for seed in 0..10 {
            let weights = random_weights(9, 2, seed);
            let seed_order: Vec<usize> = (0..9).collect();
            let seeded_cost = weights.order_cost(&seed_order);
            let solution = solve_local_search(&weights, &seed_order);
            assert!(solution.cost <= seeded_cost);
            assert_eq!(weights.order_cost(&solution.order), solution.cost);
        }
    }

    #[test]
    fn local_search_finds_optimum_on_benign_instance() {
        // Identity reference, interval blocks: optimum is the natural order
        // with zero cost.
        let pi0 = Permutation::identity(12);
        let blocks: Vec<Vec<Node>> = (0..4)
            .map(|b| (0..3).map(|i| Node::new(b * 3 + i)).collect())
            .collect();
        let weights = BlockWeights::from_blocks(&pi0, &blocks);
        let solution = solve_local_search(&weights, &[3, 1, 2, 0]);
        assert_eq!(solution.cost, 0);
        assert_eq!(solution.order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_and_singleton_instances() {
        let pi0 = Permutation::identity(2);
        let empty = BlockWeights::from_blocks(&pi0, &[]);
        assert_eq!(solve_exact_dp(&empty).cost, 0);
        assert_eq!(brute_force(&empty).cost, 0);
        let single = BlockWeights::from_blocks(&pi0, &[vec![Node::new(0), Node::new(1)]]);
        let solution = solve_exact_dp(&single);
        assert_eq!(solution.cost, 0);
        assert_eq!(solution.order, vec![0]);
    }

    #[test]
    fn borda_seed_is_a_permutation() {
        let weights = random_weights(8, 3, 9);
        let mut seed = borda_seed(&weights);
        seed.sort_unstable();
        assert_eq!(seed, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn dp_reconstruction_cost_consistency() {
        for seed in 20..30 {
            let weights = random_weights(10, 2, seed);
            let solution = solve_exact_dp(&weights);
            assert_eq!(weights.order_cost(&solution.order), solution.cost);
            let mut check = solution.order.clone();
            check.sort_unstable();
            assert_eq!(check, (0..10).collect::<Vec<_>>());
        }
    }
}
