//! Exact general-graph MinLA via boundary-cut subset DP.
//!
//! For an arrangement built left to right, the total stretch equals the sum
//! over every proper prefix `P` of the cut `|E(P, V∖P)|`. Minimizing over
//! orders is a subset DP: `dp[S] = cut(S) + min_{v∈S} dp[S∖{v}]`, with
//! `O(2ⁿ·n)` time — exact up to `n = 20`.
//!
//! This solver exists to *validate* the structural facts the paper's model
//! relies on (each clique contiguous ⇔ MinLA; paths in path order ⇔ MinLA)
//! and to cross-check the closed-form optima `(m³−m)/6` and `m−1`.

use mla_permutation::{Node, Permutation};

use crate::error::OfflineError;

/// Hard node limit for [`minla_exact`].
pub const EXACT_MINLA_MAX_NODES: usize = 20;

/// Computes an exact minimum linear arrangement of the graph given by
/// `edges` over the nodes `0..n`.
///
/// Returns the optimal total stretch and one optimal arrangement.
///
/// # Errors
///
/// Returns [`OfflineError::TooLarge`] if `n > 20`.
///
/// # Panics
///
/// Panics if an edge endpoint is out of range.
///
/// # Examples
///
/// ```
/// use mla_offline::minla_exact;
/// use mla_permutation::Node;
///
/// // A triangle: optimum is any contiguous layout, value (3³−3)/6 = 4.
/// let edges = [
///     (Node::new(0), Node::new(1)),
///     (Node::new(1), Node::new(2)),
///     (Node::new(0), Node::new(2)),
/// ];
/// let (value, _) = minla_exact(3, &edges)?;
/// assert_eq!(value, 4);
/// # Ok::<(), mla_offline::OfflineError>(())
/// ```
pub fn minla_exact(n: usize, edges: &[(Node, Node)]) -> Result<(u64, Permutation), OfflineError> {
    if n > EXACT_MINLA_MAX_NODES {
        return Err(OfflineError::TooLarge {
            n,
            max: EXACT_MINLA_MAX_NODES,
        });
    }
    if n == 0 {
        return Ok((0, Permutation::identity(0)));
    }
    let mut adjacency = vec![0u32; n];
    for &(u, v) in edges {
        assert!(
            u.index() < n && v.index() < n,
            "edge ({u}, {v}) out of range"
        );
        assert_ne!(u, v, "self loop ({u}, {v})");
        adjacency[u.index()] |= 1 << v.index();
        adjacency[v.index()] |= 1 << u.index();
    }
    let full: usize = if n == usize::BITS as usize {
        usize::MAX
    } else {
        (1usize << n) - 1
    };

    // cut[S] = number of edges between S and its complement.
    // dp[S] = cut(S) + min_{v in S} dp[S \ {v}].
    let mut cut = vec![0u32; full + 1];
    let mut dp = vec![u64::MAX; full + 1];
    dp[0] = 0;
    for set in 1..=full {
        let v0 = set.trailing_zeros() as usize;
        let rest = set & !(1 << v0);
        let adj = adjacency[v0] as usize;
        let inside = (adj & rest).count_ones();
        let degree = adjacency[v0].count_ones();
        cut[set] = cut[rest] + degree - 2 * inside;

        let mut best = u64::MAX;
        let mut members = set;
        while members != 0 {
            let v = members.trailing_zeros() as usize;
            members &= members - 1;
            let prev = dp[set & !(1 << v)];
            if prev < best {
                best = prev;
            }
        }
        dp[set] = best + u64::from(cut[set]);
    }

    // Reconstruct an optimal order back to front.
    let mut order = vec![Node::new(0); n];
    let mut set = full;
    for slot in (0..n).rev() {
        let target = dp[set] - u64::from(cut[set]);
        let mut members = set;
        let mut chosen = None;
        while members != 0 {
            let v = members.trailing_zeros() as usize;
            members &= members - 1;
            if dp[set & !(1 << v)] == target {
                chosen = Some(v);
                break;
            }
        }
        let v = chosen.expect("DP reconstruction finds a predecessor");
        order[slot] = Node::new(v);
        set &= !(1 << v);
    }
    let perm = Permutation::from_nodes(order).expect("reconstruction covers all nodes");
    Ok((dp[full], perm))
}

/// Total stretch of `pi` on the given edges — the MinLA objective.
///
/// # Panics
///
/// Panics if an endpoint is out of range for `pi`.
#[must_use]
pub fn arrangement_value(pi: &Permutation, edges: &[(Node, Node)]) -> u64 {
    edges
        .iter()
        .map(|&(u, v)| pi.position_of(u).abs_diff(pi.position_of(v)) as u64)
        .sum()
}

/// Computes, among **all** exact minimum linear arrangements of the graph,
/// one minimizing the Kendall tau distance to `reference` — by a
/// lexicographic `(stretch, distance)` subset DP.
///
/// Both objectives decompose additively over the prefix chain: extending a
/// prefix set `S` by node `v` adds `cut(S ∪ {v})` stretch and
/// `|{u ∈ S : reference places u after v}|` inversions, so the
/// lexicographic DP has optimal substructure and stays `O(2ⁿ·n)`.
///
/// Returns `(optimal stretch, distance to reference, arrangement)`.
///
/// This powers the general-graph online algorithm in `mla-general`,
/// probing the paper's concluding open question (logarithmic
/// competitiveness beyond cliques and lines) at small scales.
///
/// # Errors
///
/// Returns [`OfflineError::TooLarge`] if `n > 20` and
/// [`OfflineError::SizeMismatch`] if `reference` covers a different node
/// count.
///
/// # Panics
///
/// Panics if an edge endpoint is out of range.
///
/// # Examples
///
/// ```
/// use mla_offline::minla_exact_closest;
/// use mla_permutation::{Node, Permutation};
///
/// // A path 0-1-2: both [0,1,2] and [2,1,0] are optimal. The closest one
/// // to the reference [2,1,0] must be picked.
/// let edges = [(Node::new(0), Node::new(1)), (Node::new(1), Node::new(2))];
/// let reference = Permutation::from_indices(&[2, 1, 0]).unwrap();
/// let (value, distance, perm) = minla_exact_closest(3, &edges, &reference)?;
/// assert_eq!(value, 2);
/// assert_eq!(distance, 0);
/// assert_eq!(perm, reference);
/// # Ok::<(), mla_offline::OfflineError>(())
/// ```
pub fn minla_exact_closest(
    n: usize,
    edges: &[(Node, Node)],
    reference: &Permutation,
) -> Result<(u64, u64, Permutation), OfflineError> {
    if n > EXACT_MINLA_MAX_NODES {
        return Err(OfflineError::TooLarge {
            n,
            max: EXACT_MINLA_MAX_NODES,
        });
    }
    if reference.len() != n {
        return Err(OfflineError::SizeMismatch {
            expected: n,
            actual: reference.len(),
        });
    }
    if n == 0 {
        return Ok((0, 0, Permutation::identity(0)));
    }
    let mut adjacency = vec![0u32; n];
    for &(u, v) in edges {
        assert!(
            u.index() < n && v.index() < n,
            "edge ({u}, {v}) out of range"
        );
        assert_ne!(u, v, "self loop ({u}, {v})");
        adjacency[u.index()] |= 1 << v.index();
        adjacency[v.index()] |= 1 << u.index();
    }
    let full: usize = (1usize << n) - 1;

    // Reference positions for the secondary objective.
    let ref_pos: Vec<u32> = (0..n)
        .map(|v| reference.position_of(Node::new(v)) as u32)
        .collect();
    // later_mask[v]: nodes the reference places strictly after v.
    let later_mask: Vec<u32> = (0..n)
        .map(|v| {
            let mut mask = 0u32;
            for u in 0..n {
                if ref_pos[u] > ref_pos[v] {
                    mask |= 1 << u;
                }
            }
            mask
        })
        .collect();

    let mut cut = vec![0u32; full + 1];
    let mut cost = vec![u64::MAX; full + 1];
    let mut dist = vec![u64::MAX; full + 1];
    cost[0] = 0;
    dist[0] = 0;
    for set in 1..=full {
        let v0 = set.trailing_zeros() as usize;
        let rest = set & !(1 << v0);
        let inside = (adjacency[v0] as usize & rest).count_ones();
        cut[set] = cut[rest] + adjacency[v0].count_ones() - 2 * inside;

        let mut best_cost = u64::MAX;
        let mut best_dist = u64::MAX;
        let mut members = set;
        while members != 0 {
            let v = members.trailing_zeros() as usize;
            members &= members - 1;
            let prev = set & !(1 << v);
            // Inversions added by placing v after the set `prev`:
            // nodes already placed that the reference puts after v.
            let added = (later_mask[v] as usize & prev).count_ones() as u64;
            let candidate_cost = cost[prev];
            let candidate_dist = dist[prev] + added;
            if candidate_cost < best_cost
                || (candidate_cost == best_cost && candidate_dist < best_dist)
            {
                best_cost = candidate_cost;
                best_dist = candidate_dist;
            }
        }
        cost[set] = best_cost + u64::from(cut[set]);
        dist[set] = best_dist;
    }

    // Reconstruct.
    let mut order = vec![Node::new(0); n];
    let mut set = full;
    for slot in (0..n).rev() {
        let target_cost = cost[set] - u64::from(cut[set]);
        let target_dist = dist[set];
        let mut members = set;
        let mut chosen = None;
        while members != 0 {
            let v = members.trailing_zeros() as usize;
            members &= members - 1;
            let prev = set & !(1 << v);
            let added = (later_mask[v] as usize & prev).count_ones() as u64;
            if cost[prev] == target_cost && dist[prev] + added == target_dist {
                chosen = Some(v);
                break;
            }
        }
        let v = chosen.expect("lexicographic DP reconstruction finds a predecessor");
        order[slot] = Node::new(v);
        set &= !(1 << v);
    }
    let perm = Permutation::from_nodes(order).expect("reconstruction covers all nodes");
    debug_assert_eq!(reference.kendall_distance(&perm), dist[full]);
    Ok((cost[full], dist[full], perm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_graph::{clique_minla_value, path_minla_value};

    fn clique_edges(nodes: &[usize]) -> Vec<(Node, Node)> {
        let mut edges = Vec::new();
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                edges.push((Node::new(nodes[i]), Node::new(nodes[j])));
            }
        }
        edges
    }

    fn path_edges(nodes: &[usize]) -> Vec<(Node, Node)> {
        nodes
            .windows(2)
            .map(|w| (Node::new(w[0]), Node::new(w[1])))
            .collect()
    }

    #[test]
    fn empty_graph() {
        let (value, perm) = minla_exact(4, &[]).unwrap();
        assert_eq!(value, 0);
        assert_eq!(perm.len(), 4);
    }

    #[test]
    fn single_edge() {
        let (value, perm) = minla_exact(4, &[(Node::new(0), Node::new(3))]).unwrap();
        assert_eq!(value, 1);
        assert_eq!(
            perm.position_of(Node::new(0))
                .abs_diff(perm.position_of(Node::new(3))),
            1
        );
    }

    #[test]
    fn clique_value_matches_closed_form() {
        for m in 2..=8 {
            let nodes: Vec<usize> = (0..m).collect();
            let (value, perm) = minla_exact(m, &clique_edges(&nodes)).unwrap();
            assert_eq!(u128::from(value), clique_minla_value(m), "clique K_{m}");
            assert_eq!(arrangement_value(&perm, &clique_edges(&nodes)), value);
        }
    }

    #[test]
    fn path_value_matches_closed_form() {
        for m in 2..=10 {
            let nodes: Vec<usize> = (0..m).collect();
            let (value, _) = minla_exact(m, &path_edges(&nodes)).unwrap();
            assert_eq!(u128::from(value), path_minla_value(m), "path P_{m}");
        }
    }

    #[test]
    fn disjoint_clique_collection_value_is_additive() {
        // K_3 on {0,1,2} plus K_2 on {3,4}.
        let mut edges = clique_edges(&[0, 1, 2]);
        edges.extend(clique_edges(&[3, 4]));
        let (value, perm) = minla_exact(5, &edges).unwrap();
        assert_eq!(
            u128::from(value),
            clique_minla_value(3) + clique_minla_value(2)
        );
        // Each clique must be contiguous in the optimal arrangement.
        let c1: Vec<Node> = [0, 1, 2].iter().map(|&i| Node::new(i)).collect();
        let c2: Vec<Node> = [3, 4].iter().map(|&i| Node::new(i)).collect();
        assert!(perm.contiguous_range(&c1).is_some());
        assert!(perm.contiguous_range(&c2).is_some());
    }

    #[test]
    fn line_collection_optimum_is_path_orders() {
        // Path 0-1-2 and path 3-4: value (3-1) + (2-1) = 3.
        let mut edges = path_edges(&[0, 1, 2]);
        edges.extend(path_edges(&[3, 4]));
        let (value, _) = minla_exact(5, &edges).unwrap();
        assert_eq!(value, 3);
    }

    #[test]
    fn star_graph_value() {
        // Star K_{1,4}: center 0. Optimal MinLA of a star with k leaves:
        // center in the middle; value = sum of distances.
        let edges: Vec<(Node, Node)> = (1..5).map(|i| (Node::new(0), Node::new(i))).collect();
        let (value, _) = minla_exact(5, &edges).unwrap();
        // Leaves at offsets -2,-1,+1,+2: total 6.
        assert_eq!(value, 6);
    }

    #[test]
    fn cycle_graph_value() {
        // C_4: known MinLA value 2(n-1) = 6 for a cycle embedded as nested
        // arcs... verify against brute force.
        let edges = vec![
            (Node::new(0), Node::new(1)),
            (Node::new(1), Node::new(2)),
            (Node::new(2), Node::new(3)),
            (Node::new(3), Node::new(0)),
        ];
        let (value, _) = minla_exact(4, &edges).unwrap();
        let mut brute = u64::MAX;
        let mut indices = vec![0usize, 1, 2, 3];
        fn rec(ix: &mut Vec<usize>, at: usize, edges: &[(Node, Node)], best: &mut u64) {
            if at == ix.len() {
                let perm = Permutation::from_indices(ix).unwrap();
                *best = (*best).min(arrangement_value(&perm, edges));
                return;
            }
            for i in at..ix.len() {
                ix.swap(at, i);
                rec(ix, at + 1, edges, best);
                ix.swap(at, i);
            }
        }
        rec(&mut indices, 0, &edges, &mut brute);
        assert_eq!(value, brute);
    }

    #[test]
    fn too_large_is_an_error() {
        assert!(matches!(
            minla_exact(21, &[]),
            Err(OfflineError::TooLarge { n: 21, max: 20 })
        ));
    }
}

#[cfg(test)]
mod closest_tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_edges(n: usize, m: usize, rng: &mut SmallRng) -> Vec<(Node, Node)> {
        let mut edges = Vec::new();
        let mut seen = std::collections::HashSet::new();
        while edges.len() < m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if seen.insert(key) {
                edges.push((Node::new(key.0), Node::new(key.1)));
            }
        }
        edges
    }

    #[test]
    fn closest_value_matches_plain_exact() {
        let mut rng = SmallRng::seed_from_u64(71);
        for _ in 0..15 {
            let n = rng.gen_range(3..9);
            let m = rng.gen_range(1..n * (n - 1) / 2);
            let edges = random_edges(n, m, &mut rng);
            let reference = Permutation::random(n, &mut rng);
            let (value, _) = minla_exact(n, &edges).unwrap();
            let (closest_value, distance, perm) =
                minla_exact_closest(n, &edges, &reference).unwrap();
            assert_eq!(value, closest_value);
            assert_eq!(arrangement_value(&perm, &edges), value);
            assert_eq!(reference.kendall_distance(&perm), distance);
        }
    }

    #[test]
    fn closest_is_truly_closest_among_optima() {
        // Brute force: enumerate all permutations, keep the optimal-value
        // ones, find the minimum distance to the reference.
        let mut rng = SmallRng::seed_from_u64(73);
        for _ in 0..10 {
            let n = rng.gen_range(3..7);
            let m = rng.gen_range(1..=n * (n - 1) / 2);
            let edges = random_edges(n, m, &mut rng);
            let reference = Permutation::random(n, &mut rng);
            let (value, distance, _) = minla_exact_closest(n, &edges, &reference).unwrap();
            let mut best_distance = u64::MAX;
            let mut indices: Vec<usize> = (0..n).collect();
            fn rec(
                ix: &mut Vec<usize>,
                at: usize,
                edges: &[(Node, Node)],
                value: u64,
                reference: &Permutation,
                best: &mut u64,
            ) {
                if at == ix.len() {
                    let perm = Permutation::from_indices(ix).unwrap();
                    if arrangement_value(&perm, edges) == value {
                        *best = (*best).min(reference.kendall_distance(&perm));
                    }
                    return;
                }
                for i in at..ix.len() {
                    ix.swap(at, i);
                    rec(ix, at + 1, edges, value, reference, best);
                    ix.swap(at, i);
                }
            }
            rec(
                &mut indices,
                0,
                &edges,
                value,
                &reference,
                &mut best_distance,
            );
            assert_eq!(distance, best_distance);
        }
    }

    #[test]
    fn closest_with_identity_reference_on_identity_optimum() {
        // Path already in reference order: zero distance.
        let edges: Vec<(Node, Node)> = (0..4).map(|i| (Node::new(i), Node::new(i + 1))).collect();
        let reference = Permutation::identity(5);
        let (value, distance, perm) = minla_exact_closest(5, &edges, &reference).unwrap();
        assert_eq!(value, 4);
        assert_eq!(distance, 0);
        assert_eq!(perm, reference);
    }

    #[test]
    fn closest_errors() {
        assert!(matches!(
            minla_exact_closest(21, &[], &Permutation::identity(21)),
            Err(OfflineError::TooLarge { .. })
        ));
        assert!(matches!(
            minla_exact_closest(4, &[], &Permutation::identity(5)),
            Err(OfflineError::SizeMismatch { .. })
        ));
    }
}
