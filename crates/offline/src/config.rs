//! Solver configuration.

/// Which solver family [`place_blocks`](crate::place_blocks) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LopStrategy {
    /// Exact when the block count allows, heuristic otherwise (default).
    #[default]
    Auto,
    /// Exact or error — never silently approximate.
    Exact,
    /// Always the polynomial heuristic.
    Heuristic,
}

/// Configuration for the offline solvers.
///
/// # Examples
///
/// ```
/// use mla_offline::{LopConfig, LopStrategy};
///
/// let config = LopConfig {
///     strategy: LopStrategy::Exact,
///     ..LopConfig::default()
/// };
/// assert_eq!(config.max_exact_blocks, 12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LopConfig {
    /// Solver selection policy.
    pub strategy: LopStrategy,
    /// Maximum number of blocks for the exact subset DP. The DP costs
    /// `O(m · 2^B · B)` time and `O(m · 2^B)` space, so keep this modest.
    pub max_exact_blocks: usize,
    /// Node budget for the pure-LOP branch and bound solver.
    pub bb_node_limit: u64,
}

impl Default for LopConfig {
    fn default() -> Self {
        LopConfig {
            strategy: LopStrategy::Auto,
            max_exact_blocks: 12,
            bb_node_limit: 5_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let config = LopConfig::default();
        assert_eq!(config.strategy, LopStrategy::Auto);
        assert_eq!(config.max_exact_blocks, 12);
        assert!(config.bb_node_limit > 0);
    }
}
