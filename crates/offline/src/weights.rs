//! Pairwise block weights for the linear ordering problem (LOP).
//!
//! Arranging component blocks side by side and minimizing the Kendall tau
//! distance to a reference permutation `π0` reduces to a linear ordering
//! problem over the blocks: placing block `i` before block `j` costs
//! `w[i][j]` — the number of node pairs `(u ∈ B_i, v ∈ B_j)` that `π0`
//! orders the other way (`v` left of `u`). The weights satisfy
//! `w[i][j] + w[j][i] = |B_i| · |B_j|`.

use mla_permutation::{cross_inversions_sorted, Node, Permutation};

/// The LOP weight matrix for a set of blocks relative to a reference
/// permutation.
///
/// # Examples
///
/// ```
/// use mla_offline::BlockWeights;
/// use mla_permutation::{Node, Permutation};
///
/// let pi0 = Permutation::identity(4);
/// let blocks = vec![
///     vec![Node::new(0), Node::new(3)],
///     vec![Node::new(1), Node::new(2)],
/// ];
/// let weights = BlockWeights::from_blocks(&pi0, &blocks);
/// // Block 0 before block 1 inverts (3,1) and (3,2).
/// assert_eq!(weights.weight(0, 1), 2);
/// assert_eq!(weights.weight(1, 0), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockWeights {
    /// `w[i][j]`: cost of placing block `i` anywhere before block `j`.
    w: Vec<Vec<u64>>,
    sizes: Vec<usize>,
}

impl BlockWeights {
    /// Builds the weight matrix from block node lists and the reference
    /// permutation.
    ///
    /// # Panics
    ///
    /// Panics if any node is out of range for `pi0`.
    #[must_use]
    pub fn from_blocks(pi0: &Permutation, blocks: &[Vec<Node>]) -> Self {
        let sorted_positions: Vec<Vec<u32>> = blocks
            .iter()
            .map(|block| {
                let mut positions: Vec<u32> =
                    block.iter().map(|&v| pi0.position_of(v) as u32).collect();
                positions.sort_unstable();
                positions
            })
            .collect();
        Self::from_sorted_positions(&sorted_positions)
    }

    /// Builds the weight matrix from pre-sorted `π0` position lists.
    #[must_use]
    pub fn from_sorted_positions(sorted_positions: &[Vec<u32>]) -> Self {
        let b = sorted_positions.len();
        let mut w = vec![vec![0u64; b]; b];
        for i in 0..b {
            for j in (i + 1)..b {
                let ij = cross_inversions_sorted(&sorted_positions[i], &sorted_positions[j]);
                let total = (sorted_positions[i].len() * sorted_positions[j].len()) as u64;
                w[i][j] = ij;
                w[j][i] = total - ij;
            }
        }
        BlockWeights {
            w,
            sizes: sorted_positions.iter().map(Vec::len).collect(),
        }
    }

    /// Number of blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.sizes.len()
    }

    /// Size of block `i`.
    #[must_use]
    pub fn size(&self, i: usize) -> usize {
        self.sizes[i]
    }

    /// Cost of placing block `i` before block `j`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn weight(&self, i: usize, j: usize) -> u64 {
        self.w[i][j]
    }

    /// Total cross cost of arranging the blocks in the given order.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..block_count()`.
    #[must_use]
    pub fn order_cost(&self, order: &[usize]) -> u64 {
        assert_eq!(
            order.len(),
            self.block_count(),
            "order must cover all blocks"
        );
        let mut cost = 0u64;
        for i in 0..order.len() {
            for j in (i + 1)..order.len() {
                cost += self.w[order[i]][order[j]];
            }
        }
        cost
    }

    /// A lower bound on the cross cost of any order of the blocks in `set`
    /// (given as indices): `Σ_{i<j} min(w[i][j], w[j][i])`.
    #[must_use]
    pub fn unordered_lower_bound(&self, set: &[usize]) -> u64 {
        let mut bound = 0u64;
        for (a, &i) in set.iter().enumerate() {
            for &j in &set[(a + 1)..] {
                bound += self.w[i][j].min(self.w[j][i]);
            }
        }
        bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(indices: &[usize]) -> Vec<Node> {
        indices.iter().map(|&i| Node::new(i)).collect()
    }

    #[test]
    fn weights_partition_pair_count() {
        let pi0 = Permutation::from_indices(&[2, 0, 3, 1, 4]).unwrap();
        let blocks = vec![nodes(&[0, 1]), nodes(&[2, 3]), nodes(&[4])];
        let w = BlockWeights::from_blocks(&pi0, &blocks);
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    assert_eq!(
                        w.weight(i, j) + w.weight(j, i),
                        (w.size(i) * w.size(j)) as u64
                    );
                }
            }
        }
    }

    #[test]
    fn weights_match_manual_count() {
        // pi0 = identity(4); blocks {0,2} and {1,3}.
        let pi0 = Permutation::identity(4);
        let blocks = vec![nodes(&[0, 2]), nodes(&[1, 3])];
        let w = BlockWeights::from_blocks(&pi0, &blocks);
        // Block 0 before block 1: pairs (0,1),(0,3),(2,1),(2,3); inverted
        // in pi0 only (2,1).
        assert_eq!(w.weight(0, 1), 1);
        assert_eq!(w.weight(1, 0), 3);
    }

    #[test]
    fn order_cost_sums_pairwise() {
        let pi0 = Permutation::identity(6);
        let blocks = vec![nodes(&[4, 5]), nodes(&[2, 3]), nodes(&[0, 1])];
        let w = BlockWeights::from_blocks(&pi0, &blocks);
        // Natural order [2,1,0] restores identity: zero cost.
        assert_eq!(w.order_cost(&[2, 1, 0]), 0);
        // Fully reversed order pays every pair.
        assert_eq!(w.order_cost(&[0, 1, 2]), 12);
    }

    #[test]
    fn unordered_lower_bound_is_sound() {
        let pi0 = Permutation::from_indices(&[3, 1, 4, 0, 2, 5]).unwrap();
        let blocks = vec![nodes(&[0, 1]), nodes(&[2, 3]), nodes(&[4, 5])];
        let w = BlockWeights::from_blocks(&pi0, &blocks);
        let bound = w.unordered_lower_bound(&[0, 1, 2]);
        // Every order must cost at least the bound.
        for order in [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ] {
            assert!(w.order_cost(&order) >= bound);
        }
    }

    #[test]
    #[should_panic(expected = "order must cover all blocks")]
    fn order_cost_validates_length() {
        let pi0 = Permutation::identity(2);
        let blocks = vec![nodes(&[0]), nodes(&[1])];
        let w = BlockWeights::from_blocks(&pi0, &blocks);
        let _ = w.order_cost(&[0]);
    }
}
