//! Block descriptors: a component's fixed internal order plus the
//! inversions that order pays against the reference permutation.
//!
//! The offline solvers reduce "find a feasible permutation closest to `π0`"
//! to placing *blocks* (the multi-node components) into the sequence of
//! free nodes. Each feasibility class fixes the internal freedom
//! differently:
//!
//! * cliques — any internal order is feasible, so the `π0`-induced order is
//!   optimal and costs zero ([`free_order_block`]);
//! * lines — path order or its reverse ([`oriented_block`]);
//! * merge-tree-consistent clique layouts — each tree vertex chooses which
//!   child goes left ([`hierarchical_block`]), giving the achievable upper
//!   bound for clique OPT.

use mla_graph::{MergeTree, TreeId};
use mla_permutation::{count_inversions, cross_inversions_sorted, Node, Permutation};

/// A block with a fixed internal node order and the Kendall cost that order
/// pays against the reference permutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockDescriptor {
    /// The block's nodes in their fixed internal order (left to right).
    pub nodes: Vec<Node>,
    /// Number of intra-block pairs ordered differently than in `π0`.
    pub intra_cost: u64,
}

impl BlockDescriptor {
    /// Block size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` for an empty block (not produced by the builders).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Builds a block whose internal order is free (cliques): uses the
/// `π0`-induced order, which costs zero intra-block inversions.
///
/// # Examples
///
/// ```
/// use mla_offline::free_order_block;
/// use mla_permutation::{Node, Permutation};
///
/// let pi0 = Permutation::from_indices(&[2, 0, 1]).unwrap();
/// let block = free_order_block(&[Node::new(0), Node::new(2)], &pi0);
/// assert_eq!(block.nodes, vec![Node::new(2), Node::new(0)]);
/// assert_eq!(block.intra_cost, 0);
/// ```
#[must_use]
pub fn free_order_block(nodes: &[Node], pi0: &Permutation) -> BlockDescriptor {
    BlockDescriptor {
        nodes: pi0.sort_by_position(nodes),
        intra_cost: 0,
    }
}

/// Builds a block whose internal order must be the given path order or its
/// reverse (lines): picks the orientation with fewer inversions against
/// `π0` (ties prefer the forward orientation).
///
/// # Examples
///
/// ```
/// use mla_offline::oriented_block;
/// use mla_permutation::{Node, Permutation};
///
/// let pi0 = Permutation::identity(3);
/// // Path revealed as 2-1-0: reversed orientation matches π0 exactly.
/// let block = oriented_block(&[Node::new(2), Node::new(1), Node::new(0)], &pi0);
/// assert_eq!(block.nodes, vec![Node::new(0), Node::new(1), Node::new(2)]);
/// assert_eq!(block.intra_cost, 0);
/// ```
#[must_use]
pub fn oriented_block(path: &[Node], pi0: &Permutation) -> BlockDescriptor {
    let positions: Vec<u32> = path.iter().map(|&v| pi0.position_of(v) as u32).collect();
    let forward = count_inversions(&positions);
    let m = path.len() as u64;
    let reverse = m * m.saturating_sub(1) / 2 - forward;
    if forward <= reverse {
        BlockDescriptor {
            nodes: path.to_vec(),
            intra_cost: forward,
        }
    } else {
        BlockDescriptor {
            nodes: path.iter().rev().copied().collect(),
            intra_cost: reverse,
        }
    }
}

/// Builds a merge-tree-consistent block for the subtree rooted at `root`:
/// every tree vertex independently chooses which child goes left, which is
/// globally optimal because a vertex's choice does not change any other
/// vertex's cross-pair counts.
///
/// The resulting internal order keeps **every intermediate component
/// contiguous**, so a permutation using it is feasible at *all* steps of
/// the request sequence — this powers the achievable clique OPT upper
/// bound (see `DESIGN.md`, note on Theorem 1).
#[must_use]
pub fn hierarchical_block(tree: &MergeTree, root: TreeId, pi0: &Permutation) -> BlockDescriptor {
    // Iterative post-order: children before parents. Tree ids of children
    // are always smaller than their parent's id, so a simple bottom-up
    // sweep over ids in the subtree works; gather subtree ids first.
    let mut subtree = Vec::new();
    let mut stack = vec![root];
    while let Some(v) = stack.pop() {
        subtree.push(v);
        if let Some((l, r)) = tree.children(v) {
            stack.push(l);
            stack.push(r);
        }
    }
    subtree.sort_unstable();

    // Per tree vertex: layout (node order) and sorted π0 positions.
    use std::collections::BTreeMap;
    let mut layouts: BTreeMap<TreeId, (Vec<Node>, Vec<u32>, u64)> = BTreeMap::new();
    for &v in &subtree {
        match tree.children(v) {
            None => {
                let node = tree.leaf_node(v);
                let pos = pi0.position_of(node) as u32;
                layouts.insert(v, (vec![node], vec![pos], 0));
            }
            Some((l, r)) => {
                let (l_nodes, l_pos, l_cost) = layouts.remove(&l).expect("post-order");
                let (r_nodes, r_pos, r_cost) = layouts.remove(&r).expect("post-order");
                let lr = cross_inversions_sorted(&l_pos, &r_pos);
                let total = (l_pos.len() * r_pos.len()) as u64;
                let rl = total - lr;
                let (nodes, cross) = if lr <= rl {
                    let mut nodes = l_nodes;
                    nodes.extend(r_nodes);
                    (nodes, lr)
                } else {
                    let mut nodes = r_nodes;
                    nodes.extend(l_nodes);
                    (nodes, rl)
                };
                // Merge the sorted position lists.
                let mut merged = Vec::with_capacity(l_pos.len() + r_pos.len());
                let (mut i, mut j) = (0, 0);
                while i < l_pos.len() && j < r_pos.len() {
                    if l_pos[i] <= r_pos[j] {
                        merged.push(l_pos[i]);
                        i += 1;
                    } else {
                        merged.push(r_pos[j]);
                        j += 1;
                    }
                }
                merged.extend_from_slice(&l_pos[i..]);
                merged.extend_from_slice(&r_pos[j..]);
                layouts.insert(v, (nodes, merged, l_cost + r_cost + cross));
            }
        }
    }
    let (nodes, _, intra_cost) = layouts.remove(&root).expect("root layout computed");
    BlockDescriptor { nodes, intra_cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_graph::{Instance, RevealEvent, Topology};
    use mla_permutation::count_inversions_usize;

    fn nodes(indices: &[usize]) -> Vec<Node> {
        indices.iter().map(|&i| Node::new(i)).collect()
    }

    #[test]
    fn free_order_block_costs_zero() {
        let pi0 = Permutation::from_indices(&[4, 3, 2, 1, 0]).unwrap();
        let block = free_order_block(&nodes(&[1, 3]), &pi0);
        assert_eq!(block.nodes, nodes(&[3, 1]));
        assert_eq!(block.intra_cost, 0);
        assert_eq!(block.len(), 2);
        assert!(!block.is_empty());
    }

    #[test]
    fn oriented_block_picks_cheaper_orientation() {
        let pi0 = Permutation::identity(4);
        // Path 3-1-2-0: forward inversions of [3,1,2,0] = 5; reverse = 1.
        let fwd_positions = [3usize, 1, 2, 0];
        assert_eq!(count_inversions_usize(&fwd_positions), 5);
        let block = oriented_block(&nodes(&[3, 1, 2, 0]), &pi0);
        assert_eq!(block.nodes, nodes(&[0, 2, 1, 3]));
        assert_eq!(block.intra_cost, 1);
    }

    #[test]
    fn oriented_block_tie_prefers_forward() {
        let pi0 = Permutation::identity(2);
        // Two-node path: forward 0 inversions ties... forward = 0, reverse = 1.
        let block = oriented_block(&nodes(&[0, 1]), &pi0);
        assert_eq!(block.nodes, nodes(&[0, 1]));
        assert_eq!(block.intra_cost, 0);
        // Actually tied case: single node.
        let single = oriented_block(&nodes(&[1]), &pi0);
        assert_eq!(single.intra_cost, 0);
    }

    #[test]
    fn hierarchical_block_keeps_subcomponents_contiguous() {
        // Merge ((0,1),(2,3)) then with (4).
        let instance = Instance::new(
            Topology::Cliques,
            5,
            vec![
                RevealEvent::new(Node::new(0), Node::new(1)),
                RevealEvent::new(Node::new(2), Node::new(3)),
                RevealEvent::new(Node::new(0), Node::new(2)),
                RevealEvent::new(Node::new(4), Node::new(0)),
            ],
        )
        .unwrap();
        let tree = instance.merge_tree();
        let root = tree.roots()[0];
        let pi0 = Permutation::from_indices(&[3, 0, 4, 1, 2]).unwrap();
        let block = hierarchical_block(&tree, root, &pi0);
        assert_eq!(block.len(), 5);
        // {0,1} and {2,3} and {0,1,2,3} must each be contiguous in the layout.
        let index_of = |v: usize| block.nodes.iter().position(|&x| x == Node::new(v)).unwrap();
        for group in [vec![0, 1], vec![2, 3], vec![0, 1, 2, 3]] {
            let mut positions: Vec<usize> = group.iter().map(|&v| index_of(v)).collect();
            positions.sort_unstable();
            assert_eq!(
                positions[positions.len() - 1] - positions[0] + 1,
                positions.len(),
                "group {group:?} not contiguous in {:?}",
                block.nodes
            );
        }
    }

    #[test]
    fn hierarchical_intra_cost_matches_layout_inversions() {
        let instance = Instance::new(
            Topology::Cliques,
            6,
            vec![
                RevealEvent::new(Node::new(0), Node::new(5)),
                RevealEvent::new(Node::new(1), Node::new(2)),
                RevealEvent::new(Node::new(0), Node::new(1)),
                RevealEvent::new(Node::new(3), Node::new(0)),
            ],
        )
        .unwrap();
        let tree = instance.merge_tree();
        let root = *tree
            .roots()
            .iter()
            .max_by_key(|&&r| tree.size_of(r))
            .unwrap();
        let pi0 = Permutation::from_indices(&[2, 5, 0, 3, 1, 4]).unwrap();
        let block = hierarchical_block(&tree, root, &pi0);
        // Recompute the intra cost directly as inversions of the layout's
        // π0 positions.
        let positions: Vec<usize> = block.nodes.iter().map(|&v| pi0.position_of(v)).collect();
        assert_eq!(block.intra_cost, count_inversions_usize(&positions));
    }

    #[test]
    fn hierarchical_never_beats_free_order_never_loses_to_fixed() {
        // Intra cost ordering: free (0) <= hierarchical <= worst fixed.
        let instance = Instance::new(
            Topology::Cliques,
            4,
            vec![
                RevealEvent::new(Node::new(0), Node::new(2)),
                RevealEvent::new(Node::new(1), Node::new(3)),
                RevealEvent::new(Node::new(0), Node::new(1)),
            ],
        )
        .unwrap();
        let tree = instance.merge_tree();
        let root = tree.roots()[0];
        let pi0 = Permutation::from_indices(&[1, 3, 0, 2]).unwrap();
        let hier = hierarchical_block(&tree, root, &pi0);
        let max_pairs = 4 * 3 / 2;
        assert!(hier.intra_cost <= max_pairs);
    }
}
