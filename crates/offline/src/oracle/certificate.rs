//! Certificates and the independent checker.
//!
//! Every oracle ships its answer with a [`Certificate`]: enough witness
//! data for [`verify_certificate`] to re-derive the instance and the
//! optimal value *from scratch* — re-sorting the sweep order,
//! re-brute-forcing every DP table entry, re-applying the rearrangement
//! inequality, re-evaluating the closed form — and confirm that the
//! claimed arrangement attains the independently recomputed optimum.
//! The checker shares no state with the solvers; it trusts only the raw
//! `(n, edges)` instance handed to it.
//!
//! Any inconsistency — a swapped arrangement position, a truncated DP
//! table, an edge list that does not match the model — surfaces as a
//! typed [`CertificateError`]. The checker never panics on corrupted
//! certificate data.
//!
//! Total cost is `O(n log n + m)`: one sort plus linear passes, with
//! `O(1)` re-brute-forcing per series-parallel gadget (layouts have at
//! most `4! = 24` candidates).

use std::fmt;

use mla_permutation::Node;

use super::interval::IntervalModel;
use super::maxla::GuestClass;
use super::series_parallel::{layout_admissible, layout_cost, ProfileTable, SpChain, SpGadget};
use super::{normalized_edges, oracle_arrangement_value, Objective, OracleResult};

/// The per-topology optimality witness attached to an [`OracleResult`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Certificate {
    /// Proper-interval MinLA: the representation plus its sweep order.
    Interval(IntervalCertificate),
    /// Series-parallel MinLA: the chain decomposition with DP tables
    /// and witness layouts.
    SeriesParallel(SpCertificate),
    /// Disjoint-clique MaxLA: the partition the rearrangement
    /// inequality is applied to.
    CliqueSpread(CliqueSpreadCertificate),
    /// Path/cycle MaxLA: the guest class and traversal order behind the
    /// closed-form bound.
    ClosedForm(ClosedFormCertificate),
}

impl Certificate {
    /// The objective this certificate witnesses optimality for.
    #[must_use]
    pub fn objective(&self) -> Objective {
        match self {
            Certificate::Interval(_) | Certificate::SeriesParallel(_) => Objective::MinLa,
            Certificate::CliqueSpread(_) | Certificate::ClosedForm(_) => Objective::MaxLa,
        }
    }

    /// Short label for tables and artifacts.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Certificate::Interval(_) => "interval-sweep",
            Certificate::SeriesParallel(_) => "sp-profile-dp",
            Certificate::CliqueSpread(_) => "clique-spread",
            Certificate::ClosedForm(_) => "closed-form",
        }
    }
}

/// Witness for [`interval_minla`](super::interval_minla): the checker
/// re-derives the intersection graph from `model` and re-sorts to
/// confirm `order` is the canonical sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalCertificate {
    /// The unit-interval representation of the instance.
    pub model: IntervalModel,
    /// The canonical sweep order the arrangement must equal.
    pub order: Vec<Node>,
}

/// Witness for one chain inside an [`SpCertificate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpChainWitness {
    /// The chain's gadget decomposition.
    pub gadgets: Vec<SpGadget>,
    /// The full DP table per gadget; the checker re-brute-forces every
    /// entry.
    pub tables: Vec<ProfileTable>,
    /// The chosen local layout per gadget; must attain its table entry
    /// under the gadget's boundary condition.
    pub layouts: Vec<Vec<usize>>,
}

/// Witness for [`series_parallel_minla`](super::series_parallel_minla).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpCertificate {
    /// One witness per chain.
    pub chains: Vec<SpChainWitness>,
    /// Nodes covered by no chain.
    pub isolated: Vec<Node>,
}

/// Witness for [`maxla_cliques`](super::maxla_cliques): the clique
/// partition; the checker re-runs the rearrangement pairing on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliqueSpreadCertificate {
    /// The clique partition of `0..n`.
    pub components: Vec<Vec<Node>>,
}

/// Witness for [`maxla_path`](super::maxla_path) /
/// [`maxla_cycle`](super::maxla_cycle): the traversal order behind the
/// closed form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosedFormCertificate {
    /// Which closed form applies.
    pub class: GuestClass,
    /// The path (or cycle) traversal order of `0..n`.
    pub order: Vec<Node>,
}

/// A typed certificate rejection. Every variant names what failed to
/// re-derive; corrupted certificates must land here, never in a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertificateError {
    /// The result's objective is not the one its certificate witnesses.
    ObjectiveMismatch {
        /// Objective implied by the certificate kind.
        expected: Objective,
        /// Objective claimed by the result.
        actual: Objective,
    },
    /// A node count disagrees with the instance's `n`.
    SizeMismatch {
        /// The instance's node count.
        expected: usize,
        /// The count found in the certificate or arrangement.
        actual: usize,
    },
    /// The edge set the certificate re-derives is not the instance's.
    ModelMismatch,
    /// A witness order or layout is not a permutation of its domain.
    NotAPermutation,
    /// The interval order breaks `(left, index)` monotonicity at this
    /// position, or the arrangement deviates from the sweep order.
    SweepOrderViolation {
        /// First violating position.
        position: usize,
    },
    /// A chain witness's table or layout vector is shorter than its
    /// gadget sequence.
    TruncatedTable {
        /// Chain index within the certificate.
        chain: usize,
        /// Gadget count.
        expected: usize,
        /// Shortest witness vector length found.
        actual: usize,
    },
    /// A DP table entry disagrees with independent re-brute-forcing.
    TableMismatch {
        /// Chain index within the certificate.
        chain: usize,
        /// Gadget index within the chain.
        gadget: usize,
    },
    /// A witness layout is inadmissible for its boundary condition or
    /// misses its table entry's cost.
    LayoutViolation {
        /// Chain index within the certificate.
        chain: usize,
        /// Gadget index within the chain.
        gadget: usize,
    },
    /// A witness chain is structurally invalid (junction or node-reuse
    /// rules).
    ChainViolation {
        /// Chain index within the certificate.
        chain: usize,
    },
    /// The certificate's components do not partition the node set.
    CoverageViolation {
        /// The instance's node count.
        n: usize,
    },
    /// The claimed value does not match the arrangement's recomputed
    /// cost or the independently recomputed optimum.
    CostMismatch {
        /// Value claimed by the result.
        claimed: u128,
        /// Independently recomputed value.
        actual: u128,
    },
    /// The claimed value misses the proven closed-form optimum.
    NotOptimal {
        /// Value claimed by the result.
        claimed: u128,
        /// The proven bound.
        bound: u128,
    },
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::ObjectiveMismatch { expected, actual } => write!(
                f,
                "certificate witnesses {} but the result claims {}",
                expected.label(),
                actual.label()
            ),
            CertificateError::SizeMismatch { expected, actual } => {
                write!(f, "expected {expected} nodes, certificate has {actual}")
            }
            CertificateError::ModelMismatch => {
                write!(f, "certificate model does not reproduce the instance edges")
            }
            CertificateError::NotAPermutation => {
                write!(f, "certificate order is not a permutation of the node set")
            }
            CertificateError::SweepOrderViolation { position } => {
                write!(f, "interval sweep order violated at position {position}")
            }
            CertificateError::TruncatedTable {
                chain,
                expected,
                actual,
            } => write!(
                f,
                "chain {chain} witness truncated: {actual} entries for {expected} gadgets"
            ),
            CertificateError::TableMismatch { chain, gadget } => {
                write!(
                    f,
                    "DP table of chain {chain} gadget {gadget} fails recomputation"
                )
            }
            CertificateError::LayoutViolation { chain, gadget } => {
                write!(
                    f,
                    "witness layout of chain {chain} gadget {gadget} is not optimal"
                )
            }
            CertificateError::ChainViolation { chain } => {
                write!(f, "chain {chain} is not a valid series composition")
            }
            CertificateError::CoverageViolation { n } => {
                write!(f, "certificate components do not partition the {n} nodes")
            }
            CertificateError::CostMismatch { claimed, actual } => {
                write!(f, "claimed value {claimed}, recomputation gives {actual}")
            }
            CertificateError::NotOptimal { claimed, bound } => {
                write!(
                    f,
                    "claimed value {claimed} misses the proven optimum {bound}"
                )
            }
        }
    }
}

impl std::error::Error for CertificateError {}

/// Independently validates an oracle answer against the raw instance:
/// re-derives the edge set and the optimal value from the certificate
/// alone and confirms the claimed arrangement attains it.
/// `O(n log n + m)`.
///
/// # Errors
///
/// Returns the [`CertificateError`] naming the first inconsistency.
pub fn verify_certificate(
    n: usize,
    edges: &[(Node, Node)],
    result: &OracleResult,
) -> Result<(), CertificateError> {
    if result.arrangement.len() != n {
        return Err(CertificateError::SizeMismatch {
            expected: n,
            actual: result.arrangement.len(),
        });
    }
    for &(a, b) in edges {
        if a.index() >= n || b.index() >= n {
            return Err(CertificateError::SizeMismatch {
                expected: n,
                actual: a.index().max(b.index()) + 1,
            });
        }
    }
    let expected_objective = result.certificate.objective();
    if result.objective != expected_objective {
        return Err(CertificateError::ObjectiveMismatch {
            expected: expected_objective,
            actual: result.objective,
        });
    }
    match &result.certificate {
        Certificate::Interval(cert) => verify_interval(n, edges, result, cert),
        Certificate::SeriesParallel(cert) => verify_series_parallel(n, edges, result, cert),
        Certificate::CliqueSpread(cert) => verify_clique_spread(n, edges, result, cert),
        Certificate::ClosedForm(cert) => verify_closed_form(n, edges, result, cert),
    }
}

/// Checks that `members`, taken over all of `partition`, hit every node
/// in `0..n` exactly once.
fn check_partition(n: usize, partition: &[Vec<Node>]) -> Result<(), CertificateError> {
    let mut seen = vec![false; n];
    let mut covered = 0usize;
    for node in partition.iter().flatten() {
        if node.index() >= n || seen[node.index()] {
            return Err(CertificateError::CoverageViolation { n });
        }
        seen[node.index()] = true;
        covered += 1;
    }
    if covered != n {
        return Err(CertificateError::CoverageViolation { n });
    }
    Ok(())
}

fn verify_interval(
    n: usize,
    edges: &[(Node, Node)],
    result: &OracleResult,
    cert: &IntervalCertificate,
) -> Result<(), CertificateError> {
    if cert.model.n() != n || cert.order.len() != n {
        return Err(CertificateError::SizeMismatch {
            expected: n,
            actual: cert.model.n().min(cert.order.len()),
        });
    }
    check_partition(n, std::slice::from_ref(&cert.order))
        .map_err(|_| CertificateError::NotAPermutation)?;
    // The witness order must be the canonical sweep: (left, index)
    // strictly increasing along it.
    for (position, pair) in cert.order.windows(2).enumerate() {
        let key = |v: Node| (cert.model.left(v), v.index());
        if key(pair[0]) >= key(pair[1]) {
            return Err(CertificateError::SweepOrderViolation { position });
        }
    }
    // The arrangement must *be* the sweep order.
    for (position, &node) in cert.order.iter().enumerate() {
        if result.arrangement.node_at(position) != node {
            return Err(CertificateError::SweepOrderViolation { position });
        }
    }
    // The model must reproduce the instance's edge set exactly.
    if normalized_edges(&cert.model.edges()) != normalized_edges(edges) {
        return Err(CertificateError::ModelMismatch);
    }
    let actual = oracle_arrangement_value(&result.arrangement, edges);
    if actual != result.value {
        return Err(CertificateError::CostMismatch {
            claimed: result.value,
            actual,
        });
    }
    Ok(())
}

fn verify_series_parallel(
    n: usize,
    edges: &[(Node, Node)],
    result: &OracleResult,
    cert: &SpCertificate,
) -> Result<(), CertificateError> {
    let mut optimum: u128 = 0;
    let mut covered: Vec<Vec<Node>> = vec![cert.isolated.clone()];
    let mut derived_edges: Vec<(Node, Node)> = Vec::new();
    for (chain_index, witness) in cert.chains.iter().enumerate() {
        let count = witness.gadgets.len();
        let shortest = witness.tables.len().min(witness.layouts.len());
        if shortest < count {
            return Err(CertificateError::TruncatedTable {
                chain: chain_index,
                expected: count,
                actual: shortest,
            });
        }
        // Structural validity: junctions shared, no node reused.
        let chain = SpChain::new(witness.gadgets.clone())
            .map_err(|_| CertificateError::ChainViolation { chain: chain_index })?;
        covered.push(chain.nodes());
        derived_edges.extend(chain.edges());
        for (gadget_index, gadget) in witness.gadgets.iter().enumerate() {
            let (left_end, right_end) = (gadget_index > 0, gadget_index + 1 < count);
            // Re-brute-force the whole DP table, not just the used slot.
            if witness.tables[gadget_index] != ProfileTable::of(gadget.shape) {
                return Err(CertificateError::TableMismatch {
                    chain: chain_index,
                    gadget: gadget_index,
                });
            }
            let layout = &witness.layouts[gadget_index];
            let size = gadget.shape.size();
            let mut hit = vec![false; size];
            if layout.len() != size || {
                layout
                    .iter()
                    .any(|&local| local >= size || std::mem::replace(&mut hit[local], true))
            } {
                return Err(CertificateError::NotAPermutation);
            }
            let entry =
                witness.tables[gadget_index].costs[ProfileTable::index(left_end, right_end)];
            if !layout_admissible(layout, size, left_end, right_end)
                || layout_cost(gadget.shape, layout) != entry
            {
                return Err(CertificateError::LayoutViolation {
                    chain: chain_index,
                    gadget: gadget_index,
                });
            }
            optimum += u128::from(entry);
        }
    }
    check_partition(n, &covered)?;
    if normalized_edges(&derived_edges) != normalized_edges(edges) {
        return Err(CertificateError::ModelMismatch);
    }
    if result.value != optimum {
        return Err(CertificateError::CostMismatch {
            claimed: result.value,
            actual: optimum,
        });
    }
    let actual = oracle_arrangement_value(&result.arrangement, edges);
    if actual != result.value {
        return Err(CertificateError::CostMismatch {
            claimed: result.value,
            actual,
        });
    }
    Ok(())
}

fn verify_clique_spread(
    n: usize,
    edges: &[(Node, Node)],
    result: &OracleResult,
    cert: &CliqueSpreadCertificate,
) -> Result<(), CertificateError> {
    check_partition(n, &cert.components)?;
    // The partition must reproduce the instance: each component a
    // clique, nothing across.
    let mut derived: Vec<(usize, usize)> = Vec::new();
    for component in &cert.components {
        let mut members: Vec<usize> = component.iter().map(|node| node.index()).collect();
        members.sort_unstable();
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                derived.push((a, b));
            }
        }
    }
    derived.sort_unstable();
    if derived != normalized_edges(edges) {
        return Err(CertificateError::ModelMismatch);
    }
    // Rearrangement-inequality optimum, recomputed from the partition:
    // all spread weights sorted ascending, paired with positions 0..n.
    let mut weights: Vec<i64> = cert
        .components
        .iter()
        .flat_map(|component| super::maxla::spread_weights(component.len()))
        .collect();
    weights.sort_unstable();
    let optimum: i128 = weights
        .iter()
        .enumerate()
        .map(|(position, &weight)| i128::from(weight) * position as i128)
        .sum();
    let optimum = u128::try_from(optimum).map_err(|_| CertificateError::ModelMismatch)?;
    if result.value != optimum {
        return Err(CertificateError::NotOptimal {
            claimed: result.value,
            bound: optimum,
        });
    }
    let actual = oracle_arrangement_value(&result.arrangement, edges);
    if actual != result.value {
        return Err(CertificateError::CostMismatch {
            claimed: result.value,
            actual,
        });
    }
    Ok(())
}

fn verify_closed_form(
    n: usize,
    edges: &[(Node, Node)],
    result: &OracleResult,
    cert: &ClosedFormCertificate,
) -> Result<(), CertificateError> {
    let min_nodes = match cert.class {
        GuestClass::Path => 2,
        GuestClass::Cycle => 3,
    };
    if n < min_nodes || cert.order.len() != n {
        return Err(CertificateError::SizeMismatch {
            expected: n,
            actual: cert.order.len(),
        });
    }
    check_partition(n, std::slice::from_ref(&cert.order))
        .map_err(|_| CertificateError::NotAPermutation)?;
    let mut derived: Vec<(Node, Node)> = cert
        .order
        .windows(2)
        .map(|pair| (pair[0], pair[1]))
        .collect();
    if cert.class == GuestClass::Cycle {
        derived.push((cert.order[n - 1], cert.order[0]));
    }
    if normalized_edges(&derived) != normalized_edges(edges) {
        return Err(CertificateError::ModelMismatch);
    }
    let bound = cert.class.closed_form(n);
    if result.value != bound {
        return Err(CertificateError::NotOptimal {
            claimed: result.value,
            bound,
        });
    }
    let actual = oracle_arrangement_value(&result.arrangement, edges);
    if actual != result.value {
        return Err(CertificateError::CostMismatch {
            claimed: result.value,
            actual,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::{
        interval_minla, maxla_cliques, maxla_path, series_parallel_minla, IntervalModel, SpForest,
    };
    use super::*;

    fn nodes(ids: &[usize]) -> Vec<Node> {
        ids.iter().copied().map(Node::new).collect()
    }

    #[test]
    fn every_solver_round_trips_through_the_checker() {
        let model = IntervalModel::new(vec![0, 1, 2, 9], 2).unwrap();
        let result = interval_minla(&model).unwrap();
        verify_certificate(4, &model.edges(), &result).unwrap();

        let forest = SpForest::from_paths(5, &[nodes(&[0, 3, 1]), nodes(&[2, 4])]).unwrap();
        let result = series_parallel_minla(&forest).unwrap();
        verify_certificate(5, &forest.edges(), &result).unwrap();

        let components = vec![nodes(&[0, 2]), nodes(&[1, 3, 4])];
        let result = maxla_cliques(5, &components).unwrap();
        let mut edges = vec![(Node::new(0), Node::new(2))];
        for &(a, b) in &[(1, 3), (1, 4), (3, 4)] {
            edges.push((Node::new(a), Node::new(b)));
        }
        verify_certificate(5, &edges, &result).unwrap();

        let order = nodes(&[2, 0, 1, 3]);
        let result = maxla_path(4, &order).unwrap();
        let path_edges: Vec<(Node, Node)> = order.windows(2).map(|w| (w[0], w[1])).collect();
        verify_certificate(4, &path_edges, &result).unwrap();
    }

    #[test]
    fn objective_mismatch_is_detected() {
        let model = IntervalModel::new(vec![0, 1], 2).unwrap();
        let mut result = interval_minla(&model).unwrap();
        result.objective = Objective::MaxLa;
        assert_eq!(
            verify_certificate(2, &model.edges(), &result),
            Err(CertificateError::ObjectiveMismatch {
                expected: Objective::MinLa,
                actual: Objective::MaxLa,
            })
        );
    }

    #[test]
    fn foreign_edges_are_rejected() {
        let model = IntervalModel::new(vec![0, 1, 9], 2).unwrap();
        let result = interval_minla(&model).unwrap();
        let forged = vec![(Node::new(0), Node::new(2))];
        assert_eq!(
            verify_certificate(3, &forged, &result),
            Err(CertificateError::ModelMismatch)
        );
    }

    #[test]
    fn display_messages_render() {
        let errors: Vec<CertificateError> = vec![
            CertificateError::ObjectiveMismatch {
                expected: Objective::MinLa,
                actual: Objective::MaxLa,
            },
            CertificateError::SizeMismatch {
                expected: 4,
                actual: 3,
            },
            CertificateError::ModelMismatch,
            CertificateError::NotAPermutation,
            CertificateError::SweepOrderViolation { position: 1 },
            CertificateError::TruncatedTable {
                chain: 0,
                expected: 2,
                actual: 1,
            },
            CertificateError::TableMismatch {
                chain: 0,
                gadget: 1,
            },
            CertificateError::LayoutViolation {
                chain: 0,
                gadget: 1,
            },
            CertificateError::ChainViolation { chain: 2 },
            CertificateError::CoverageViolation { n: 5 },
            CertificateError::CostMismatch {
                claimed: 7,
                actual: 8,
            },
            CertificateError::NotOptimal {
                claimed: 7,
                bound: 9,
            },
        ];
        for error in errors {
            assert!(!error.to_string().is_empty());
        }
    }
}
