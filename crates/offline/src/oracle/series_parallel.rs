//! Polynomial MinLA on series chains of two-terminal series-parallel
//! gadgets.
//!
//! Eikel–Scheideler–Setzer study MinLA on series-parallel graphs; the
//! general class only admits approximations, but the *series chain*
//! regime — two-terminal SP gadgets from a fixed catalog composed in
//! series (`t_i = s_{i+1}`) — is exactly solvable by a profile DP:
//!
//! 1. there is an optimal arrangement in which the gadgets appear as
//!    contiguous blocks in chain order, each shared terminal sitting on
//!    the boundary between its two blocks (validated exhaustively
//!    against brute force for **every** catalog chain with `n ≤ 8` in
//!    `tests/offline_cross_validation.rs`);
//! 2. under that structure the chain cost decomposes into independent
//!    per-gadget layout problems, distinguished only by whether each
//!    terminal is pinned to its block boundary (`End`) or free (the
//!    chain's outermost terminals) — four boundary conditions per
//!    gadget, each brute-forced over the gadget's `≤ 4! = 24` local
//!    layouts ([`gadget_profile`]).
//!
//! The certificate carries the chain decomposition, the full
//! [`ProfileTable`] per gadget (the DP table) and the chosen witness
//! layouts, so the checker can recompute every entry from scratch in
//! `O(1)` per gadget.
//!
//! Every catalog gadget is terminal-symmetric, so gadget orientation is
//! subsumed by the layout enumeration and the DP needs no reversal
//! states.

use mla_permutation::{Node, Permutation};

use super::certificate::{Certificate, SpCertificate, SpChainWitness};
use super::{Objective, OracleResult};
use crate::error::OfflineError;

/// The two-terminal series-parallel gadget catalog. Local node `0` is
/// the source terminal `s` and local node `size − 1` the sink terminal
/// `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GadgetShape {
    /// A single edge `s − t`.
    Edge,
    /// The path `s − m − t` (series of two edges).
    Path3,
    /// The triangle `K₃` (an edge in parallel with a two-edge path).
    Triangle,
    /// The four-cycle with `s, t` opposite (two two-edge paths in
    /// parallel).
    CycleFour,
    /// The diamond `K₄ − e` (the four-cycle plus the `s − t` chord).
    Diamond,
}

impl GadgetShape {
    /// All catalog shapes.
    #[must_use]
    pub fn all() -> [GadgetShape; 5] {
        [
            GadgetShape::Edge,
            GadgetShape::Path3,
            GadgetShape::Triangle,
            GadgetShape::CycleFour,
            GadgetShape::Diamond,
        ]
    }

    /// Number of nodes, terminals included.
    #[must_use]
    pub fn size(self) -> usize {
        match self {
            GadgetShape::Edge => 2,
            GadgetShape::Path3 | GadgetShape::Triangle => 3,
            GadgetShape::CycleFour | GadgetShape::Diamond => 4,
        }
    }

    /// Edges over local node indices.
    #[must_use]
    pub fn local_edges(self) -> &'static [(usize, usize)] {
        match self {
            GadgetShape::Edge => &[(0, 1)],
            GadgetShape::Path3 => &[(0, 1), (1, 2)],
            GadgetShape::Triangle => &[(0, 1), (1, 2), (0, 2)],
            GadgetShape::CycleFour => &[(0, 1), (1, 3), (0, 2), (2, 3)],
            GadgetShape::Diamond => &[(0, 1), (1, 3), (0, 2), (2, 3), (0, 3)],
        }
    }

    /// Short label, used in tables and artifacts.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            GadgetShape::Edge => "edge",
            GadgetShape::Path3 => "path3",
            GadgetShape::Triangle => "triangle",
            GadgetShape::CycleFour => "cycle4",
            GadgetShape::Diamond => "diamond",
        }
    }
}

/// One catalog gadget embedded in the instance: `nodes[local]` is the
/// global node of local index `local`, so `nodes[0]` is `s` and
/// `nodes.last()` is `t`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpGadget {
    /// The catalog shape.
    pub shape: GadgetShape,
    /// Global nodes, in local-index order.
    pub nodes: Vec<Node>,
}

/// The per-gadget DP table: the optimal layout cost under each of the
/// four boundary conditions, indexed by [`ProfileTable::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileTable {
    /// `costs[index(left_end, right_end)]` is the minimum layout cost
    /// with `s` pinned to the leftmost slot iff `left_end` and `t`
    /// pinned to the rightmost slot iff `right_end`.
    pub costs: [u64; 4],
}

impl ProfileTable {
    /// The table slot for a boundary condition.
    #[must_use]
    pub fn index(left_end: bool, right_end: bool) -> usize {
        usize::from(left_end) << 1 | usize::from(right_end)
    }

    /// The full table of a shape, all four entries brute-forced.
    #[must_use]
    pub fn of(shape: GadgetShape) -> ProfileTable {
        let mut costs = [0u64; 4];
        for left_end in [false, true] {
            for right_end in [false, true] {
                costs[Self::index(left_end, right_end)] =
                    gadget_profile(shape, left_end, right_end).0;
            }
        }
        ProfileTable { costs }
    }
}

/// Brute-forces one profile entry: the minimum layout cost of `shape`
/// with its terminals pinned per the boundary condition, together with
/// the lexicographically smallest witnessing layout (`layout[p]` is the
/// local node at relative position `p`). `≤ 4! = 24` layouts, `O(1)`.
#[must_use]
pub fn gadget_profile(shape: GadgetShape, left_end: bool, right_end: bool) -> (u64, Vec<usize>) {
    let size = shape.size();
    let mut best_cost = u64::MAX;
    let mut best_layout = Vec::new();
    let mut layout: Vec<usize> = (0..size).collect();
    // Lexicographic enumeration via the next-permutation loop, so the
    // reported witness is deterministic.
    loop {
        if layout_admissible(&layout, size, left_end, right_end) {
            let cost = layout_cost(shape, &layout);
            if cost < best_cost {
                best_cost = cost;
                best_layout = layout.clone();
            }
        }
        if !next_permutation(&mut layout) {
            break;
        }
    }
    (best_cost, best_layout)
}

/// Whether a layout satisfies a boundary condition: `s` (local 0)
/// leftmost iff `left_end`, `t` (local `size − 1`) rightmost iff
/// `right_end`.
pub(crate) fn layout_admissible(
    layout: &[usize],
    size: usize,
    left_end: bool,
    right_end: bool,
) -> bool {
    (!left_end || layout[0] == 0) && (!right_end || layout[size - 1] == size - 1)
}

/// The arrangement cost of a local layout of one gadget.
pub(crate) fn layout_cost(shape: GadgetShape, layout: &[usize]) -> u64 {
    let mut position = [0usize; 4];
    for (p, &local) in layout.iter().enumerate() {
        position[local] = p;
    }
    shape
        .local_edges()
        .iter()
        .map(|&(a, b)| position[a].abs_diff(position[b]) as u64)
        .sum()
}

/// Advances `items` to the next lexicographic permutation; `false` once
/// the sequence wraps.
fn next_permutation(items: &mut [usize]) -> bool {
    let n = items.len();
    if n < 2 {
        return false;
    }
    let Some(pivot) = (0..n - 1).rev().find(|&i| items[i] < items[i + 1]) else {
        return false;
    };
    let successor = (pivot + 1..n)
        .rev()
        .find(|&j| items[j] > items[pivot])
        .expect("pivot has a successor");
    items.swap(pivot, successor);
    items[pivot + 1..].reverse();
    true
}

/// A series chain of catalog gadgets: consecutive gadgets share exactly
/// their junction terminal (`t_i = s_{i+1}`), all other nodes are
/// distinct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpChain {
    gadgets: Vec<SpGadget>,
}

impl SpChain {
    /// Validates and wraps a gadget sequence.
    ///
    /// # Errors
    ///
    /// Returns [`OfflineError::BadChain`] naming the first offending
    /// gadget: wrong node count, a repeated node, or a junction that
    /// does not equal the previous gadget's sink.
    pub fn new(gadgets: Vec<SpGadget>) -> Result<Self, OfflineError> {
        if gadgets.is_empty() {
            return Err(OfflineError::BadChain { gadget: 0 });
        }
        let mut seen = std::collections::BTreeSet::new();
        for (index, gadget) in gadgets.iter().enumerate() {
            if gadget.nodes.len() != gadget.shape.size() {
                return Err(OfflineError::BadChain { gadget: index });
            }
            let junction =
                (index > 0).then(|| gadgets[index - 1].nodes[gadgets[index - 1].nodes.len() - 1]);
            for (local, &node) in gadget.nodes.iter().enumerate() {
                if local == 0 {
                    match junction {
                        // The source terminal must be the previous sink…
                        Some(expected) if node != expected => {
                            return Err(OfflineError::BadChain { gadget: index });
                        }
                        // …which `seen` already holds; skip the dup check.
                        Some(_) => continue,
                        None => {}
                    }
                }
                if !seen.insert(node) {
                    return Err(OfflineError::BadChain { gadget: index });
                }
            }
        }
        Ok(SpChain { gadgets })
    }

    /// A chain of [`GadgetShape::Edge`] gadgets over consecutive nodes
    /// of a path — the decomposition `Topology::Lines` engine guests
    /// use.
    ///
    /// # Errors
    ///
    /// Returns [`OfflineError::BadChain`] if the path has fewer than
    /// two nodes or repeats one.
    pub fn path(order: &[Node]) -> Result<Self, OfflineError> {
        SpChain::new(
            order
                .windows(2)
                .map(|pair| SpGadget {
                    shape: GadgetShape::Edge,
                    nodes: pair.to_vec(),
                })
                .collect(),
        )
    }

    /// The gadget sequence.
    #[must_use]
    pub fn gadgets(&self) -> &[SpGadget] {
        &self.gadgets
    }

    /// All chain nodes in block order (each junction listed once).
    #[must_use]
    pub fn nodes(&self) -> Vec<Node> {
        let mut nodes = Vec::new();
        for (index, gadget) in self.gadgets.iter().enumerate() {
            nodes.extend_from_slice(&gadget.nodes[usize::from(index > 0)..]);
        }
        nodes
    }

    /// The chain's edge list (union of the gadgets' embedded edges).
    #[must_use]
    pub fn edges(&self) -> Vec<(Node, Node)> {
        self.gadgets
            .iter()
            .flat_map(|gadget| {
                gadget
                    .shape
                    .local_edges()
                    .iter()
                    .map(|&(a, b)| (gadget.nodes[a], gadget.nodes[b]))
            })
            .collect()
    }
}

/// A disjoint union of [`SpChain`]s over `n` nodes; nodes covered by no
/// chain are isolated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpForest {
    n: usize,
    chains: Vec<SpChain>,
    isolated: Vec<Node>,
}

impl SpForest {
    /// Validates that the chains' node sets are disjoint subsets of
    /// `0..n` and records the isolated remainder.
    ///
    /// # Errors
    ///
    /// Returns [`OfflineError::BadChain`] naming the first chain that
    /// overlaps another or leaves `0..n`.
    pub fn new(n: usize, chains: Vec<SpChain>) -> Result<Self, OfflineError> {
        let mut used = vec![false; n];
        for (index, chain) in chains.iter().enumerate() {
            for node in chain.nodes() {
                if node.index() >= n || used[node.index()] {
                    return Err(OfflineError::BadChain { gadget: index });
                }
                used[node.index()] = true;
            }
        }
        let isolated = (0..n).filter(|&v| !used[v]).map(Node::new).collect();
        Ok(SpForest {
            n,
            chains,
            isolated,
        })
    }

    /// A forest of edge-gadget chains from explicit path orders;
    /// single-node paths become isolated nodes.
    ///
    /// # Errors
    ///
    /// Returns [`OfflineError::BadChain`] if a path repeats a node or
    /// two paths overlap.
    pub fn from_paths(n: usize, paths: &[Vec<Node>]) -> Result<Self, OfflineError> {
        let chains = paths
            .iter()
            .filter(|path| path.len() >= 2)
            .map(|path| SpChain::path(path))
            .collect::<Result<Vec<_>, _>>()?;
        SpForest::new(n, chains)
    }

    /// Number of nodes, isolated ones included.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The chains.
    #[must_use]
    pub fn chains(&self) -> &[SpChain] {
        &self.chains
    }

    /// Nodes covered by no chain.
    #[must_use]
    pub fn isolated(&self) -> &[Node] {
        &self.isolated
    }

    /// The forest's edge list.
    #[must_use]
    pub fn edges(&self) -> Vec<(Node, Node)> {
        self.chains.iter().flat_map(SpChain::edges).collect()
    }
}

/// Exact MinLA of a gadget-chain forest: per-chain profile DP, chains
/// laid out as contiguous blocks (disjoint components are separable for
/// MinLA), isolated nodes appended. Polynomial — `O(1)` enumeration per
/// gadget plus the final `O(n log n + m)` assembly.
///
/// # Errors
///
/// Returns [`OfflineError::EmptyModel`] for a zero-node forest.
pub fn series_parallel_minla(forest: &SpForest) -> Result<OracleResult, OfflineError> {
    if forest.n() == 0 {
        return Err(OfflineError::EmptyModel);
    }
    let mut value: u128 = 0;
    let mut order: Vec<Node> = Vec::with_capacity(forest.n());
    let mut witnesses = Vec::with_capacity(forest.chains().len());
    for chain in forest.chains() {
        let count = chain.gadgets().len();
        let mut tables = Vec::with_capacity(count);
        let mut layouts = Vec::with_capacity(count);
        for (index, gadget) in chain.gadgets().iter().enumerate() {
            let (left_end, right_end) = (index > 0, index + 1 < count);
            let (cost, layout) = gadget_profile(gadget.shape, left_end, right_end);
            value += u128::from(cost);
            // Block assembly: the junction (local 0, already placed as
            // the previous block's last node) is skipped.
            for &local in &layout[usize::from(left_end)..] {
                order.push(gadget.nodes[local]);
            }
            tables.push(ProfileTable::of(gadget.shape));
            layouts.push(layout);
        }
        witnesses.push(SpChainWitness {
            gadgets: chain.gadgets().to_vec(),
            tables,
            layouts,
        });
    }
    order.extend_from_slice(forest.isolated());
    let arrangement = Permutation::from_nodes(order).expect("forest nodes form a permutation");
    Ok(OracleResult {
        objective: Objective::MinLa,
        value,
        arrangement,
        certificate: Certificate::SeriesParallel(SpCertificate {
            chains: witnesses,
            isolated: forest.isolated().to_vec(),
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(ids: &[usize]) -> Vec<Node> {
        ids.iter().copied().map(Node::new).collect()
    }

    #[test]
    fn catalog_shapes_are_consistent() {
        for shape in GadgetShape::all() {
            assert!(shape.size() >= 2);
            for &(a, b) in shape.local_edges() {
                assert!(a < shape.size() && b < shape.size() && a != b);
            }
            // Terminals are connected through the gadget (series
            // composability): a quick union-find-free reachability walk.
            let mut reached = vec![false; shape.size()];
            reached[0] = true;
            for _ in 0..shape.size() {
                for &(a, b) in shape.local_edges() {
                    if reached[a] || reached[b] {
                        reached[a] = true;
                        reached[b] = true;
                    }
                }
            }
            assert!(reached[shape.size() - 1], "{shape:?} terminals connected");
        }
    }

    #[test]
    fn profiles_are_monotone_in_constraints() {
        for shape in GadgetShape::all() {
            let table = ProfileTable::of(shape);
            let free = table.costs[ProfileTable::index(false, false)];
            for entry in table.costs {
                assert!(entry >= free, "constraints cannot improve the optimum");
            }
        }
    }

    #[test]
    fn edge_profile_is_trivial() {
        let (cost, layout) = gadget_profile(GadgetShape::Edge, true, true);
        assert_eq!(cost, 1);
        assert_eq!(layout, vec![0, 1]);
    }

    #[test]
    fn diamond_profile_matches_hand_computation() {
        // Free/end layouts [a, s, b, t] or [b, s, a, t] cost 8; pinning
        // both terminals costs 9.
        assert_eq!(gadget_profile(GadgetShape::Diamond, false, true).0, 8);
        assert_eq!(gadget_profile(GadgetShape::Diamond, true, true).0, 9);
    }

    #[test]
    fn chain_validation_catches_broken_junctions() {
        let good = SpChain::new(vec![
            SpGadget {
                shape: GadgetShape::Triangle,
                nodes: nodes(&[0, 1, 2]),
            },
            SpGadget {
                shape: GadgetShape::Edge,
                nodes: nodes(&[2, 3]),
            },
        ]);
        assert!(good.is_ok());
        let broken = SpChain::new(vec![
            SpGadget {
                shape: GadgetShape::Triangle,
                nodes: nodes(&[0, 1, 2]),
            },
            SpGadget {
                shape: GadgetShape::Edge,
                nodes: nodes(&[1, 3]),
            },
        ]);
        assert!(matches!(broken, Err(OfflineError::BadChain { gadget: 1 })));
        let duplicate = SpChain::new(vec![
            SpGadget {
                shape: GadgetShape::Triangle,
                nodes: nodes(&[0, 1, 2]),
            },
            SpGadget {
                shape: GadgetShape::Path3,
                nodes: nodes(&[2, 1, 3]),
            },
        ]);
        assert!(matches!(
            duplicate,
            Err(OfflineError::BadChain { gadget: 1 })
        ));
    }

    #[test]
    fn two_triangle_chain_value() {
        // Bowtie (two triangles sharing node 2): MinLA is 4 + 4 = 8.
        let chain = SpChain::new(vec![
            SpGadget {
                shape: GadgetShape::Triangle,
                nodes: nodes(&[0, 1, 2]),
            },
            SpGadget {
                shape: GadgetShape::Triangle,
                nodes: nodes(&[2, 3, 4]),
            },
        ])
        .unwrap();
        let forest = SpForest::new(5, vec![chain]).unwrap();
        let result = series_parallel_minla(&forest).unwrap();
        assert_eq!(result.value, 8);
        assert_eq!(
            super::super::oracle_arrangement_value(&result.arrangement, &forest.edges()),
            8
        );
    }

    #[test]
    fn path_forest_value_is_sum_of_path_minla() {
        // Paths 0-1-2-3 and 4-5, node 6 isolated: (4−1) + (2−1) = 4.
        let forest =
            SpForest::from_paths(7, &[nodes(&[0, 1, 2, 3]), nodes(&[4, 5]), nodes(&[6])]).unwrap();
        assert_eq!(forest.isolated().len(), 1);
        let result = series_parallel_minla(&forest).unwrap();
        assert_eq!(result.value, 4);
        assert_eq!(result.arrangement.len(), 7);
    }

    #[test]
    fn overlapping_chains_are_rejected() {
        let a = SpChain::path(&nodes(&[0, 1])).unwrap();
        let b = SpChain::path(&nodes(&[1, 2])).unwrap();
        assert!(matches!(
            SpForest::new(3, vec![a, b]),
            Err(OfflineError::BadChain { gadget: 1 })
        ));
    }

    #[test]
    fn empty_forest_is_rejected() {
        let forest = SpForest::new(0, Vec::new()).unwrap();
        assert!(matches!(
            series_parallel_minla(&forest),
            Err(OfflineError::EmptyModel)
        ));
    }
}
