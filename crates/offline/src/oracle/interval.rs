//! Linear-time MinLA on proper (unit) interval graphs.
//!
//! A *proper* interval graph has an interval representation where no
//! interval contains another; equivalently it is a *unit* interval
//! (indifference) graph: nodes are unit-length intervals and two nodes
//! are adjacent iff their intervals overlap. Safro's result (*The
//! minimum linear arrangement problem on proper interval graphs*) is
//! that the **canonical order** — intervals sorted by left endpoint —
//! is an exact MinLA for this class, computable in linear time from the
//! representation.
//!
//! The oracle here takes the representation ([`IntervalModel`]) as
//! input, so the certificate can carry it as the optimality witness:
//! the checker re-derives the intersection graph from the model,
//! matches it against the instance's raw edge list, and re-checks that
//! the claimed arrangement is the sweep order. Ties (identical left
//! endpoints, e.g. a clique of identical intervals) are broken by node
//! index; tied nodes are true twins, so any tie order attains the same
//! value.

use mla_permutation::{Node, Permutation};

use super::certificate::{Certificate, IntervalCertificate};
use super::{oracle_arrangement_value, Objective, OracleResult};
use crate::error::OfflineError;

/// A unit-interval (indifference) representation: node `v` is the
/// interval `[left[v], left[v] + unit)`, and `u ~ v` iff
/// `|left[u] − left[v]| < unit`.
///
/// Endpoints are integers, so intersection tests and certificate
/// replays are exact — no float tolerance anywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalModel {
    lefts: Vec<u64>,
    unit: u64,
}

impl IntervalModel {
    /// A model from per-node left endpoints and a common (positive)
    /// interval length.
    ///
    /// # Errors
    ///
    /// Returns [`OfflineError::EmptyModel`] if `unit == 0`.
    pub fn new(lefts: Vec<u64>, unit: u64) -> Result<Self, OfflineError> {
        if unit == 0 {
            return Err(OfflineError::EmptyModel);
        }
        Ok(IntervalModel { lefts, unit })
    }

    /// A model for a disjoint union of cliques: every node of clique
    /// `c` gets the same left endpoint, and consecutive cliques sit
    /// `2 × unit` apart, so cliques are complete and mutually
    /// non-adjacent. This is the representation the `Topology::Cliques`
    /// engine guests use.
    ///
    /// # Panics
    ///
    /// Panics if a component names a node outside `0..n` or twice.
    #[must_use]
    pub fn for_cliques(n: usize, components: &[Vec<Node>]) -> IntervalModel {
        let unit = 1u64;
        let mut lefts = vec![u64::MAX; n];
        for (band, component) in components.iter().enumerate() {
            for node in component {
                assert!(
                    lefts[node.index()] == u64::MAX,
                    "node {node} listed in two components"
                );
                lefts[node.index()] = 2 * unit * band as u64;
            }
        }
        assert!(
            lefts.iter().all(|&l| l != u64::MAX),
            "components must cover all {n} nodes"
        );
        IntervalModel { lefts, unit }
    }

    /// Number of nodes (intervals).
    #[must_use]
    pub fn n(&self) -> usize {
        self.lefts.len()
    }

    /// The common interval length.
    #[must_use]
    pub fn unit(&self) -> u64 {
        self.unit
    }

    /// The left endpoint of node `v`'s interval.
    #[must_use]
    pub fn left(&self, v: Node) -> u64 {
        self.lefts[v.index()]
    }

    /// The intersection graph's edge list, `O(n log n + m)` via a
    /// sliding window over the sorted endpoints.
    #[must_use]
    pub fn edges(&self) -> Vec<(Node, Node)> {
        let order = self.canonical_nodes();
        let mut edges = Vec::new();
        let mut window_start = 0usize;
        for (i, &v) in order.iter().enumerate() {
            let lv = self.lefts[v.index()];
            while self.lefts[order[window_start].index()] + self.unit <= lv {
                window_start += 1;
            }
            for &u in &order[window_start..i] {
                edges.push((u, v));
            }
        }
        edges
    }

    /// The canonical (sweep) order: nodes sorted by `(left, index)`.
    #[must_use]
    pub fn canonical_nodes(&self) -> Vec<Node> {
        let mut order: Vec<Node> = (0..self.n()).map(Node::new).collect();
        order.sort_by_key(|v| (self.lefts[v.index()], v.index()));
        order
    }
}

/// Exact MinLA of the model's intersection graph: the canonical sweep
/// order, with its cost and an [`IntervalCertificate`] witness.
/// `O(n log n + m)`.
///
/// # Errors
///
/// Returns [`OfflineError::EmptyModel`] if the model has no nodes (an
/// arrangement needs at least one position).
pub fn interval_minla(model: &IntervalModel) -> Result<OracleResult, OfflineError> {
    if model.n() == 0 {
        return Err(OfflineError::EmptyModel);
    }
    let order = model.canonical_nodes();
    let arrangement =
        Permutation::from_nodes(order.clone()).expect("canonical order is a permutation");
    let value = oracle_arrangement_value(&arrangement, &model.edges());
    Ok(OracleResult {
        objective: Objective::MinLa,
        value,
        arrangement,
        certificate: Certificate::Interval(IntervalCertificate {
            model: model.clone(),
            order,
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_unit_is_rejected() {
        assert!(matches!(
            IntervalModel::new(vec![0, 1], 0),
            Err(OfflineError::EmptyModel)
        ));
    }

    #[test]
    fn empty_model_is_rejected_by_the_solver() {
        let model = IntervalModel::new(Vec::new(), 1).unwrap();
        assert!(matches!(
            interval_minla(&model),
            Err(OfflineError::EmptyModel)
        ));
    }

    #[test]
    fn overlapping_chain_edges_and_value() {
        // Lefts 0,1,2 with unit 2: 0~1, 1~2, not 0~2 — the path P3.
        let model = IntervalModel::new(vec![0, 1, 2], 2).unwrap();
        let edges = model.edges();
        assert_eq!(edges.len(), 2);
        let result = interval_minla(&model).unwrap();
        assert_eq!(result.value, 2);
        assert_eq!(result.objective, Objective::MinLa);
    }

    #[test]
    fn clique_model_builds_bands() {
        let components = vec![
            vec![Node::new(0), Node::new(2)],
            vec![Node::new(1)],
            vec![Node::new(3), Node::new(4), Node::new(5)],
        ];
        let model = IntervalModel::for_cliques(6, &components);
        let edges = model.edges();
        // K2 + K1 + K3 → 1 + 0 + 3 edges.
        assert_eq!(edges.len(), 4);
        let result = interval_minla(&model).unwrap();
        // MinLA: 1 (K2) + 0 + 4 (K3) with components contiguous.
        assert_eq!(result.value, 5);
    }

    #[test]
    #[should_panic(expected = "two components")]
    fn clique_model_rejects_overlapping_components() {
        let _ =
            IntervalModel::for_cliques(2, &[vec![Node::new(0), Node::new(1)], vec![Node::new(1)]]);
    }

    #[test]
    fn canonical_order_breaks_ties_by_index() {
        let model = IntervalModel::new(vec![5, 5, 0], 1).unwrap();
        let order = model.canonical_nodes();
        assert_eq!(
            order,
            vec![Node::new(2), Node::new(0), Node::new(1)],
            "sorted by left endpoint, then node index"
        );
    }
}
