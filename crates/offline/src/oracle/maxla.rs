//! Exact MaxLA — the dual objective — on the engine's guest classes.
//!
//! Alemany-Puig, Esteban and Ferrer-i-Cancho study the *maximum* linear
//! arrangement problem and solve it exactly for specific graph classes.
//! The classes the online engine's guests fall into are exactly
//! solvable here:
//!
//! * **Disjoint cliques** ([`maxla_cliques`]): within one clique of
//!   size `m` whose sorted positions are `p₀ < … < p_{m−1}`, the
//!   pairwise-distance sum telescopes to `Σᵢ (2i − m + 1)·pᵢ`. The
//!   global optimum is therefore an assignment problem solved by the
//!   rearrangement inequality: sort all per-node *spread weights*
//!   `2i − m + 1` ascending and pair them with positions `0..n`
//!   ascending. This is provably optimal, no structural conjecture
//!   involved.
//! * **A spanning path** ([`maxla_path`]): `MaxLA(Pₙ) = ⌊n²/2⌋ − 1`,
//!   attained by the zigzag walk that starts at position `⌊n/2⌋` and
//!   alternates between the lowest and highest unused positions.
//! * **A spanning cycle** ([`maxla_cycle`]): `MaxLA(Cₙ) = 2·⌊n²/4⌋`,
//!   attained by the same zigzag, closed.
//!
//! Each result's certificate lets [`verify_certificate`] recompute the
//! closed-form bound *and* the construction's cost independently — a
//! genuine optimality proof, since the two must agree.
//!
//! [`verify_certificate`]: super::verify_certificate

use mla_permutation::{Node, Permutation};

use super::certificate::{Certificate, CliqueSpreadCertificate, ClosedFormCertificate};
use super::{Objective, OracleResult};
use crate::error::OfflineError;

/// The closed-form MaxLA guest classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GuestClass {
    /// A single path spanning all nodes.
    Path,
    /// A single cycle spanning all nodes.
    Cycle,
}

impl GuestClass {
    /// Lower-case label, used in tables and artifacts.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            GuestClass::Path => "path",
            GuestClass::Cycle => "cycle",
        }
    }

    /// The proven `MaxLA` closed form for this class on `n` nodes.
    #[must_use]
    pub fn closed_form(self, n: usize) -> u128 {
        let n = n as u128;
        match self {
            GuestClass::Path => n * n / 2 - 1,
            GuestClass::Cycle => 2 * (n * n / 4),
        }
    }
}

/// The spread weights of one clique of size `m`: rank `i` (by sorted
/// position) contributes `2i − m + 1`. Their pairing with sorted
/// positions is what the rearrangement inequality maximizes.
#[must_use]
pub fn spread_weights(m: usize) -> Vec<i64> {
    (0..m).map(|i| 2 * i as i64 - m as i64 + 1).collect()
}

/// Exact MaxLA of a disjoint union of cliques, `O(n log n)` by the
/// rearrangement inequality. `components` must partition `0..n`; each
/// component is one clique (singletons allowed).
///
/// # Errors
///
/// Returns [`OfflineError::EmptyModel`] if `n == 0` or
/// [`OfflineError::SizeMismatch`] if the components do not partition
/// `0..n`.
pub fn maxla_cliques(n: usize, components: &[Vec<Node>]) -> Result<OracleResult, OfflineError> {
    if n == 0 {
        return Err(OfflineError::EmptyModel);
    }
    let covered: usize = components.iter().map(Vec::len).sum();
    let mut seen = vec![false; n];
    for node in components.iter().flatten() {
        if node.index() >= n || seen[node.index()] {
            return Err(OfflineError::SizeMismatch {
                expected: n,
                actual: covered,
            });
        }
        seen[node.index()] = true;
    }
    if covered != n {
        return Err(OfflineError::SizeMismatch {
            expected: n,
            actual: covered,
        });
    }
    // One (weight, node) pair per node; ranks within a clique follow
    // node index, which is irrelevant to the value but keeps the
    // construction deterministic.
    let mut weighted: Vec<(i64, Node)> = Vec::with_capacity(n);
    for component in components {
        let mut members = component.clone();
        members.sort_unstable_by_key(|node| node.index());
        for (weight, node) in spread_weights(members.len()).into_iter().zip(members) {
            weighted.push((weight, node));
        }
    }
    weighted.sort_unstable_by_key(|&(weight, node)| (weight, node.index()));
    let value: i128 = weighted
        .iter()
        .enumerate()
        .map(|(position, &(weight, _))| i128::from(weight) * position as i128)
        .sum();
    let arrangement = Permutation::from_nodes(weighted.into_iter().map(|(_, node)| node).collect())
        .expect("components partition the node set");
    Ok(OracleResult {
        objective: Objective::MaxLa,
        value: u128::try_from(value).expect("spread value is non-negative"),
        arrangement,
        certificate: Certificate::CliqueSpread(CliqueSpreadCertificate {
            components: components.to_vec(),
        }),
    })
}

/// The zigzag position walk: start at `⌊n/2⌋`, then alternate between
/// the lowest and highest unused positions. `walk[i]` is the position
/// of the `i`-th node along the path or cycle.
#[must_use]
pub(crate) fn zigzag_walk(n: usize) -> Vec<usize> {
    let h = n / 2;
    let mut walk = Vec::with_capacity(n);
    walk.push(h);
    let (mut lo, mut hi) = (0usize, n.saturating_sub(1));
    let mut take_lo = true;
    while walk.len() < n {
        if take_lo {
            if lo == h {
                lo += 1;
            }
            walk.push(lo);
            lo += 1;
        } else {
            if hi == h {
                hi -= 1;
            }
            walk.push(hi);
            hi -= 1;
        }
        take_lo = !take_lo;
    }
    walk
}

fn zigzag_arrangement(order: &[Node]) -> Permutation {
    let n = order.len();
    let walk = zigzag_walk(n);
    let mut at = vec![Node::new(0); n];
    for (i, &node) in order.iter().enumerate() {
        at[walk[i]] = node;
    }
    Permutation::from_nodes(at).expect("order is a permutation")
}

fn closed_form_result(
    class: GuestClass,
    n: usize,
    order: &[Node],
) -> Result<OracleResult, OfflineError> {
    let min_nodes = match class {
        GuestClass::Path => 2,
        GuestClass::Cycle => 3,
    };
    if n < min_nodes {
        return Err(OfflineError::EmptyModel);
    }
    if order.len() != n {
        return Err(OfflineError::SizeMismatch {
            expected: n,
            actual: order.len(),
        });
    }
    let mut seen = vec![false; n];
    for node in order {
        if node.index() >= n || seen[node.index()] {
            return Err(OfflineError::SizeMismatch {
                expected: n,
                actual: order.len(),
            });
        }
        seen[node.index()] = true;
    }
    Ok(OracleResult {
        objective: Objective::MaxLa,
        value: class.closed_form(n),
        arrangement: zigzag_arrangement(order),
        certificate: Certificate::ClosedForm(ClosedFormCertificate {
            class,
            order: order.to_vec(),
        }),
    })
}

/// Exact MaxLA of a spanning path given in path order:
/// `⌊n²/2⌋ − 1` with the zigzag construction as witness. `O(n)`.
///
/// # Errors
///
/// Returns [`OfflineError::EmptyModel`] for `n < 2` and
/// [`OfflineError::SizeMismatch`] if `order` is not a permutation of
/// `0..n`.
pub fn maxla_path(n: usize, order: &[Node]) -> Result<OracleResult, OfflineError> {
    closed_form_result(GuestClass::Path, n, order)
}

/// Exact MaxLA of a spanning cycle given in cycle order:
/// `2·⌊n²/4⌋` with the closed zigzag construction as witness. `O(n)`.
///
/// # Errors
///
/// Returns [`OfflineError::EmptyModel`] for `n < 3` and
/// [`OfflineError::SizeMismatch`] if `order` is not a permutation of
/// `0..n`.
pub fn maxla_cycle(n: usize, order: &[Node]) -> Result<OracleResult, OfflineError> {
    closed_form_result(GuestClass::Cycle, n, order)
}

#[cfg(test)]
mod tests {
    use super::super::oracle_arrangement_value;
    use super::*;

    fn nodes(ids: &[usize]) -> Vec<Node> {
        ids.iter().copied().map(Node::new).collect()
    }

    fn path_edges(order: &[Node]) -> Vec<(Node, Node)> {
        order.windows(2).map(|w| (w[0], w[1])).collect()
    }

    #[test]
    fn spread_weights_sum_to_zero() {
        for m in 1..10 {
            assert_eq!(spread_weights(m).iter().sum::<i64>(), 0);
        }
    }

    #[test]
    fn single_clique_maxla_is_arrangement_invariant() {
        // Every arrangement of a clique has the same value (m³ − m) / 6.
        let result = maxla_cliques(4, &[nodes(&[0, 1, 2, 3])]).unwrap();
        assert_eq!(result.value, (64 - 4) / 6);
    }

    #[test]
    fn two_cliques_interleave_beats_contiguous() {
        // Two K2s: contiguous blocks give 1 + 1 = 2; the spread optimum
        // stretches both edges: positions {0,2} and {1,3} give 2 + 2 = 4.
        let result = maxla_cliques(4, &[nodes(&[0, 1]), nodes(&[2, 3])]).unwrap();
        assert_eq!(result.value, 4);
        let edges = vec![(Node::new(0), Node::new(1)), (Node::new(2), Node::new(3))];
        assert_eq!(
            oracle_arrangement_value(&result.arrangement, &edges),
            result.value
        );
    }

    #[test]
    fn partition_violations_are_typed_errors() {
        assert!(matches!(
            maxla_cliques(3, &[nodes(&[0, 1])]),
            Err(OfflineError::SizeMismatch { .. })
        ));
        assert!(matches!(
            maxla_cliques(2, &[nodes(&[0, 0])]),
            Err(OfflineError::SizeMismatch { .. })
        ));
        assert!(matches!(
            maxla_cliques(0, &[]),
            Err(OfflineError::EmptyModel)
        ));
    }

    #[test]
    fn path_zigzag_attains_the_closed_form() {
        for n in 2..=9 {
            let order = nodes(&(0..n).collect::<Vec<_>>());
            let result = maxla_path(n, &order).unwrap();
            assert_eq!(result.value, (n * n / 2 - 1) as u128);
            assert_eq!(
                oracle_arrangement_value(&result.arrangement, &path_edges(&order)),
                result.value,
                "zigzag construction must attain the bound at n = {n}"
            );
        }
    }

    #[test]
    fn cycle_zigzag_attains_the_closed_form() {
        for n in 3..=9 {
            let order = nodes(&(0..n).collect::<Vec<_>>());
            let result = maxla_cycle(n, &order).unwrap();
            assert_eq!(result.value, (2 * (n * n / 4)) as u128);
            let mut edges = path_edges(&order);
            edges.push((order[n - 1], order[0]));
            assert_eq!(
                oracle_arrangement_value(&result.arrangement, &edges),
                result.value,
                "closed zigzag must attain the bound at n = {n}"
            );
        }
    }

    #[test]
    fn degenerate_sizes_are_rejected() {
        assert!(matches!(
            maxla_path(1, &nodes(&[0])),
            Err(OfflineError::EmptyModel)
        ));
        assert!(matches!(
            maxla_cycle(2, &nodes(&[0, 1])),
            Err(OfflineError::EmptyModel)
        ));
        assert!(matches!(
            maxla_path(3, &nodes(&[0, 1])),
            Err(OfflineError::SizeMismatch { .. })
        ));
    }
}
