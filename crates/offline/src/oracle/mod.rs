//! Certifying polynomial-time arrangement oracles.
//!
//! The `n ≤ 8` brute-force permutation oracle ([`minla_exact`] caps out
//! at `n = 20`) certifies the paper's bounds only on toy instances. This
//! module turns "online vs `Opt`" into a scalable harness by exploiting
//! graph classes where linear arrangement is solvable in polynomial
//! time:
//!
//! * [`interval_minla`] — **linear-time MinLA on proper (unit) interval
//!   graphs**: sorting the intervals by left endpoint (the canonical /
//!   indifference order) is an optimal arrangement (Safro, *The minimum
//!   linear arrangement problem on proper interval graphs*);
//! * [`series_parallel_minla`] — **polynomial MinLA on series chains of
//!   two-terminal series-parallel gadgets** (the tractable regime opened
//!   by Eikel–Scheideler–Setzer's series-parallel MinLA work): a
//!   profile DP over a brute-forced per-gadget layout catalog;
//! * [`maxla_cliques`] / [`maxla_path`] / [`maxla_cycle`] — the **MaxLA
//!   dual objective** (Alemany-Puig–Esteban–Ferrer-i-Cancho): exact by
//!   the rearrangement inequality on disjoint cliques and by closed
//!   forms with zigzag constructions on paths and cycles.
//!
//! Every solver returns an [`OracleResult`]: the optimal value, an
//! arrangement achieving it, and a [`Certificate`] — a per-topology
//! optimality witness (interval sweep order, SP decomposition with DP
//! tables, spread weights, zigzag walk) that the **independent** checker
//! [`verify_certificate`] re-validates in `O(n log n + m)` against the
//! raw edge list, without trusting any solver state. Corrupted
//! certificates surface as typed [`CertificateError`]s, never panics.
//!
//! The solvers are cross-validated against exhaustive permutation
//! enumeration for every `n ≤ 8` catalog instance in
//! `tests/offline_cross_validation.rs`, and drive the `E-RATIO`
//! experiment's certified online-vs-`Opt` ratios at `n = 10⁵`.
//!
//! [`minla_exact`]: crate::minla_exact
//!
//! # Examples
//!
//! ```
//! use mla_offline::{interval_minla, verify_certificate, IntervalModel};
//!
//! // Two unit intervals overlap, a third is far right: P2 + K1.
//! let model = IntervalModel::new(vec![0, 1, 10], 2).unwrap();
//! let edges = model.edges();
//! let result = interval_minla(&model).unwrap();
//! assert_eq!(result.value, 1);
//! verify_certificate(3, &edges, &result).unwrap();
//! ```

mod certificate;
mod interval;
mod maxla;
mod series_parallel;

pub use certificate::{
    verify_certificate, Certificate, CertificateError, CliqueSpreadCertificate,
    ClosedFormCertificate, IntervalCertificate, SpCertificate, SpChainWitness,
};
pub use interval::{interval_minla, IntervalModel};
pub use maxla::{maxla_cliques, maxla_cycle, maxla_path, spread_weights, GuestClass};
pub use series_parallel::{
    gadget_profile, series_parallel_minla, GadgetShape, ProfileTable, SpChain, SpForest, SpGadget,
};

use mla_permutation::{Node, Permutation};

use crate::error::OfflineError;

/// The two linear arrangement objectives the oracles certify.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimize `Σ |π(u) − π(v)|` over the edges.
    MinLa,
    /// Maximize `Σ |π(u) − π(v)|` over the edges (the dual of MinLA,
    /// after Alemany-Puig et al.).
    MaxLa,
}

impl Objective {
    /// Lower-case label, used in tables and artifacts.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Objective::MinLa => "minla",
            Objective::MaxLa => "maxla",
        }
    }
}

/// A certified oracle answer: the optimal value, an arrangement
/// achieving it, and the optimality witness the independent
/// [`verify_certificate`] checker validates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleResult {
    /// The objective the value is optimal for.
    pub objective: Objective,
    /// The optimal arrangement value `Σ |π(u) − π(v)|`.
    pub value: u128,
    /// An arrangement attaining [`value`](OracleResult::value).
    pub arrangement: Permutation,
    /// The per-topology optimality witness.
    pub certificate: Certificate,
}

/// The arrangement value `Σ |π(u) − π(v)|` of a permutation over an
/// edge list — the quantity both objectives optimize. `O(m)` position
/// lookups.
///
/// # Panics
///
/// Panics if an edge endpoint is outside the permutation's node set.
#[must_use]
pub fn oracle_arrangement_value(pi: &Permutation, edges: &[(Node, Node)]) -> u128 {
    edges
        .iter()
        .map(|&(a, b)| {
            let pa = pi.position_of(a);
            let pb = pi.position_of(b);
            pa.abs_diff(pb) as u128
        })
        .sum()
}

/// Reconstructs the path order of every component of a disjoint union
/// of simple paths from its edge list — the bridge from an engine
/// [`GraphState`](mla_graph::GraphState) (`Topology::Lines`) to the
/// series-parallel oracle's chain decomposition. Isolated nodes come
/// back as single-node paths.
///
/// # Errors
///
/// Returns [`OfflineError::NotAPathUnion`] if any node has degree
/// greater than two or a component contains a cycle.
pub fn paths_from_edges(n: usize, edges: &[(Node, Node)]) -> Result<Vec<Vec<Node>>, OfflineError> {
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        let (a, b) = (a.index(), b.index());
        adjacency[a].push(b);
        adjacency[b].push(a);
        if adjacency[a].len() > 2 || adjacency[b].len() > 2 {
            return Err(OfflineError::NotAPathUnion {
                n,
                edges: edges.len(),
            });
        }
    }
    let mut seen = vec![false; n];
    let mut paths = Vec::new();
    // Walk each component from an endpoint (degree ≤ 1).
    for start in 0..n {
        if seen[start] || adjacency[start].len() == 2 {
            continue;
        }
        let mut order = Vec::new();
        let mut prev = usize::MAX;
        let mut at = start;
        loop {
            seen[at] = true;
            order.push(Node::new(at));
            match adjacency[at].iter().find(|&&next| next != prev) {
                Some(&next) if !seen[next] => {
                    prev = at;
                    at = next;
                }
                _ => break,
            }
        }
        paths.push(order);
    }
    // Any unvisited node now sits on a cycle (every degree-2 component).
    if seen.iter().any(|&v| !v) {
        return Err(OfflineError::NotAPathUnion {
            n,
            edges: edges.len(),
        });
    }
    Ok(paths)
}

/// Normalizes an edge list into a sorted, deduplicated vector of
/// `(low, high)` index pairs — the canonical form certificate checks
/// compare edge sets in.
pub(crate) fn normalized_edges(edges: &[(Node, Node)]) -> Vec<(usize, usize)> {
    let mut out: Vec<(usize, usize)> = edges
        .iter()
        .map(|&(a, b)| {
            let (a, b) = (a.index(), b.index());
            (a.min(b), a.max(b))
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(a: usize, b: usize) -> (Node, Node) {
        (Node::new(a), Node::new(b))
    }

    #[test]
    fn objective_labels() {
        assert_eq!(Objective::MinLa.label(), "minla");
        assert_eq!(Objective::MaxLa.label(), "maxla");
    }

    #[test]
    fn arrangement_value_sums_edge_spans() {
        let pi = Permutation::from_indices(&[2, 0, 1]).unwrap();
        let edges = vec![ev(0, 1), ev(1, 2)];
        let expected: u128 = edges
            .iter()
            .map(|&(a, b)| pi.position_of(a).abs_diff(pi.position_of(b)) as u128)
            .sum();
        assert_eq!(oracle_arrangement_value(&pi, &edges), expected);
    }

    #[test]
    fn paths_from_edges_reconstructs_orders() {
        // 0-1-2 and 3-4, node 5 isolated.
        let paths = paths_from_edges(6, &[ev(1, 2), ev(0, 1), ev(4, 3)]).unwrap();
        assert_eq!(paths.len(), 3);
        let as_indices: Vec<Vec<usize>> = paths
            .iter()
            .map(|p| p.iter().map(|v| v.index()).collect())
            .collect();
        assert!(as_indices.contains(&vec![0, 1, 2]) || as_indices.contains(&vec![2, 1, 0]));
        assert!(as_indices.contains(&vec![3, 4]) || as_indices.contains(&vec![4, 3]));
        assert!(as_indices.contains(&vec![5]));
    }

    #[test]
    fn paths_from_edges_rejects_high_degree_and_cycles() {
        // Star: node 0 with three legs.
        assert!(matches!(
            paths_from_edges(4, &[ev(0, 1), ev(0, 2), ev(0, 3)]),
            Err(OfflineError::NotAPathUnion { .. })
        ));
        // Triangle: a cycle component.
        assert!(matches!(
            paths_from_edges(3, &[ev(0, 1), ev(1, 2), ev(2, 0)]),
            Err(OfflineError::NotAPathUnion { .. })
        ));
    }
}
