//! Plain-text and CSV tables for experiment output.

use std::fmt;

/// A simple column-aligned table with a title and optional footnotes.
///
/// # Examples
///
/// ```
/// use mla_sim::Table;
///
/// let mut table = Table::new("demo", &["n", "ratio"]);
/// table.row(&["8", "1.25"]);
/// table.row(&["16", "1.50"]);
/// let text = table.render();
/// assert!(text.contains("demo"));
/// assert!(text.contains("1.50"));
/// assert_eq!(table.to_csv(), "n,ratio\n8,1.25\n16,1.50\n");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|&h| h.to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows
            .push(cells.iter().map(|&c| c.to_owned()).collect());
    }

    /// Appends a row of owned strings.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Appends a footnote printed below the table.
    pub fn note(&mut self, note: &str) {
        self.notes.push(note.to_owned());
    }

    /// The table in structured artifact form (for `mla-runner`'s JSON
    /// campaign reports).
    #[must_use]
    pub fn to_artifact(&self) -> mla_runner::TableData {
        mla_runner::TableData {
            title: self.title.clone(),
            headers: self.headers.clone(),
            rows: self.rows.clone(),
            notes: self.notes.clone(),
        }
    }

    /// Renders the table as aligned plain text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str("== ");
        out.push_str(&self.title);
        out.push_str(" ==\n");
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        for note in &self.notes {
            out.push_str("  * ");
            out.push_str(note);
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (headers + rows; notes omitted).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_notes() {
        let mut table = Table::new("t", &["col", "value"]);
        table.row(&["a", "1"]);
        table.row(&["long-name", "22"]);
        table.note("a note");
        let text = table.render();
        assert!(text.contains("== t =="));
        assert!(text.contains("long-name"));
        assert!(text.contains("* a note"));
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn row_length_is_validated() {
        let mut table = Table::new("t", &["a", "b"]);
        table.row(&["only-one"]);
    }

    #[test]
    fn csv_round_trip() {
        let mut table = Table::new("t", &["x", "y"]);
        table.row_owned(vec!["1".into(), "2".into()]);
        assert_eq!(table.to_csv(), "x,y\n1,2\n");
    }
}
