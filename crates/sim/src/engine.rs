//! The simulation engine: drives an adversary against an online algorithm,
//! either through the classic sequential reveal loop or — for batchable
//! algorithms against oblivious adversaries — through the batched
//! parallel executor built on the conflict-detection layer in
//! [`crate::batch`].

use std::collections::VecDeque;

use mla_adversary::{Adversary, Oblivious, SourceAdversary};
use mla_core::{BatchServe, MergeDecision, MergePlan, OnlineMinla, UpdateReport};
use mla_graph::{GraphState, Instance, RevealEvent, RevealSource, SnapshotMode, Topology};
use mla_permutation::{Arrangement, MergeOp, Permutation};

use crate::batch::{BatchPlanner, PARALLEL_DISPATCH_MIN};
use crate::error::SimError;

/// Outcome of one complete run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Sum of all update costs. Accumulated in `u128`: per-event costs
    /// are bounded by `n²` and fit `u64`, but a full clique workload's
    /// total grows like `n³/6` and exceeds `u64::MAX` near `n ≈ 4.7×10⁶`.
    pub total_cost: u128,
    /// Sum of the moving parts.
    pub moving_cost: u128,
    /// Sum of the rearranging parts.
    pub rearranging_cost: u128,
    /// Per-reveal cost reports, in reveal order. Empty when recording was
    /// disabled (see [`Simulation::record_events`]); holds only the final
    /// `k` reports when a recording window was set
    /// ([`Simulation::record_window`]).
    pub per_event: Vec<UpdateReport>,
    /// The reveals served (useful for adaptive adversaries, whose sequence
    /// is only known after the run). Empty when recording was disabled;
    /// only the final `k` reveals under a recording window.
    pub events: Vec<RevealEvent>,
    /// Whether `per_event`/`events` were recorded **in full**. Large-`n`
    /// streaming runs turn recording off (or window it) so memory stays
    /// bounded by the `O(n)` engine state instead of growing two `Θ(k)`
    /// vectors.
    pub events_recorded: bool,
    /// The recording window, if one was set: `per_event`/`events` hold at
    /// most this many trailing entries (`O(k)` memory however long the
    /// run).
    pub recorded_window: Option<usize>,
    /// The algorithm's final permutation (materialized from whichever
    /// arrangement backend the algorithm ran on).
    pub final_perm: Permutation,
}

impl RunOutcome {
    /// The served reveals as a validated [`Instance`] (for offline
    /// post-analysis of adaptive runs).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventsNotRecorded`] if the run was executed
    /// with [`Simulation::record_events`]`(false)`, and
    /// [`SimError::Graph`] if the recorded events do not replay cleanly
    /// under `topology`/`n` — for outcomes produced by
    /// [`Simulation::run`] that means the caller passed a different
    /// topology or node count than the run used.
    pub fn to_instance(
        &self,
        topology: mla_graph::Topology,
        n: usize,
    ) -> Result<Instance, SimError> {
        if !self.events_recorded {
            return Err(SimError::EventsNotRecorded);
        }
        Instance::new(topology, n, self.events.clone()).map_err(SimError::Graph)
    }
}

/// Drives one online algorithm through one request sequence.
///
/// Feasibility checking (opt-in) validates the algorithm's arrangement
/// after every reveal. The per-reveal check is **incremental**: only the
/// two merging segments are validated
/// ([`GraphState::merge_keeps_minla`]), `O(|X| + |Z|)` instead of `O(n)`.
/// The full `O(n)` scan still runs in debug builds — and on demand via
/// [`Simulation::check_feasibility_full`] — as a cross-check.
///
/// # Examples
///
/// ```
/// use mla_adversary::{random_clique_instance, MergeShape};
/// use mla_core::RandCliques;
/// use mla_permutation::Permutation;
/// use mla_sim::Simulation;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let instance = random_clique_instance(8, MergeShape::Uniform, &mut rng);
/// let alg = RandCliques::new(Permutation::identity(8), SmallRng::seed_from_u64(2));
/// let outcome = Simulation::new(instance, alg)
///     .check_feasibility(true)
///     .run()
///     .expect("valid run");
/// assert_eq!(outcome.per_event.len(), 7);
/// ```
pub struct Simulation<A> {
    adversary: Box<dyn Adversary>,
    algorithm: A,
    check_feasibility: bool,
    full_scan: bool,
    record_events: bool,
    record_window: Option<usize>,
    eager_snapshots: bool,
}

impl<A> std::fmt::Debug for Simulation<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("n", &self.adversary.n())
            .field("topology", &self.adversary.topology())
            .field("check_feasibility", &self.check_feasibility)
            .field("full_scan", &self.full_scan)
            .finish_non_exhaustive()
    }
}

impl<A: OnlineMinla> Simulation<A> {
    /// A simulation of an oblivious (pre-validated) instance.
    #[must_use]
    pub fn new(instance: Instance, algorithm: A) -> Self {
        Self::with_adversary(Box::new(Oblivious::new(instance)), algorithm)
    }

    /// A simulation fed by a streaming [`RevealSource`] — events are
    /// generated one merge per reveal, so no event vector ever
    /// materializes on the adversary side. Streamed events are validated
    /// as they are applied; a malformed event surfaces as
    /// [`SimError::Graph`], not a panic. For large `n`, combine with
    /// [`Simulation::record_events`]`(false)` to keep the outcome side
    /// `O(n)` too.
    ///
    /// # Examples
    ///
    /// ```
    /// use mla_adversary::{MergeShape, StreamingWorkload};
    /// use mla_core::RandCliques;
    /// use mla_graph::Topology;
    /// use mla_permutation::SegmentArrangement;
    /// use mla_sim::Simulation;
    /// use rand::rngs::SmallRng;
    /// use rand::SeedableRng;
    ///
    /// let source = StreamingWorkload::new(Topology::Cliques, 64, MergeShape::Uniform, 1);
    /// let alg = RandCliques::new(SegmentArrangement::identity(64), SmallRng::seed_from_u64(2));
    /// let outcome = Simulation::from_source(source, alg)
    ///     .record_events(false)
    ///     .run()
    ///     .expect("streamed events are valid");
    /// assert!(outcome.per_event.is_empty() && !outcome.events_recorded);
    /// ```
    #[must_use]
    pub fn from_source(source: impl RevealSource + 'static, algorithm: A) -> Self {
        Self::with_adversary(Box::new(SourceAdversary::new(source)), algorithm)
    }

    /// A simulation driven by an arbitrary (possibly adaptive) adversary.
    #[must_use]
    pub fn with_adversary(adversary: Box<dyn Adversary>, algorithm: A) -> Self {
        Simulation {
            adversary,
            algorithm,
            check_feasibility: false,
            full_scan: cfg!(debug_assertions),
            record_events: true,
            record_window: None,
            eager_snapshots: false,
        }
    }

    /// Forces **eager** component snapshots even when the algorithm and
    /// its backend would agree on lazy ones (see
    /// [`OnlineMinla::wants_lazy_info`]). The engine picks lazily by
    /// default because size-only policies never read member lists; this
    /// switch pins the pre-PR behaviour — useful for A/B comparisons and
    /// the lazy ≡ eager property tests.
    #[must_use]
    pub fn eager_snapshots(mut self, on: bool) -> Self {
        self.eager_snapshots = on;
        self
    }

    /// The snapshot mode this simulation's reveal loop will use.
    fn snapshot_mode(&self) -> SnapshotMode {
        if !self.eager_snapshots
            && self.algorithm.wants_lazy_info()
            && self.algorithm.arrangement().supports_component_locate()
        {
            SnapshotMode::Lazy
        } else {
            SnapshotMode::Eager
        }
    }

    /// Controls whether per-event reports and served events are recorded
    /// into the [`RunOutcome`] (default: `true`). Turn off for large-`n`
    /// streaming runs: cost totals are still accumulated exactly, but the
    /// two `Θ(k)` vectors are never grown, keeping the run's memory
    /// bounded by the `O(n)` engine state. Clears any recording window
    /// set by [`Simulation::record_window`].
    #[must_use]
    pub fn record_events(mut self, on: bool) -> Self {
        self.record_events = on;
        self.record_window = None;
        self
    }

    /// Keeps only the **last `k`** per-event reports and reveals — the
    /// middle ground between full recording (`Θ(reveals)` memory) and
    /// [`Simulation::record_events`]`(false)` (nothing at all): cost
    /// totals stay exact, the trailing window supports end-game
    /// diagnostics of streamed large-`n` runs, and memory stays `O(k)`.
    /// [`RunOutcome::recorded_window`] reports the window; replaying a
    /// windowed outcome through [`RunOutcome::to_instance`] fails with
    /// [`SimError::EventsNotRecorded`] like a fully unrecorded one.
    ///
    /// # Examples
    ///
    /// ```
    /// use mla_adversary::{MergeShape, StreamingWorkload};
    /// use mla_core::RandCliques;
    /// use mla_graph::Topology;
    /// use mla_permutation::SegmentArrangement;
    /// use mla_sim::Simulation;
    /// use rand::rngs::SmallRng;
    /// use rand::SeedableRng;
    ///
    /// let source = StreamingWorkload::new(Topology::Cliques, 64, MergeShape::Uniform, 1);
    /// let alg = RandCliques::new(SegmentArrangement::identity(64), SmallRng::seed_from_u64(2));
    /// let outcome = Simulation::from_source(source, alg)
    ///     .record_window(8)
    ///     .run()
    ///     .expect("streamed events are valid");
    /// assert_eq!(outcome.per_event.len(), 8);
    /// assert_eq!(outcome.recorded_window, Some(8));
    /// assert!(!outcome.events_recorded); // not the *full* sequence
    /// ```
    #[must_use]
    pub fn record_window(mut self, k: usize) -> Self {
        self.record_events = false;
        self.record_window = Some(k);
        self
    }

    /// Enables verification that the algorithm's arrangement is a MinLA of
    /// the revealed graph after every reveal. Incremental — `O(|X| + |Z|)`
    /// per reveal, validating only the merged component.
    #[must_use]
    pub fn check_feasibility(mut self, on: bool) -> Self {
        self.check_feasibility = on;
        self
    }

    /// Also runs the full `O(n)` feasibility scan per reveal (implied by
    /// debug builds; opt-in for release). Has no effect unless
    /// [`Simulation::check_feasibility`] is enabled.
    ///
    /// The incremental check's soundness rests on the update being a
    /// block move of the merging components — true for `RandCliques` /
    /// `RandLines`. Jump algorithms (`DetClosest`, `OptReplay`) replace
    /// the whole arrangement, so a buggy solver could scramble a foreign
    /// component that only this full scan notices; enable it when
    /// validating those in release builds.
    #[must_use]
    pub fn check_feasibility_full(mut self, on: bool) -> Self {
        self.full_scan = on;
        self
    }

    /// Runs the sequence to completion.
    ///
    /// # Errors
    ///
    /// * [`SimError::SizeMismatch`] if the algorithm's arrangement does not
    ///   cover the adversary's node count;
    /// * [`SimError::Graph`] if the adversary emits an invalid reveal;
    /// * [`SimError::FeasibilityViolation`] if checking is enabled and the
    ///   algorithm breaks the MinLA invariant.
    pub fn run(mut self) -> Result<RunOutcome, SimError> {
        let n = self.adversary.n();
        if self.algorithm.arrangement().len() != n {
            return Err(SimError::SizeMismatch {
                expected: n,
                actual: self.algorithm.arrangement().len(),
            });
        }
        let mode = self.snapshot_mode();
        let mut state = GraphState::new(self.adversary.topology(), n);
        let mut recorder = Recorder::new(self.record_events, self.record_window);
        while let Some(event) = self.adversary.next(self.algorithm.arrangement(), &state) {
            let info = state.apply_with(event, mode)?;
            let report = self.algorithm.serve(event, &info, &state);
            if self.check_feasibility {
                let feasible = state.merge_keeps_minla(self.algorithm.arrangement(), &info)
                    && (!self.full_scan || state.is_minla(self.algorithm.arrangement()));
                if !feasible {
                    return Err(SimError::FeasibilityViolation {
                        step: recorder.step() + 1,
                        algorithm: self.algorithm.name().to_owned(),
                    });
                }
            }
            recorder.record(event, report);
        }
        Ok(recorder.finish(self.algorithm.arrangement().to_permutation()))
    }

    /// Upgrades this simulation to the **batched parallel executor**: the
    /// engine pulls reveals ahead of the serving frontier, groups
    /// consecutive reveals into maximal batches whose component spans are
    /// pairwise disjoint (see [`BatchPlanner`](crate::BatchPlanner)), and
    /// runs each batch's merge mechanics on `threads` workers — while
    /// RNG draws and arrangement mutations stay strictly in reveal order,
    /// so the outcome is **bit-identical to the sequential loop for every
    /// thread count**.
    ///
    /// `threads = 0` means available parallelism; `threads = 1` exercises
    /// the batching pipeline without worker threads (useful for tests).
    /// Only oblivious adversaries are actually batched; adaptive ones
    /// force a window of 1, which degenerates to the sequential loop.
    ///
    /// Requires a [`BatchServe`] algorithm (whose `serve` decomposes into
    /// decide / plan / apply) over a `Sync` arrangement backend.
    ///
    /// # Examples
    ///
    /// ```
    /// use mla_adversary::{random_clique_instance, MergeShape};
    /// use mla_core::RandCliques;
    /// use mla_permutation::SegmentArrangement;
    /// use mla_sim::Simulation;
    /// use rand::rngs::SmallRng;
    /// use rand::SeedableRng;
    ///
    /// let mut rng = SmallRng::seed_from_u64(1);
    /// let instance = random_clique_instance(64, MergeShape::Uniform, &mut rng);
    /// let alg = || RandCliques::new(SegmentArrangement::identity(64), SmallRng::seed_from_u64(2));
    /// let sequential = Simulation::new(instance.clone(), alg()).run().unwrap();
    /// let parallel = Simulation::new(instance, alg()).parallel(4).run().unwrap();
    /// assert_eq!(sequential, parallel); // bit-identical, any thread count
    /// ```
    #[must_use]
    pub fn parallel(self, threads: usize) -> ParallelSimulation<A> {
        ParallelSimulation {
            sim: self,
            threads,
            window: DEFAULT_BATCH_WINDOW,
            unchecked_sealing: false,
        }
    }
}

/// Default maximal look-ahead window of the batched executor (shared
/// with the session layer's internal planner).
pub(crate) const DEFAULT_BATCH_WINDOW: usize = 4096;

/// Debug-build re-check of the planner's sealing contract: every span in
/// a sealed batch must be pairwise disjoint, or the partitioned-write
/// executor's `&mut`-distribution argument does not hold. Uses sort +
/// adjacent comparison — deliberately a different algorithm than the
/// planner's [`crate::batch::ConflictGraph`] — so a sealing bug cannot
/// hide itself in the checker.
#[cfg(debug_assertions)]
fn assert_batch_spans_disjoint(batch: &[crate::batch::PlannedReveal]) {
    let mut spans: Vec<(std::ops::Range<usize>, usize)> = batch
        .iter()
        .enumerate()
        .map(|(index, planned)| (planned.span(), index))
        .collect();
    spans.sort_by_key(|(span, _)| (span.start, span.end));
    for pair in spans.windows(2) {
        let ((a, a_at), (b, b_at)) = (&pair[0], &pair[1]);
        if a.end > b.start {
            // mla-lint: allow(panic-safety): the shadow checker exists to abort on a detected sealing violation (debug builds only)
            panic!(
                "shadow checker: sealed batch contains overlapping spans: \
                 reveal {a_at} span {a:?} vs reveal {b_at} span {b:?}"
            );
        }
    }
}

/// Incremental feasibility check shared by the batch execution paths:
/// validates the merged component's block (and, under `full_scan`, the
/// whole arrangement) against the post-merge state.
fn batch_step_feasible<P: Arrangement>(
    state: &GraphState,
    arr: &P,
    info: &mla_graph::MergeInfo,
    full_scan: bool,
) -> bool {
    state.merge_keeps_minla(arr, info) && (!full_scan || state.is_minla(arr))
}

/// Executes one **sealed** batch of span-disjoint planned reveals through
/// the decide / plan / apply pipeline — phases 2–4 of the batched
/// executor (see [`Simulation::parallel`]), with per-reveal feasibility
/// checks and recording.
///
/// This is the single execution path shared by [`ParallelSimulation::run`]
/// and the serving session layer ([`crate::session`]): both therefore
/// apply merges through byte-identical code, which is what makes a
/// checkpoint taken mid-stream resumable into either driver.
///
/// The caller owns the planning half of the contract: `batch` must come
/// from [`BatchPlanner::plan_batch_into`] against the *current* `state`
/// and arrangement, and [`BatchPlanner::retire_batch`] must be called
/// after this returns `Ok`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_planned_batch<A: BatchServe>(
    algorithm: &mut A,
    state: &mut GraphState,
    recorder: &mut Recorder,
    batch: &[crate::batch::PlannedReveal],
    decisions: &mut Vec<MergeDecision>,
    threads: usize,
    check_feasibility: bool,
    full_scan: bool,
) -> Result<(), SimError>
where
    A::Arr: Sync,
{
    // Batch of one — the parked degraded mode, and the tail of every
    // run: skip the whole phase machinery (decision/plan/op staging
    // vectors, the backend's batch dispatch) and run the exact
    // sequential pipeline inline. Identical semantics — decide, build,
    // commit, one `merge_move` — just without the bookkeeping, so a
    // conflict-dense parallel run is never slower than the sequential
    // loop.
    if batch.len() == 1 {
        let planned = &batch[0];
        let decision = algorithm.decide(&planned.info, &planned.layout);
        let plan = A::build_plan(&planned.info, &planned.layout, decision);
        state.commit(planned.event);
        let report = algorithm.apply_plan(plan);
        if check_feasibility
            && !batch_step_feasible(state, algorithm.arrangement(), &planned.info, full_scan)
        {
            return Err(SimError::FeasibilityViolation {
                step: recorder.step() + 1,
                algorithm: algorithm.name().to_owned(),
            });
        }
        recorder.record(planned.event, report);
        return Ok(());
    }
    // Phase 2: RNG draws, strictly in reveal order.
    decisions.clear();
    decisions.extend(batch.iter().map(|p| algorithm.decide(&p.info, &p.layout)));
    // Phase 3: pure plan construction. Only line merges carry per-plan
    // staging buffers (the merged path's target content), so only they
    // are worth a parallel dispatch.
    let plans: Vec<MergePlan> = if threads > 1
        && batch.len() >= PARALLEL_DISPATCH_MIN
        && state.topology() == Topology::Lines
    {
        let decisions = &*decisions;
        mla_runner::run_indexed(threads, batch.len(), |i| {
            A::build_plan(&batch[i].info, &batch[i].layout, decisions[i])
        })
    } else {
        batch
            .iter()
            .zip(decisions.iter())
            .map(|(p, &decision)| A::build_plan(&p.info, &p.layout, decision))
            .collect()
    };
    // Phase 4: commit the graph mutations (reveal order, `O(α)` each),
    // then execute the whole batch of span-disjoint merges through the
    // backend — partitioned backends
    // ([`mla_permutation::ShardedArrangement`]) run ops of different
    // regions on worker threads. Disjoint spans commute, so the
    // arrangement is bit-identical to the sequential per-reveal loop.
    // Debug-build shadow check: re-verify the planner's sealing promise
    // with an independent algorithm (sort + adjacent comparison, vs the
    // planner's ordered-map probes) before any state mutation. Compiled
    // out of release builds.
    #[cfg(debug_assertions)]
    assert_batch_spans_disjoint(batch);
    let mut reports = Vec::with_capacity(batch.len());
    let mut ops = Vec::with_capacity(batch.len());
    for (planned, plan) in batch.iter().zip(plans) {
        state.commit(planned.event);
        reports.push(plan.report);
        ops.push(MergeOp {
            mover: plan.mover,
            stayer: plan.stayer,
            target: plan.target,
        });
    }
    let costs = algorithm.arrangement_mut().apply_merge_batch(ops, threads);
    debug_assert!(
        costs
            .iter()
            .zip(&reports)
            .all(|(&cost, report)| cost == report.moving_cost),
        "backend charged a different moving cost than the plan"
    );
    // Checks and recording, in reveal order. Feasibility is validated
    // against the post-batch state; because batch spans are disjoint,
    // each merged component's block is exactly what the per-reveal
    // check would have seen.
    for (planned, report) in batch.iter().zip(reports) {
        if check_feasibility
            && !batch_step_feasible(state, algorithm.arrangement(), &planned.info, full_scan)
        {
            return Err(SimError::FeasibilityViolation {
                step: recorder.step() + 1,
                algorithm: algorithm.name().to_owned(),
            });
        }
        recorder.record(planned.event, report);
    }
    Ok(())
}

/// The batched parallel executor returned by [`Simulation::parallel`].
///
/// Runs the same simulation as the sequential loop, in batches of
/// span-disjoint merges planned concurrently. See
/// [`Simulation::parallel`] for the contract and an example.
pub struct ParallelSimulation<A> {
    sim: Simulation<A>,
    threads: usize,
    window: usize,
    /// Test hook, forwarded to [`BatchPlanner::unchecked_sealing`].
    unchecked_sealing: bool,
}

impl<A> std::fmt::Debug for ParallelSimulation<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelSimulation")
            .field("threads", &self.threads)
            .field("window", &self.window)
            .field("sim", &"Simulation { .. }")
            .finish()
    }
}

impl<A: BatchServe> ParallelSimulation<A>
where
    A::Arr: Sync,
{
    /// Sets the maximal look-ahead window: how many reveals the engine
    /// may pull from an oblivious adversary (or streaming source) ahead
    /// of the serving frontier. Larger windows admit larger batches at
    /// the price of buffering more pending snapshots; the planner adapts
    /// the effective window downward when conflicts are dense. Default:
    /// 4096. Clamped to at least 1.
    #[must_use]
    pub fn batch_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Test hook: disables the planner's `ConflictGraph` disjointness
    /// check, letting overlapping spans reach the executor so regression
    /// tests can prove the debug-build shadow checker trips. Never
    /// enable outside tests.
    #[doc(hidden)]
    #[must_use]
    pub fn unchecked_sealing(mut self, on: bool) -> Self {
        self.unchecked_sealing = on;
        self
    }

    /// Runs the sequence to completion through the batch pipeline. Same
    /// error contract as [`Simulation::run`], same outcome bit-for-bit.
    ///
    /// Each batch executes in four phases:
    ///
    /// 1. **plan window** (parallel) — peek + locate candidate reveals
    ///    against the frozen state, seal the span-disjoint prefix;
    /// 2. **decide** (reveal order) — the algorithm draws each merge's
    ///    random choices, keeping the RNG stream identical to sequential;
    /// 3. **build plans** (parallel) — pure snapshot → plan construction,
    ///    including staged target contents for rearranged merges;
    /// 4. **apply** (reveal order) — commit the merge to the graph state
    ///    and execute the plan as one backend `merge_move`.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Simulation::run`], at the same steps.
    pub fn run(mut self) -> Result<RunOutcome, SimError> {
        let threads = mla_runner::resolve_threads(self.threads);
        let n = self.sim.adversary.n();
        if self.sim.algorithm.arrangement().len() != n {
            return Err(SimError::SizeMismatch {
                expected: n,
                actual: self.sim.algorithm.arrangement().len(),
            });
        }
        let mut state = GraphState::new(self.sim.adversary.topology(), n);
        let mut recorder = Recorder::new(self.sim.record_events, self.sim.record_window);
        // Adaptive adversaries must observe the arrangement after every
        // reveal: window 1 makes the pipeline equivalent to the
        // sequential loop.
        let window_max = if self.sim.adversary.is_oblivious() {
            self.window
        } else {
            1
        };
        // Lazy snapshots additionally require the cliques topology here:
        // the batched lines pipeline builds rearranged target contents in
        // `build_plan`, which needs member lists.
        let mode = if self.sim.snapshot_mode() == SnapshotMode::Lazy
            && state.topology() == Topology::Cliques
        {
            SnapshotMode::Lazy
        } else {
            SnapshotMode::Eager
        };
        let mut planner = BatchPlanner::new(window_max)
            .snapshot_mode(mode)
            .unchecked_sealing(self.unchecked_sealing);
        let mut exhausted = false;
        let mut decisions: Vec<MergeDecision> = Vec::new();
        // Reused across rounds: the parked (window-1) degraded mode must
        // not pay a heap allocation per reveal.
        let mut batch: Vec<crate::batch::PlannedReveal> = Vec::new();
        loop {
            while !exhausted && planner.queued() < planner.refill_target() {
                match self
                    .sim
                    .adversary
                    .next(self.sim.algorithm.arrangement(), &state)
                {
                    Some(event) => planner.push(event),
                    None => exhausted = true,
                }
            }
            if planner.is_empty() {
                break;
            }
            // Phase 1: peek + locate the window, seal the disjoint prefix.
            planner
                .plan_batch_into(
                    &state,
                    self.sim.algorithm.arrangement(),
                    threads,
                    &mut batch,
                )
                .map_err(SimError::Graph)?;
            // Phases 2–4 (decide / build / apply), shared with the
            // serving session layer.
            execute_planned_batch(
                &mut self.sim.algorithm,
                &mut state,
                &mut recorder,
                &batch,
                &mut decisions,
                threads,
                self.sim.check_feasibility,
                self.sim.full_scan,
            )?;
            planner.retire_batch(&state, &batch);
        }
        Ok(recorder.finish(self.sim.algorithm.arrangement().to_permutation()))
    }
}

/// Shared outcome accumulator of the sequential and batched run loops:
/// exact `u128` cost totals, plus full, windowed or no per-event
/// recording. `pub(crate)` so the serving session layer
/// ([`crate::session`]) accumulates through the identical code path and
/// can checkpoint/restore the accumulator state exactly.
#[derive(Debug, Clone)]
pub(crate) struct Recorder {
    full: bool,
    window: Option<usize>,
    per_event: VecDeque<UpdateReport>,
    events: VecDeque<RevealEvent>,
    moving_cost: u128,
    rearranging_cost: u128,
    step: usize,
}

impl Recorder {
    pub(crate) fn new(full: bool, window: Option<usize>) -> Self {
        Recorder {
            full,
            window,
            per_event: VecDeque::new(),
            events: VecDeque::new(),
            moving_cost: 0,
            rearranging_cost: 0,
            step: 0,
        }
    }

    /// Reveals recorded so far (independent of what is retained).
    pub(crate) fn step(&self) -> usize {
        self.step
    }

    /// Exact accumulated moving cost.
    pub(crate) fn moving_cost(&self) -> u128 {
        self.moving_cost
    }

    /// Exact accumulated rearranging cost.
    pub(crate) fn rearranging_cost(&self) -> u128 {
        self.rearranging_cost
    }

    /// The record mode `(full, window)` this recorder was built with.
    pub(crate) fn mode(&self) -> (bool, Option<usize>) {
        (self.full, self.window)
    }

    /// Non-consuming [`Recorder::finish`]: snapshots the accumulator into
    /// a [`RunOutcome`] without ending the run — the session layer
    /// answers outcome queries mid-stream.
    pub(crate) fn outcome_snapshot(&self, final_perm: Permutation) -> RunOutcome {
        self.clone().finish(final_perm)
    }

    /// Serializes the accumulator exactly: totals, step counter, record
    /// mode, and every retained (event, report) pair in retention order.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        use mla_permutation::codec::{put_bool, put_len, put_u128, put_u64};
        put_bool(out, self.full);
        match self.window {
            None => put_bool(out, false),
            Some(k) => {
                put_bool(out, true);
                put_len(out, k);
            }
        }
        put_u128(out, self.moving_cost);
        put_u128(out, self.rearranging_cost);
        put_len(out, self.step);
        put_len(out, self.per_event.len());
        for (report, event) in self.per_event.iter().zip(&self.events) {
            put_u64(out, report.moving_cost);
            put_u64(out, report.rearranging_cost);
            // mla-lint: allow(cast-hygiene): node indices are < n <= MAX_NODES < 2^32
            out.extend_from_slice(&(event.a().index() as u32).to_le_bytes());
            // mla-lint: allow(cast-hygiene): node indices are < n <= MAX_NODES < 2^32
            out.extend_from_slice(&(event.b().index() as u32).to_le_bytes());
        }
    }

    /// Inverse of [`Recorder::encode_into`], validating internal
    /// consistency (retention never exceeds the step count or the
    /// window; node indices stay below `n`).
    pub(crate) fn decode_from(
        r: &mut mla_permutation::codec::ByteReader<'_>,
        n: usize,
    ) -> Result<Self, mla_permutation::codec::CodecError> {
        use mla_permutation::codec::CodecError;
        let full = r.bool("recorder full flag")?;
        let window = if r.bool("recorder window flag")? {
            Some(r.count(usize::MAX, "recorder window")?)
        } else {
            None
        };
        let moving_cost = r.u128()?;
        let rearranging_cost = r.u128()?;
        let step = r.count(usize::MAX, "recorder step")?;
        let retained = r.count(step, "recorder retained entries")?;
        if !full {
            let cap = window.unwrap_or(0);
            if retained > cap {
                return Err(CodecError::invalid(format!(
                    "recorder retains {retained} entries but the window is {cap}"
                )));
            }
        }
        let mut per_event = VecDeque::with_capacity(retained);
        let mut events = VecDeque::with_capacity(retained);
        for _ in 0..retained {
            let moving = r.u64()?;
            let rearranging = r.u64()?;
            let a = r.u32()? as usize;
            let b = r.u32()? as usize;
            if a >= n || b >= n {
                return Err(CodecError::invalid(format!(
                    "recorded event ({a}, {b}) out of range for n = {n}"
                )));
            }
            per_event.push_back(UpdateReport {
                moving_cost: moving,
                rearranging_cost: rearranging,
            });
            events.push_back(RevealEvent::new(
                mla_permutation::Node::new(a),
                mla_permutation::Node::new(b),
            ));
        }
        Ok(Recorder {
            full,
            window,
            per_event,
            events,
            moving_cost,
            rearranging_cost,
            step,
        })
    }

    pub(crate) fn record(&mut self, event: RevealEvent, report: UpdateReport) {
        self.step += 1;
        self.moving_cost += u128::from(report.moving_cost);
        self.rearranging_cost += u128::from(report.rearranging_cost);
        let retain = if self.full {
            usize::MAX
        } else {
            self.window.unwrap_or(0)
        };
        if retain == 0 {
            return;
        }
        if self.per_event.len() == retain {
            self.per_event.pop_front();
            self.events.pop_front();
        }
        self.per_event.push_back(report);
        self.events.push_back(event);
    }

    pub(crate) fn finish(self, final_perm: Permutation) -> RunOutcome {
        RunOutcome {
            total_cost: self.moving_cost + self.rearranging_cost,
            moving_cost: self.moving_cost,
            rearranging_cost: self.rearranging_cost,
            per_event: self.per_event.into(),
            events: self.events.into(),
            events_recorded: self.full,
            recorded_window: self.window,
            final_perm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_adversary::{random_line_instance, DetLineAdversary, MergeShape};
    use mla_core::{DetClosest, RandCliques, RandLines};
    use mla_graph::Topology;
    use mla_offline::LopConfig;
    use mla_permutation::SegmentArrangement;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn oblivious_run_accumulates_costs() {
        let mut rng = SmallRng::seed_from_u64(3);
        let instance = random_line_instance(10, MergeShape::Uniform, &mut rng);
        let alg = RandLines::new(Permutation::identity(10), SmallRng::seed_from_u64(4));
        let outcome = Simulation::new(instance, alg)
            .check_feasibility(true)
            .run()
            .unwrap();
        assert_eq!(outcome.per_event.len(), 9);
        assert_eq!(
            outcome.total_cost,
            outcome.moving_cost + outcome.rearranging_cost
        );
        let per_event_total: u128 = outcome
            .per_event
            .iter()
            .map(|r| u128::from(r.total()))
            .sum();
        assert_eq!(outcome.total_cost, per_event_total);
    }

    #[test]
    fn segment_backend_run_matches_dense() {
        let mut rng = SmallRng::seed_from_u64(3);
        let instance = random_line_instance(12, MergeShape::Uniform, &mut rng);
        let dense = RandLines::new(Permutation::identity(12), SmallRng::seed_from_u64(4));
        let segment = RandLines::new(SegmentArrangement::identity(12), SmallRng::seed_from_u64(4));
        let dense_outcome = Simulation::new(instance.clone(), dense)
            .check_feasibility(true)
            .run()
            .unwrap();
        let segment_outcome = Simulation::new(instance, segment)
            .check_feasibility(true)
            .check_feasibility_full(true)
            .run()
            .unwrap();
        assert_eq!(dense_outcome, segment_outcome);
    }

    #[test]
    fn total_cost_bounds_distance_from_start() {
        // The sum of per-update distances upper-bounds the end-to-end
        // Kendall distance (triangle inequality).
        let mut rng = SmallRng::seed_from_u64(5);
        let pi0 = Permutation::random(12, &mut rng);
        let instance = random_line_instance(12, MergeShape::Sequential, &mut rng);
        let alg = RandLines::new(pi0.clone(), SmallRng::seed_from_u64(6));
        let outcome = Simulation::new(instance, alg).run().unwrap();
        assert!(u128::from(pi0.kendall_distance(&outcome.final_perm)) <= outcome.total_cost);
    }

    #[test]
    fn adaptive_adversary_records_events() {
        let pi0 = Permutation::identity(9);
        let adversary = DetLineAdversary::new(pi0.clone(), Topology::Lines);
        let alg = DetClosest::new(pi0, LopConfig::default());
        let outcome = Simulation::with_adversary(Box::new(adversary), alg)
            .check_feasibility(true)
            .run()
            .unwrap();
        // n - 2 = 7 reveals (everything except the pivot merges).
        assert_eq!(outcome.events.len(), 7);
        let instance = outcome.to_instance(Topology::Lines, 9).unwrap();
        assert_eq!(instance.len(), 7);
    }

    #[test]
    fn to_instance_reports_replay_errors() {
        let pi0 = Permutation::identity(9);
        let adversary = DetLineAdversary::new(pi0.clone(), Topology::Lines);
        let alg = DetClosest::new(pi0, LopConfig::default());
        let outcome = Simulation::with_adversary(Box::new(adversary), alg)
            .run()
            .unwrap();
        // Replaying line reveals as a 3-node instance must fail, not panic.
        assert!(matches!(
            outcome.to_instance(Topology::Lines, 3),
            Err(SimError::Graph(_))
        ));
    }

    #[test]
    #[cfg(debug_assertions)]
    fn unchecked_sealing_trips_shadow_checker() {
        // Events (0,1) and (1,2) both validate against the frozen state
        // but their spans overlap (0..2 vs 1..3) — the planner would
        // seal only the first. The test hook seals both, and the
        // debug-build shadow check must refuse the batch before any
        // state mutation.
        let instance = Instance::new(
            Topology::Cliques,
            4,
            vec![
                RevealEvent::new(mla_permutation::Node::new(0), mla_permutation::Node::new(1)),
                RevealEvent::new(mla_permutation::Node::new(1), mla_permutation::Node::new(2)),
            ],
        )
        .unwrap();
        let alg = RandCliques::new(Permutation::identity(4), SmallRng::seed_from_u64(9));
        let run = Simulation::new(instance, alg)
            .parallel(2)
            .unchecked_sealing(true);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || run.run()))
            .expect_err("overlapping batch must trip the shadow checker");
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("shadow checker"), "{message}");
    }

    #[test]
    fn size_mismatch_is_reported() {
        let mut rng = SmallRng::seed_from_u64(7);
        let instance = random_line_instance(5, MergeShape::Uniform, &mut rng);
        let alg = RandCliques::new(Permutation::identity(6), SmallRng::seed_from_u64(8));
        assert_eq!(
            Simulation::new(instance, alg).run().unwrap_err(),
            SimError::SizeMismatch {
                expected: 5,
                actual: 6
            }
        );
    }

    #[test]
    fn feasibility_violation_is_caught() {
        // A deliberately broken "algorithm" that never moves.
        struct Lazy(Permutation);
        impl OnlineMinla for Lazy {
            type Arr = Permutation;
            fn name(&self) -> &str {
                "lazy"
            }
            fn arrangement(&self) -> &Permutation {
                &self.0
            }
            fn serve(
                &mut self,
                _: RevealEvent,
                _: &mla_graph::MergeInfo,
                _: &GraphState,
            ) -> UpdateReport {
                UpdateReport::default()
            }
        }
        let instance = Instance::new(
            Topology::Cliques,
            4,
            vec![RevealEvent::new(
                mla_permutation::Node::new(0),
                mla_permutation::Node::new(2),
            )],
        )
        .unwrap();
        // The incremental check alone must catch the violation.
        let outcome = Simulation::new(instance, Lazy(Permutation::identity(4)))
            .check_feasibility(true)
            .check_feasibility_full(false)
            .run();
        assert!(matches!(
            outcome,
            Err(SimError::FeasibilityViolation { step: 1, .. })
        ));

        // The reported step must stay correct when event recording is off
        // (the streaming large-n mode): violation at reveal 2, not 1.
        let instance = Instance::new(
            Topology::Cliques,
            4,
            vec![
                RevealEvent::new(mla_permutation::Node::new(0), mla_permutation::Node::new(1)),
                RevealEvent::new(mla_permutation::Node::new(0), mla_permutation::Node::new(3)),
            ],
        )
        .unwrap();
        let outcome = Simulation::new(instance, Lazy(Permutation::identity(4)))
            .check_feasibility(true)
            .check_feasibility_full(false)
            .record_events(false)
            .run();
        assert!(matches!(
            outcome,
            Err(SimError::FeasibilityViolation { step: 2, .. })
        ));
    }
}
