//! The conflict-detection layer behind parallel per-component serving.
//!
//! Between two merges the revealed graph is a disjoint union of
//! components, and a feasible arrangement keeps every component in its
//! own contiguous block. One merge update only ever mutates positions
//! inside its **span** — the hull of the two merging blocks and the gap
//! between them ([`MergeLayout::span`]) — so two merges with disjoint
//! spans commute: they touch disjoint components *and* disjoint position
//! ranges. That observation is the entire concurrency model:
//!
//! * [`ConflictGraph`] — the pairwise overlap relation over a window of
//!   merge spans, and the maximal conflict-free prefix under it;
//! * [`BatchPlanner`] — pulls reveals into a look-ahead window, peeks and
//!   locates them **in parallel** against the frozen pre-batch state
//!   (pure `&self` reads: [`GraphState::peek`] snapshots,
//!   [`MergeLayout::locate`] block lookups), then seals the maximal
//!   prefix of consecutive reveals whose spans are pairwise disjoint.
//!
//! The engine executes a sealed batch in three strictly ordered phases —
//! decide (RNG draws, reveal order), plan (pure, parallel), apply
//! (mutations, reveal order) — which is why a batched run is
//! bit-identical to the sequential loop for every thread count; see
//! [`Simulation::parallel`](crate::Simulation::parallel).
//!
//! Work planned for reveals *beyond* the sealed prefix is not thrown
//! away: a prepared candidate stays cached across rounds until some
//! applied span overlaps its own (the only way it can go stale), so the
//! tail of a run — few, large components, batches of one — degrades to
//! roughly the sequential cost instead of re-peeking the window every
//! round.

use std::collections::VecDeque;
use std::ops::Range;

use mla_core::MergeLayout;
use mla_graph::{GraphError, GraphState, MergeInfo, RevealEvent, SnapshotMode};
use mla_permutation::Arrangement;

thread_local! {
    /// Monotone count of [`ConflictGraph`] constructions on this thread —
    /// a test hook proving the parked (window-1) degraded mode performs
    /// no conflict bookkeeping at all.
    static CONFLICT_GRAPH_ALLOCATIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Returns how many [`ConflictGraph`]s this thread has built so far.
///
/// Test hook: regression tests snapshot it around a parallel run to
/// assert the window-1 degraded mode allocates zero conflict structures.
#[doc(hidden)]
#[must_use]
pub fn conflict_graph_allocations() -> u64 {
    CONFLICT_GRAPH_ALLOCATIONS.with(std::cell::Cell::get)
}

/// Below this many uncached candidates the planner prepares inline on
/// the engine thread: scoped-spawn overhead would exceed the work.
pub(crate) const PARALLEL_DISPATCH_MIN: usize = 64;

/// Consecutive fully-sealed windows required before the window grows —
/// hysteresis so a conflict-dense workload parked at window 1 only
/// occasionally probes for newly available parallelism.
const GROW_AFTER_FULL_SEALS: u32 = 3;

/// Cap on the probe-backoff exponent: after this many consecutive
/// failed probes the quiet period stops doubling (at
/// `GROW_AFTER_FULL_SEALS << MAX_COLLAPSE_STREAK` = 3072 rounds), so a
/// workload that *becomes* parallel mid-run is still discovered within a
/// bounded number of reveals.
const MAX_COLLAPSE_STREAK: u32 = 10;

/// The pairwise span-overlap relation over one window of candidate
/// merges, in reveal order.
///
/// Spans are half-open position ranges. Two merges conflict iff their
/// spans overlap — they might share a component, or one's block move
/// would shift positions the other's plan was computed against.
///
/// # Examples
///
/// ```
/// use mla_sim::ConflictGraph;
///
/// let graph = ConflictGraph::new(vec![0..4, 6..9, 3..5, 7..8]);
/// assert!(!graph.conflicts(0, 1));
/// assert!(graph.conflicts(0, 2)); // 0..4 overlaps 3..5
/// assert!(graph.conflicts(1, 3));
/// // 0..4 and 6..9 are disjoint; 3..5 hits 0..4, closing the prefix.
/// assert_eq!(graph.disjoint_prefix(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ConflictGraph {
    spans: Vec<Range<usize>>,
}

impl ConflictGraph {
    /// Builds the relation over the given spans (reveal order).
    #[must_use]
    pub fn new(spans: Vec<Range<usize>>) -> Self {
        CONFLICT_GRAPH_ALLOCATIONS.with(|c| c.set(c.get() + 1));
        ConflictGraph { spans }
    }

    /// Number of candidate merges.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Returns `true` when the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The span of candidate `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn span(&self, i: usize) -> Range<usize> {
        self.spans[i].clone()
    }

    /// Returns `true` iff the spans of candidates `i` and `j` overlap.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn conflicts(&self, i: usize, j: usize) -> bool {
        spans_overlap(&self.spans[i], &self.spans[j])
    }

    /// Length of the maximal prefix whose spans are pairwise disjoint —
    /// the largest batch of *consecutive* reveals that can be served
    /// concurrently while preserving sequential semantics. `O(k log k)`
    /// over the prefix via an ordered interval set.
    #[must_use]
    pub fn disjoint_prefix(&self) -> usize {
        let mut accepted: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        for (i, span) in self.spans.iter().enumerate() {
            if span.is_empty() {
                return i;
            }
            // The accepted neighbour starting left of us must end at or
            // before our start; the one starting at/after us must start
            // at/after our end.
            if let Some((_, &end)) = accepted.range(..=span.start).next_back() {
                if end > span.start {
                    return i;
                }
            }
            if let Some((&start, _)) = accepted.range(span.start..).next() {
                if start < span.end {
                    return i;
                }
            }
            accepted.insert(span.start, span.end);
        }
        self.spans.len()
    }

    /// Returns `true` iff *all* spans are pairwise disjoint.
    #[must_use]
    pub fn is_pairwise_disjoint(&self) -> bool {
        self.disjoint_prefix() == self.len()
    }
}

/// Returns `true` iff two half-open ranges overlap.
fn spans_overlap(a: &Range<usize>, b: &Range<usize>) -> bool {
    a.start < b.end && b.start < a.end
}

/// One reveal with everything the pre-apply pipeline produced for it:
/// the pre-merge component snapshots and the located block layout.
#[derive(Debug, Clone)]
pub struct PlannedReveal {
    /// The reveal itself.
    pub event: RevealEvent,
    /// Pre-merge snapshots of the two merging components.
    pub info: MergeInfo,
    /// Where the two blocks sit, with orientations.
    pub layout: MergeLayout,
}

impl PlannedReveal {
    /// The update's span (position hull), the conflict-detection key.
    #[must_use]
    pub fn span(&self) -> Range<usize> {
        self.layout.span()
    }
}

/// A candidate with two independently cached preparation levels.
///
/// * `info` — validation + component snapshots. Goes stale only when one
///   of the candidate's components actually merges (an applied reveal
///   whose merged component contains one of this candidate's endpoints).
/// * `layout` — the located block positions. Additionally goes stale
///   whenever an applied span overlaps this candidate's span: the
///   applied block move shifted positions inside the overlap (even for
///   components it did not touch — foreign blocks in its gap shift by
///   the mover's length).
///
/// Invariant: `layout.is_some()` implies `info.is_some()`.
#[derive(Debug)]
struct Candidate {
    event: RevealEvent,
    info: Option<MergeInfo>,
    layout: Option<MergeLayout>,
}

/// Groups consecutive reveals into maximal batches of span-disjoint
/// merges, preparing candidates in parallel.
///
/// The planner owns the look-ahead queue: the engine [`push`]es reveals
/// pulled from the adversary and calls [`plan_batch`] in a loop. The
/// look-ahead window adapts between 1 and the configured maximum: it
/// grows (gently, with hysteresis) while whole windows seal
/// conflict-free — the steady state of a sharded workload — and
/// collapses toward the sealed size when conflicts are dense, down to
/// exactly 1 (no speculative look-ahead at all) when batches degenerate,
/// bounding wasted speculative peeks.
///
/// [`push`]: BatchPlanner::push
/// [`plan_batch`]: BatchPlanner::plan_batch
#[derive(Debug)]
pub struct BatchPlanner {
    queue: VecDeque<Candidate>,
    window: usize,
    window_max: usize,
    /// Consecutive rounds in which the whole examined window sealed.
    full_seals: u32,
    /// Consecutive probes that collapsed straight back to a batch of
    /// one. Each failure doubles the quiet period before the next probe
    /// (capped by [`MAX_COLLAPSE_STREAK`]), so a permanently
    /// conflict-dense workload pays a vanishing probe tax instead of
    /// re-peeking a doomed speculative candidate every few reveals.
    collapse_streak: u32,
    /// How candidate peeks snapshot the merging components.
    mode: SnapshotMode,
    /// Test hook: seal the whole validated window *without* the
    /// `ConflictGraph` disjointness check. Exists solely so regression
    /// tests can drive an overlapping-span batch into the executor and
    /// prove the debug-build shadow checker catches it downstream.
    unchecked_sealing: bool,
}

impl BatchPlanner {
    /// A planner with the given maximal look-ahead window (clamped to at
    /// least 1). The engine uses 1 for adaptive adversaries — every
    /// reveal may depend on the arrangement after the previous one — and
    /// the configured window for oblivious ones.
    #[must_use]
    pub fn new(window_max: usize) -> Self {
        let window_max = window_max.max(1);
        BatchPlanner {
            queue: VecDeque::new(),
            window: window_max.min(64),
            window_max,
            full_seals: 0,
            collapse_streak: 0,
            mode: SnapshotMode::Eager,
            unchecked_sealing: false,
        }
    }

    /// Test hook: disables the `ConflictGraph` disjointness check so the
    /// whole validated window seals even when spans overlap. Only for
    /// regression tests of the downstream shadow checker — never enable
    /// this in serving code.
    #[doc(hidden)]
    #[must_use]
    pub fn unchecked_sealing(mut self, on: bool) -> Self {
        self.unchecked_sealing = on;
        self
    }

    /// Sets how candidate peeks snapshot the merging components
    /// (default [`SnapshotMode::Eager`]). The engine selects
    /// [`SnapshotMode::Lazy`] when the algorithm, the backend and the
    /// topology all support serving from size-only snapshots.
    #[must_use]
    pub fn snapshot_mode(mut self, mode: SnapshotMode) -> Self {
        self.mode = mode;
        self
    }

    /// Snapshot of the adaptive-window tuning state `(window, full_seals,
    /// collapse_streak)` — what a checkpoint must persist so a restored
    /// session resumes the same batch-size trajectory. The look-ahead
    /// queue is deliberately **not** part of it: checkpoints are taken at
    /// drained-queue points ([`BatchPlanner::is_empty`]), so queued
    /// candidates never need to survive a process boundary.
    #[must_use]
    pub fn tuning(&self) -> (usize, u32, u32) {
        (self.window, self.full_seals, self.collapse_streak)
    }

    /// Restores the adaptive-window tuning state captured by
    /// [`BatchPlanner::tuning`]. Out-of-range values are clamped to the
    /// planner's invariants (`1 ≤ window ≤ window_max`,
    /// `collapse_streak ≤ MAX_COLLAPSE_STREAK`) rather than rejected —
    /// tuning only steers performance, never correctness.
    pub fn restore_tuning(&mut self, window: usize, full_seals: u32, collapse_streak: u32) {
        self.window = window.clamp(1, self.window_max);
        self.full_seals = full_seals;
        self.collapse_streak = collapse_streak.min(MAX_COLLAPSE_STREAK);
    }

    /// Discards every queued candidate (used by the session layer to
    /// drop speculative look-ahead after a failed apply, so the session
    /// stays usable for queries and checkpointing).
    pub fn clear_queue(&mut self) {
        self.queue.clear();
    }

    /// Appends a reveal to the look-ahead queue.
    pub fn push(&mut self, event: RevealEvent) {
        self.queue.push_back(Candidate {
            event,
            info: None,
            layout: None,
        });
    }

    /// Number of queued (not yet served) reveals.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` when no reveals are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// How many reveals the engine should buffer ahead right now.
    #[must_use]
    pub fn refill_target(&self) -> usize {
        self.window
    }

    /// Prepares up to one window of queued reveals against the frozen
    /// `state`/`arr` (in parallel across `threads` workers when enough
    /// candidates lack cached preparation), seals the maximal prefix
    /// with pairwise-disjoint spans, and pops it off the queue.
    ///
    /// Guarantees at least one sealed reveal on success while the queue
    /// is non-empty, so the engine always makes progress.
    ///
    /// # Errors
    ///
    /// Returns the head reveal's validation error — by construction this
    /// is exactly the error the sequential loop would hit at this step.
    /// Validation errors of *later* candidates merely close the batch
    /// early (they surface, deterministically, once every reveal before
    /// them has been served).
    pub fn plan_batch<P>(
        &mut self,
        state: &GraphState,
        arr: &P,
        threads: usize,
    ) -> Result<Vec<PlannedReveal>, GraphError>
    where
        P: Arrangement + Sync,
    {
        let mut batch = Vec::new();
        self.plan_batch_into(state, arr, threads, &mut batch)?;
        Ok(batch)
    }

    /// [`plan_batch`](BatchPlanner::plan_batch) into a caller-owned
    /// buffer (cleared first). The engine reuses one buffer across
    /// rounds, so the parked (window-1) degraded mode performs **zero**
    /// heap allocations per reveal.
    ///
    /// # Errors
    ///
    /// Exactly those of [`plan_batch`](BatchPlanner::plan_batch).
    pub fn plan_batch_into<P>(
        &mut self,
        state: &GraphState,
        arr: &P,
        threads: usize,
        out: &mut Vec<PlannedReveal>,
    ) -> Result<(), GraphError>
    where
        P: Arrangement + Sync,
    {
        out.clear();
        let examined = self.queue.len().min(self.window);
        // Parked (window-1) degraded mode must be genuinely free: one
        // candidate can never conflict with itself, so skip ALL conflict
        // bookkeeping — no todo list, no span vector, no `ConflictGraph`.
        // This keeps the batched executor's per-reveal cost on
        // conflict-dense workloads at the sequential loop's plus a few
        // branches.
        if examined == 1 {
            if self.queue[0].layout.is_none() {
                match prepare(&self.queue[0], state, arr, self.mode)? {
                    Prepared::Fresh(info, layout) => {
                        self.queue[0].info = Some(info);
                        self.queue[0].layout = Some(layout);
                    }
                    Prepared::Relocated(layout) => self.queue[0].layout = Some(layout),
                }
            }
            // Still counts as a clean full seal, so the parked window
            // periodically probes for newly available parallelism.
            self.adapt_window(1, 1);
            // mla-lint: allow(panic-safety): examined == 1 implies the queue is non-empty
            let candidate = self.queue.pop_front().expect("examined == 1");
            out.push(PlannedReveal {
                event: candidate.event,
                // mla-lint: allow(panic-safety): the head candidate was prepared unconditionally above
                info: candidate.info.expect("prepared above"),
                // mla-lint: allow(panic-safety): the head candidate was prepared unconditionally above
                layout: candidate.layout.expect("prepared above"),
            });
            return Ok(());
        }
        // Bring every candidate in the window to full preparation. Two
        // job kinds: `peek` (validation + snapshots + locate, for empty
        // caches) and `locate` (re-locate only — the snapshots survived
        // the last batch, just the positions moved). Both are pure reads
        // of `state` and `arr`, so they run on worker threads.
        let todo: Vec<usize> = (0..examined)
            .filter(|&i| self.queue[i].layout.is_none())
            .collect();
        let prepared: Vec<Result<Prepared, GraphError>> =
            if threads > 1 && todo.len() >= PARALLEL_DISPATCH_MIN {
                let queue = &self.queue;
                let mode = self.mode;
                mla_runner::run_indexed(threads, todo.len(), |k| {
                    prepare(&queue[todo[k]], state, arr, mode)
                })
            } else {
                todo.iter()
                    .map(|&i| prepare(&self.queue[i], state, arr, self.mode))
                    .collect()
            };
        let mut blocked = examined; // first candidate that failed validation
        for (&i, result) in todo.iter().zip(prepared) {
            match result {
                Ok(Prepared::Fresh(info, layout)) => {
                    self.queue[i].info = Some(info);
                    self.queue[i].layout = Some(layout);
                }
                Ok(Prepared::Relocated(layout)) => self.queue[i].layout = Some(layout),
                Err(error) => {
                    if i == 0 {
                        return Err(error);
                    }
                    blocked = blocked.min(i);
                    break;
                }
            }
        }
        // Seal the maximal span-disjoint prefix of validated candidates.
        let spans: Vec<Range<usize>> = self
            .queue
            .iter()
            .take(blocked)
            .map_while(|c| c.layout.as_ref().map(MergeLayout::span))
            .collect();
        // `disjoint_prefix` cannot return 0 for a non-empty window: the
        // head candidate is validated (or its error was returned above)
        // and a merge span is never empty.
        let sealed = if self.unchecked_sealing {
            // Test hook: seal everything validated, overlaps included.
            spans.len().max(usize::from(examined > 0))
        } else {
            ConflictGraph::new(spans)
                .disjoint_prefix()
                .max(usize::from(examined > 0))
        };
        self.adapt_window(sealed, examined);
        out.extend(
            self.queue
                .drain(..sealed.min(self.queue.len()))
                .map(|candidate| PlannedReveal {
                    event: candidate.event,
                    // mla-lint: allow(panic-safety): sealed candidates were fully prepared before sealing
                    info: candidate.info.expect("sealed candidates are prepared"),
                    // mla-lint: allow(panic-safety): sealed candidates were fully prepared before sealing
                    layout: candidate.layout.expect("sealed candidates are prepared"),
                }),
        );
        Ok(())
    }

    /// Invalidates cached preparations made stale by the just-applied
    /// (and committed) batch, precisely:
    ///
    /// * a cached **layout** dies when an applied span overlaps it — the
    ///   applied block move shifted positions inside the overlap;
    /// * the cached **snapshots** additionally die only when one of the
    ///   candidate's endpoints now belongs to a component merged by the
    ///   batch — everything else kept its component untouched and only
    ///   needs the cheap re-locate.
    ///
    /// `state` must already reflect the batch's commits.
    pub fn retire_batch(&mut self, state: &GraphState, applied: &[PlannedReveal]) {
        if applied.is_empty() || self.queue.is_empty() {
            // Nothing cached to invalidate — in particular the parked
            // (window-1) mode, whose queue drains every round, pays
            // nothing here.
            return;
        }
        let mut sorted: Vec<(usize, usize)> = applied
            .iter()
            .map(|p| {
                let span = p.span();
                (span.start, span.end)
            })
            .collect();
        sorted.sort_unstable();
        // Post-commit representatives of the components the batch merged.
        let mut merged_roots: Vec<mla_permutation::Node> = applied
            .iter()
            .map(|p| state.component_id(p.event.a()))
            .collect();
        merged_roots.sort_unstable();
        for candidate in &mut self.queue {
            if let Some(layout) = &candidate.layout {
                let span = layout.span();
                let at = sorted.partition_point(|&(start, _)| start < span.start);
                let left_hit = at > 0 && sorted[at - 1].1 > span.start;
                let right_hit = at < sorted.len() && sorted[at].0 < span.end;
                if left_hit || right_hit {
                    candidate.layout = None;
                }
            }
            // The snapshot check runs for every cached candidate — also
            // those whose layout an *earlier* batch already invalidated:
            // their components may merge in any later batch.
            if candidate.info.is_some() {
                let touched = [candidate.event.a(), candidate.event.b()]
                    .into_iter()
                    .any(|v| merged_roots.binary_search(&state.component_id(v)).is_ok());
                if touched {
                    candidate.info = None;
                    candidate.layout = None;
                }
            }
        }
    }

    /// Full seals required before the window grows: the base hysteresis,
    /// doubled per consecutive failed probe (exponential backoff).
    fn required_seals(&self) -> u32 {
        GROW_AFTER_FULL_SEALS << self.collapse_streak.min(MAX_COLLAPSE_STREAK)
    }

    /// Tracks the sealable batch size: gentle multiplicative growth
    /// (×1.25) while whole windows seal cleanly, and a collapse to just
    /// above the sealed size on conflicts. Keeping the window close to
    /// the conflict-free capacity bounds the speculative look-ahead that
    /// the next batch will invalidate: a conflict-dense workload — e.g.
    /// uniform random merging, whose spans hull most of the arrangement —
    /// parks at a window of 1, where the pipeline degrades to the
    /// sequential loop plus a few branches. Each probe that collapses
    /// straight back doubles the quiet period before the next one
    /// ([`MAX_COLLAPSE_STREAK`] caps the exponent), so the steady-state
    /// probe tax on a permanently conflict-dense run is `O(1/3072)` per
    /// reveal instead of a fixed fraction.
    fn adapt_window(&mut self, sealed: usize, examined: usize) {
        if examined == 0 {
            return;
        }
        if sealed >= 2 {
            // Real parallelism sealed — probing is paying off again.
            self.collapse_streak = 0;
        }
        if sealed >= examined {
            self.full_seals += 1;
            if self.full_seals >= self.required_seals() && examined == self.window {
                self.window = (self.window + (self.window / 4).max(1)).min(self.window_max);
                self.full_seals = 0;
            }
        } else {
            self.full_seals = 0;
            // Parking at exactly 1 when batches collapse matters: at
            // window 1 the pipeline carries no speculative look-ahead at
            // all, so the degraded mode costs only the batch bookkeeping.
            self.window = if sealed <= 1 {
                self.collapse_streak = (self.collapse_streak + 1).min(MAX_COLLAPSE_STREAK);
                1
            } else {
                (sealed + sealed / 8 + 1).min(self.window)
            };
        }
    }
}

/// Result of one preparation job.
enum Prepared {
    /// Fresh validation + snapshots + locate.
    Fresh(MergeInfo, MergeLayout),
    /// Cached snapshots were still valid; only the locate was redone.
    Relocated(MergeLayout),
}

/// The pure per-candidate preparation job: validate + snapshot + locate,
/// or — when the candidate's snapshots survived the last batch — just
/// re-locate. (A candidate with surviving snapshots is still a valid
/// merge: its components were untouched, and components only ever grow
/// together, never apart.)
fn prepare<P>(
    candidate: &Candidate,
    state: &GraphState,
    arr: &P,
    mode: SnapshotMode,
) -> Result<Prepared, GraphError>
where
    P: Arrangement + Sync,
{
    match &candidate.info {
        Some(info) => Ok(Prepared::Relocated(MergeLayout::locate(arr, info))),
        None => {
            let info = state.peek_with(candidate.event, mode)?;
            let layout = MergeLayout::locate(arr, &info);
            Ok(Prepared::Fresh(info, layout))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_graph::Topology;
    use mla_permutation::{Node, Permutation};

    fn ev(a: usize, b: usize) -> RevealEvent {
        RevealEvent::new(Node::new(a), Node::new(b))
    }

    #[test]
    fn conflict_graph_prefix_and_pairs() {
        let graph = ConflictGraph::new(vec![2..4, 8..10, 0..2, 3..6]);
        assert_eq!(graph.len(), 4);
        assert!(!graph.is_empty());
        assert!(!graph.conflicts(0, 1));
        assert!(!graph.conflicts(0, 2)); // 2..4 and 0..2 touch, no overlap
        assert!(graph.conflicts(0, 3));
        assert_eq!(graph.disjoint_prefix(), 3);
        assert!(!graph.is_pairwise_disjoint());
        assert!(ConflictGraph::new(vec![]).is_empty());
        assert_eq!(ConflictGraph::new(vec![]).disjoint_prefix(), 0);
        assert!(ConflictGraph::new(vec![0..1, 5..9, 2..5]).is_pairwise_disjoint());
    }

    #[test]
    fn planner_seals_disjoint_prefix_in_order() {
        // Identity arrangement over 12 singleton cliques. Merges (0,1),
        // (4,5), (8,9) have disjoint spans; (1,4) overlaps the first two.
        let state = GraphState::new(Topology::Cliques, 12);
        let arr = Permutation::identity(12);
        let mut planner = BatchPlanner::new(8);
        for event in [ev(0, 1), ev(4, 5), ev(8, 9), ev(1, 4), ev(10, 11)] {
            planner.push(event);
        }
        let batch = planner.plan_batch(&state, &arr, 1).unwrap();
        let events: Vec<RevealEvent> = batch.iter().map(|p| p.event).collect();
        assert_eq!(events, vec![ev(0, 1), ev(4, 5), ev(8, 9)]);
        assert!(
            ConflictGraph::new(batch.iter().map(PlannedReveal::span).collect())
                .is_pairwise_disjoint()
        );
        assert_eq!(planner.queued(), 2);
    }

    #[test]
    fn planner_reports_head_validation_error() {
        let state = GraphState::new(Topology::Cliques, 4);
        let arr = Permutation::identity(4);
        let mut planner = BatchPlanner::new(4);
        planner.push(ev(1, 1));
        let error = planner.plan_batch(&state, &arr, 1).unwrap_err();
        assert_eq!(error, GraphError::SelfLoop { node: Node::new(1) });
    }

    #[test]
    fn later_validation_errors_only_close_the_batch() {
        let state = GraphState::new(Topology::Cliques, 8);
        let arr = Permutation::identity(8);
        let mut planner = BatchPlanner::new(8);
        for event in [ev(0, 1), ev(2, 2), ev(4, 5)] {
            planner.push(event);
        }
        let batch = planner.plan_batch(&state, &arr, 1).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].event, ev(0, 1));
        // The invalid reveal is now at the head; the next round reports it.
        let error = planner.plan_batch(&state, &arr, 1).unwrap_err();
        assert_eq!(error, GraphError::SelfLoop { node: Node::new(2) });
    }

    #[test]
    fn retire_batch_invalidates_precisely() {
        let mut state = GraphState::new(Topology::Cliques, 12);
        let arr = Permutation::identity(12);
        let mut planner = BatchPlanner::new(8);
        // (0,5) spans 0..6; (6,7) is disjoint; (0,1) and (2,3) overlap
        // the applied span, but only (0,1) shares a merged component.
        for event in [ev(0, 5), ev(6, 7), ev(0, 1), ev(2, 3)] {
            planner.push(event);
        }
        let batch = planner.plan_batch(&state, &arr, 1).unwrap();
        assert_eq!(batch.len(), 2);
        for planned in &batch {
            state.commit(planned.event);
        }
        planner.retire_batch(&state, &batch);
        // (0,1): span overlapped AND endpoint 0 is in the merged {0,5}
        // component → both cache levels dropped.
        assert!(planner.queue[0].layout.is_none());
        assert!(planner.queue[0].info.is_none());
        // (2,3): span overlapped (it sits inside 0..6) but neither
        // endpoint merged → snapshots survive, layout does not.
        assert!(planner.queue[1].layout.is_none());
        assert!(planner.queue[1].info.is_some());
    }

    #[test]
    fn window_adapts_up_and_down() {
        let mut planner = BatchPlanner::new(4096);
        let start = planner.refill_target();
        // Growth needs consecutive fully sealed windows (hysteresis)…
        for _ in 0..GROW_AFTER_FULL_SEALS - 1 {
            planner.adapt_window(start, start);
            assert_eq!(planner.refill_target(), start);
        }
        planner.adapt_window(start, start);
        let grown = planner.refill_target();
        assert_eq!(grown, start + (start / 4).max(1));
        // …a partial seal collapses it to just above the sealed size…
        planner.adapt_window(24, grown);
        assert_eq!(planner.refill_target(), 24 + 3 + 1);
        // …and a collapsed batch parks it at exactly 1 (no speculative
        // look-ahead at all in degraded mode).
        planner.adapt_window(1, planner.refill_target());
        assert_eq!(planner.refill_target(), 1);
        // Parked at 1 after one collapse, the quiet period before the
        // next probe doubles once: 2 × GROW_AFTER_FULL_SEALS clean
        // rounds, not GROW_AFTER_FULL_SEALS.
        for _ in 0..GROW_AFTER_FULL_SEALS {
            planner.adapt_window(1, 1);
        }
        assert_eq!(planner.refill_target(), 1);
        for _ in 0..GROW_AFTER_FULL_SEALS {
            planner.adapt_window(1, 1);
        }
        assert_eq!(planner.refill_target(), 2);
        // A failed probe doubles the backoff again (collapse streak 2 →
        // 4 × GROW_AFTER_FULL_SEALS clean rounds before the next)…
        planner.adapt_window(1, 2);
        assert_eq!(planner.refill_target(), 1);
        for _ in 0..4 * GROW_AFTER_FULL_SEALS - 1 {
            planner.adapt_window(1, 1);
            assert_eq!(planner.refill_target(), 1);
        }
        planner.adapt_window(1, 1);
        assert_eq!(planner.refill_target(), 2);
        // …while a probe that seals real parallelism resets the backoff
        // entirely.
        planner.adapt_window(2, 2);
        planner.adapt_window(1, planner.refill_target());
        for _ in 0..2 * GROW_AFTER_FULL_SEALS {
            planner.adapt_window(1, 1);
        }
        assert_eq!(planner.refill_target(), 2);
        let mut capped = BatchPlanner::new(32);
        for _ in 0..20 {
            let w = capped.refill_target();
            capped.adapt_window(w, w);
        }
        assert_eq!(capped.refill_target(), 32);
    }
}
