//! The experiment framework: every theorem, lemma and figure of the paper
//! maps to one [`Experiment`] that prints tables.
//!
//! Experiments execute their repetition loops through the deterministic
//! [`Campaign`](mla_runner::Campaign) runner: the context carries a
//! worker-thread count and (optionally) a [`RunSink`] collecting per-run
//! artifact records. Results are bit-identical for every thread count —
//! see `mla-runner`'s crate docs for the guarantee and `tests/determinism.rs`
//! for the enforcement.

use std::sync::Arc;

use mla_runner::{Campaign, RunRecord, RunSink, SeedSequence};

use crate::table::Table;

/// How much work an experiment run performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Sub-second smoke run (used by `cargo bench` and integration tests).
    Tiny,
    /// Seconds-scale run with meaningful statistics (binary default).
    #[default]
    Quick,
    /// Minutes-scale run reproducing `EXPERIMENTS.md` (binary `--full`).
    Full,
}

impl Scale {
    /// Lower-case label, used in artifact metadata.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }
}

/// Run-time parameters shared by all experiments.
///
/// Construct with [`ExperimentContext::new`] and the `with_*` builders;
/// the artifact sink is deliberately not public so that experiments can
/// only reach it through [`record`](ExperimentContext::record).
#[derive(Debug, Clone, Default)]
pub struct ExperimentContext {
    /// Work scale.
    pub scale: Scale,
    /// Base seed; all randomness derives deterministically from it via
    /// [`SeedSequence`].
    pub seed: u64,
    /// Campaign worker threads; `0` means available parallelism. The
    /// thread count never affects results, only wall-clock time.
    pub threads: usize,
    sink: Option<Arc<RunSink>>,
}

impl ExperimentContext {
    /// A context at the given scale and base seed, with automatic thread
    /// count and no artifact sink.
    #[must_use]
    pub fn new(scale: Scale, seed: u64) -> Self {
        ExperimentContext {
            scale,
            seed,
            threads: 0,
            sink: None,
        }
    }

    /// Sets the campaign worker count (`0` = available parallelism).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Installs an artifact sink collecting per-run [`RunRecord`]s.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<RunSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Picks one of three values by scale.
    #[must_use]
    pub fn pick<T: Copy>(&self, tiny: T, quick: T, full: T) -> T {
        match self.scale {
            Scale::Tiny => tiny,
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }

    /// The root seed sequence for this context.
    #[must_use]
    pub fn seeds(&self) -> SeedSequence {
        SeedSequence::new(self.seed)
    }

    /// A campaign rooted at the labelled child stream (one label per
    /// experiment phase keeps streams independent across experiments).
    #[must_use]
    pub fn campaign(&self, label: &str) -> Campaign {
        Campaign::new(self.seeds().child_str(label)).threads(self.threads)
    }

    /// Records one run into the artifact sink, if one is installed.
    pub fn record(&self, record: RunRecord) {
        if let Some(sink) = &self.sink {
            sink.push(record);
        }
    }
}

/// One reproducible experiment.
pub trait Experiment {
    /// Stable identifier, e.g. `"E-T2"`.
    fn id(&self) -> &'static str;

    /// Human-readable one-line title.
    fn title(&self) -> &'static str;

    /// The paper result this reproduces, e.g. `"Theorem 2"`.
    fn paper_ref(&self) -> &'static str;

    /// Runs the experiment, returning one or more tables.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`](crate::SimError) when a run inside the
    /// experiment fails — a malformed (streamed) reveal, a feasibility
    /// violation, or an offline solver rejecting its input. Experiment
    /// hot paths propagate these instead of panicking mid-campaign.
    fn run(&self, ctx: &ExperimentContext) -> Result<Vec<Table>, crate::SimError>;
}

/// All experiments in presentation order.
#[must_use]
pub fn all_experiments() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(crate::experiments::e_f1::FigureOne),
        Box::new(crate::experiments::e_f2::FigureTwo),
        Box::new(crate::experiments::e_l3::LemmaThree),
        Box::new(crate::experiments::e_l5::HarmonicLemmas),
        Box::new(crate::experiments::e_l10::LemmaTen),
        Box::new(crate::experiments::e_t1::TheoremOne),
        Box::new(crate::experiments::e_t2::TheoremTwo),
        Box::new(crate::experiments::e_t8::TheoremEight),
        Box::new(crate::experiments::e_t15::TheoremFifteen),
        Box::new(crate::experiments::e_t16::TheoremSixteen),
        Box::new(crate::experiments::e_abl::Ablation),
        Box::new(crate::experiments::e_opt::OptCrossCheck),
        Box::new(crate::experiments::e_gen::GeneralGraphs),
        Box::new(crate::experiments::e_heur::HeuristicGap),
        Box::new(crate::experiments::e_scale::Scaling),
        Box::new(crate::experiments::e_ratio::CertifiedRatio),
    ]
}

/// Finds an experiment by (case-insensitive) id.
#[must_use]
pub fn find_experiment(id: &str) -> Option<Box<dyn Experiment>> {
    all_experiments()
        .into_iter()
        .find(|e| e.id().eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_findable() {
        let experiments = all_experiments();
        let mut ids: Vec<&str> = experiments.iter().map(|e| e.id()).collect();
        assert_eq!(ids.len(), 16);
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 16, "duplicate experiment ids");
        assert!(find_experiment("e-t2").is_some());
        assert!(find_experiment("E-T16").is_some());
        assert!(find_experiment("nope").is_none());
    }

    #[test]
    fn context_pick_by_scale() {
        let mut ctx = ExperimentContext::default();
        assert_eq!(ctx.scale, Scale::Quick);
        assert_eq!(ctx.pick(1, 2, 3), 2);
        ctx.scale = Scale::Tiny;
        assert_eq!(ctx.pick(1, 2, 3), 1);
        ctx.scale = Scale::Full;
        assert_eq!(ctx.pick(1, 2, 3), 3);
    }

    #[test]
    fn context_builders_and_sink() {
        let sink = Arc::new(RunSink::new());
        let ctx = ExperimentContext::new(Scale::Tiny, 7)
            .with_threads(3)
            .with_sink(Arc::clone(&sink));
        assert_eq!(ctx.threads, 3);
        ctx.record(RunRecord::new("r", 1).metric("x", 2.0));
        assert_eq!(sink.len(), 1);
        // Without a sink, record() is a no-op.
        ExperimentContext::new(Scale::Tiny, 7).record(RunRecord::new("r", 1));
    }

    #[test]
    fn campaigns_derive_independent_streams_per_label() {
        let ctx = ExperimentContext::new(Scale::Tiny, 42);
        let a = ctx.campaign("E-T2").seeds();
        let b = ctx.campaign("E-T8").seeds();
        assert_ne!(a.seed(0), b.seed(0));
        assert_eq!(a, ctx.campaign("E-T2").seeds());
    }

    #[test]
    fn scale_labels() {
        assert_eq!(Scale::Tiny.label(), "tiny");
        assert_eq!(Scale::Quick.label(), "quick");
        assert_eq!(Scale::Full.label(), "full");
    }
}
