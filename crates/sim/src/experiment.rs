//! The experiment framework: every theorem, lemma and figure of the paper
//! maps to one [`Experiment`] that prints tables.

use crate::table::Table;

/// How much work an experiment run performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Sub-second smoke run (used by `cargo bench` and integration tests).
    Tiny,
    /// Seconds-scale run with meaningful statistics (binary default).
    #[default]
    Quick,
    /// Minutes-scale run reproducing `EXPERIMENTS.md` (binary `--full`).
    Full,
}

/// Run-time parameters shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExperimentContext {
    /// Work scale.
    pub scale: Scale,
    /// Base seed; all randomness derives deterministically from it.
    pub seed: u64,
}

impl ExperimentContext {
    /// Picks one of three values by scale.
    #[must_use]
    pub fn pick<T: Copy>(&self, tiny: T, quick: T, full: T) -> T {
        match self.scale {
            Scale::Tiny => tiny,
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// One reproducible experiment.
pub trait Experiment {
    /// Stable identifier, e.g. `"E-T2"`.
    fn id(&self) -> &'static str;

    /// Human-readable one-line title.
    fn title(&self) -> &'static str;

    /// The paper result this reproduces, e.g. `"Theorem 2"`.
    fn paper_ref(&self) -> &'static str;

    /// Runs the experiment, returning one or more tables.
    fn run(&self, ctx: &ExperimentContext) -> Vec<Table>;
}

/// All experiments in presentation order.
#[must_use]
pub fn all_experiments() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(crate::experiments::e_f1::FigureOne),
        Box::new(crate::experiments::e_f2::FigureTwo),
        Box::new(crate::experiments::e_l3::LemmaThree),
        Box::new(crate::experiments::e_l5::HarmonicLemmas),
        Box::new(crate::experiments::e_l10::LemmaTen),
        Box::new(crate::experiments::e_t1::TheoremOne),
        Box::new(crate::experiments::e_t2::TheoremTwo),
        Box::new(crate::experiments::e_t8::TheoremEight),
        Box::new(crate::experiments::e_t15::TheoremFifteen),
        Box::new(crate::experiments::e_t16::TheoremSixteen),
        Box::new(crate::experiments::e_abl::Ablation),
        Box::new(crate::experiments::e_opt::OptCrossCheck),
        Box::new(crate::experiments::e_gen::GeneralGraphs),
        Box::new(crate::experiments::e_heur::HeuristicGap),
    ]
}

/// Finds an experiment by (case-insensitive) id.
#[must_use]
pub fn find_experiment(id: &str) -> Option<Box<dyn Experiment>> {
    all_experiments()
        .into_iter()
        .find(|e| e.id().eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_findable() {
        let experiments = all_experiments();
        let mut ids: Vec<&str> = experiments.iter().map(|e| e.id()).collect();
        assert_eq!(ids.len(), 14);
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 14, "duplicate experiment ids");
        assert!(find_experiment("e-t2").is_some());
        assert!(find_experiment("E-T16").is_some());
        assert!(find_experiment("nope").is_none());
    }

    #[test]
    fn context_pick_by_scale() {
        let mut ctx = ExperimentContext::default();
        assert_eq!(ctx.scale, Scale::Quick);
        assert_eq!(ctx.pick(1, 2, 3), 2);
        ctx.scale = Scale::Tiny;
        assert_eq!(ctx.pick(1, 2, 3), 1);
        ctx.scale = Scale::Full;
        assert_eq!(ctx.pick(1, 2, 3), 3);
    }
}
