//! Simulation errors.

use std::error::Error;
use std::fmt;

use mla_graph::GraphError;

/// Error produced while driving a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The adversary emitted an invalid reveal.
    Graph(GraphError),
    /// The algorithm's permutation was not a MinLA of the revealed graph
    /// after serving a reveal (feasibility checking was enabled).
    FeasibilityViolation {
        /// 1-based index of the offending reveal.
        step: usize,
        /// The algorithm's name.
        algorithm: String,
    },
    /// The algorithm's permutation does not cover the instance's nodes.
    SizeMismatch {
        /// Nodes in the instance.
        expected: usize,
        /// Nodes in the algorithm's permutation.
        actual: usize,
    },
    /// A [`RunOutcome`](crate::RunOutcome) produced with event recording
    /// disabled was asked for its event sequence.
    EventsNotRecorded,
    /// A permutation construction inside an experiment failed.
    Permutation(mla_permutation::PermutationError),
    /// An offline solver invoked by an experiment rejected its input.
    Offline(mla_offline::OfflineError),
    /// Any other failure inside an experiment, carried as a message
    /// (e.g. the general-graphs crate's boxed errors).
    Other(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Graph(e) => write!(f, "invalid reveal: {e}"),
            SimError::FeasibilityViolation { step, algorithm } => {
                write!(
                    f,
                    "{algorithm} violated the MinLA invariant at reveal {step}"
                )
            }
            SimError::SizeMismatch { expected, actual } => {
                write!(
                    f,
                    "algorithm permutation covers {actual} nodes, instance has {expected}"
                )
            }
            SimError::EventsNotRecorded => {
                write!(f, "run outcome was produced with event recording disabled")
            }
            SimError::Permutation(e) => write!(f, "invalid permutation: {e}"),
            SimError::Offline(e) => write!(f, "offline solver rejected its input: {e}"),
            SimError::Other(message) => write!(f, "{message}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Graph(e) => Some(e),
            SimError::Permutation(e) => Some(e),
            SimError::Offline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for SimError {
    fn from(e: GraphError) -> Self {
        SimError::Graph(e)
    }
}

impl From<mla_permutation::PermutationError> for SimError {
    fn from(e: mla_permutation::PermutationError) -> Self {
        SimError::Permutation(e)
    }
}

impl From<mla_offline::OfflineError> for SimError {
    fn from(e: mla_offline::OfflineError) -> Self {
        SimError::Offline(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_permutation::Node;

    #[test]
    fn display_and_source() {
        let graph_error = GraphError::SelfLoop { node: Node::new(1) };
        let error = SimError::from(graph_error);
        assert_eq!(
            error.to_string(),
            "invalid reveal: reveal connects v1 to itself"
        );
        assert!(error.source().is_some());
        let violation = SimError::FeasibilityViolation {
            step: 3,
            algorithm: "stub".into(),
        };
        assert_eq!(
            violation.to_string(),
            "stub violated the MinLA invariant at reveal 3"
        );
        assert!(violation.source().is_none());
    }
}
