//! `E-T16`: Theorem 16 — the adaptive middle-node adversary forces `Det`
//! to pay `Ω(n²)` while `Opt = O(n)`, so `Det` is `Ω(n)`-competitive.
//!
//! This is the paper's headline separation: on the same (recorded)
//! sequence, the randomized algorithm stays logarithmic. Columns
//! `det-ratio / n` and `rand-ratio / ln n` should both be roughly flat.

use mla_adversary::DetLineAdversary;
use mla_core::{DetClosest, RandLines};
use mla_graph::Topology;
use mla_offline::{offline_optimum, LopConfig};
use mla_permutation::Permutation;
use mla_runner::RunRecord;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::engine::Simulation;
use crate::error::SimError;
use crate::experiment::{Experiment, ExperimentContext};
use crate::experiments::{expected_cost, f2, f3, run_label, try_results, zip_seeds};
use crate::table::Table;

/// The Theorem 16 reproduction.
#[derive(Debug, Clone, Copy, Default)]
pub struct TheoremSixteen;

impl Experiment for TheoremSixteen {
    fn id(&self) -> &'static str {
        "E-T16"
    }

    fn title(&self) -> &'static str {
        "Adaptive line adversary: Det pays Ω(n²), Rand stays logarithmic"
    }

    fn paper_ref(&self) -> &'static str {
        "Theorem 16 (with Theorem 8 as contrast)"
    }

    fn run(&self, ctx: &ExperimentContext) -> Result<Vec<Table>, SimError> {
        let ns: &[usize] = ctx.pick(
            &[9, 17][..],
            &[9, 17, 33, 65, 129][..],
            &[9, 17, 33, 65, 129, 257, 513][..],
        );
        let trials = ctx.pick(5, 40, 150);
        let mut table = Table::new(
            "E-T16: Det vs Rand on the Theorem 16 adversary (pi0 = identity)",
            &[
                "n",
                "det-cost",
                "opt",
                "det-ratio",
                "det-ratio/n",
                "E[rand]",
                "rand-ratio",
                "rand-ratio/ln n",
            ],
        );
        // One spec per n: the adaptive Det run plus Rand's trials on the
        // recorded sequence.
        let campaign = ctx.campaign("E-T16");
        let results = campaign.run(ns, |&n, seeds| {
            let pi0 = Permutation::identity(n);
            // Run Det against the adaptive adversary.
            let adversary = DetLineAdversary::new(pi0.clone(), Topology::Lines);
            let det = DetClosest::new(pi0.clone(), LopConfig::default());
            let outcome = Simulation::with_adversary(Box::new(adversary), det)
                .check_feasibility(true)
                .run()?;
            // The recorded sequence, as an oblivious instance.
            let instance = outcome.to_instance(Topology::Lines, n)?;
            let opt = offline_optimum(&instance, &pi0, &LopConfig::default())?;
            let opt_value = opt.upper.max(1);
            // Rand on the same (recorded) sequence.
            let rand_stats = expected_cost(&instance, trials, seeds.child_str("coins"), |seed| {
                RandLines::new(pi0.clone(), SmallRng::seed_from_u64(seed))
            })?;
            Ok((outcome.total_cost, opt_value, rand_stats.mean()))
        });
        let results = try_results(results)?;
        for (&n, seeds, &(det_cost, opt_value, rand_mean)) in zip_seeds(ns, &campaign, &results) {
            ctx.record(
                RunRecord::new(run_label("adaptive-line", "Det+Rand", n, 0), seeds.key())
                    .metric("det_cost", det_cost as f64)
                    .metric("opt", opt_value as f64)
                    .metric("rand_mean_cost", rand_mean),
            );
            let det_ratio = det_cost as f64 / opt_value as f64;
            let rand_ratio = rand_mean / opt_value as f64;
            table.row(&[
                &n.to_string(),
                &det_cost.to_string(),
                &opt_value.to_string(),
                &f2(det_ratio),
                &f3(det_ratio / n as f64),
                &f2(rand_mean),
                &f2(rand_ratio),
                &f3(rand_ratio / (n as f64).ln()),
            ]);
        }
        table.note("det-ratio/n roughly flat => Det is Θ(n)-competitive here (Thm 16 tight)");
        table.note("rand-ratio/ln n roughly flat => Rand stays logarithmic on the same sequence");
        Ok(vec![table])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Scale;

    #[test]
    fn det_ratio_grows_with_n() {
        let ctx = ExperimentContext::new(Scale::Quick, 5);
        let tables = TheoremSixteen.run(&ctx).unwrap();
        let csv = tables[0].to_csv();
        let rows: Vec<Vec<f64>> = csv
            .lines()
            .skip(1)
            .map(|line| line.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        // det-ratio (column 3) must grow substantially from first to last n.
        let first = rows.first().unwrap()[3];
        let last = rows.last().unwrap()[3];
        assert!(
            last > 2.0 * first,
            "Det ratio should grow linearly: first {first}, last {last}"
        );
        // rand-ratio (column 6) must grow much slower than det-ratio.
        let rand_last = rows.last().unwrap()[6];
        assert!(
            rand_last < last / 2.0,
            "Rand should beat Det at large n: rand {rand_last}, det {last}"
        );
    }
}
