//! `E-T1`: Theorem 1 — `Det` is `(2n−2)`-competitive on cliques and lines.
//!
//! Workloads are truncated to `n/2` reveals so the final graph keeps
//! several components and the offline reference stays positive. For lines
//! the optimum is exact; for cliques the measured cost is checked against
//! `(2n−2) · upper` where `upper` is the achievable offline bound (the
//! theorem implies `cost ≤ (2n−2)·Opt ≤ (2n−2)·upper`).

use mla_adversary::{random_clique_instance, random_line_instance, MergeShape};
use mla_core::DetClosest;
use mla_graph::{Instance, Topology};
use mla_offline::{offline_optimum, LopConfig};
use mla_permutation::Permutation;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::engine::Simulation;
use crate::experiment::{Experiment, ExperimentContext};
use crate::experiments::{check, f2};
use crate::table::Table;

/// The Theorem 1 reproduction.
#[derive(Debug, Clone, Copy, Default)]
pub struct TheoremOne;

impl Experiment for TheoremOne {
    fn id(&self) -> &'static str {
        "E-T1"
    }

    fn title(&self) -> &'static str {
        "Det: measured cost vs the (2n-2)·Opt guarantee"
    }

    fn paper_ref(&self) -> &'static str {
        "Theorem 1"
    }

    fn run(&self, ctx: &ExperimentContext) -> Vec<Table> {
        let ns: &[usize] = ctx.pick(&[8, 12][..], &[8, 12, 16, 20][..], &[8, 12, 16, 20, 24][..]);
        let instances_per_cell = ctx.pick(2, 5, 10);
        let mut table = Table::new(
            "E-T1: Det total cost vs (2n-2) x offline bounds",
            &[
                "n", "topology", "det-cost", "opt-lo", "opt-hi", "ratio-hi", "2n-2", "within",
            ],
        );
        for &n in ns {
            for topology in [Topology::Cliques, Topology::Lines] {
                let mut worst: Option<(u64, u64, u64, f64)> = None;
                for inst in 0..instances_per_cell {
                    let mut rng = SmallRng::seed_from_u64(ctx.seed ^ (n as u64) << 16 ^ inst << 4);
                    let full = match topology {
                        Topology::Cliques => {
                            random_clique_instance(n, MergeShape::Uniform, &mut rng)
                        }
                        Topology::Lines => random_line_instance(n, MergeShape::Uniform, &mut rng),
                    };
                    // Truncate to keep several final components.
                    let events = full.events()[..n / 2].to_vec();
                    let instance =
                        Instance::new(topology, n, events).expect("truncated prefix is valid");
                    let pi0 = Permutation::random(n, &mut rng);
                    let opt = offline_optimum(&instance, &pi0, &LopConfig::default())
                        .expect("sizes match");
                    let alg = DetClosest::new(pi0, LopConfig::default());
                    let outcome = Simulation::new(instance, alg)
                        .check_feasibility(true)
                        .run()
                        .expect("Det run is feasible");
                    let ratio_hi = outcome.total_cost as f64 / opt.upper.max(1) as f64;
                    if worst.is_none() || ratio_hi > worst.unwrap().3 {
                        worst = Some((outcome.total_cost, opt.lower, opt.upper, ratio_hi));
                    }
                }
                let (cost, lo, hi, ratio_hi) = worst.expect("at least one instance");
                let bound = (2 * n - 2) as f64;
                table.row(&[
                    &n.to_string(),
                    &topology.to_string(),
                    &cost.to_string(),
                    &lo.to_string(),
                    &hi.to_string(),
                    &f2(ratio_hi),
                    &f2(bound),
                    check(ratio_hi <= bound),
                ]);
            }
        }
        table.note("ratio-hi = det-cost / opt-hi; the theorem implies ratio-hi <= 2n-2");
        table.note(
            "Det stays far below its worst case on random workloads (Thm 16 probes the worst case)",
        );
        vec![table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Scale;

    #[test]
    fn tiny_run_respects_the_bound() {
        let ctx = ExperimentContext {
            scale: Scale::Tiny,
            seed: 3,
        };
        let tables = TheoremOne.run(&ctx);
        let csv = tables[0].to_csv();
        assert!(!csv.contains(",NO\n"), "bound violated:\n{csv}");
    }
}
