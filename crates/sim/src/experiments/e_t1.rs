//! `E-T1`: Theorem 1 — `Det` is `(2n−2)`-competitive on cliques and lines.
//!
//! Workloads are truncated to `n/2` reveals so the final graph keeps
//! several components and the offline reference stays positive. For lines
//! the optimum is exact; for cliques the measured cost is checked against
//! `(2n−2) · upper` where `upper` is the achievable offline bound (the
//! theorem implies `cost ≤ (2n−2)·Opt ≤ (2n−2)·upper`).

use mla_adversary::{random_clique_instance, random_line_instance, MergeShape};
use mla_core::DetClosest;
use mla_graph::{Instance, Topology};
use mla_offline::{offline_optimum, LopConfig};
use mla_permutation::Permutation;
use mla_runner::RunRecord;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::engine::Simulation;
use crate::error::SimError;
use crate::experiment::{Experiment, ExperimentContext};
use crate::experiments::{check, f2, run_label, try_results, worst_by, zip_seeds};
use crate::table::Table;

/// The Theorem 1 reproduction.
#[derive(Debug, Clone, Copy, Default)]
pub struct TheoremOne;

impl Experiment for TheoremOne {
    fn id(&self) -> &'static str {
        "E-T1"
    }

    fn title(&self) -> &'static str {
        "Det: measured cost vs the (2n-2)·Opt guarantee"
    }

    fn paper_ref(&self) -> &'static str {
        "Theorem 1"
    }

    fn run(&self, ctx: &ExperimentContext) -> Result<Vec<Table>, SimError> {
        let ns: &[usize] = ctx.pick(&[8, 12][..], &[8, 12, 16, 20][..], &[8, 12, 16, 20, 24][..]);
        let instances_per_cell = ctx.pick(2, 5, 10);
        let campaign = ctx.campaign("E-T1");
        let mut table = Table::new(
            "E-T1: Det total cost vs (2n-2) x offline bounds",
            &[
                "n", "topology", "det-cost", "opt-lo", "opt-hi", "ratio-hi", "2n-2", "within",
            ],
        );
        // One spec per (n, topology, instance): a single Det run each, an
        // embarrassingly-parallel campaign.
        let specs: Vec<(usize, Topology, u64)> = ns
            .iter()
            .flat_map(|&n| {
                [Topology::Cliques, Topology::Lines]
                    .into_iter()
                    .flat_map(move |topology| {
                        (0..instances_per_cell).map(move |inst| (n, topology, inst))
                    })
            })
            .collect();
        let results = campaign.run(&specs, |&(n, topology, _), seeds| {
            let mut rng = SmallRng::seed_from_u64(seeds.child_str("workload").seed(0));
            let full = match topology {
                Topology::Cliques => random_clique_instance(n, MergeShape::Uniform, &mut rng),
                Topology::Lines => random_line_instance(n, MergeShape::Uniform, &mut rng),
            };
            // Truncate to keep several final components.
            let events = full.events()[..n / 2].to_vec();
            let instance = Instance::new(topology, n, events)?;
            let pi0 = Permutation::random(n, &mut rng);
            let opt = offline_optimum(&instance, &pi0, &LopConfig::default())?;
            let alg = DetClosest::new(pi0, LopConfig::default());
            let outcome = Simulation::new(instance, alg)
                .check_feasibility(true)
                .run()?;
            Ok((outcome.total_cost, opt.lower, opt.upper))
        });
        let results = try_results(results)?;
        for (&(n, topology, inst), seeds, &(cost, lo, hi)) in zip_seeds(&specs, &campaign, &results)
        {
            ctx.record(
                RunRecord::new(
                    run_label(format!("{topology}-uniform"), "DetClosest", n, inst),
                    seeds.key(),
                )
                .metric("total_cost", cost as f64)
                .metric("opt_lower", lo as f64)
                .metric("opt_upper", hi as f64),
            );
        }
        for (cell, chunk) in results.chunks(instances_per_cell as usize).enumerate() {
            let (n, topology, _) = specs[cell * instances_per_cell as usize];
            let (cost, lo, hi) = worst_by(chunk, |&(c, _, h)| c as f64 / h.max(1) as f64);
            let ratio_hi = cost as f64 / hi.max(1) as f64;
            let bound = (2 * n - 2) as f64;
            table.row(&[
                &n.to_string(),
                &topology.to_string(),
                &cost.to_string(),
                &lo.to_string(),
                &hi.to_string(),
                &f2(ratio_hi),
                &f2(bound),
                check(ratio_hi <= bound),
            ]);
        }
        table.note("ratio-hi = det-cost / opt-hi; the theorem implies ratio-hi <= 2n-2");
        table.note(
            "Det stays far below its worst case on random workloads (Thm 16 probes the worst case)",
        );
        Ok(vec![table])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Scale;

    #[test]
    fn tiny_run_respects_the_bound() {
        let ctx = ExperimentContext::new(Scale::Tiny, 3);
        let tables = TheoremOne.run(&ctx).unwrap();
        let csv = tables[0].to_csv();
        assert!(!csv.contains(",NO\n"), "bound violated:\n{csv}");
    }
}
