//! `E-OPT`: cross-validation of the offline solver stack.
//!
//! Three independent implementations must agree on small instances:
//!
//! 1. the closed-form component optima `(m³−m)/6` and `m−1` versus the
//!    exact general-MinLA subset DP;
//! 2. `closest_feasible` (block placement DP) versus brute force over all
//!    feasible permutations;
//! 3. the clique OPT sandwich: `lower ≤ upper`, with the upper bound's
//!    permutation feasible at *every* step of the sequence.

use mla_adversary::{random_clique_instance, random_line_instance, MergeShape};
use mla_graph::{GraphState, Instance, Topology};
use mla_offline::{closest_feasible, minla_exact, offline_optimum, LopConfig};
use mla_permutation::Permutation;
use mla_runner::RunRecord;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::error::SimError;
use crate::experiment::{Experiment, ExperimentContext};
use crate::experiments::{check, run_label, try_results, zip_seeds};
use crate::table::Table;

/// The offline-solver cross-check.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptCrossCheck;

/// Brute-force minimum distance from `pi0` to any feasible permutation.
///
/// # Errors
///
/// Propagates [`PermutationError`] from permutation construction (the
/// enumerated index vectors are permutations by construction, so this
/// only fires if that invariant is broken).
fn brute_force_delta(
    state: &GraphState,
    pi0: &Permutation,
) -> Result<u64, mla_permutation::PermutationError> {
    let n = state.n();
    let mut best = u64::MAX;
    let mut indices: Vec<usize> = (0..n).collect();
    fn rec(
        indices: &mut Vec<usize>,
        at: usize,
        state: &GraphState,
        pi0: &Permutation,
        best: &mut u64,
    ) -> Result<(), mla_permutation::PermutationError> {
        if at == indices.len() {
            let perm = Permutation::from_indices(indices)?;
            if state.is_minla(&perm) {
                *best = (*best).min(pi0.kendall_distance(&perm));
            }
            return Ok(());
        }
        for i in at..indices.len() {
            indices.swap(at, i);
            rec(indices, at + 1, state, pi0, best)?;
            indices.swap(at, i);
        }
        Ok(())
    }
    rec(&mut indices, 0, state, pi0, &mut best)?;
    Ok(best)
}

impl Experiment for OptCrossCheck {
    fn id(&self) -> &'static str {
        "E-OPT"
    }

    fn title(&self) -> &'static str {
        "Offline solver stack: three-way cross-validation"
    }

    fn paper_ref(&self) -> &'static str {
        "Observation 7 (and the model's MinLA characterization)"
    }

    fn run(&self, ctx: &ExperimentContext) -> Result<Vec<Table>, SimError> {
        let cases = ctx.pick(5, 20, 60);
        let mut table = Table::new(
            "E-OPT: solver agreement over random instances",
            &["check", "cases", "agreements", "ok"],
        );

        let checks = [
            "closed-form optima == exact subset DP",
            "closest_feasible == brute force",
            "clique bounds sandwich + stepwise-feasible upper",
        ];
        // One spec per (check, case); every case is an independent random
        // instance cross-validated by two solvers.
        let specs: Vec<(usize, usize)> = (0..checks.len())
            .flat_map(|check_idx| (0..cases).map(move |case| (check_idx, case)))
            .collect();
        let campaign = ctx.campaign("E-OPT");
        let agreements = campaign.run(
            &specs,
            |&(check_idx, case), seeds| -> Result<bool, SimError> {
                let mut rng = SmallRng::seed_from_u64(seeds.child_str("instance").seed(0));
                match check_idx {
                    // 1. Closed forms vs exact subset DP.
                    0 => {
                        let n = 8 + (case % 5);
                        let instance = if case % 2 == 0 {
                            random_clique_instance(n, MergeShape::Uniform, &mut rng)
                        } else {
                            random_line_instance(n, MergeShape::Uniform, &mut rng)
                        };
                        // Truncate to keep several components.
                        let events = instance.events()[..n / 2].to_vec();
                        let truncated = Instance::new(instance.topology(), n, events)?;
                        let state = truncated.final_state();
                        let (exact, _) = minla_exact(n, &state.edges())?;
                        Ok(u128::from(exact) == state.minla_value())
                    }
                    // 2. closest_feasible vs brute force (n <= 7).
                    1 => {
                        let n = 6 + (case % 2);
                        let instance = if case % 2 == 0 {
                            random_clique_instance(n, MergeShape::Uniform, &mut rng)
                        } else {
                            random_line_instance(n, MergeShape::Uniform, &mut rng)
                        };
                        let events = instance.events()[..n / 2].to_vec();
                        let truncated = Instance::new(instance.topology(), n, events)?;
                        let state = truncated.final_state();
                        let pi0 = Permutation::random(n, &mut rng);
                        let placement = closest_feasible(&state, &pi0, &LopConfig::default())?;
                        Ok(placement.exact
                            && placement.distance == brute_force_delta(&state, &pi0)?)
                    }
                    // 3. Clique OPT sandwich and step-wise feasibility of the
                    //    upper bound's permutation.
                    _ => {
                        let n = 8 + (case % 5);
                        let instance = random_clique_instance(n, MergeShape::Uniform, &mut rng);
                        let pi0 = Permutation::random(n, &mut rng);
                        let bounds = offline_optimum(&instance, &pi0, &LopConfig::default())?;
                        let mut replay = GraphState::new(Topology::Cliques, n);
                        let mut feasible = replay.is_minla(&bounds.upper_perm);
                        for &event in instance.events() {
                            replay.apply(event)?;
                            feasible &= replay.is_minla(&bounds.upper_perm);
                        }
                        Ok(bounds.lower <= bounds.upper && feasible)
                    }
                }
            },
        );
        let agreements = try_results(agreements)?;
        for (&(check_idx, case), seeds, &ok) in zip_seeds(&specs, &campaign, &agreements) {
            // Mirror each check's own case-index → n mapping.
            let n = match check_idx {
                1 => 6 + (case % 2),
                _ => 8 + (case % 5),
            };
            ctx.record(
                RunRecord::new(
                    run_label(format!("solver-check-{check_idx}"), "case", n, case as u64),
                    seeds.key(),
                )
                .metric("agrees", f64::from(u8::from(ok))),
            );
        }
        for (check_idx, chunk) in agreements.chunks(cases).enumerate() {
            let agreed = chunk.iter().filter(|&&ok| ok).count();
            table.row(&[
                checks[check_idx],
                &cases.to_string(),
                &agreed.to_string(),
                check(agreed == cases),
            ]);
        }
        table.note("see also the property tests in mla-offline and tests/ for deeper coverage");
        Ok(vec![table])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Scale;

    #[test]
    fn all_cross_checks_pass() {
        let ctx = ExperimentContext::new(Scale::Tiny, 12);
        let tables = OptCrossCheck.run(&ctx).unwrap();
        let csv = tables[0].to_csv();
        assert!(!csv.contains(",NO\n"), "{csv}");
    }
}
