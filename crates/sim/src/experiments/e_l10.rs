//! `E-L10`: Lemma 10 — for any current line component `X` with more than
//! one node, the probability of observing orientation `→X` equals
//! `|L_{→X} ∩ L_{π0}| / C(|X|, 2)`.
//!
//! Same protocol as `E-L3`, with orientations instead of relative orders.

use mla_adversary::{random_line_instance, MergeShape};
use mla_core::{OnlineMinla, RandLines};
use mla_graph::GraphState;
use mla_permutation::{internal_concordant_pairs, Node, Permutation};
use mla_runner::RunRecord;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::error::SimError;
use crate::experiment::{Experiment, ExperimentContext};
use crate::experiments::{f4, run_label, trial_chunks};
use crate::table::Table;

/// The Lemma 10 invariant validation.
#[derive(Debug, Clone, Copy, Default)]
pub struct LemmaTen;

impl Experiment for LemmaTen {
    fn id(&self) -> &'static str {
        "E-L10"
    }

    fn title(&self) -> &'static str {
        "Lemma 10: component orientation probabilities match the closed form"
    }

    fn paper_ref(&self) -> &'static str {
        "Lemma 10"
    }

    fn run(&self, ctx: &ExperimentContext) -> Result<Vec<Table>, SimError> {
        let n = ctx.pick(8, 12, 16);
        let trials = ctx.pick(800, 5_000, 20_000);
        let mut rng = SmallRng::seed_from_u64(ctx.seeds().child_str("E-L10/workload").seed(0));
        let instance = random_line_instance(n, MergeShape::Uniform, &mut rng);
        let pi0 = Permutation::random(n, &mut rng);

        // Checkpoints: (event index, canonical path order, predicted
        // P[path reads in canonical order]).
        let mut predicted: Vec<(usize, Vec<Node>, f64)> = Vec::new();
        {
            let mut state = GraphState::new(instance.topology(), n);
            for (step, &event) in instance.events().iter().enumerate() {
                state.apply(event)?;
                for path in state.components() {
                    if path.len() < 2 {
                        continue;
                    }
                    let m = path.len() as u64;
                    let p =
                        internal_concordant_pairs(&pi0, &path) as f64 / (m * (m - 1) / 2) as f64;
                    predicted.push((step, path, p));
                }
            }
        }

        // Same chunked-campaign protocol as `E-L3`: fixed chunks, global
        // per-trial coin stream, thread-count invariant counts.
        let coins = ctx.seeds().child_str("E-L10/coins");
        let chunks = trial_chunks(trials);
        let partials = ctx.campaign("E-L10").run(&chunks, |range, _seeds| {
            let mut observed = vec![0u64; predicted.len()];
            for trial in range.clone() {
                let mut state = GraphState::new(instance.topology(), n);
                let mut alg =
                    RandLines::new(pi0.clone(), SmallRng::seed_from_u64(coins.seed(trial)));
                let mut cursor = 0usize;
                for (step, &event) in instance.events().iter().enumerate() {
                    let info = state.apply(event)?;
                    alg.serve(event, &info, &state);
                    while cursor < predicted.len() && predicted[cursor].0 == step {
                        let (_, ref path, _) = predicted[cursor];
                        // Forward orientation: path positions strictly increase.
                        let positions: Vec<usize> = path
                            .iter()
                            .map(|&v| alg.arrangement().position_of(v))
                            .collect();
                        if positions.windows(2).all(|w| w[0] < w[1]) {
                            observed[cursor] += 1;
                        }
                        cursor += 1;
                    }
                }
            }
            Ok::<_, SimError>(observed)
        });
        let partials: Vec<Vec<u64>> = partials.into_iter().collect::<Result<_, _>>()?;
        let mut observed = vec![0u64; predicted.len()];
        for (chunk, partial) in chunks.iter().zip(&partials) {
            for (total, count) in observed.iter_mut().zip(partial) {
                *total += count;
            }
            ctx.record(
                RunRecord::new(
                    run_label("lines-uniform", "RandLines", n, chunk.start),
                    coins.key(),
                )
                .metric("trials", (chunk.end - chunk.start) as f64)
                .metric("checkpoints", predicted.len() as f64),
            );
        }

        let mut max_dev = 0.0f64;
        let mut sum_dev = 0.0f64;
        for (idx, &(_, _, p)) in predicted.iter().enumerate() {
            let freq = observed[idx] as f64 / trials as f64;
            let dev = (freq - p).abs();
            sum_dev += dev;
            max_dev = max_dev.max(dev);
        }
        let mut table = Table::new(
            "E-L10: P[→X] vs |L_→X ∩ L_pi0| / C(|X|,2)",
            &["metric", "value"],
        );
        table.row(&["n", &n.to_string()]);
        table.row(&["trials", &trials.to_string()]);
        table.row(&[
            "tracked (step, component) checkpoints",
            &predicted.len().to_string(),
        ]);
        table.row(&[
            "mean |observed − predicted|",
            &f4(sum_dev / predicted.len().max(1) as f64),
        ]);
        table.row(&["max |observed − predicted|", &f4(max_dev)]);
        let tolerance = 3.5 * (0.25f64 / trials as f64).sqrt() + 0.01;
        table.row(&["tolerance (≈3.5σ)", &f4(tolerance)]);
        table.row(&[
            "within tolerance",
            if max_dev <= tolerance { "yes" } else { "NO" },
        ]);
        table.note("Lemma 10: orientation probabilities depend only on pi0");
        Ok(vec![table])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Scale;

    #[test]
    fn lemma10_holds_within_tolerance() {
        let ctx = ExperimentContext::new(Scale::Tiny, 6);
        let tables = LemmaTen.run(&ctx).unwrap();
        let csv = tables[0].to_csv();
        assert!(csv.contains("within tolerance,yes"), "{csv}");
    }
}
