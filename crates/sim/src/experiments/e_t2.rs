//! `E-T2`: Theorem 2 — `Rand` is `4 ln n`-competitive on cliques.
//!
//! For each instance we estimate `E[cost]` of `RandCliques` over many coin
//! trials and compare against the achievable offline reference `Δ_hier`
//! (the closest merge-tree-consistent permutation — see the Theorem 1/6
//! repair note in `DESIGN.md`): the repaired Theorem 6 guarantees
//! `E[cost] ≤ 4·H_n·d(π0, π_f)` for *every* step-wise-feasible final
//! permutation `π_f`, in particular the one our solver produces.

use mla_adversary::{random_clique_instance, MergeShape};
use mla_core::RandCliques;
use mla_offline::{offline_optimum, LopConfig};
use mla_permutation::Permutation;
use mla_runner::RunRecord;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::error::SimError;
use crate::experiment::{Experiment, ExperimentContext};
use crate::experiments::{check, expected_cost, f2, run_label, try_results, worst_by, zip_seeds};
use crate::stats::harmonic;
use crate::table::Table;

/// The Theorem 2 reproduction.
#[derive(Debug, Clone, Copy, Default)]
pub struct TheoremTwo;

impl Experiment for TheoremTwo {
    fn id(&self) -> &'static str {
        "E-T2"
    }

    fn title(&self) -> &'static str {
        "Rand on cliques: expected competitive ratio vs 4 ln n"
    }

    fn paper_ref(&self) -> &'static str {
        "Theorem 2 (+ Theorem 6)"
    }

    fn run(&self, ctx: &ExperimentContext) -> Result<Vec<Table>, SimError> {
        let ns: &[usize] = ctx.pick(
            &[16, 32][..],
            &[16, 32, 64, 128, 256][..],
            &[16, 32, 64, 128, 256, 512, 1024][..],
        );
        let instances_per_cell = ctx.pick(1, 3, 4);
        let trials = ctx.pick(10, 60, 200);
        let campaign = ctx.campaign("E-T2");
        let shapes = [
            MergeShape::Uniform,
            MergeShape::Sequential,
            MergeShape::Balanced,
        ];

        // One campaign spec per (n, shape, instance); the runner
        // parallelizes the cells, each job runs its coin trials inline.
        let specs: Vec<(usize, MergeShape, u64)> = ns
            .iter()
            .flat_map(|&n| {
                shapes.iter().flat_map(move |&shape| {
                    (0..instances_per_cell).map(move |inst| (n, shape, inst))
                })
            })
            .collect();
        let results = campaign.run(&specs, |&(n, shape, _), seeds| {
            let mut rng = SmallRng::seed_from_u64(seeds.child_str("workload").seed(0));
            let instance = random_clique_instance(n, shape, &mut rng);
            let pi0 = Permutation::random(n, &mut rng);
            let opt = offline_optimum(&instance, &pi0, &LopConfig::default())?;
            // Achievable feasible-at-every-step reference.
            let reference = opt.upper.max(1);
            let stats = expected_cost(&instance, trials, seeds.child_str("coins"), |seed| {
                RandCliques::new(pi0.clone(), SmallRng::seed_from_u64(seed))
            })?;
            Ok((stats.mean(), stats.ci95(), reference))
        });
        let results = try_results(results)?;
        for (&(n, shape, inst), seeds, &(mean, ci, reference)) in
            zip_seeds(&specs, &campaign, &results)
        {
            ctx.record(
                RunRecord::new(
                    run_label(format!("cliques-{}", shape.label()), "RandCliques", n, inst),
                    seeds.key(),
                )
                .metric("mean_cost", mean)
                .metric("ci95", ci)
                .metric("opt_ref", reference as f64),
            );
        }

        let mut table = Table::new(
            "E-T2: E[cost(RandCliques)] / d(pi0, hier-feasible) vs 4·H_n",
            &[
                "n", "shape", "E[cost]", "±95%", "opt-ref", "ratio", "4·H_n", "within",
            ],
        );
        for (cell, chunk) in results.chunks(instances_per_cell as usize).enumerate() {
            let (n, shape, _) = specs[cell * instances_per_cell as usize];
            let bound = 4.0 * harmonic(n as u64);
            let (mean, ci, reference) = worst_by(chunk, |&(m, _, r)| m / r as f64);
            let worst_ratio = mean / reference as f64;
            table.row(&[
                &n.to_string(),
                shape.label(),
                &f2(mean),
                &f2(ci),
                &reference.to_string(),
                &f2(worst_ratio),
                &f2(bound),
                check(worst_ratio <= bound),
            ]);
        }
        table.note("ratio = worst instance's E[cost] / d(pi0, merge-tree-consistent optimum)");
        table.note("paper shape: ratio grows logarithmically and stays below 4 ln n");
        Ok(vec![table])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Scale;

    #[test]
    fn tiny_run_respects_the_bound() {
        let ctx = ExperimentContext::new(Scale::Tiny, 7);
        let tables = TheoremTwo.run(&ctx).unwrap();
        assert_eq!(tables.len(), 1);
        let csv = tables[0].to_csv();
        assert!(!csv.contains(",NO\n"), "bound violated:\n{csv}");
    }
}
