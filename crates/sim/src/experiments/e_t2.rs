//! `E-T2`: Theorem 2 — `Rand` is `4 ln n`-competitive on cliques.
//!
//! For each instance we estimate `E[cost]` of `RandCliques` over many coin
//! trials and compare against the achievable offline reference `Δ_hier`
//! (the closest merge-tree-consistent permutation — see the Theorem 1/6
//! repair note in `DESIGN.md`): the repaired Theorem 6 guarantees
//! `E[cost] ≤ 4·H_n·d(π0, π_f)` for *every* step-wise-feasible final
//! permutation `π_f`, in particular the one our solver produces.

use mla_adversary::{random_clique_instance, MergeShape};
use mla_core::RandCliques;
use mla_offline::{offline_optimum, LopConfig};
use mla_permutation::Permutation;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::experiment::{Experiment, ExperimentContext};
use crate::experiments::{check, expected_cost, f2};
use crate::stats::harmonic;
use crate::table::Table;

/// The Theorem 2 reproduction.
#[derive(Debug, Clone, Copy, Default)]
pub struct TheoremTwo;

impl Experiment for TheoremTwo {
    fn id(&self) -> &'static str {
        "E-T2"
    }

    fn title(&self) -> &'static str {
        "Rand on cliques: expected competitive ratio vs 4 ln n"
    }

    fn paper_ref(&self) -> &'static str {
        "Theorem 2 (+ Theorem 6)"
    }

    fn run(&self, ctx: &ExperimentContext) -> Vec<Table> {
        let ns: &[usize] = ctx.pick(
            &[16, 32][..],
            &[16, 32, 64, 128, 256][..],
            &[16, 32, 64, 128, 256, 512, 1024][..],
        );
        let instances_per_cell = ctx.pick(1, 3, 4);
        let trials = ctx.pick(10, 60, 200);
        let shapes = [
            MergeShape::Uniform,
            MergeShape::Sequential,
            MergeShape::Balanced,
        ];

        let mut table = Table::new(
            "E-T2: E[cost(RandCliques)] / d(pi0, hier-feasible) vs 4·H_n",
            &[
                "n", "shape", "E[cost]", "±95%", "opt-ref", "ratio", "4·H_n", "within",
            ],
        );
        for &n in ns {
            let bound = 4.0 * harmonic(n as u64);
            for shape in shapes {
                let mut worst_ratio = 0.0f64;
                let mut worst_row: Option<(f64, f64, u64)> = None;
                for inst in 0..instances_per_cell {
                    let mut rng = SmallRng::seed_from_u64(ctx.seed ^ (n as u64) << 20 ^ inst << 8);
                    let instance = random_clique_instance(n, shape, &mut rng);
                    let pi0 = Permutation::random(n, &mut rng);
                    let opt = offline_optimum(&instance, &pi0, &LopConfig::default())
                        .expect("sizes match");
                    // Achievable feasible-at-every-step reference.
                    let reference = opt.upper.max(1);
                    let stats = expected_cost(&instance, trials, |trial| {
                        RandCliques::new(
                            pi0.clone(),
                            SmallRng::seed_from_u64(ctx.seed ^ 0xaaaa ^ trial << 32 ^ inst),
                        )
                    });
                    let ratio = stats.mean() / reference as f64;
                    if ratio > worst_ratio {
                        worst_ratio = ratio;
                        worst_row = Some((stats.mean(), stats.ci95(), reference));
                    }
                }
                let (mean, ci, reference) = worst_row.expect("at least one instance");
                table.row(&[
                    &n.to_string(),
                    shape.label(),
                    &f2(mean),
                    &f2(ci),
                    &reference.to_string(),
                    &f2(worst_ratio),
                    &f2(bound),
                    check(worst_ratio <= bound),
                ]);
            }
        }
        table.note("ratio = worst instance's E[cost] / d(pi0, merge-tree-consistent optimum)");
        table.note("paper shape: ratio grows logarithmically and stays below 4 ln n");
        vec![table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Scale;

    #[test]
    fn tiny_run_respects_the_bound() {
        let ctx = ExperimentContext {
            scale: Scale::Tiny,
            seed: 7,
        };
        let tables = TheoremTwo.run(&ctx);
        assert_eq!(tables.len(), 1);
        let csv = tables[0].to_csv();
        assert!(!csv.contains(",NO\n"), "bound violated:\n{csv}");
    }
}
