//! `E-SCALE`: the large-`n` workload regime opened by the segment-based
//! arrangement backend.
//!
//! For each `n` the experiment runs the paper's randomized algorithms on
//! random full-merge workloads with the [`SegmentArrangement`] backend —
//! `O(log n)` splices per merge — and, up to a dense cap, replays the
//! identical run on the dense [`Permutation`] backend to assert
//! bit-identical total costs and final arrangements. The table is fully
//! deterministic (costs and equality checks only); wall-clock comparisons
//! live in `benches/arrangement.rs` and its `BENCH_arrangement.json`
//! artifact.

use mla_adversary::{random_clique_instance, random_line_instance, MergeShape};
use mla_core::{RandCliques, RandLines};
use mla_graph::Topology;
use mla_permutation::{Permutation, SegmentArrangement};
use mla_runner::RunRecord;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::engine::Simulation;
use crate::experiment::{Experiment, ExperimentContext};
use crate::experiments::{check, run_label, zip_seeds};
use crate::table::Table;

/// The scaling demonstration.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scaling;

impl Experiment for Scaling {
    fn id(&self) -> &'static str {
        "E-SCALE"
    }

    fn title(&self) -> &'static str {
        "Segment backend at large n: identical costs, O(log n) updates"
    }

    fn paper_ref(&self) -> &'static str {
        "beyond the paper (ROADMAP)"
    }

    fn run(&self, ctx: &ExperimentContext) -> Vec<Table> {
        let ns: &[usize] = ctx.pick(
            &[256, 512][..],
            &[1_000, 10_000, 100_000][..],
            &[10_000, 100_000, 1_000_000][..],
        );
        // Above this the dense replay's Θ(n) moves dominate the runtime,
        // so equivalence is asserted only below the cap.
        let dense_cap = ctx.pick(512, 10_000, 100_000);
        let campaign = ctx.campaign("E-SCALE");

        let specs: Vec<(usize, Topology)> = ns
            .iter()
            .flat_map(|&n| [(n, Topology::Cliques), (n, Topology::Lines)])
            .collect();
        let results = campaign.run(&specs, |&(n, topology), seeds| {
            let mut rng = SmallRng::seed_from_u64(seeds.child_str("workload").seed(0));
            let instance = match topology {
                Topology::Cliques => random_clique_instance(n, MergeShape::Uniform, &mut rng),
                Topology::Lines => random_line_instance(n, MergeShape::Uniform, &mut rng),
            };
            let coin = seeds.child_str("coins").seed(0);
            let segment_cost = match topology {
                Topology::Cliques => {
                    Simulation::new(
                        instance.clone(),
                        RandCliques::new(
                            SegmentArrangement::identity(n),
                            SmallRng::seed_from_u64(coin),
                        ),
                    )
                    .check_feasibility(true)
                    .run()
                    .expect("valid instance")
                    .total_cost
                }
                Topology::Lines => {
                    Simulation::new(
                        instance.clone(),
                        RandLines::new(
                            SegmentArrangement::identity(n),
                            SmallRng::seed_from_u64(coin),
                        ),
                    )
                    .check_feasibility(true)
                    .run()
                    .expect("valid instance")
                    .total_cost
                }
            };
            let dense_cost = (n <= dense_cap).then(|| match topology {
                Topology::Cliques => {
                    Simulation::new(
                        instance.clone(),
                        RandCliques::new(Permutation::identity(n), SmallRng::seed_from_u64(coin)),
                    )
                    .run()
                    .expect("valid instance")
                    .total_cost
                }
                Topology::Lines => {
                    Simulation::new(
                        instance,
                        RandLines::new(Permutation::identity(n), SmallRng::seed_from_u64(coin)),
                    )
                    .run()
                    .expect("valid instance")
                    .total_cost
                }
            });
            (segment_cost, dense_cost)
        });

        for (&(n, topology), seeds, &(segment_cost, dense_cost)) in
            zip_seeds(&specs, &campaign, &results)
        {
            let algorithm = match topology {
                Topology::Cliques => "RandCliques",
                Topology::Lines => "RandLines",
            };
            let mut record = RunRecord::new(
                run_label(format!("scale-{topology}"), algorithm, n, 0),
                seeds.key(),
            )
            .metric("segment_cost", segment_cost as f64);
            if let Some(dense) = dense_cost {
                record = record.metric("dense_cost", dense as f64);
            }
            ctx.record(record);
        }

        let mut table = Table::new(
            "E-SCALE: segment backend total cost (dense replay where run)",
            &["n", "topology", "cost(segment)", "cost(dense)", "match"],
        );
        for (&(n, topology), &(segment_cost, dense_cost)) in specs.iter().zip(&results) {
            table.row(&[
                &n.to_string(),
                &topology.to_string(),
                &segment_cost.to_string(),
                &dense_cost.map_or_else(|| "-".to_owned(), |c| c.to_string()),
                dense_cost.map_or("-", |c| check(c == segment_cost)),
            ]);
        }
        table.note("identical coin seeds: both backends must report identical total costs");
        table.note("per-op timings: benches/arrangement.rs (BENCH_arrangement.json)");
        vec![table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Scale;

    #[test]
    fn tiny_run_matches_backends() {
        let ctx = ExperimentContext::new(Scale::Tiny, 11);
        let tables = Scaling.run(&ctx);
        assert_eq!(tables.len(), 1);
        let csv = tables[0].to_csv();
        assert!(!csv.contains(",NO\n"), "backend mismatch:\n{csv}");
        assert!(
            csv.contains(",yes\n"),
            "dense replay must run at tiny n:\n{csv}"
        );
    }
}
