//! `E-SCALE`: the large-`n` workload regime opened by the segment-based
//! arrangement backend and the streaming reveal pipeline.
//!
//! For each `n` the experiment runs the paper's randomized algorithms on
//! **streamed** random full-merge workloads — each campaign job builds a
//! [`StreamingWorkload`] straight from its [`SeedSequence`]; no
//! `Instance` (and no event vector) is ever materialized — with the
//! [`SegmentArrangement`] backend, `O(log n)` splices per merge. Up to a
//! dense cap the job then *restarts* the identical source and replays the
//! run on the dense [`Permutation`] backend, asserting bit-identical
//! total costs. The table is fully deterministic (costs and equality
//! checks only); wall-clock comparisons live in `benches/arrangement.rs`
//! and the `--scale` smoke path's `BENCH_scale.json` artifact.
//!
//! [`SeedSequence`]: mla_runner::SeedSequence

use mla_adversary::{MergeShape, StreamingWorkload};
use mla_core::{RandCliques, RandLines};
use mla_graph::{RevealSource, Topology};
use mla_permutation::{Permutation, SegmentArrangement};
use mla_runner::RunRecord;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::engine::Simulation;
use crate::error::SimError;
use crate::experiment::{Experiment, ExperimentContext};
use crate::experiments::{check, run_label, try_results, zip_seeds};
use crate::table::Table;

/// The scaling demonstration.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scaling;

/// One streamed run: `algorithm × backend` selected by the `dense` flag.
/// The engine gets a fresh source built from the workload's seed, so a
/// dense replay sees the identical sequence without cloning anything; the
/// outcome is reduced to its total cost, so per-event recording stays off
/// — this experiment's memory is the `O(n)` engine + generator state.
fn run_streamed(workload: &StreamingWorkload, coin: u64, dense: bool) -> Result<u128, SimError> {
    let n = workload.n();
    let topology = workload.topology();
    let source = StreamingWorkload::new(topology, n, workload.shape(), workload.seed());
    let outcome = match (topology, dense) {
        (Topology::Cliques, false) => Simulation::from_source(
            source,
            RandCliques::new(
                SegmentArrangement::identity(n),
                SmallRng::seed_from_u64(coin),
            ),
        )
        .check_feasibility(true)
        .record_events(false)
        .run()?,
        (Topology::Lines, false) => Simulation::from_source(
            source,
            RandLines::new(
                SegmentArrangement::identity(n),
                SmallRng::seed_from_u64(coin),
            ),
        )
        .check_feasibility(true)
        .record_events(false)
        .run()?,
        (Topology::Cliques, true) => Simulation::from_source(
            source,
            RandCliques::new(Permutation::identity(n), SmallRng::seed_from_u64(coin)),
        )
        .record_events(false)
        .run()?,
        (Topology::Lines, true) => Simulation::from_source(
            source,
            RandLines::new(Permutation::identity(n), SmallRng::seed_from_u64(coin)),
        )
        .record_events(false)
        .run()?,
    };
    Ok(outcome.total_cost)
}

impl Experiment for Scaling {
    fn id(&self) -> &'static str {
        "E-SCALE"
    }

    fn title(&self) -> &'static str {
        "Streaming reveals at large n: identical costs, O(log n) updates"
    }

    fn paper_ref(&self) -> &'static str {
        "beyond the paper (ROADMAP)"
    }

    fn run(&self, ctx: &ExperimentContext) -> Result<Vec<Table>, SimError> {
        let ns: &[usize] = ctx.pick(
            &[256, 512][..],
            &[1_000, 10_000, 100_000][..],
            &[10_000, 100_000, 1_000_000][..],
        );
        // Above this the dense replay's Θ(n) moves dominate the runtime,
        // so equivalence is asserted only below the cap.
        let dense_cap = ctx.pick(512, 10_000, 100_000);
        let campaign = ctx.campaign("E-SCALE");

        let specs: Vec<(usize, Topology)> = ns
            .iter()
            .flat_map(|&n| [(n, Topology::Cliques), (n, Topology::Lines)])
            .collect();
        let results = campaign.run(&specs, |&(n, topology), seeds| {
            // The workload never materializes: the source is rebuilt from
            // the derived seed for every backend replay.
            let workload_seed = seeds.child_str("workload").seed(0);
            let source = StreamingWorkload::new(topology, n, MergeShape::Uniform, workload_seed);
            let coin = seeds.child_str("coins").seed(0);
            let segment_cost = run_streamed(&source, coin, false)?;
            let dense_cost = if n <= dense_cap {
                Some(run_streamed(&source, coin, true)?)
            } else {
                None
            };
            Ok((segment_cost, dense_cost))
        });
        let results = try_results(results)?;

        for (&(n, topology), seeds, &(segment_cost, dense_cost)) in
            zip_seeds(&specs, &campaign, &results)
        {
            let algorithm = match topology {
                Topology::Cliques => "RandCliques",
                Topology::Lines => "RandLines",
            };
            let mut record = RunRecord::new(
                run_label(format!("scale-{topology}"), algorithm, n, 0),
                seeds.key(),
            )
            .metric("segment_cost", segment_cost as f64);
            if let Some(dense) = dense_cost {
                record = record.metric("dense_cost", dense as f64);
            }
            ctx.record(record);
        }

        let mut table = Table::new(
            "E-SCALE: streamed reveals, segment backend total cost (dense replay where run)",
            &["n", "topology", "cost(segment)", "cost(dense)", "match"],
        );
        for (&(n, topology), &(segment_cost, dense_cost)) in specs.iter().zip(&results) {
            table.row(&[
                &n.to_string(),
                &topology.to_string(),
                &segment_cost.to_string(),
                &dense_cost.map_or_else(|| "-".to_owned(), |c| c.to_string()),
                dense_cost.map_or("-", |c| check(c == segment_cost)),
            ]);
        }
        table.note(
            "reveals are streamed per merge (no event vector); replays restart the seeded source",
        );
        table.note("identical coin seeds: both backends must report identical total costs");
        table.note("per-op timings: benches/arrangement.rs (BENCH_arrangement.json) and --scale (BENCH_scale.json)");
        Ok(vec![table])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Scale;

    #[test]
    fn tiny_run_matches_backends() {
        let ctx = ExperimentContext::new(Scale::Tiny, 11);
        let tables = Scaling.run(&ctx).unwrap();
        assert_eq!(tables.len(), 1);
        let csv = tables[0].to_csv();
        assert!(!csv.contains(",NO\n"), "backend mismatch:\n{csv}");
        assert!(
            csv.contains(",yes\n"),
            "dense replay must run at tiny n:\n{csv}"
        );
    }

    #[test]
    fn streamed_run_matches_materialized_instance_run() {
        // The streaming path must be observably identical to the old
        // materialized path: same events, same outcome.
        use mla_adversary::random_clique_instance;
        let n = 96;
        let seed = 0x5CA1E;
        let source = StreamingWorkload::new(Topology::Cliques, n, MergeShape::Uniform, seed);
        let streamed_cost = run_streamed(&source, 42, false).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let instance = random_clique_instance(n, MergeShape::Uniform, &mut rng);
        let materialized = Simulation::new(
            instance,
            RandCliques::new(SegmentArrangement::identity(n), SmallRng::seed_from_u64(42)),
        )
        .check_feasibility(true)
        .run()
        .unwrap();
        assert_eq!(streamed_cost, materialized.total_cost);
    }
}
