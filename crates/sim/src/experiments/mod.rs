//! The experiment suite: one module per paper result (see `DESIGN.md` for
//! the full index).

pub mod e_abl;
pub mod e_f1;
pub mod e_f2;
pub mod e_gen;
pub mod e_heur;
pub mod e_l10;
pub mod e_l3;
pub mod e_l5;
pub mod e_opt;
pub mod e_t1;
pub mod e_t15;
pub mod e_t16;
pub mod e_t2;
pub mod e_t8;

use mla_core::OnlineMinla;
use mla_graph::Instance;

use crate::engine::Simulation;
use crate::stats::OnlineStats;

/// Estimates the expected total cost of a randomized algorithm on a fixed
/// instance by averaging over `trials` independent runs.
///
/// `make` receives the trial index and must build a freshly seeded
/// algorithm.
pub(crate) fn expected_cost<A, F>(instance: &Instance, trials: u64, make: F) -> OnlineStats
where
    A: OnlineMinla,
    F: Fn(u64) -> A,
{
    let mut stats = OnlineStats::new();
    for trial in 0..trials {
        let outcome = Simulation::new(instance.clone(), make(trial))
            .run()
            .expect("validated instance runs cleanly");
        stats.push(outcome.total_cost as f64);
    }
    stats
}

/// Formats a float with 2 decimals.
pub(crate) fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub(crate) fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 4 decimals.
pub(crate) fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// A yes/no check cell.
pub(crate) fn check(ok: bool) -> &'static str {
    if ok {
        "yes"
    } else {
        "NO"
    }
}
