//! The experiment suite: one module per paper result (see `DESIGN.md` for
//! the full index).

pub mod e_abl;
pub mod e_f1;
pub mod e_f2;
pub mod e_gen;
pub mod e_heur;
pub mod e_l10;
pub mod e_l3;
pub mod e_l5;
pub mod e_opt;
pub mod e_ratio;
pub mod e_scale;
pub mod e_t1;
pub mod e_t15;
pub mod e_t16;
pub mod e_t2;
pub mod e_t8;

use mla_core::OnlineMinla;
use mla_graph::Instance;
use mla_runner::{Campaign, RunSpec, SeedSequence};

use crate::engine::Simulation;
use crate::error::SimError;
use crate::stats::OnlineStats;

/// Estimates the expected total cost of a randomized algorithm on a fixed
/// instance by averaging over `trials` independent runs.
///
/// Trial coin seeds come from `coins` (one leaf seed per trial index);
/// `make` receives the derived seed and must build a freshly seeded
/// algorithm. The loop itself is sequential — it runs *inside* a campaign
/// job, whose cell-level parallelism is handled by the runner.
pub(crate) fn expected_cost<A, F>(
    instance: &Instance,
    trials: u64,
    coins: SeedSequence,
    make: F,
) -> Result<OnlineStats, SimError>
where
    A: OnlineMinla,
    F: Fn(u64) -> A,
{
    let mut stats = OnlineStats::new();
    for trial in 0..trials {
        let outcome = Simulation::new(instance.clone(), make(coins.seed(trial))).run()?;
        stats.push(outcome.total_cost as f64);
    }
    Ok(stats)
}

/// Collects campaign job results, surfacing the first error — the
/// standard epilogue of a fallible campaign (`Vec<Result<T>>` → `Vec<T>`).
pub(crate) fn try_results<T>(results: Vec<Result<T, SimError>>) -> Result<Vec<T>, SimError> {
    results.into_iter().collect()
}

/// Zips campaign specs with each job's derived seed sequence and result —
/// the standard post-campaign bookkeeping iterator. The sequence handed
/// out for index `i` is exactly the one [`Campaign::run`] gave job `i`.
pub(crate) fn zip_seeds<'a, S, T>(
    specs: &'a [S],
    campaign: &Campaign,
    results: &'a [T],
) -> impl Iterator<Item = (&'a S, SeedSequence, &'a T)> {
    let seeds = campaign.seeds();
    specs
        .iter()
        .zip(results)
        .enumerate()
        .map(move |(index, (spec, result))| (spec, seeds.child(index as u64), result))
}

/// The worst entry of a result cell under a ratio function (ties: last
/// wins). Shared by every experiment that reports its worst instance.
///
/// # Panics
///
/// Panics on an empty cell — campaign cells always hold at least one run.
pub(crate) fn worst_by<T: Copy>(chunk: &[T], ratio: impl Fn(&T) -> f64) -> T {
    chunk
        .iter()
        .copied()
        .max_by(|a, b| ratio(a).total_cmp(&ratio(b)))
        // mla-lint: allow(panic-safety): campaign cells always hold at least one run (documented panic)
        .expect("at least one entry per cell")
}

/// The canonical artifact run key for one campaign cell — every
/// experiment's `RunRecord` labels go through [`RunSpec::label`] so the
/// key schema lives in exactly one place.
pub(crate) fn run_label(
    adversary: impl Into<String>,
    algorithm: impl Into<String>,
    n: usize,
    repetition: u64,
) -> String {
    RunSpec {
        adversary: adversary.into(),
        algorithm: algorithm.into(),
        n,
        repetition,
    }
    .label()
}

/// Splits a trial count into at most 32 contiguous index ranges, for
/// submitting a trial-mass loop as campaign specs.
///
/// The chunk boundaries depend only on `trials` — never on the thread
/// count — and per-trial seeds are drawn from a global stream by trial
/// index, so chunking is pure scheduling and cannot affect results.
pub(crate) fn trial_chunks(trials: u64) -> Vec<std::ops::Range<u64>> {
    const CHUNKS: u64 = 32;
    let count = CHUNKS.min(trials.max(1));
    let size = trials.div_ceil(count);
    (0..count)
        .map(|c| (c * size).min(trials)..((c + 1) * size).min(trials))
        .filter(|range| !range.is_empty())
        .collect()
}

/// Formats a float with 2 decimals.
pub(crate) fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub(crate) fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 4 decimals.
pub(crate) fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// A yes/no check cell.
pub(crate) fn check(ok: bool) -> &'static str {
    if ok {
        "yes"
    } else {
        "NO"
    }
}
