//! `E-ABL`: ablation of the paper's two randomized design choices.
//!
//! The `4 ln n` / `8 ln n` guarantees hinge on (a) the size-biased moving
//! coin and (b) the cost-biased rearranging coin. This experiment swaps
//! each for a fair coin or the deterministic greedy rule and measures the
//! degradation, most visible on the *sequential* workload where one huge
//! component repeatedly merges with singletons: moving the big component
//! even half the time costs `Θ(n)` per merge.

use mla_adversary::{random_clique_instance, random_line_instance, MergeShape};
use mla_core::{MovePolicy, RandCliques, RandLines, RearrangePolicy};
use mla_graph::Topology;
use mla_offline::{offline_optimum, LopConfig};
use mla_permutation::Permutation;
use mla_runner::RunRecord;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::error::SimError;
use crate::experiment::{Experiment, ExperimentContext};
use crate::experiments::{expected_cost, f2, run_label, try_results, zip_seeds};
use crate::table::Table;

/// The design-choice ablation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ablation;

impl Experiment for Ablation {
    fn id(&self) -> &'static str {
        "E-ABL"
    }

    fn title(&self) -> &'static str {
        "Ablation: size-biased coin vs fair coin vs deterministic greedy"
    }

    fn paper_ref(&self) -> &'static str {
        "Sections 3.1 & 4.1 (design choices)"
    }

    fn run(&self, ctx: &ExperimentContext) -> Result<Vec<Table>, SimError> {
        let ns: &[usize] = ctx.pick(&[32][..], &[32, 128][..], &[32, 128, 512][..]);
        let trials = ctx.pick(10, 60, 200);
        let policies: [(&str, MovePolicy, RearrangePolicy); 3] = [
            (
                "paper (biased)",
                MovePolicy::SizeBiased,
                RearrangePolicy::CostBiased,
            ),
            ("fair coin", MovePolicy::Fair, RearrangePolicy::Fair),
            (
                "greedy det.",
                MovePolicy::SmallerMoves,
                RearrangePolicy::Cheapest,
            ),
        ];
        let mut table = Table::new(
            "E-ABL: mean cost / offline reference (sequential & uniform workloads)",
            &["topology", "n", "shape", "policy", "E[cost]", "ratio"],
        );
        // One spec per (topology, n, shape) cell; each job measures all
        // three policies on its shared instance so ratios compare
        // like-for-like.
        let specs: Vec<(Topology, usize, MergeShape)> = [Topology::Cliques, Topology::Lines]
            .into_iter()
            .flat_map(|topology| {
                ns.iter().flat_map(move |&n| {
                    [MergeShape::Sequential, MergeShape::Uniform]
                        .into_iter()
                        .map(move |shape| (topology, n, shape))
                })
            })
            .collect();
        let campaign = ctx.campaign("E-ABL");
        let results = campaign.run(&specs, |&(topology, n, shape), seeds| {
            let mut rng = SmallRng::seed_from_u64(seeds.child_str("workload").seed(0));
            let instance = match topology {
                Topology::Cliques => random_clique_instance(n, shape, &mut rng),
                Topology::Lines => random_line_instance(n, shape, &mut rng),
            };
            let pi0 = Permutation::random(n, &mut rng);
            let opt = offline_optimum(&instance, &pi0, &LopConfig::default())?;
            let reference = opt.upper.max(1) as f64;
            // One shared coin stream for all three policies: common random
            // numbers keep the cross-policy comparison variance-matched.
            let coins = seeds.child_str("coins");
            let mut means = Vec::with_capacity(policies.len());
            for &(_, move_policy, rearrange_policy) in &policies {
                let stats = match topology {
                    Topology::Cliques => expected_cost(&instance, trials, coins, |seed| {
                        RandCliques::with_policy(
                            pi0.clone(),
                            SmallRng::seed_from_u64(seed),
                            move_policy,
                        )
                    })?,
                    Topology::Lines => expected_cost(&instance, trials, coins, |seed| {
                        RandLines::with_policies(
                            pi0.clone(),
                            SmallRng::seed_from_u64(seed),
                            move_policy,
                            rearrange_policy,
                        )
                    })?,
                };
                means.push(stats.mean());
            }
            Ok((reference, means))
        });
        let results = try_results(results)?;
        for (&(topology, n, shape), seeds, (reference, means)) in
            zip_seeds(&specs, &campaign, &results)
        {
            let mut record = RunRecord::new(
                run_label(format!("{topology}-{}", shape.label()), "policies", n, 0),
                seeds.key(),
            )
            .metric("opt_ref", *reference);
            for ((label, _, _), &mean) in policies.iter().zip(means) {
                record = record.metric(&format!("mean_cost[{label}]"), mean);
            }
            ctx.record(record);
            for ((label, _, _), &mean) in policies.iter().zip(means) {
                table.row(&[
                    &topology.to_string(),
                    &n.to_string(),
                    shape.label(),
                    label,
                    &f2(mean),
                    &f2(mean / reference),
                ]);
            }
        }
        table.note(
            "sequential workloads: the fair coin pays Θ(n/log n) times more than the biased coin",
        );
        table.note("greedy smaller-moves looks fine on average but admits Ω(n) adversarial ratios (Thm 16 family)");
        Ok(vec![table])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Scale;

    #[test]
    fn biased_coin_beats_fair_coin_on_sequential_cliques() {
        let ctx = ExperimentContext::new(Scale::Quick, 21);
        let tables = Ablation.run(&ctx).unwrap();
        let csv = tables[0].to_csv();
        // Collect (policy, ratio) for cliques/sequential at the largest n.
        let mut biased = f64::MAX;
        let mut fair = 0.0f64;
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            if cells[0] == "cliques" && cells[1] == "128" && cells[2] == "sequential" {
                let ratio: f64 = cells[5].parse().unwrap();
                match cells[3] {
                    "paper (biased)" => biased = ratio,
                    "fair coin" => fair = ratio,
                    _ => {}
                }
            }
        }
        assert!(
            fair > 1.5 * biased,
            "fair coin should be much worse: biased {biased}, fair {fair}"
        );
    }
}
