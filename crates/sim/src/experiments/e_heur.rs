//! `E-HEUR`: optimality gap of the heuristic placement solver.
//!
//! Large-`n` rows of `E-T2`/`E-T8` use the heuristic solver (Borda seed +
//! LOP local search + interleave DP) for their offline reference whenever
//! an instance ends with many multi-node components. This experiment
//! quantifies the heuristic's gap against the exact subset DP in the block
//! range where both run, so readers can judge how much slack those
//! denominators carry.

use mla_adversary::{random_clique_instance, random_line_instance, MergeShape};
use mla_graph::{Instance, Topology};
use mla_offline::{closest_feasible, LopConfig, LopStrategy};
use mla_permutation::Permutation;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::experiment::{Experiment, ExperimentContext};
use crate::experiments::{f3, f4};
use crate::stats::OnlineStats;
use crate::table::Table;

/// The heuristic-gap experiment.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeuristicGap;

impl Experiment for HeuristicGap {
    fn id(&self) -> &'static str {
        "E-HEUR"
    }

    fn title(&self) -> &'static str {
        "Heuristic placement solver: optimality gap vs the exact subset DP"
    }

    fn paper_ref(&self) -> &'static str {
        "methodology (offline reference quality)"
    }

    fn run(&self, ctx: &ExperimentContext) -> Vec<Table> {
        // Control the number of multi-node blocks by stopping a pairing
        // workload after `blocks` merges of disjoint pairs.
        let block_counts: &[usize] =
            ctx.pick(&[4, 6][..], &[4, 6, 8, 10, 12][..], &[4, 6, 8, 10, 12][..]);
        let cases = ctx.pick(5, 30, 100);
        let mut table = Table::new(
            "E-HEUR: (heuristic − exact) / exact over random instances",
            &[
                "topology",
                "shape",
                "blocks",
                "cases",
                "mean gap",
                "max gap",
                "exact hits",
            ],
        );
        for topology in [Topology::Cliques, Topology::Lines] {
            for shape in [MergeShape::Balanced, MergeShape::Uniform] {
                for &blocks in block_counts {
                    let n = blocks * 3; // three nodes per block on average
                    let mut gaps = OnlineStats::new();
                    let mut exact_hits = 0usize;
                    for case in 0..cases {
                        let mut rng = SmallRng::seed_from_u64(
                            ctx.seed ^ (blocks as u64) << 32 ^ case << 2 ^ (n as u64),
                        );
                        let full = match topology {
                            Topology::Cliques => random_clique_instance(n, shape, &mut rng),
                            Topology::Lines => random_line_instance(n, shape, &mut rng),
                        };
                        // Keep roughly `blocks` multi-node components: stop the
                        // balanced pairing after ~2n/3 merges.
                        let keep = (n - blocks).min(full.len());
                        let instance =
                            Instance::new(topology, n, full.events()[..keep].to_vec()).unwrap();
                        let state = instance.final_state();
                        let pi0 = Permutation::random(n, &mut rng);
                        let exact = closest_feasible(
                            &state,
                            &pi0,
                            &LopConfig {
                                strategy: LopStrategy::Exact,
                                max_exact_blocks: 14,
                                ..LopConfig::default()
                            },
                        );
                        let Ok(exact) = exact else {
                            continue; // more blocks than the exact cap; skip
                        };
                        let heuristic = closest_feasible(
                            &state,
                            &pi0,
                            &LopConfig {
                                strategy: LopStrategy::Heuristic,
                                ..LopConfig::default()
                            },
                        )
                        .expect("heuristic always runs");
                        debug_assert!(heuristic.distance >= exact.distance);
                        let gap = (heuristic.distance - exact.distance) as f64
                            / exact.distance.max(1) as f64;
                        gaps.push(gap);
                        if heuristic.distance == exact.distance {
                            exact_hits += 1;
                        }
                    }
                    table.row(&[
                        &topology.to_string(),
                        shape.label(),
                        &blocks.to_string(),
                        &gaps.count().to_string(),
                        &f4(gaps.mean()),
                        &f3(gaps.max()),
                        &format!("{exact_hits}/{}", gaps.count()),
                    ]);
                }
            }
        }
        table.note("gap = (heuristic − exact)/exact on the closest-feasible distance");
        table.note("small gaps justify heuristic offline references at n > exact range");
        vec![table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Scale;

    #[test]
    fn gaps_are_small_and_nonnegative() {
        let ctx = ExperimentContext {
            scale: Scale::Tiny,
            seed: 8,
        };
        let tables = HeuristicGap.run(&ctx);
        let csv = tables[0].to_csv();
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let mean_gap: f64 = cells[4].parse().unwrap();
            assert!(
                (0.0..0.25).contains(&mean_gap),
                "mean gap {mean_gap} out of expected range:\n{csv}"
            );
        }
    }
}
