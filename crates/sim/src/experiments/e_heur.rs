//! `E-HEUR`: optimality gap of the heuristic placement solver.
//!
//! Large-`n` rows of `E-T2`/`E-T8` use the heuristic solver (Borda seed +
//! LOP local search + interleave DP) for their offline reference whenever
//! an instance ends with many multi-node components. This experiment
//! quantifies the heuristic's gap against the exact subset DP in the block
//! range where both run, so readers can judge how much slack those
//! denominators carry.

use mla_adversary::{random_clique_instance, random_line_instance, MergeShape};
use mla_graph::{Instance, Topology};
use mla_offline::{closest_feasible, LopConfig, LopStrategy};
use mla_permutation::Permutation;
use mla_runner::RunRecord;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::error::SimError;
use crate::experiment::{Experiment, ExperimentContext};
use crate::experiments::{f3, f4, run_label, try_results, zip_seeds};
use crate::stats::OnlineStats;
use crate::table::Table;

/// The heuristic-gap experiment.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeuristicGap;

impl Experiment for HeuristicGap {
    fn id(&self) -> &'static str {
        "E-HEUR"
    }

    fn title(&self) -> &'static str {
        "Heuristic placement solver: optimality gap vs the exact subset DP"
    }

    fn paper_ref(&self) -> &'static str {
        "methodology (offline reference quality)"
    }

    fn run(&self, ctx: &ExperimentContext) -> Result<Vec<Table>, SimError> {
        // Control the number of multi-node blocks by stopping a pairing
        // workload after `blocks` merges of disjoint pairs.
        let block_counts: &[usize] =
            ctx.pick(&[4, 6][..], &[4, 6, 8, 10, 12][..], &[4, 6, 8, 10, 12][..]);
        let cases = ctx.pick(5, 30, 100);
        let mut table = Table::new(
            "E-HEUR: (heuristic − exact) / exact over random instances",
            &[
                "topology",
                "shape",
                "blocks",
                "cases",
                "mean gap",
                "max gap",
                "exact hits",
            ],
        );
        // One spec per (topology, shape, blocks, case); a case may opt
        // out (None) when it exceeds the exact solver's block cap.
        let specs: Vec<(Topology, MergeShape, usize, u64)> = [Topology::Cliques, Topology::Lines]
            .into_iter()
            .flat_map(|topology| {
                [MergeShape::Balanced, MergeShape::Uniform]
                    .into_iter()
                    .flat_map(move |shape| {
                        block_counts.iter().flat_map(move |&blocks| {
                            (0..cases).map(move |case| (topology, shape, blocks, case))
                        })
                    })
            })
            .collect();
        let campaign = ctx.campaign("E-HEUR");
        let results = campaign.run(&specs, |&(topology, shape, blocks, _), seeds| {
            let n = blocks * 3; // three nodes per block on average
            let mut rng = SmallRng::seed_from_u64(seeds.child_str("workload").seed(0));
            let full = match topology {
                Topology::Cliques => random_clique_instance(n, shape, &mut rng),
                Topology::Lines => random_line_instance(n, shape, &mut rng),
            };
            // Keep roughly `blocks` multi-node components: stop the
            // balanced pairing after ~2n/3 merges.
            let keep = (n - blocks).min(full.len());
            let instance = Instance::new(topology, n, full.events()[..keep].to_vec())?;
            let state = instance.final_state();
            let pi0 = Permutation::random(n, &mut rng);
            let exact = closest_feasible(
                &state,
                &pi0,
                &LopConfig {
                    strategy: LopStrategy::Exact,
                    max_exact_blocks: 14,
                    ..LopConfig::default()
                },
            );
            let Ok(exact) = exact else {
                return Ok(None); // more blocks than the exact cap; skip
            };
            let heuristic = closest_feasible(
                &state,
                &pi0,
                &LopConfig {
                    strategy: LopStrategy::Heuristic,
                    ..LopConfig::default()
                },
            )?;
            debug_assert!(heuristic.distance >= exact.distance);
            let gap = (heuristic.distance - exact.distance) as f64 / exact.distance.max(1) as f64;
            Ok(Some((gap, heuristic.distance == exact.distance)))
        });
        let results = try_results(results)?;
        for (&(topology, shape, blocks, case), seeds, result) in
            zip_seeds(&specs, &campaign, &results)
        {
            if let Some((gap, hit)) = result {
                ctx.record(
                    RunRecord::new(
                        run_label(
                            format!("{topology}-{}", shape.label()),
                            "heuristic-vs-exact",
                            blocks * 3,
                            case,
                        ),
                        seeds.key(),
                    )
                    .metric("gap", *gap)
                    .metric("exact_hit", f64::from(u8::from(*hit))),
                );
            }
        }
        for (cell, chunk) in results.chunks(cases as usize).enumerate() {
            let (topology, shape, blocks, _) = specs[cell * cases as usize];
            let mut gaps = OnlineStats::new();
            let mut exact_hits = 0usize;
            for (gap, hit) in chunk.iter().flatten() {
                gaps.push(*gap);
                if *hit {
                    exact_hits += 1;
                }
            }
            table.row(&[
                &topology.to_string(),
                shape.label(),
                &blocks.to_string(),
                &gaps.count().to_string(),
                &f4(gaps.mean()),
                &f3(gaps.max()),
                &format!("{exact_hits}/{}", gaps.count()),
            ]);
        }
        table.note("gap = (heuristic − exact)/exact on the closest-feasible distance");
        table.note("small gaps justify heuristic offline references at n > exact range");
        Ok(vec![table])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Scale;

    #[test]
    fn gaps_are_small_and_nonnegative() {
        let ctx = ExperimentContext::new(Scale::Tiny, 8);
        let tables = HeuristicGap.run(&ctx).unwrap();
        let csv = tables[0].to_csv();
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let mean_gap: f64 = cells[4].parse().unwrap();
            assert!(
                (0.0..0.25).contains(&mean_gap),
                "mean gap {mean_gap} out of expected range:\n{csv}"
            );
        }
    }
}
