//! `E-GEN`: extension — the paper's open question at small scales.
//!
//! Section 6 asks whether logarithmic competitive ratios extend to general
//! graphs. Using the exact solvers (`n ≤ 14` here), we run the two
//! general-graph `Det` variants on graph families beyond cliques and
//! lines — random trees, cycles, and sparse graphs — and measure cost
//! against the valid offline lower bound
//! `min { d(π0, π) : π an exact MinLA of G_k }`.
//!
//! This is exploratory, not a theorem reproduction: the observed ratios
//! indicate how hostile each family is to deterministic strategies.

use mla_general::{Anchor, GeneralDet};
use mla_permutation::{Node, Permutation};
use mla_runner::RunRecord;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::error::SimError;
use crate::experiment::{Experiment, ExperimentContext};
use crate::experiments::{f2, run_label, try_results, worst_by, zip_seeds};
use crate::table::Table;

/// The general-graph extension experiment.
#[derive(Debug, Clone, Copy, Default)]
pub struct GeneralGraphs;

/// Edge families beyond the paper's topologies.
#[derive(Debug, Clone, Copy)]
enum Family {
    /// A random spanning tree revealed in random order (forests at every
    /// step — strictly generalizes lines).
    RandomTree,
    /// A cycle: a path revealed in order, then closed.
    Cycle,
    /// A sparse random graph with `2n` edges in random order.
    Sparse,
}

impl Family {
    fn label(self) -> &'static str {
        match self {
            Family::RandomTree => "random-tree",
            Family::Cycle => "cycle",
            Family::Sparse => "sparse-2n",
        }
    }

    /// Generates the reveal list.
    fn edges(self, n: usize, rng: &mut SmallRng) -> Vec<(Node, Node)> {
        match self {
            Family::RandomTree => {
                // Random attachment tree, edges then shuffled is NOT valid
                // (a reveal may reference nodes in no particular order —
                // any order is fine for the general model). Shuffle away.
                let mut edges: Vec<(Node, Node)> = (1..n)
                    .map(|v| (Node::new(rng.gen_range(0..v)), Node::new(v)))
                    .collect();
                for i in (1..edges.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    edges.swap(i, j);
                }
                edges
            }
            Family::Cycle => {
                let mut edges: Vec<(Node, Node)> = (0..n - 1)
                    .map(|v| (Node::new(v), Node::new(v + 1)))
                    .collect();
                edges.push((Node::new(n - 1), Node::new(0)));
                edges
            }
            Family::Sparse => {
                let mut seen = std::collections::BTreeSet::new();
                let mut edges = Vec::new();
                let target = (2 * n).min(n * (n - 1) / 2);
                while edges.len() < target {
                    let a = rng.gen_range(0..n);
                    let b = rng.gen_range(0..n);
                    if a == b {
                        continue;
                    }
                    if seen.insert((a.min(b), a.max(b))) {
                        edges.push((Node::new(a), Node::new(b)));
                    }
                }
                edges
            }
        }
    }
}

impl Experiment for GeneralGraphs {
    fn id(&self) -> &'static str {
        "E-GEN"
    }

    fn title(&self) -> &'static str {
        "Extension: online exact MinLA on general graphs (open question)"
    }

    fn paper_ref(&self) -> &'static str {
        "Section 6 (open question)"
    }

    fn run(&self, ctx: &ExperimentContext) -> Result<Vec<Table>, SimError> {
        let ns: &[usize] = ctx.pick(&[8][..], &[8, 10, 12][..], &[8, 10, 12, 14][..]);
        let instances = ctx.pick(2, 4, 8);
        let mut table = Table::new(
            "E-GEN: GeneralDet on trees / cycles / sparse graphs (exact maintenance)",
            &["family", "n", "anchor", "cost", "opt-lb", "ratio", "ln n"],
        );
        // One spec per (family, n, anchor, instance): a full GeneralDet
        // run plus the exact-MinLA lower bound, all independent.
        let specs: Vec<(Family, usize, Anchor, u64)> =
            [Family::RandomTree, Family::Cycle, Family::Sparse]
                .into_iter()
                .flat_map(|family| {
                    ns.iter().flat_map(move |&n| {
                        [Anchor::Initial, Anchor::Current]
                            .into_iter()
                            .flat_map(move |anchor| {
                                (0..instances).map(move |inst| (family, n, anchor, inst))
                            })
                    })
                })
                .collect();
        let campaign = ctx.campaign("E-GEN");
        let results = campaign.run(&specs, |&(family, n, anchor, _), seeds| {
            let mut rng = SmallRng::seed_from_u64(seeds.child_str("workload").seed(0));
            let edges = family.edges(n, &mut rng);
            let pi0 = Permutation::random(n, &mut rng);
            let mut alg = GeneralDet::new(pi0.clone(), anchor);
            for &(a, b) in &edges {
                alg.serve(a, b)
                    .map_err(|e| SimError::Other(e.to_string()))?;
            }
            // Valid OPT lower bound: any trajectory must end at some
            // exact MinLA of the final graph.
            let (_, opt_lb, _) = mla_offline::minla_exact_closest(n, alg.state().edges(), &pi0)?;
            Ok((alg.total_cost(), opt_lb))
        });
        let results = try_results(results)?;
        for (&(family, n, anchor, inst), seeds, &(cost, opt_lb)) in
            zip_seeds(&specs, &campaign, &results)
        {
            let anchor_label = match anchor {
                Anchor::Initial => "initial",
                Anchor::Current => "current",
            };
            ctx.record(
                RunRecord::new(
                    run_label(
                        family.label(),
                        format!("GeneralDet-{anchor_label}"),
                        n,
                        inst,
                    ),
                    seeds.key(),
                )
                .metric("total_cost", cost as f64)
                .metric("opt_lb", opt_lb as f64),
            );
        }
        for (cell, chunk) in results.chunks(instances as usize).enumerate() {
            let (family, n, anchor, _) = specs[cell * instances as usize];
            let (cost, opt_lb) = worst_by(chunk, |&(c, lb)| c as f64 / lb.max(1) as f64);
            let worst_ratio = cost as f64 / opt_lb.max(1) as f64;
            let anchor_label = match anchor {
                Anchor::Initial => "initial",
                Anchor::Current => "current",
            };
            table.row(&[
                family.label(),
                &n.to_string(),
                anchor_label,
                &cost.to_string(),
                &opt_lb.to_string(),
                &f2(worst_ratio),
                &f2((n as f64).ln()),
            ]);
        }
        table
            .note("exploratory: opt-lb = d(pi0, closest exact MinLA of G_k) — a valid lower bound");
        table.note(
            "cycles are hostile to the initial anchor: closing the cycle can force a global flip",
        );
        Ok(vec![table])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Scale;

    #[test]
    fn runs_and_produces_sane_ratios() {
        let ctx = ExperimentContext::new(Scale::Tiny, 3);
        let tables = GeneralGraphs.run(&ctx).unwrap();
        let csv = tables[0].to_csv();
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let ratio: f64 = cells[5].parse().unwrap();
            assert!(ratio.is_finite() && ratio >= 0.0);
        }
    }
}
