//! `E-L3`: Lemma 3 — at every moment, for any two current components `X`
//! and `Y`, the probability that `X` lies left of `Y` equals
//! `|X × Y ∩ L_{π0}| / (|X|·|Y|)`, regardless of the reveal order.
//!
//! We fix one instance and initial permutation, replay the algorithm with
//! fresh coins many times, and after every reveal compare the empirical
//! left-of frequency of every component pair against the closed form.

use mla_adversary::{random_clique_instance, MergeShape};
use mla_core::{OnlineMinla, RandCliques};
use mla_graph::GraphState;
use mla_permutation::{concordant_pairs, Permutation};
use mla_runner::RunRecord;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::error::SimError;
use crate::experiment::{Experiment, ExperimentContext};
use crate::experiments::{f4, run_label, trial_chunks};
use crate::table::Table;

/// The Lemma 3 invariant validation.
#[derive(Debug, Clone, Copy, Default)]
pub struct LemmaThree;

impl Experiment for LemmaThree {
    fn id(&self) -> &'static str {
        "E-L3"
    }

    fn title(&self) -> &'static str {
        "Lemma 3: component relative-order probabilities match the closed form"
    }

    fn paper_ref(&self) -> &'static str {
        "Lemma 3"
    }

    fn run(&self, ctx: &ExperimentContext) -> Result<Vec<Table>, SimError> {
        let n = ctx.pick(8, 12, 16);
        let trials = ctx.pick(800, 5_000, 20_000);
        let mut rng = SmallRng::seed_from_u64(ctx.seeds().child_str("E-L3/workload").seed(0));
        let instance = random_clique_instance(n, MergeShape::Uniform, &mut rng);
        let pi0 = Permutation::random(n, &mut rng);

        // Tracked checkpoints: (event index, component pair as sorted node
        // lists). Computed on one dry replay.
        let mut predicted: Vec<(
            usize,
            Vec<mla_permutation::Node>,
            Vec<mla_permutation::Node>,
            f64,
        )> = Vec::new();
        {
            let mut state = GraphState::new(instance.topology(), n);
            for (step, &event) in instance.events().iter().enumerate() {
                state.apply(event)?;
                let components = state.components();
                for i in 0..components.len() {
                    for j in (i + 1)..components.len() {
                        let p = concordant_pairs(&pi0, &components[i], &components[j]) as f64
                            / (components[i].len() * components[j].len()) as f64;
                        predicted.push((step, components[i].clone(), components[j].clone(), p));
                    }
                }
            }
        }

        // Empirical counts per checkpoint: the trial mass is split into
        // fixed chunks submitted through the campaign runner. Chunking is
        // pure scheduling — every trial's coins come from the global
        // per-trial stream, so the counts are identical for any chunk or
        // thread count.
        let coins = ctx.seeds().child_str("E-L3/coins");
        let chunks = trial_chunks(trials);
        let partials = ctx.campaign("E-L3").run(&chunks, |range, _seeds| {
            let mut observed = vec![0u64; predicted.len()];
            for trial in range.clone() {
                let mut state = GraphState::new(instance.topology(), n);
                let mut alg =
                    RandCliques::new(pi0.clone(), SmallRng::seed_from_u64(coins.seed(trial)));
                let mut cursor = 0usize;
                for (step, &event) in instance.events().iter().enumerate() {
                    let info = state.apply(event)?;
                    alg.serve(event, &info, &state);
                    while cursor < predicted.len() && predicted[cursor].0 == step {
                        let (_, ref x, ref y, _) = predicted[cursor];
                        let x_pos = alg.arrangement().position_of(x[0]);
                        let y_pos = alg.arrangement().position_of(y[0]);
                        if x_pos < y_pos {
                            observed[cursor] += 1;
                        }
                        cursor += 1;
                    }
                }
            }
            Ok::<_, SimError>(observed)
        });
        let partials: Vec<Vec<u64>> = partials.into_iter().collect::<Result<_, _>>()?;
        let mut observed = vec![0u64; predicted.len()];
        for (chunk, partial) in chunks.iter().zip(&partials) {
            for (total, count) in observed.iter_mut().zip(partial) {
                *total += count;
            }
            ctx.record(
                RunRecord::new(
                    run_label("cliques-uniform", "RandCliques", n, chunk.start),
                    coins.key(),
                )
                .metric("trials", (chunk.end - chunk.start) as f64)
                .metric("checkpoints", predicted.len() as f64),
            );
        }

        let mut max_dev = 0.0f64;
        let mut sum_dev = 0.0f64;
        let mut worst_idx = 0usize;
        for (idx, &(_, _, _, p)) in predicted.iter().enumerate() {
            let freq = observed[idx] as f64 / trials as f64;
            let dev = (freq - p).abs();
            sum_dev += dev;
            if dev > max_dev {
                max_dev = dev;
                worst_idx = idx;
            }
        }
        let mut table = Table::new(
            "E-L3: P[X—Y] vs |X×Y ∩ L_pi0| / (|X||Y|)",
            &["metric", "value"],
        );
        table.row(&["n", &n.to_string()]);
        table.row(&["trials", &trials.to_string()]);
        table.row(&[
            "tracked (step, pair) checkpoints",
            &predicted.len().to_string(),
        ]);
        table.row(&[
            "mean |observed − predicted|",
            &f4(sum_dev / predicted.len() as f64),
        ]);
        table.row(&["max |observed − predicted|", &f4(max_dev)]);
        let worst = &predicted[worst_idx];
        table.row(&["worst checkpoint predicted", &f4(worst.3)]);
        table.row(&[
            "worst checkpoint observed",
            &f4(observed[worst_idx] as f64 / trials as f64),
        ]);
        // Three-sigma tolerance for a Bernoulli frequency estimate.
        let tolerance = 3.5 * (0.25f64 / trials as f64).sqrt() + 0.01;
        table.row(&["tolerance (≈3.5σ)", &f4(tolerance)]);
        table.row(&[
            "within tolerance",
            if max_dev <= tolerance { "yes" } else { "NO" },
        ]);
        table.note("Lemma 3: the distribution depends only on pi0, not on the reveal order");
        Ok(vec![table])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Scale;

    #[test]
    fn lemma3_holds_within_tolerance() {
        let ctx = ExperimentContext::new(Scale::Tiny, 4);
        let tables = LemmaThree.run(&ctx).unwrap();
        let csv = tables[0].to_csv();
        assert!(csv.contains("within tolerance,yes"), "{csv}");
    }
}
