//! `E-T8`: Theorem 8 — `Rand` is `8 ln n`-competitive on lines.
//!
//! For lines the offline optimum is computed exactly (`Opt = Δ*`,
//! Observation 7 is tight — see `mla-offline`), so the measured ratio
//! `E[cost] / Opt` is the competitive ratio itself. The moving and
//! rearranging parts are reported separately, mirroring the `M + R`
//! decomposition of Theorem 14.

use mla_adversary::{random_line_instance, MergeShape};
use mla_core::RandLines;
use mla_offline::{offline_optimum, LopConfig};
use mla_permutation::Permutation;
use mla_runner::RunRecord;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::engine::Simulation;
use crate::error::SimError;
use crate::experiment::{Experiment, ExperimentContext};
use crate::experiments::{check, f2, run_label, try_results, worst_by, zip_seeds};
use crate::stats::{harmonic, OnlineStats};
use crate::table::Table;

/// The Theorem 8 reproduction.
#[derive(Debug, Clone, Copy, Default)]
pub struct TheoremEight;

impl Experiment for TheoremEight {
    fn id(&self) -> &'static str {
        "E-T8"
    }

    fn title(&self) -> &'static str {
        "Rand on lines: expected competitive ratio vs 8 ln n"
    }

    fn paper_ref(&self) -> &'static str {
        "Theorem 8 (+ Theorem 14)"
    }

    fn run(&self, ctx: &ExperimentContext) -> Result<Vec<Table>, SimError> {
        let ns: &[usize] = ctx.pick(
            &[16, 32][..],
            &[16, 32, 64, 128, 256][..],
            &[16, 32, 64, 128, 256, 512, 1024][..],
        );
        let instances_per_cell = ctx.pick(1, 3, 4);
        let trials = ctx.pick(10, 60, 200);
        let shapes = [
            MergeShape::Uniform,
            MergeShape::Sequential,
            MergeShape::Balanced,
        ];

        let specs: Vec<(usize, MergeShape, u64)> = ns
            .iter()
            .flat_map(|&n| {
                shapes.iter().flat_map(move |&shape| {
                    (0..instances_per_cell).map(move |inst| (n, shape, inst))
                })
            })
            .collect();
        let campaign = ctx.campaign("E-T8");
        let results = campaign.run(&specs, |&(n, shape, _), seeds| {
            let mut rng = SmallRng::seed_from_u64(seeds.child_str("workload").seed(0));
            let instance = random_line_instance(n, shape, &mut rng);
            let pi0 = Permutation::random(n, &mut rng);
            let opt = offline_optimum(&instance, &pi0, &LopConfig::default())?;
            let reference = opt.upper.max(1);
            let coins = seeds.child_str("coins");
            let mut moving = OnlineStats::new();
            let mut rearranging = OnlineStats::new();
            let mut total = OnlineStats::new();
            for trial in 0..trials {
                let alg = RandLines::new(pi0.clone(), SmallRng::seed_from_u64(coins.seed(trial)));
                let outcome = Simulation::new(instance.clone(), alg).run()?;
                moving.push(outcome.moving_cost as f64);
                rearranging.push(outcome.rearranging_cost as f64);
                total.push(outcome.total_cost as f64);
            }
            Ok((moving.mean(), rearranging.mean(), total.mean(), reference))
        });
        let results = try_results(results)?;
        for (&(n, shape, inst), seeds, &(mv, re, tot, reference)) in
            zip_seeds(&specs, &campaign, &results)
        {
            ctx.record(
                RunRecord::new(
                    run_label(format!("lines-{}", shape.label()), "RandLines", n, inst),
                    seeds.key(),
                )
                .metric("mean_moving", mv)
                .metric("mean_rearranging", re)
                .metric("mean_total", tot)
                .metric("opt", reference as f64),
            );
        }

        let mut table = Table::new(
            "E-T8: E[cost(RandLines)] / Opt vs 8·H_n (moving + rearranging)",
            &[
                "n", "shape", "E[move]", "E[rearr]", "E[total]", "opt", "ratio", "8·H_n", "within",
            ],
        );
        for (cell, chunk) in results.chunks(instances_per_cell as usize).enumerate() {
            let (n, shape, _) = specs[cell * instances_per_cell as usize];
            let bound = 8.0 * harmonic(n as u64);
            let (mv, re, tot, opt) = worst_by(chunk, |&(_, _, t, r)| t / r as f64);
            let ratio = tot / opt as f64;
            table.row(&[
                &n.to_string(),
                shape.label(),
                &f2(mv),
                &f2(re),
                &f2(tot),
                &opt.to_string(),
                &f2(ratio),
                &f2(bound),
                check(ratio <= bound),
            ]);
        }
        table.note("opt is the exact line optimum (Observation 7 is tight for lines)");
        table.note("paper shape: ratio grows logarithmically and stays below 8 ln n");
        Ok(vec![table])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Scale;

    #[test]
    fn tiny_run_respects_the_bound() {
        let ctx = ExperimentContext::new(Scale::Tiny, 11);
        let tables = TheoremEight.run(&ctx).unwrap();
        let csv = tables[0].to_csv();
        assert!(!csv.contains(",NO\n"), "bound violated:\n{csv}");
    }
}
