//! `E-L5`: the harmonic-sum lemmas (Lemma 5 and Lemma 13) checked
//! numerically over structured and random series.
//!
//! * Lemma 5: `Σᵢ sᵢ / (Σ_{j≤i} sⱼ) ≤ H_S`;
//! * Lemma 13 (first): `Σᵢ sᵢ² / C(Σ_{j≤i} sⱼ, 2) ≤ 2·H_S`;
//! * Lemma 13 (second): `Σ_{i≥2} sᵢ₋₁·sᵢ / C(Σ_{j=2..i} sⱼ, 2) ≤ 2·H_S`.

use mla_runner::RunRecord;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::error::SimError;
use crate::experiment::{Experiment, ExperimentContext};
use crate::experiments::{f3, run_label, zip_seeds};
use crate::stats::harmonic;
use crate::table::Table;

/// The Lemma 5 / Lemma 13 numeric validation.
#[derive(Debug, Clone, Copy, Default)]
pub struct HarmonicLemmas;

fn binomial2(x: u64) -> f64 {
    (x as f64) * (x.saturating_sub(1) as f64) / 2.0
}

/// Left-hand side of Lemma 5.
fn lemma5_lhs(series: &[u64]) -> f64 {
    let mut prefix = 0u64;
    let mut sum = 0.0;
    for &s in series {
        prefix += s;
        sum += s as f64 / prefix as f64;
    }
    sum
}

/// Left-hand side of the first Lemma 13 inequality.
///
/// As applied in Theorem 14, every denominator covers at least two merged
/// components, so the sum starts at `i = 2` (the literal `i = 1` term has
/// the degenerate denominator `C(s_1, 2)` and would even be infinite for
/// `s_1 = 1`).
fn lemma13_first_lhs(series: &[u64]) -> f64 {
    let mut prefix = series.first().copied().unwrap_or(0);
    let mut sum = 0.0;
    for &s in series.iter().skip(1) {
        prefix += s;
        let denom = binomial2(prefix);
        if denom > 0.0 {
            sum += (s * s) as f64 / denom;
        }
    }
    sum
}

/// Left-hand side of the second Lemma 13 inequality.
///
/// As with the first inequality, the denominator's prefix must cover both
/// factors `s_{i−1}` and `s_i` for the bound to hold (the literal
/// `Σ_{j=2..i}` prefix degenerates at `i = 2`); Theorem 14 applies the
/// lemma with denominators `C(|Y_{i+1}| + |Y_i| + …, 2)`, i.e. full
/// prefixes, which is what we evaluate.
fn lemma13_second_lhs(series: &[u64]) -> f64 {
    let mut sum = 0.0;
    let mut prefix = series.first().copied().unwrap_or(0); // Σ_{j<=i} s_j
    for i in 1..series.len() {
        prefix += series[i];
        let denom = binomial2(prefix);
        if denom > 0.0 {
            sum += (series[i - 1] * series[i]) as f64 / denom;
        }
    }
    sum
}

impl Experiment for HarmonicLemmas {
    fn id(&self) -> &'static str {
        "E-L5"
    }

    fn title(&self) -> &'static str {
        "Lemmas 5 & 13: harmonic-sum inequalities hold with slack"
    }

    fn paper_ref(&self) -> &'static str {
        "Lemma 5, Lemma 13"
    }

    fn run(&self, ctx: &ExperimentContext) -> Result<Vec<Table>, SimError> {
        let campaign = ctx.campaign("E-L5");
        let random_series = ctx.pick(200, 2_000, 10_000);
        // One campaign spec per series family; the random family
        // generates its series inside its job, from its derived stream.
        let family_names = [
            "all ones (worst case of Lemma 5)",
            "doubling",
            "single element",
            "arith. increasing",
            "arith. decreasing",
            "random (1..100 entries)",
        ];
        let results = campaign.run(&family_names, |&name, seeds| {
            let family: Vec<Vec<u64>> = match name {
                "all ones (worst case of Lemma 5)" => vec![vec![1; 256]],
                "doubling" => vec![(0..12).map(|i| 1u64 << i).collect()],
                "single element" => vec![vec![1_000_000]],
                "arith. increasing" => vec![(1..=64).collect::<Vec<u64>>()],
                "arith. decreasing" => vec![(1..=64).rev().collect::<Vec<u64>>()],
                _ => {
                    let mut rng = SmallRng::seed_from_u64(seeds.child_str("series").seed(0));
                    (0..random_series)
                        .map(|_| {
                            let len = rng.gen_range(1..40);
                            (0..len).map(|_| rng.gen_range(1..100)).collect()
                        })
                        .collect()
                }
            };
            let mut max5 = 0.0f64;
            let mut max13a = 0.0f64;
            let mut max13b = 0.0f64;
            for series in &family {
                let total: u64 = series.iter().sum();
                let h = harmonic(total);
                max5 = max5.max(lemma5_lhs(series) / h);
                max13a = max13a.max(lemma13_first_lhs(series) / (2.0 * h));
                max13b = max13b.max(lemma13_second_lhs(series) / (2.0 * h));
            }
            (family.len(), max5, max13a, max13b)
        });

        let mut table = Table::new(
            "E-L5: max normalized LHS over each series family (must be ≤ 1)",
            &[
                "family",
                "series",
                "L5 max LHS/H_S",
                "L13a max LHS/2H_S",
                "L13b max LHS/2H_S",
                "all hold",
            ],
        );
        for (&name, seeds, &(count, max5, max13a, max13b)) in
            zip_seeds(&family_names, &campaign, &results)
        {
            ctx.record(
                RunRecord::new(run_label("series", name, count, 0), seeds.key())
                    .metric("max_l5", max5)
                    .metric("max_l13a", max13a)
                    .metric("max_l13b", max13b),
            );
            let ok = max5 <= 1.0 + 1e-9 && max13a <= 1.0 + 1e-9 && max13b <= 1.0 + 1e-9;
            table.row(&[
                name,
                &count.to_string(),
                &f3(max5),
                &f3(max13a),
                &f3(max13b),
                if ok { "yes" } else { "NO" },
            ]);
        }
        table.note("all-ones achieves LHS/H_S = 1 exactly: Lemma 5 is tight");
        Ok(vec![table])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Scale;

    #[test]
    fn inequalities_hold_on_all_families() {
        let ctx = ExperimentContext::new(Scale::Tiny, 9);
        let tables = HarmonicLemmas.run(&ctx).unwrap();
        let csv = tables[0].to_csv();
        assert!(!csv.contains(",NO\n"), "{csv}");
    }

    #[test]
    fn all_ones_is_tight_for_lemma5() {
        let series = vec![1u64; 100];
        let lhs = lemma5_lhs(&series);
        assert!((lhs - harmonic(100)).abs() < 1e-9);
    }

    #[test]
    fn lemma13_lhs_manual_case() {
        // series [2, 3] with the i >= 2 convention: single term
        // 3² / C(5, 2) = 9/10. Bound: 2·H_5 ≈ 4.567.
        let series = vec![2u64, 3];
        let lhs = lemma13_first_lhs(&series);
        assert!((lhs - 0.9).abs() < 1e-9);
        assert!(lhs <= 2.0 * harmonic(5));
    }
}
