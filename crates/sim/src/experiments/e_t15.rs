//! `E-T15`: Theorem 15 — the binary-tree distribution forces every online
//! algorithm to pay `Ω(log n)` times the optimum.
//!
//! We sample the construction, measure `E[cost]` of the (asymptotically
//! optimal) randomized algorithm, and normalize by the exact offline
//! optimum. The ratio divided by `log₂ n` should be bounded away from 0 —
//! matching the `Ω(log n)` lower bound — while staying below the `8 ln n`
//! upper bound.

use mla_adversary::BinaryTreeAdversary;
use mla_core::RandLines;
use mla_graph::Topology;
use mla_offline::{offline_optimum, LopConfig};
use mla_permutation::Permutation;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::experiment::{Experiment, ExperimentContext};
use crate::experiments::{expected_cost, f2, f3};
use crate::stats::{harmonic, OnlineStats};
use crate::table::Table;

/// The Theorem 15 reproduction.
#[derive(Debug, Clone, Copy, Default)]
pub struct TheoremFifteen;

impl Experiment for TheoremFifteen {
    fn id(&self) -> &'static str {
        "E-T15"
    }

    fn title(&self) -> &'static str {
        "Binary-tree adversary: competitive ratio grows as Θ(log n)"
    }

    fn paper_ref(&self) -> &'static str {
        "Theorem 15"
    }

    fn run(&self, ctx: &ExperimentContext) -> Vec<Table> {
        let qs: &[u32] = ctx.pick(
            &[3, 4][..],
            &[3, 4, 5, 6, 7][..],
            &[3, 4, 5, 6, 7, 8, 9][..],
        );
        let samples = ctx.pick(2, 4, 6);
        let trials = ctx.pick(5, 30, 100);
        let mut table = Table::new(
            "E-T15: Rand on the binary-tree distribution (lines)",
            &["n", "E[cost]", "opt", "ratio", "ratio/log2 n", "8·H_n"],
        );
        for &q in qs {
            let n = 1usize << q;
            let mut ratio_stats = OnlineStats::new();
            let mut cost_stats = OnlineStats::new();
            let mut opt_stats = OnlineStats::new();
            for sample in 0..samples {
                let mut rng = SmallRng::seed_from_u64(ctx.seed ^ u64::from(q) << 40 ^ sample << 8);
                let adversary = BinaryTreeAdversary::sample(q, Topology::Lines, &mut rng);
                let pi0 = Permutation::identity(n);
                let opt = offline_optimum(adversary.instance(), &pi0, &LopConfig::default())
                    .expect("sizes match");
                let opt_value = opt.upper.max(1);
                let stats = expected_cost(adversary.instance(), trials, |trial| {
                    RandLines::new(
                        pi0.clone(),
                        SmallRng::seed_from_u64(ctx.seed ^ 0xdd ^ trial << 16 ^ sample),
                    )
                });
                cost_stats.push(stats.mean());
                opt_stats.push(opt_value as f64);
                ratio_stats.push(stats.mean() / opt_value as f64);
            }
            table.row(&[
                &n.to_string(),
                &f2(cost_stats.mean()),
                &f2(opt_stats.mean()),
                &f2(ratio_stats.mean()),
                &f3(ratio_stats.mean() / f64::from(q)),
                &f2(8.0 * harmonic(n as u64)),
            ]);
        }
        table.note("ratio/log2 n bounded away from 0: the Ω(log n) lower bound bites");
        table.note("ratio stays below 8·H_n: consistent with the Theorem 8 upper bound");

        // Second table: the proof's per-level accounting. Theorem 15 shows
        // every algorithm pays Ω(n²) *per tree level*; measure Rand's
        // per-level cost on the largest sampled n.
        let q = *qs.last().expect("at least one q");
        let n = 1usize << q;
        let mut rng = SmallRng::seed_from_u64(ctx.seed ^ 0x15);
        let adversary = BinaryTreeAdversary::sample(q, Topology::Lines, &mut rng);
        let pi0 = Permutation::identity(n);
        let mut per_level = vec![OnlineStats::new(); adversary.levels()];
        for trial in 0..trials {
            let outcome = crate::engine::Simulation::new(
                adversary.instance().clone(),
                RandLines::new(
                    pi0.clone(),
                    SmallRng::seed_from_u64(ctx.seed ^ 0x1515 ^ trial << 8),
                ),
            )
            .run()
            .expect("valid instance");
            for (level, stats) in per_level.iter_mut().enumerate() {
                let range = adversary.level_range(level);
                let level_cost: u64 = outcome.per_event[range]
                    .iter()
                    .map(mla_core::UpdateReport::total)
                    .sum();
                stats.push(level_cost as f64);
            }
        }
        let mut levels = Table::new(
            &format!("E-T15: per-level cost of Rand at n = {n} (proof accounting)"),
            &["level", "requests", "E[cost]", "E[cost]/n²"],
        );
        for (level, stats) in per_level.iter().enumerate() {
            levels.row(&[
                &level.to_string(),
                &adversary.level_range(level).len().to_string(),
                &f2(stats.mean()),
                &f3(stats.mean() / (n * n) as f64),
            ]);
        }
        levels.note("the proof charges ≥ n²/8 per level to ANY algorithm (up to constants)");
        levels.note("upper levels merge huge components: few requests, each expensive");
        vec![table, levels]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Scale;

    #[test]
    fn ratio_grows_with_n_and_respects_upper_bound() {
        let ctx = ExperimentContext {
            scale: Scale::Quick,
            seed: 2,
        };
        let tables = TheoremFifteen.run(&ctx);
        let csv = tables[0].to_csv();
        let rows: Vec<Vec<f64>> = csv
            .lines()
            .skip(1)
            .map(|line| line.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        for row in &rows {
            let (ratio, bound) = (row[3], row[5]);
            assert!(ratio <= bound, "ratio {ratio} exceeds 8 H_n {bound}");
        }
        // The ratio grows from the smallest to the largest n.
        assert!(rows.last().unwrap()[3] > rows.first().unwrap()[3]);
    }
}
