//! `E-T15`: Theorem 15 — the binary-tree distribution forces every online
//! algorithm to pay `Ω(log n)` times the optimum.
//!
//! We sample the construction, measure `E[cost]` of the (asymptotically
//! optimal) randomized algorithm, and normalize by the exact offline
//! optimum. The ratio divided by `log₂ n` should be bounded away from 0 —
//! matching the `Ω(log n)` lower bound — while staying below the `8 ln n`
//! upper bound.

use mla_adversary::BinaryTreeAdversary;
use mla_core::RandLines;
use mla_graph::Topology;
use mla_offline::{offline_optimum, LopConfig};
use mla_permutation::Permutation;
use mla_runner::RunRecord;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::error::SimError;
use crate::experiment::{Experiment, ExperimentContext};
use crate::experiments::{expected_cost, f2, f3, run_label, try_results, zip_seeds};
use crate::stats::{harmonic, OnlineStats};
use crate::table::Table;

/// The Theorem 15 reproduction.
#[derive(Debug, Clone, Copy, Default)]
pub struct TheoremFifteen;

impl Experiment for TheoremFifteen {
    fn id(&self) -> &'static str {
        "E-T15"
    }

    fn title(&self) -> &'static str {
        "Binary-tree adversary: competitive ratio grows as Θ(log n)"
    }

    fn paper_ref(&self) -> &'static str {
        "Theorem 15"
    }

    fn run(&self, ctx: &ExperimentContext) -> Result<Vec<Table>, SimError> {
        let qs: &[u32] = ctx.pick(
            &[3, 4][..],
            &[3, 4, 5, 6, 7][..],
            &[3, 4, 5, 6, 7, 8, 9][..],
        );
        let samples = ctx.pick(2, 4, 6);
        let trials = ctx.pick(5, 30, 100);
        let mut table = Table::new(
            "E-T15: Rand on the binary-tree distribution (lines)",
            &["n", "E[cost]", "opt", "ratio", "ratio/log2 n", "8·H_n"],
        );
        // One spec per (q, sample) draw from the binary-tree distribution.
        let specs: Vec<(u32, u64)> = qs
            .iter()
            .flat_map(|&q| (0..samples).map(move |sample| (q, sample)))
            .collect();
        let campaign = ctx.campaign("E-T15");
        let results = campaign.run(&specs, |&(q, _), seeds| {
            let n = 1usize << q;
            let mut rng = SmallRng::seed_from_u64(seeds.child_str("tree").seed(0));
            let adversary = BinaryTreeAdversary::sample(q, Topology::Lines, &mut rng);
            let pi0 = Permutation::identity(n);
            let opt = offline_optimum(adversary.instance(), &pi0, &LopConfig::default())?;
            let opt_value = opt.upper.max(1);
            let stats = expected_cost(
                adversary.instance(),
                trials,
                seeds.child_str("coins"),
                |seed| RandLines::new(pi0.clone(), SmallRng::seed_from_u64(seed)),
            )?;
            Ok((stats.mean(), opt_value))
        });
        let results = try_results(results)?;
        for (&(q, sample), seeds, &(mean, opt_value)) in zip_seeds(&specs, &campaign, &results) {
            ctx.record(
                RunRecord::new(
                    run_label("binary-tree", "RandLines", 1usize << q, sample),
                    seeds.key(),
                )
                .metric("mean_cost", mean)
                .metric("opt", opt_value as f64),
            );
        }
        for (cell, chunk) in results.chunks(samples as usize).enumerate() {
            let q = specs[cell * samples as usize].0;
            let n = 1usize << q;
            let mut ratio_stats = OnlineStats::new();
            let mut cost_stats = OnlineStats::new();
            let mut opt_stats = OnlineStats::new();
            for &(mean, opt_value) in chunk {
                cost_stats.push(mean);
                opt_stats.push(opt_value as f64);
                ratio_stats.push(mean / opt_value as f64);
            }
            table.row(&[
                &n.to_string(),
                &f2(cost_stats.mean()),
                &f2(opt_stats.mean()),
                &f2(ratio_stats.mean()),
                &f3(ratio_stats.mean() / f64::from(q)),
                &f2(8.0 * harmonic(n as u64)),
            ]);
        }
        table.note("ratio/log2 n bounded away from 0: the Ω(log n) lower bound bites");
        table.note("ratio stays below 8·H_n: consistent with the Theorem 8 upper bound");

        // Second table: the proof's per-level accounting. Theorem 15 shows
        // every algorithm pays Ω(n²) *per tree level*; measure Rand's
        // per-level cost on the largest sampled n.
        // mla-lint: allow(panic-safety): the experiment grid always holds at least one q
        let q = *qs.last().expect("at least one q");
        let n = 1usize << q;
        let mut rng = SmallRng::seed_from_u64(ctx.seeds().child_str("E-T15/level-tree").seed(0));
        let adversary = BinaryTreeAdversary::sample(q, Topology::Lines, &mut rng);
        let pi0 = Permutation::identity(n);
        // Per-level accounting: one campaign spec per trial, each a full
        // independent simulation of the same sampled instance.
        let coins = ctx.seeds().child_str("E-T15/level-coins");
        let trial_specs: Vec<u64> = (0..trials).collect();
        let level_costs = ctx
            .campaign("E-T15-levels")
            .run(&trial_specs, |&trial, _seeds| {
                let outcome = crate::engine::Simulation::new(
                    adversary.instance().clone(),
                    RandLines::new(pi0.clone(), SmallRng::seed_from_u64(coins.seed(trial))),
                )
                .run()?;
                Ok::<_, SimError>(
                    (0..adversary.levels())
                        .map(|level| {
                            outcome.per_event[adversary.level_range(level)]
                                .iter()
                                .map(mla_core::UpdateReport::total)
                                .sum::<u64>()
                        })
                        .collect::<Vec<u64>>(),
                )
            });
        let level_costs = try_results(level_costs)?;
        let mut per_level = vec![OnlineStats::new(); adversary.levels()];
        for costs in &level_costs {
            for (stats, &cost) in per_level.iter_mut().zip(costs) {
                stats.push(cost as f64);
            }
        }
        for (trial, costs) in level_costs.iter().enumerate() {
            ctx.record(
                // Key is the shared coin-stream node (trials differ by the
                // rep field of the label), matching the chunked
                // experiments' convention.
                RunRecord::new(
                    run_label("binary-tree-levels", "RandLines", n, trial as u64),
                    coins.key(),
                )
                .metric("total_cost", costs.iter().sum::<u64>() as f64),
            );
        }
        let mut levels = Table::new(
            &format!("E-T15: per-level cost of Rand at n = {n} (proof accounting)"),
            &["level", "requests", "E[cost]", "E[cost]/n²"],
        );
        for (level, stats) in per_level.iter().enumerate() {
            levels.row(&[
                &level.to_string(),
                &adversary.level_range(level).len().to_string(),
                &f2(stats.mean()),
                &f3(stats.mean() / (n * n) as f64),
            ]);
        }
        levels.note("the proof charges ≥ n²/8 per level to ANY algorithm (up to constants)");
        levels.note("upper levels merge huge components: few requests, each expensive");
        Ok(vec![table, levels])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Scale;

    #[test]
    fn ratio_grows_with_n_and_respects_upper_bound() {
        let ctx = ExperimentContext::new(Scale::Quick, 2);
        let tables = TheoremFifteen.run(&ctx).unwrap();
        let csv = tables[0].to_csv();
        let rows: Vec<Vec<f64>> = csv
            .lines()
            .skip(1)
            .map(|line| line.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        for row in &rows {
            let (ratio, bound) = (row[3], row[5]);
            assert!(ratio <= bound, "ratio {ratio} exceeds 8 H_n {bound}");
        }
        // The ratio grows from the smallest to the largest n.
        assert!(rows.last().unwrap()[3] > rows.first().unwrap()[3]);
    }
}
