//! `E-F2`: Figure 2 — the line algorithm's rearranging options, costs and
//! probabilities, enumerated for **all eight** configurations of the two
//! merging blocks (which side `X` is on × each block's orientation).
//!
//! The paper's figure shows one configuration; this table generalizes it
//! and verifies two structural facts from Section 4: the two option costs
//! always sum to `C(|X|+|Z|, 2)`, and the probability of an option equals
//! the other option's normalized cost.

use mla_core::mechanics::{rearrange_choices, RearrangeChoices};
use mla_graph::ComponentSnapshot;
use mla_permutation::{Node, Permutation};
use mla_runner::RunRecord;

use crate::error::SimError;
use crate::experiment::{Experiment, ExperimentContext};
use crate::experiments::{check, f3, run_label, zip_seeds};
use crate::table::Table;

/// The Figure 2 action-table reproduction.
#[derive(Debug, Clone, Copy, Default)]
pub struct FigureTwo;

/// Builds the permutation for one configuration of `X` (nodes `0..x`) and
/// `Z` (nodes `x..x+z`), adjacent, and returns the rearranging choices.
fn configuration(
    x: usize,
    z: usize,
    x_left: bool,
    x_reversed: bool,
    z_reversed: bool,
) -> RearrangeChoices {
    let x_nodes: Vec<Node> = (0..x).map(Node::new).collect();
    let z_nodes: Vec<Node> = (x..x + z).map(Node::new).collect();
    let mut x_block = x_nodes.clone();
    if x_reversed {
        x_block.reverse();
    }
    let mut z_block = z_nodes.clone();
    if z_reversed {
        z_block.reverse();
    }
    let order: Vec<Node> = if x_left {
        x_block.into_iter().chain(z_block).collect()
    } else {
        z_block.into_iter().chain(x_block).collect()
    };
    // mla-lint: allow(panic-safety): the constructed layout lists each node exactly once
    let perm = Permutation::from_nodes(order).expect("valid layout");
    // mla-lint: allow(panic-safety): Figure 2 cells have non-empty X blocks
    let x_joined = *x_nodes.last().expect("non-empty");
    let x_snapshot = ComponentSnapshot::eager(x_nodes, x_joined);
    let z_joined = z_nodes[0];
    let z_snapshot = ComponentSnapshot::eager(z_nodes, z_joined);
    rearrange_choices(&perm, &x_snapshot, &z_snapshot)
}

impl Experiment for FigureTwo {
    fn id(&self) -> &'static str {
        "E-F2"
    }

    fn title(&self) -> &'static str {
        "Figure 2: rearranging costs and probabilities, all 8 configurations"
    }

    fn paper_ref(&self) -> &'static str {
        "Figure 2 (Section 4.1)"
    }

    fn run(&self, ctx: &ExperimentContext) -> Result<Vec<Table>, SimError> {
        let (x, z) = (3usize, 2usize);
        let pairs_total = {
            let m = (x + z) as u64;
            m * (m - 1) / 2
        };
        let campaign = ctx.campaign("E-F2");
        let mut table = Table::new(
            "E-F2: |X| = 3, |Z| = 2 — both options per configuration",
            &[
                "config",
                "cost(fwd)",
                "cost(rev)",
                "sum",
                "P[fwd]",
                "P[rev]",
                "sum=C(5,2)",
            ],
        );
        // The eight configurations are pure enumeration (no coins), but
        // they still go through the campaign runner so every experiment's
        // work — and its artifacts — flows through one substrate.
        let mut specs: Vec<(bool, bool, bool)> = Vec::new();
        for x_left in [true, false] {
            for x_reversed in [false, true] {
                for z_reversed in [false, true] {
                    specs.push((x_left, x_reversed, z_reversed));
                }
            }
        }
        let results = campaign.run(&specs, |&(x_left, x_reversed, z_reversed), _seeds| {
            let choices = configuration(x, z, x_left, x_reversed, z_reversed);
            (choices.forward.cost, choices.reversed.cost)
        });
        for (&(x_left, x_reversed, z_reversed), seeds, &(fwd, rev)) in
            zip_seeds(&specs, &campaign, &results)
        {
            let total = fwd + rev;
            let p_fwd = rev as f64 / total as f64;
            let label = format!(
                "{}{}{}",
                if x_left { "XZ" } else { "ZX" },
                if x_reversed { ",X rev" } else { ",X fwd" },
                if z_reversed { ",Z rev" } else { ",Z fwd" },
            );
            ctx.record(
                RunRecord::new(run_label("figure2", &label, x + z, 0), seeds.key())
                    .metric("cost_forward", fwd as f64)
                    .metric("cost_reversed", rev as f64),
            );
            table.row(&[
                &label,
                &fwd.to_string(),
                &rev.to_string(),
                &total.to_string(),
                &f3(p_fwd),
                &f3(1.0 - p_fwd),
                check(total == pairs_total),
            ]);
        }
        table.note("P[option] = cost(other option) / C(|X|+|Z|, 2) — the paper's biased coin");
        table.note("the paper's drawn case is row 'XZ,X rev,Z fwd': reverse X w.p. (|X||Z|+C(|Z|,2))/C(|X|+|Z|,2)");

        // The figure's specific formula check: for the drawn configuration,
        // P[reverse X] = (|X||Z| + C(|Z|,2)) / C(|X|+|Z|,2).
        let drawn = configuration(x, z, true, true, false);
        let expected_p_fwd = ((x * z) as f64 + (z * (z - 1) / 2) as f64) / pairs_total as f64;
        let measured_p_fwd =
            drawn.reversed.cost as f64 / (drawn.forward.cost + drawn.reversed.cost) as f64;
        let mut formula = Table::new(
            "E-F2: the exact Figure 2 formula",
            &["quantity", "paper formula", "implementation"],
        );
        formula.row(&[
            "P[reverse X] (forward option)",
            &f3(expected_p_fwd),
            &f3(measured_p_fwd),
        ]);
        formula.row(&[
            "cost forward (reverse X)",
            &((x * (x - 1)) / 2).to_string(),
            &drawn.forward.cost.to_string(),
        ]);
        formula.row(&[
            "cost reversed (swap + reverse Z)",
            &((x * z + z * (z - 1) / 2).to_string()),
            &drawn.reversed.cost.to_string(),
        ]);
        Ok(vec![table, formula])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{ExperimentContext, Scale};

    #[test]
    fn all_configurations_sum_to_total_pairs() {
        let ctx = ExperimentContext::new(Scale::Tiny, 0);
        let tables = FigureTwo.run(&ctx).unwrap();
        assert_eq!(tables.len(), 2);
        assert!(!tables[0].to_csv().contains(",NO\n"));
    }

    #[test]
    fn figure_formula_matches() {
        // Drawn configuration: X left reading reversed, Z right forward.
        let choices = configuration(3, 2, true, true, false);
        // Forward option: reverse X only → C(3,2) = 3.
        assert_eq!(choices.forward.cost, 3);
        // Reversed option: swap + reverse Z → 6 + 1 = 7.
        assert_eq!(choices.reversed.cost, 7);
        // P[forward] = 7/10 = (|X||Z| + C(|Z|,2)) / C(5,2).
        assert_eq!((3 * 2 + 1) as u64, choices.reversed.cost);
    }
}
