//! `E-F1`: Figure 1 — the clique algorithm's two possible actions and
//! their probabilities, validated against the implementation.
//!
//! A micro-scenario is built for every size pair: `X` and `Z` sit one node
//! apart, a merge is revealed, and the mover is detected from the
//! resulting permutation. Empirical move frequencies must match
//! `P[X moves] = |Z| / (|X| + |Z|)`.

use mla_core::{OnlineMinla, RandCliques};
use mla_graph::{GraphState, RevealEvent, Topology};
use mla_permutation::{Node, Permutation};
use mla_runner::RunRecord;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::error::SimError;
use crate::experiment::{Experiment, ExperimentContext};
use crate::experiments::{check, f3, run_label, zip_seeds};
use crate::table::Table;

/// The Figure 1 action-table reproduction.
#[derive(Debug, Clone, Copy, Default)]
pub struct FigureOne;

/// Runs one micro-merge; returns `true` if `X` moved.
///
/// Layout: `[X block][spacer][Z block]` in `π0` = identity; `X` =
/// `{0..x}`, spacer = `{x}`, `Z` = `{x+1..x+1+z}`. Whoever moved ends up
/// on the far side of the spacer.
fn x_moved(x: usize, z: usize, seed: u64) -> Result<bool, SimError> {
    let n = x + z + 1;
    let spacer = Node::new(x);
    let pi0 = Permutation::identity(n);
    let mut graph = GraphState::new(Topology::Cliques, n);
    let mut alg = RandCliques::new(pi0, SmallRng::seed_from_u64(seed));
    // Build the X and Z cliques (already contiguous: free).
    let serve = |graph: &mut GraphState,
                 alg: &mut RandCliques<SmallRng>,
                 a: usize,
                 b: usize|
     -> Result<(), SimError> {
        let event = RevealEvent::new(Node::new(a), Node::new(b));
        let info = graph.apply(event)?;
        alg.serve(event, &info, graph);
        Ok(())
    };
    for i in 1..x {
        serve(&mut graph, &mut alg, 0, i)?;
    }
    for i in 1..z {
        serve(&mut graph, &mut alg, x + 1, x + 1 + i)?;
    }
    // The merge under test.
    serve(&mut graph, &mut alg, 0, x + 1)?;
    // If X moved right, the spacer now precedes all X nodes.
    let spacer_pos = alg.arrangement().position_of(spacer);
    let x_first = (0..x)
        .map(|i| alg.arrangement().position_of(Node::new(i)))
        .min()
        // mla-lint: allow(panic-safety): x >= 1 in every Figure 1 cell, so the minimum exists
        .expect("x >= 1 in every Figure 1 cell");
    Ok(spacer_pos < x_first)
}

impl Experiment for FigureOne {
    fn id(&self) -> &'static str {
        "E-F1"
    }

    fn title(&self) -> &'static str {
        "Figure 1: move probabilities |Z|/(|X|+|Z|) per component-size pair"
    }

    fn paper_ref(&self) -> &'static str {
        "Figure 1 (Section 3.1)"
    }

    fn run(&self, ctx: &ExperimentContext) -> Result<Vec<Table>, SimError> {
        let trials = ctx.pick(1_000, 4_000, 20_000);
        let sizes = [1usize, 2, 4, 8];
        let mut table = Table::new(
            "E-F1: P[X moves] — theory vs measured implementation",
            &["|X|", "|Z|", "theory", "measured", "|diff|", "within 3.5σ"],
        );
        // One spec per (|X|, |Z|) cell; each job flips its own coin
        // stream for `trials` micro-runs.
        let specs: Vec<(usize, usize)> = sizes
            .iter()
            .flat_map(|&x| sizes.iter().map(move |&z| (x, z)))
            .collect();
        let campaign = ctx.campaign("E-F1");
        let moved_counts = campaign.run(&specs, |&(x, z), seeds| -> Result<u64, SimError> {
            let coins = seeds.child_str("coins");
            let mut moved = 0u64;
            for trial in 0..trials {
                if x_moved(x, z, coins.seed(trial))? {
                    moved += 1;
                }
            }
            Ok(moved)
        });
        let moved_counts: Vec<u64> = moved_counts.into_iter().collect::<Result<_, _>>()?;
        for (&(x, z), seeds, &moved) in zip_seeds(&specs, &campaign, &moved_counts) {
            ctx.record(
                RunRecord::new(
                    run_label("micro-merge", format!("RandCliques-x{x}-z{z}"), x + z, 0),
                    seeds.key(),
                )
                .metric("x", x as f64)
                .metric("z", z as f64)
                .metric("trials", trials as f64)
                .metric("moved", moved as f64),
            );
            let theory = z as f64 / (x + z) as f64;
            let measured = moved as f64 / trials as f64;
            let sigma = (theory * (1.0 - theory) / trials as f64).sqrt();
            let diff = (measured - theory).abs();
            table.row(&[
                &x.to_string(),
                &z.to_string(),
                &f3(theory),
                &f3(measured),
                &f3(diff),
                check(diff <= 3.5 * sigma + 1e-9),
            ]);
        }
        table.note("moving costs: X pays |X|·gap, Z pays |Z|·gap (verified in mla-core tests)");
        Ok(vec![table])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Scale;

    #[test]
    fn probabilities_match_theory() {
        let ctx = ExperimentContext::new(Scale::Tiny, 1);
        let tables = FigureOne.run(&ctx).unwrap();
        let csv = tables[0].to_csv();
        assert!(!csv.contains(",NO\n"), "{csv}");
    }

    #[test]
    fn deterministic_extremes() {
        // |X| = 1, |Z| = 8: P[X moves] = 8/9 — check both outcomes occur.
        let mut any_moved = false;
        let mut any_stayed = false;
        for seed in 0..200 {
            if x_moved(1, 8, seed).unwrap() {
                any_moved = true;
            } else {
                any_stayed = true;
            }
        }
        assert!(any_moved && any_stayed);
    }
}
