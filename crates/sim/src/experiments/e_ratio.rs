//! `E-RATIO`: online-vs-`Opt` ratios against **certified** optima at
//! scale.
//!
//! Every other experiment certifies `Opt` by brute force (`n ≤ 8`) or
//! closed forms. This one runs the full policy matrix on the
//! oracle-tractable [`TopologyFamily`] workloads and measures each
//! final arrangement against the certifying oracles in `mla-offline`:
//! interval MinLA for the clique family, series-parallel chain MinLA
//! for the path families, plus the MaxLA duals (clique spread, path
//! closed form) riding the same machinery. Every oracle answer is
//! re-validated by the independent `verify_certificate` checker before
//! a ratio is computed — an unverifiable certificate fails the
//! experiment, not just the row.
//!
//! Because the engine enforces MinLA-feasibility after every reveal
//! (checked here with `check_feasibility(true)`), each policy's final
//! arrangement is itself optimal for the revealed graph, so the proven
//! arrangement-ratio bound is exactly [`PROVEN_RATIO_BOUND`] `= 1.0`.
//! The experiment *gates* on it: any measured ratio above the bound by
//! more than 5% ([`RATIO_GATE`]) returns an error, which fails the CI
//! smoke step. The per-policy ratios are also written to
//! `BENCH_ratio.json` (under `MLA_BENCH_ARTIFACT_DIR`, default
//! `target/bench-artifacts`) so CI can archive the trajectory.

use mla_adversary::{FamilyWorkload, TopologyFamily};
use mla_core::{MovePolicy, OnlineMinla, RandCliques, RandLines, RearrangePolicy};
use mla_graph::{final_state_of, GraphState, Topology};
use mla_offline::{
    interval_minla, maxla_cliques, maxla_path, series_parallel_minla, verify_certificate,
    IntervalModel, OracleResult, SpForest,
};
use mla_permutation::Permutation;
use mla_runner::{Json, RunRecord};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::engine::Simulation;
use crate::error::SimError;
use crate::experiment::{Experiment, ExperimentContext};
use crate::experiments::{check, run_label, try_results, zip_seeds};
use crate::table::Table;

/// The proven bound on the final-arrangement ratio: feasibility is
/// enforced after every reveal, so the final arrangement of every
/// policy is optimal for the revealed graph.
pub const PROVEN_RATIO_BOUND: f64 = 1.0;

/// The CI gate: a measured ratio exceeding the proven bound by more
/// than 5% fails the experiment (and with it the release smoke step).
pub const RATIO_GATE: f64 = PROVEN_RATIO_BOUND * 1.05;

/// The certified-ratio measurement.
#[derive(Debug, Clone, Copy, Default)]
pub struct CertifiedRatio;

/// One measured cell of the ratio matrix.
struct RatioCell {
    algorithm: String,
    online: u128,
    opt_minla: u128,
    opt_maxla: Option<u128>,
    ratio: f64,
}

/// The three policy variants per topology, in reporting order.
const VARIANTS: usize = 3;

fn cliques_policy(variant: usize) -> MovePolicy {
    [
        MovePolicy::SizeBiased,
        MovePolicy::Fair,
        MovePolicy::SmallerMoves,
    ][variant]
}

fn lines_policies(variant: usize) -> (MovePolicy, RearrangePolicy) {
    [
        (MovePolicy::SizeBiased, RearrangePolicy::CostBiased),
        (MovePolicy::Fair, RearrangePolicy::Fair),
        (MovePolicy::SmallerMoves, RearrangePolicy::Cheapest),
    ][variant]
}

/// Solves, certifies and cross-checks the MinLA optimum of a final
/// family state. The oracle answer is accepted only after the
/// independent checker validates its certificate against the state's
/// raw edge list *and* it matches the engine's closed-form
/// `minla_value`.
fn certified_minla(
    family: TopologyFamily,
    n: usize,
    state: &GraphState,
) -> Result<OracleResult, SimError> {
    let components = state.components();
    let result = match family {
        TopologyFamily::Interval => interval_minla(&IntervalModel::for_cliques(n, &components))?,
        TopologyFamily::SeriesParallel | TopologyFamily::TreeMerge => {
            series_parallel_minla(&SpForest::from_paths(n, &components)?)?
        }
    };
    verify_certificate(n, &state.edges(), &result).map_err(|e| {
        SimError::Other(format!(
            "E-RATIO: {} MinLA certificate rejected: {e}",
            family.label()
        ))
    })?;
    if result.value != state.minla_value() {
        return Err(SimError::Other(format!(
            "E-RATIO: {} certified optimum {} disagrees with the closed form {}",
            family.label(),
            result.value,
            state.minla_value()
        )));
    }
    Ok(result)
}

/// Solves and certifies the MaxLA dual where the family admits one
/// (clique spread for the interval family, the path closed form for the
/// full tree merge; bounded disjoint paths have no single dual solver).
fn certified_maxla(
    family: TopologyFamily,
    n: usize,
    state: &GraphState,
) -> Result<Option<OracleResult>, SimError> {
    let components = state.components();
    let result = match family {
        TopologyFamily::Interval => maxla_cliques(n, &components)?,
        TopologyFamily::TreeMerge => maxla_path(n, &components[0])?,
        TopologyFamily::SeriesParallel => return Ok(None),
    };
    verify_certificate(n, &state.edges(), &result).map_err(|e| {
        SimError::Other(format!(
            "E-RATIO: {} MaxLA certificate rejected: {e}",
            family.label()
        ))
    })?;
    Ok(Some(result))
}

impl Experiment for CertifiedRatio {
    fn id(&self) -> &'static str {
        "E-RATIO"
    }

    fn title(&self) -> &'static str {
        "Online vs certified Opt on oracle-tractable families"
    }

    fn paper_ref(&self) -> &'static str {
        "beyond the paper (ROADMAP: oracles that scale)"
    }

    fn run(&self, ctx: &ExperimentContext) -> Result<Vec<Table>, SimError> {
        let n = ctx.pick(256, 4_096, 100_000);
        let campaign = ctx.campaign("E-RATIO");

        let specs: Vec<(TopologyFamily, usize)> = TopologyFamily::all()
            .iter()
            .flat_map(|&family| (0..VARIANTS).map(move |variant| (family, variant)))
            .collect();
        let results = campaign.run(&specs, |&(family, variant), seeds| {
            let root = seeds.child_str("workload");
            let coin = seeds.child_str("coins").seed(0);
            let source = FamilyWorkload::new(family, n, &root);
            let (algorithm, outcome) = match family.topology() {
                Topology::Cliques => {
                    let algorithm = RandCliques::with_policy(
                        Permutation::identity(n),
                        SmallRng::seed_from_u64(coin),
                        cliques_policy(variant),
                    );
                    let name = algorithm.name().to_owned();
                    (
                        name,
                        Simulation::from_source(source, algorithm)
                            .check_feasibility(true)
                            .record_events(false)
                            .run()?,
                    )
                }
                Topology::Lines => {
                    let (movement, rearrange) = lines_policies(variant);
                    let algorithm = RandLines::with_policies(
                        Permutation::identity(n),
                        SmallRng::seed_from_u64(coin),
                        movement,
                        rearrange,
                    );
                    let name = algorithm.name().to_owned();
                    (
                        name,
                        Simulation::from_source(source, algorithm)
                            .check_feasibility(true)
                            .record_events(false)
                            .run()?,
                    )
                }
            };
            // Replay the identical workload to rebuild the final revealed
            // graph, then certify its optimum independently.
            let mut replay = FamilyWorkload::new(family, n, &root);
            let state = final_state_of(&mut replay)?;
            let minla = certified_minla(family, n, &state)?;
            let maxla = certified_maxla(family, n, &state)?;
            let online = state.arrangement_cost(&outcome.final_perm);
            let ratio = if minla.value == 0 {
                if online == 0 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                online as f64 / minla.value as f64
            };
            if ratio > RATIO_GATE {
                return Err(SimError::Other(format!(
                    "E-RATIO gate: {algorithm} on {} reached ratio {ratio:.4} > {RATIO_GATE} \
                     (online {online} vs certified Opt {})",
                    family.label(),
                    minla.value
                )));
            }
            Ok(RatioCell {
                algorithm,
                online,
                opt_minla: minla.value,
                opt_maxla: maxla.map(|result| result.value),
                ratio,
            })
        });
        let results = try_results(results)?;

        let mut artifact_cells = Vec::with_capacity(results.len());
        for (&(family, _), seeds, cell) in zip_seeds(&specs, &campaign, &results) {
            ctx.record(
                RunRecord::new(
                    run_label(
                        format!("ratio-{}", family.label()),
                        cell.algorithm.clone(),
                        n,
                        0,
                    ),
                    seeds.key(),
                )
                .metric("online_cost", cell.online as f64)
                .metric("opt_minla", cell.opt_minla as f64)
                .metric("ratio", cell.ratio),
            );
            let mut entry = Json::object()
                .field("family", family.label())
                .field("algorithm", cell.algorithm.as_str())
                .field("n", n)
                .field("online_cost", cell.online)
                .field("opt_minla", cell.opt_minla)
                .field("ratio", cell.ratio)
                .field("certified", true);
            if let Some(maxla) = cell.opt_maxla {
                entry = entry.field("opt_maxla", maxla);
            }
            artifact_cells.push(entry);
        }
        write_ratio_artifact(ctx, n, artifact_cells)?;

        let mut table = Table::new(
            "E-RATIO: final arrangement vs certified Opt (both oracles checker-validated)",
            &[
                "family",
                "algorithm",
                "n",
                "online",
                "opt(minla)",
                "ratio",
                "opt(maxla)",
                "gate",
            ],
        );
        for (&(family, _), cell) in specs.iter().zip(&results) {
            table.row(&[
                family.label(),
                &cell.algorithm,
                &n.to_string(),
                &cell.online.to_string(),
                &cell.opt_minla.to_string(),
                &format!("{:.4}", cell.ratio),
                &cell
                    .opt_maxla
                    .map_or_else(|| "-".to_owned(), |v| v.to_string()),
                check(cell.ratio <= RATIO_GATE),
            ]);
        }
        table.note("Opt certified by mla-offline oracles; every certificate re-validated by verify_certificate");
        table.note(&format!(
            "gate: ratio must stay within 5% of the proven bound {PROVEN_RATIO_BOUND} (feasibility forces optimal final arrangements)"
        ));
        table.note("artifact: BENCH_ratio.json under MLA_BENCH_ARTIFACT_DIR (default target/bench-artifacts)");
        Ok(vec![table])
    }
}

/// Writes `BENCH_ratio.json` — the per-policy certified-ratio artifact
/// CI archives and gates on.
fn write_ratio_artifact(
    ctx: &ExperimentContext,
    n: usize,
    cells: Vec<Json>,
) -> Result<(), SimError> {
    // mla-lint: allow(determinism): artifact output directory only; never affects computed outcomes
    let dir = std::env::var("MLA_BENCH_ARTIFACT_DIR")
        .unwrap_or_else(|_| "target/bench-artifacts".to_owned());
    std::fs::create_dir_all(&dir)
        .map_err(|e| SimError::Other(format!("cannot create {dir}: {e}")))?;
    let report = Json::object()
        .field("id", "BENCH_ratio")
        .field(
            "description",
            "E-RATIO: per-policy online-vs-certified-Opt arrangement ratios",
        )
        .field("n", n)
        .field("proven_bound", PROVEN_RATIO_BOUND)
        .field("gate", RATIO_GATE)
        .field("seeds_key", ctx.seeds().key())
        .field("cells", Json::Array(cells));
    let path = std::path::Path::new(&dir).join("BENCH_ratio.json");
    std::fs::write(&path, report.render_pretty())
        .map_err(|e| SimError::Other(format!("cannot write {}: {e}", path.display())))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Scale;

    #[test]
    fn tiny_run_is_certified_and_within_the_gate() {
        let ctx = ExperimentContext::new(Scale::Tiny, 23);
        let tables = CertifiedRatio.run(&ctx).unwrap();
        assert_eq!(tables.len(), 1);
        let csv = tables[0].to_csv();
        assert!(!csv.contains(",NO\n"), "gate violation:\n{csv}");
        // Feasibility makes every final arrangement optimal: ratio 1.
        assert!(csv.contains(",1.0000,"), "expected unit ratios:\n{csv}");
        // All three families and all six policy names appear.
        for label in ["interval", "series-parallel", "tree-merge"] {
            assert!(csv.contains(label), "missing family {label}:\n{csv}");
        }
        for name in ["rand-cliques", "fair-cliques", "smaller-moves-cliques"] {
            assert!(csv.contains(name), "missing policy {name}:\n{csv}");
        }
        for name in ["rand-lines", "fair-lines", "smaller-moves-lines"] {
            assert!(csv.contains(name), "missing policy {name}:\n{csv}");
        }
    }

    #[test]
    fn artifact_is_emitted() {
        let dir = std::env::temp_dir().join("mla-eratio-artifact-test");
        std::env::set_var("MLA_BENCH_ARTIFACT_DIR", &dir);
        let ctx = ExperimentContext::new(Scale::Tiny, 5);
        CertifiedRatio.run(&ctx).unwrap();
        std::env::remove_var("MLA_BENCH_ARTIFACT_DIR");
        let artifact = std::fs::read_to_string(dir.join("BENCH_ratio.json")).unwrap();
        assert!(artifact.contains("\"id\": \"BENCH_ratio\""));
        assert!(artifact.contains("\"certified\": true"));
        assert!(artifact.contains("opt_maxla"));
    }
}
