//! The checkpoint container: a magic/version/checksum envelope around an
//! opaque body.
//!
//! Every durable artifact of the serving stack — a single session
//! checkpoint ([`crate::session::encode_session`]) or a whole-server
//! snapshot (`mla-serve --checkpoint`) — is sealed in this envelope, so
//! one `open` call authenticates the bytes before any structural decode
//! runs. Corrupt input of any kind (truncation, bit flips, foreign files,
//! future versions) yields a structured [`CheckpointError`], never a
//! panic and never a silently-wrong restore.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"MLACKPT\n"
//!      8     4  format version (currently 1)
//!     12     8  body length in bytes
//!     20     8  CRC-64/ECMA of the body
//!     28     …  body
//! ```

use std::fmt;

use mla_permutation::codec::{crc64, CodecError};

/// The 8-byte file magic. The trailing newline makes an accidental
/// text-mode mangling (`\n` → `\r\n`) fail loudly at the magic check.
pub const MAGIC: [u8; 8] = *b"MLACKPT\n";

/// The current container format version.
pub const VERSION: u32 = 1;

/// Size of the fixed header preceding the body.
const HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// Why a checkpoint failed to open or decode. Ordered by how early the
/// container validation detects each condition.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The input ended before the header or the declared body.
    Truncated,
    /// The first 8 bytes are not the checkpoint magic — this is not a
    /// checkpoint file at all.
    BadMagic,
    /// The container declares a format version this build cannot read.
    UnsupportedVersion {
        /// The version the container declared.
        found: u32,
    },
    /// The body does not match its recorded CRC-64 — bit rot or
    /// tampering.
    ChecksumMismatch,
    /// The envelope validated but the body's structural decode failed.
    Malformed {
        /// What the body decoder rejected.
        context: String,
    },
}

impl CheckpointError {
    /// Convenience constructor for [`CheckpointError::Malformed`].
    #[must_use]
    pub fn malformed(context: impl Into<String>) -> Self {
        CheckpointError::Malformed {
            context: context.into(),
        }
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported checkpoint version {found} (this build reads {VERSION})"
                )
            }
            CheckpointError::ChecksumMismatch => {
                write!(f, "checkpoint checksum mismatch (corrupted body)")
            }
            CheckpointError::Malformed { context } => {
                write!(f, "malformed checkpoint body: {context}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<CodecError> for CheckpointError {
    fn from(err: CodecError) -> Self {
        match err {
            // A body that ends mid-field is indistinguishable from a
            // truncated file to the caller; report it as such.
            CodecError::Truncated { .. } => CheckpointError::Truncated,
            other => CheckpointError::malformed(other.to_string()),
        }
    }
}

/// Seals `body` in the container envelope: magic, version, length,
/// CRC-64, body.
#[must_use]
pub fn seal(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc64(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Validates the envelope and returns the body slice.
///
/// Checks run in a fixed order so each corruption class maps to one
/// error: length of the header ([`CheckpointError::Truncated`]), magic
/// ([`CheckpointError::BadMagic`]), version
/// ([`CheckpointError::UnsupportedVersion`]), body length (truncated or
/// trailing garbage), CRC ([`CheckpointError::ChecksumMismatch`]).
///
/// # Errors
///
/// Any [`CheckpointError`] except `Malformed` — structural validation of
/// the body is the caller's concern.
pub fn open(bytes: &[u8]) -> Result<&[u8], CheckpointError> {
    if bytes.len() < HEADER_LEN {
        // Magic outranks length for clearly-foreign input: a short file
        // that does not even start with the magic is "not a checkpoint",
        // not "a truncated one".
        if bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        return Err(CheckpointError::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    // mla-lint: allow(panic-safety): slice bounds checked above (len >= HEADER_LEN)
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion { found: version });
    }
    // mla-lint: allow(panic-safety): slice bounds checked above (len >= HEADER_LEN)
    let body_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8-byte slice"));
    // mla-lint: allow(panic-safety): slice bounds checked above (len >= HEADER_LEN)
    let expect_crc = u64::from_le_bytes(bytes[20..28].try_into().expect("8-byte slice"));
    let Ok(body_len) = usize::try_from(body_len) else {
        return Err(CheckpointError::Truncated);
    };
    let body = &bytes[HEADER_LEN..];
    if body.len() < body_len {
        return Err(CheckpointError::Truncated);
    }
    if body.len() > body_len {
        // Trailing bytes past the declared body: the file was appended
        // to or mis-spliced; the checksum only covers the declared
        // prefix, so refuse rather than silently ignore the tail.
        return Err(CheckpointError::malformed(format!(
            "{} bytes past the declared body",
            body.len() - body_len
        )));
    }
    if crc64(body) != expect_crc {
        return Err(CheckpointError::ChecksumMismatch);
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_roundtrips() {
        let body = b"session bytes".to_vec();
        let sealed = seal(&body);
        assert_eq!(open(&sealed).unwrap(), &body[..]);
        // Empty bodies are legal.
        let sealed = seal(&[]);
        assert_eq!(open(&sealed).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn every_corruption_class_maps_to_its_error() {
        let sealed = seal(b"payload");

        // Truncation at every prefix length: Truncated (or BadMagic once
        // the magic itself is cut short — never a panic).
        for len in 0..sealed.len() {
            let err = open(&sealed[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated | CheckpointError::ChecksumMismatch
                ),
                "prefix {len}: {err}"
            );
        }

        let mut bad_magic = sealed.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(open(&bad_magic).unwrap_err(), CheckpointError::BadMagic);

        let mut future = sealed.clone();
        future[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            open(&future).unwrap_err(),
            CheckpointError::UnsupportedVersion { found: 99 }
        );

        let mut flipped = sealed.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert_eq!(
            open(&flipped).unwrap_err(),
            CheckpointError::ChecksumMismatch
        );

        let mut trailing = sealed;
        trailing.push(0);
        assert!(matches!(
            open(&trailing).unwrap_err(),
            CheckpointError::Malformed { .. }
        ));

        assert_eq!(open(b"MLAC").unwrap_err(), CheckpointError::Truncated);
        assert_eq!(
            open(b"not a checkpoint").unwrap_err(),
            CheckpointError::BadMagic
        );
    }
}
