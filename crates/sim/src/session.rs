//! Long-lived, resumable serving sessions.
//!
//! A [`Session`] is the serving-daemon counterpart of a [`Simulation`]
//! run: the same graph state, algorithm, feasibility checks and outcome
//! accumulator, but driven **incrementally** — reveals arrive in frames
//! over a wire protocol, position/cost queries interleave with them, and
//! at any drained point the entire live state can be serialized into a
//! checkpoint and restored **in a different process** such that replaying
//! the remaining reveals is bit-identical to the uninterrupted run.
//!
//! Three layers:
//!
//! * [`Session<A>`] — the typed engine. Sequential serving mirrors
//!   [`Simulation::run`] exactly; batched serving
//!   ([`Session::apply_batch`]) routes frames through the *same* sealed
//!   batch executor as [`Simulation::parallel`]
//!   (`execute_planned_batch`), so merges applied by a daemon are
//!   byte-identical to an engine run.
//! * [`TenantSession`] — the object-safe facade a multi-tenant server
//!   stores: apply / query / checkpoint without knowing the concrete
//!   policy × backend type.
//! * [`SessionSpec`] + [`encode_session`] / [`decode_session`] — the
//!   versioned checkpoint codec. Everything that can influence future
//!   serves is captured: arrangement (including segment-arena partition
//!   and orientation flags), graph state (union-find arrays and
//!   neighbor slots verbatim), RNG streams, per-policy algorithm state,
//!   the outcome accumulator, and the batch planner's adaptive-window
//!   tuning.
//!
//! [`Simulation`]: crate::Simulation
//! [`Simulation::run`]: crate::Simulation::run
//! [`Simulation::parallel`]: crate::Simulation::parallel

use mla_core::{
    BatchServe, DetClosest, MergeDecision, MovePolicy, OnlineMinla, OptReplay, PolicyState,
    RandCliques, RandLines, RearrangePolicy, UpdateReport,
};
use mla_graph::{GraphState, RevealEvent, SnapshotMode, Topology};
use mla_offline::LopConfig;
use mla_permutation::codec::{put_bool, put_len, put_u32, put_u64, put_u8, ByteReader, CodecError};
use mla_permutation::{Arrangement, Node, Permutation, SegmentArrangement, MAX_NODES};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::batch::{BatchPlanner, PlannedReveal};
use crate::checkpoint::{self, CheckpointError};
use crate::engine::{execute_planned_batch, Recorder, RunOutcome, DEFAULT_BATCH_WINDOW};
use crate::error::SimError;

// ---- spec ----

/// Which arrangement backend a session runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The dense [`Permutation`] (`O(n)` block splices).
    Dense,
    /// The [`SegmentArrangement`] (`O(log n)` splices).
    Segment,
}

/// Which online algorithm a session runs. The topology in the
/// [`SessionSpec`] selects the clique or line variant of the randomized
/// policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's randomized algorithm (size-biased / cost-biased).
    Rand,
    /// Fair-coin ablation.
    Fair,
    /// Deterministic smaller-moves / cheapest-move ablation.
    SmallerMoves,
    /// The deterministic `Det` algorithm (closest feasible to `π0`).
    Det,
    /// Offline-trajectory replay; requires [`SessionSpec::target`].
    Opt,
}

/// How much per-event history a session retains (mirrors
/// [`Simulation::record_events`](crate::Simulation::record_events) /
/// [`Simulation::record_window`](crate::Simulation::record_window)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordMode {
    /// Record every (event, report) pair.
    Full,
    /// Record nothing; cost totals stay exact.
    Off,
    /// Retain only the trailing `k` pairs.
    Window(usize),
}

/// Construction-time description of a session: everything needed to
/// build it fresh, and (together with the serialized state) to rebuild
/// it from a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSpec {
    /// Cliques or lines.
    pub topology: Topology,
    /// Node count.
    pub n: usize,
    /// Arrangement backend.
    pub backend: BackendKind,
    /// Algorithm family.
    pub policy: PolicyKind,
    /// Replay target — required iff `policy` is [`PolicyKind::Opt`].
    pub target: Option<Permutation>,
    /// Seed of the session's RNG stream (derive per-tenant seeds with
    /// [`SeedSequence`](mla_runner::SeedSequence)). Only consulted at
    /// fresh construction; a restore overwrites the RNG with the exact
    /// serialized state.
    pub seed: u64,
    /// Per-event history retention.
    pub record: RecordMode,
    /// Validate the MinLA invariant after every reveal.
    pub check_feasibility: bool,
}

impl SessionSpec {
    /// A spec with full recording, feasibility checking off, and no
    /// replay target.
    #[must_use]
    pub fn new(
        topology: Topology,
        n: usize,
        policy: PolicyKind,
        backend: BackendKind,
        seed: u64,
    ) -> Self {
        SessionSpec {
            topology,
            n,
            backend,
            policy,
            target: None,
            seed,
            record: RecordMode::Full,
            check_feasibility: false,
        }
    }

    /// Sets the [`PolicyKind::Opt`] replay target.
    #[must_use]
    pub fn target(mut self, target: Permutation) -> Self {
        self.target = Some(target);
        self
    }

    /// Sets the history retention mode.
    #[must_use]
    pub fn record(mut self, mode: RecordMode) -> Self {
        self.record = mode;
        self
    }

    /// Enables per-reveal feasibility validation.
    #[must_use]
    pub fn check_feasibility(mut self, on: bool) -> Self {
        self.check_feasibility = on;
        self
    }

    /// Checks internal consistency: `n` within backend capacity, replay
    /// target present exactly for [`PolicyKind::Opt`] and of matching
    /// length.
    ///
    /// # Errors
    ///
    /// [`SimError::Other`] describing the inconsistency.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.n > MAX_NODES {
            return Err(SimError::Other(format!(
                "session n = {} exceeds the backend capacity {MAX_NODES}",
                self.n
            )));
        }
        match (self.policy, &self.target) {
            (PolicyKind::Opt, None) => Err(SimError::Other(
                "policy opt requires a replay target".into(),
            )),
            (PolicyKind::Opt, Some(t)) if t.len() != self.n => Err(SimError::Other(format!(
                "replay target covers {} nodes but the session has {}",
                t.len(),
                self.n
            ))),
            (PolicyKind::Opt, Some(_)) => Ok(()),
            (_, Some(_)) => Err(SimError::Other(
                "only policy opt takes a replay target".into(),
            )),
            (_, None) => Ok(()),
        }
    }

    /// Serializes the spec (the prefix of every session checkpoint body).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_u8(
            out,
            match self.topology {
                Topology::Cliques => 0,
                Topology::Lines => 1,
            },
        );
        put_len(out, self.n);
        put_u8(
            out,
            match self.backend {
                BackendKind::Dense => 0,
                BackendKind::Segment => 1,
            },
        );
        put_u8(
            out,
            match self.policy {
                PolicyKind::Rand => 0,
                PolicyKind::Fair => 1,
                PolicyKind::SmallerMoves => 2,
                PolicyKind::Det => 3,
                PolicyKind::Opt => 4,
            },
        );
        match &self.target {
            None => put_bool(out, false),
            Some(target) => {
                put_bool(out, true);
                target.encode_into(out);
            }
        }
        put_u64(out, self.seed);
        match self.record {
            RecordMode::Full => put_u8(out, 0),
            RecordMode::Off => put_u8(out, 1),
            RecordMode::Window(k) => {
                put_u8(out, 2);
                put_len(out, k);
            }
        }
        put_bool(out, self.check_feasibility);
    }

    /// Inverse of [`SessionSpec::encode_into`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncated input or unknown tags.
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let topology = match r.u8()? {
            0 => Topology::Cliques,
            1 => Topology::Lines,
            other => return Err(CodecError::invalid(format!("unknown topology tag {other}"))),
        };
        let n = r.count(MAX_NODES, "session node")?;
        let backend = match r.u8()? {
            0 => BackendKind::Dense,
            1 => BackendKind::Segment,
            other => return Err(CodecError::invalid(format!("unknown backend tag {other}"))),
        };
        let policy = match r.u8()? {
            0 => PolicyKind::Rand,
            1 => PolicyKind::Fair,
            2 => PolicyKind::SmallerMoves,
            3 => PolicyKind::Det,
            4 => PolicyKind::Opt,
            other => return Err(CodecError::invalid(format!("unknown policy tag {other}"))),
        };
        let target = if r.bool("replay target flag")? {
            Some(Permutation::decode_from(r)?)
        } else {
            None
        };
        let seed = r.u64()?;
        let record = match r.u8()? {
            0 => RecordMode::Full,
            1 => RecordMode::Off,
            2 => RecordMode::Window(r.count(usize::MAX, "record window")?),
            other => {
                return Err(CodecError::invalid(format!(
                    "unknown record-mode tag {other}"
                )))
            }
        };
        let check_feasibility = r.bool("check-feasibility flag")?;
        Ok(SessionSpec {
            topology,
            n,
            backend,
            policy,
            target,
            seed,
            record,
            check_feasibility,
        })
    }
}

// ---- arrangement codec dispatch ----

/// Arrangement backends a session can checkpoint: fresh construction,
/// exact serialization, and the [`BackendKind`] tag the spec records.
pub trait ArrCodec: Arrangement + Sized {
    /// The tag [`SessionSpec::backend`] uses for this type.
    const KIND: BackendKind;

    /// The identity arrangement on `n` nodes (the fresh-session start).
    fn fresh(n: usize) -> Self;

    /// Serializes the arrangement exactly (for the segment backend that
    /// includes the observable segment partition, not just the flat
    /// permutation).
    fn encode_arr(&self, out: &mut Vec<u8>);

    /// Inverse of [`ArrCodec::encode_arr`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncated or inconsistent input.
    fn decode_arr(r: &mut ByteReader<'_>) -> Result<Self, CodecError>;
}

impl ArrCodec for Permutation {
    const KIND: BackendKind = BackendKind::Dense;

    fn fresh(n: usize) -> Self {
        Permutation::identity(n)
    }

    fn encode_arr(&self, out: &mut Vec<u8>) {
        self.encode_into(out);
    }

    fn decode_arr(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Permutation::decode_from(r)
    }
}

impl ArrCodec for SegmentArrangement {
    const KIND: BackendKind = BackendKind::Segment;

    fn fresh(n: usize) -> Self {
        SegmentArrangement::identity(n)
    }

    fn encode_arr(&self, out: &mut Vec<u8>) {
        self.encode_into(out);
    }

    fn decode_arr(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        SegmentArrangement::decode_from(r)
    }
}

// ---- the typed session engine ----

/// A long-lived serving session: a [`Simulation`](crate::Simulation) run
/// broken out of its closed loop. Reveals are applied as they arrive
/// (one at a time or in frames through the batch executor), queries are
/// answered mid-stream, and the whole live state can be checkpointed at
/// any point between calls.
pub struct Session<A: OnlineMinla> {
    spec: SessionSpec,
    state: GraphState,
    algorithm: A,
    recorder: Recorder,
    /// Snapshot mode of the sequential serve path (the engine rule:
    /// lazy iff algorithm and backend agree).
    mode: SnapshotMode,
    check_feasibility: bool,
    full_scan: bool,
    threads: usize,
    planner: BatchPlanner,
    decisions: Vec<MergeDecision>,
    batch_buf: Vec<PlannedReveal>,
}

impl<A: OnlineMinla> std::fmt::Debug for Session<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("spec", &self.spec)
            .field("steps", &self.recorder.step())
            .finish_non_exhaustive()
    }
}

impl<A: OnlineMinla> Session<A> {
    /// Builds a session around an already-constructed algorithm. The
    /// algorithm's arrangement must cover `spec.n` nodes — use
    /// [`open_session`] for the spec-driven construction that guarantees
    /// it.
    fn build(spec: SessionSpec, algorithm: A) -> Self {
        let mode =
            if algorithm.wants_lazy_info() && algorithm.arrangement().supports_component_locate() {
                SnapshotMode::Lazy
            } else {
                SnapshotMode::Eager
            };
        // The batched path additionally requires cliques for lazy
        // snapshots (the lines pipeline builds target contents from
        // member lists) — same rule as `Simulation::parallel`.
        let batch_mode = if mode == SnapshotMode::Lazy && spec.topology == Topology::Cliques {
            SnapshotMode::Lazy
        } else {
            SnapshotMode::Eager
        };
        let (full, window) = match spec.record {
            RecordMode::Full => (true, None),
            RecordMode::Off => (false, None),
            RecordMode::Window(k) => (false, Some(k)),
        };
        Session {
            state: GraphState::new(spec.topology, spec.n),
            recorder: Recorder::new(full, window),
            mode,
            check_feasibility: spec.check_feasibility,
            full_scan: cfg!(debug_assertions),
            threads: 1,
            planner: BatchPlanner::new(DEFAULT_BATCH_WINDOW).snapshot_mode(batch_mode),
            decisions: Vec::new(),
            batch_buf: Vec::new(),
            algorithm,
            spec,
        }
    }

    /// The spec this session was opened with.
    #[must_use]
    pub fn spec(&self) -> &SessionSpec {
        &self.spec
    }

    /// Reveals served so far.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.recorder.step()
    }

    /// Exact accumulated moving cost.
    #[must_use]
    pub fn moving_cost(&self) -> u128 {
        self.recorder.moving_cost()
    }

    /// Exact accumulated rearranging cost.
    #[must_use]
    pub fn rearranging_cost(&self) -> u128 {
        self.recorder.rearranging_cost()
    }

    /// Worker threads for batched applies (`0` = available parallelism).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = mla_runner::resolve_threads(threads);
    }

    /// Current position of `node` in the arrangement.
    ///
    /// # Errors
    ///
    /// [`SimError::Other`] if `node` is out of range (queries come off
    /// the wire; they must not panic the server).
    pub fn position_of(&self, node: Node) -> Result<usize, SimError> {
        if node.index() >= self.spec.n {
            return Err(SimError::Other(format!(
                "node {} out of range for n = {}",
                node.index(),
                self.spec.n
            )));
        }
        Ok(self.algorithm.arrangement().position_of(node))
    }

    /// Snapshot of the run outcome so far (mid-stream: totals, retained
    /// history and the current permutation).
    #[must_use]
    pub fn outcome(&self) -> RunOutcome {
        self.recorder
            .outcome_snapshot(self.algorithm.arrangement().to_permutation())
    }

    /// Serves one reveal through the **sequential** path — the exact
    /// body of [`Simulation::run`](crate::Simulation::run)'s loop.
    ///
    /// # Errors
    ///
    /// [`SimError::Graph`] for an invalid reveal,
    /// [`SimError::FeasibilityViolation`] if checking is enabled and the
    /// algorithm breaks the invariant.
    pub fn apply(&mut self, event: RevealEvent) -> Result<UpdateReport, SimError> {
        let info = self.state.apply_with(event, self.mode)?;
        let report = self.algorithm.serve(event, &info, &self.state);
        if self.check_feasibility {
            let feasible = self
                .state
                .merge_keeps_minla(self.algorithm.arrangement(), &info)
                && (!self.full_scan || self.state.is_minla(self.algorithm.arrangement()));
            if !feasible {
                return Err(SimError::FeasibilityViolation {
                    step: self.recorder.step() + 1,
                    algorithm: self.algorithm.name().to_owned(),
                });
            }
        }
        self.recorder.record(event, report);
        Ok(report)
    }
}

impl<A: BatchServe> Session<A>
where
    A::Arr: Sync,
{
    /// Serves a frame of reveals through the **batch executor** — the
    /// same plan → decide → build → apply pipeline as
    /// [`Simulation::parallel`](crate::Simulation::parallel), with the
    /// same bit-identity contract: any frame partition of a reveal
    /// sequence produces the sequential outcome.
    ///
    /// The internal planner is always drained before returning, so the
    /// session is checkpointable between calls.
    ///
    /// # Errors
    ///
    /// As [`Session::apply`]. On error, reveals of this frame past the
    /// failure point are **dropped** (never half-applied); totals and
    /// the arrangement stay consistent, so the session remains usable
    /// for queries and checkpoints.
    pub fn apply_batch(&mut self, events: &[RevealEvent]) -> Result<(), SimError> {
        for &event in events {
            self.planner.push(event);
        }
        while !self.planner.is_empty() {
            let planned = self.planner.plan_batch_into(
                &self.state,
                self.algorithm.arrangement(),
                self.threads,
                &mut self.batch_buf,
            );
            if let Err(err) = planned {
                self.planner.clear_queue();
                return Err(SimError::Graph(err));
            }
            let applied = execute_planned_batch(
                &mut self.algorithm,
                &mut self.state,
                &mut self.recorder,
                &self.batch_buf,
                &mut self.decisions,
                self.threads,
                self.check_feasibility,
                self.full_scan,
            );
            if let Err(err) = applied {
                self.planner.clear_queue();
                return Err(err);
            }
            self.planner.retire_batch(&self.state, &self.batch_buf);
        }
        Ok(())
    }
}

impl<A> Session<A>
where
    A: OnlineMinla + PolicyState,
    A::Arr: ArrCodec,
{
    /// Serializes the full live state into a sealed checkpoint (see
    /// [`encode_session`] for the contract).
    #[must_use]
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut body = Vec::new();
        self.encode_body(&mut body);
        checkpoint::seal(&body)
    }

    fn encode_body(&self, out: &mut Vec<u8>) {
        debug_assert!(
            self.planner.is_empty(),
            "checkpoints are taken at drained-planner points"
        );
        self.spec.encode_into(out);
        // The arrangement precedes the graph state: the decoder needs it
        // first to construct the algorithm it then restores into.
        self.algorithm.arrangement().encode_arr(out);
        self.state.encode_into(out);
        self.algorithm.encode_state_into(out);
        self.recorder.encode_into(out);
        let (window, full_seals, collapse_streak) = self.planner.tuning();
        put_len(out, window);
        put_u32(out, full_seals);
        put_u32(out, collapse_streak);
    }

    /// Restores the serialized state into a freshly built session whose
    /// spec already matched. The arrangement was decoded *before* the
    /// algorithm was constructed; this consumes the rest of the body.
    fn restore_body(&mut self, r: &mut ByteReader<'_>) -> Result<(), CheckpointError> {
        let state = GraphState::decode_from(r)?;
        if state.topology() != self.spec.topology || state.n() != self.spec.n {
            return Err(CheckpointError::malformed(format!(
                "graph state is {:?}/{} but the spec says {:?}/{}",
                state.topology(),
                state.n(),
                self.spec.topology,
                self.spec.n
            )));
        }
        self.state = state;
        self.algorithm.restore_state(r)?;
        let recorder = Recorder::decode_from(r, self.spec.n)?;
        let expected_mode = match self.spec.record {
            RecordMode::Full => (true, None),
            RecordMode::Off => (false, None),
            RecordMode::Window(k) => (false, Some(k)),
        };
        if recorder.mode() != expected_mode {
            return Err(CheckpointError::malformed(
                "recorder mode disagrees with the session spec".to_string(),
            ));
        }
        self.recorder = recorder;
        let window = r.count(usize::MAX, "planner window")?;
        let full_seals = r.u32()?;
        let collapse_streak = r.u32()?;
        self.planner
            .restore_tuning(window, full_seals, collapse_streak);
        Ok(())
    }
}

// ---- the object-safe tenant facade ----

/// The object-safe session interface a multi-tenant server stores —
/// apply reveals, answer queries, checkpoint — independent of the
/// concrete policy × backend type. Obtain one from [`open_session`] or
/// [`decode_session`].
pub trait TenantSession: Send {
    /// The spec this session was opened with.
    fn spec(&self) -> &SessionSpec;

    /// The algorithm's machine-readable name (e.g. `"rand-cliques"`).
    fn algorithm_name(&self) -> String;

    /// Reveals served so far.
    fn steps(&self) -> usize;

    /// Exact accumulated moving cost.
    fn moving_cost(&self) -> u128;

    /// Exact accumulated rearranging cost.
    fn rearranging_cost(&self) -> u128;

    /// Worker threads for batched applies (`0` = available parallelism).
    fn set_threads(&mut self, threads: usize);

    /// Serves a frame of reveals — through the batch executor when the
    /// policy supports it, sequentially otherwise. Returns the number of
    /// reveals applied (the whole frame on success).
    ///
    /// # Errors
    ///
    /// As [`Session::apply`]; a failed frame is never half-recorded
    /// beyond the failing reveal.
    fn apply_events(&mut self, events: &[RevealEvent]) -> Result<usize, SimError>;

    /// Current position of `node`.
    ///
    /// # Errors
    ///
    /// [`SimError::Other`] for an out-of-range node.
    fn position_of(&self, node: Node) -> Result<usize, SimError>;

    /// Mid-stream outcome snapshot.
    fn outcome(&self) -> RunOutcome;

    /// The sealed checkpoint of the full live state.
    fn encode(&self) -> Vec<u8>;
}

impl std::fmt::Debug for dyn TenantSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantSession")
            .field("spec", self.spec())
            .field("steps", &self.steps())
            .finish_non_exhaustive()
    }
}

/// Batched-policy tenant: frames go through the batch executor.
struct Batched<A: BatchServe>(Session<A>)
where
    A::Arr: Sync;

/// Jump-policy tenant (`Det`, `Opt`): frames replay sequentially.
struct Sequential<A: OnlineMinla>(Session<A>);

/// Restore hook shared by the wrappers, dispatched before boxing (the
/// concrete type is still known there).
trait RestoreBody {
    fn restore_body(&mut self, r: &mut ByteReader<'_>) -> Result<(), CheckpointError>;
}

impl<A> RestoreBody for Batched<A>
where
    A: BatchServe + PolicyState,
    A::Arr: ArrCodec + Sync,
{
    fn restore_body(&mut self, r: &mut ByteReader<'_>) -> Result<(), CheckpointError> {
        self.0.restore_body(r)
    }
}

impl<A> RestoreBody for Sequential<A>
where
    A: OnlineMinla + PolicyState,
    A::Arr: ArrCodec,
{
    fn restore_body(&mut self, r: &mut ByteReader<'_>) -> Result<(), CheckpointError> {
        self.0.restore_body(r)
    }
}

impl<A> TenantSession for Batched<A>
where
    A: BatchServe + PolicyState + Send,
    A::Arr: ArrCodec + Sync + Send,
{
    fn spec(&self) -> &SessionSpec {
        self.0.spec()
    }

    fn algorithm_name(&self) -> String {
        self.0.algorithm.name().to_owned()
    }

    fn steps(&self) -> usize {
        self.0.steps()
    }

    fn moving_cost(&self) -> u128 {
        self.0.moving_cost()
    }

    fn rearranging_cost(&self) -> u128 {
        self.0.rearranging_cost()
    }

    fn set_threads(&mut self, threads: usize) {
        self.0.set_threads(threads);
    }

    fn apply_events(&mut self, events: &[RevealEvent]) -> Result<usize, SimError> {
        self.0.apply_batch(events)?;
        Ok(events.len())
    }

    fn position_of(&self, node: Node) -> Result<usize, SimError> {
        self.0.position_of(node)
    }

    fn outcome(&self) -> RunOutcome {
        self.0.outcome()
    }

    fn encode(&self) -> Vec<u8> {
        self.0.checkpoint()
    }
}

impl<A> TenantSession for Sequential<A>
where
    A: OnlineMinla + PolicyState + Send,
    A::Arr: ArrCodec + Send,
{
    fn spec(&self) -> &SessionSpec {
        self.0.spec()
    }

    fn algorithm_name(&self) -> String {
        self.0.algorithm.name().to_owned()
    }

    fn steps(&self) -> usize {
        self.0.steps()
    }

    fn moving_cost(&self) -> u128 {
        self.0.moving_cost()
    }

    fn rearranging_cost(&self) -> u128 {
        self.0.rearranging_cost()
    }

    fn set_threads(&mut self, threads: usize) {
        self.0.set_threads(threads);
    }

    fn apply_events(&mut self, events: &[RevealEvent]) -> Result<usize, SimError> {
        for &event in events {
            self.0.apply(event)?;
        }
        Ok(events.len())
    }

    fn position_of(&self, node: Node) -> Result<usize, SimError> {
        self.0.position_of(node)
    }

    fn outcome(&self) -> RunOutcome {
        self.0.outcome()
    }

    fn encode(&self) -> Vec<u8> {
        self.0.checkpoint()
    }
}

// ---- construction and the checkpoint codec ----

/// Opens a fresh session for `spec` (identity arrangement, seed-derived
/// RNG stream, zeroed accumulators).
///
/// # Errors
///
/// [`SimError::Other`] if the spec is inconsistent (see
/// [`SessionSpec::validate`]).
pub fn open_session(spec: SessionSpec) -> Result<Box<dyn TenantSession>, SimError> {
    spec.validate()?;
    build_session(spec, None).map_err(|err| SimError::Other(err.to_string()))
}

/// Serializes a session into its sealed checkpoint: the
/// [`SessionSpec`], graph state, arrangement, policy/RNG state, outcome
/// accumulator and planner tuning, wrapped in the magic / version /
/// CRC-64 envelope of [`crate::checkpoint`].
///
/// Contract: [`decode_session`] of these bytes — in this process or
/// another — yields a session whose replay of the remaining reveals is
/// **bit-identical** to the uninterrupted run, including its RNG draws,
/// retained history and final permutation.
#[must_use]
pub fn encode_session(session: &dyn TenantSession) -> Vec<u8> {
    session.encode()
}

/// Rebuilds a session from checkpoint bytes produced by
/// [`encode_session`].
///
/// # Errors
///
/// A structured [`CheckpointError`] for **any** malformed input —
/// truncation, foreign files, bit flips, future versions, or internally
/// inconsistent state. Never panics, never restores silently-wrong
/// state.
pub fn decode_session(bytes: &[u8]) -> Result<Box<dyn TenantSession>, CheckpointError> {
    let body = checkpoint::open(bytes)?;
    let mut r = ByteReader::new(body);
    let spec = SessionSpec::decode_from(&mut r)?;
    spec.validate()
        .map_err(|err| CheckpointError::malformed(err.to_string()))?;
    let session = build_session(spec, Some(&mut r))?;
    r.finish().map_err(CheckpointError::from)?;
    Ok(session)
}

/// Builds the concrete policy × backend × topology session; with a
/// reader, decodes the arrangement and restores the serialized state.
fn build_session(
    spec: SessionSpec,
    restore: Option<&mut ByteReader<'_>>,
) -> Result<Box<dyn TenantSession>, CheckpointError> {
    match spec.backend {
        BackendKind::Dense => build_with_backend::<Permutation>(spec, restore),
        BackendKind::Segment => build_with_backend::<SegmentArrangement>(spec, restore),
    }
}

fn build_with_backend<Arr>(
    spec: SessionSpec,
    mut restore: Option<&mut ByteReader<'_>>,
) -> Result<Box<dyn TenantSession>, CheckpointError>
where
    Arr: ArrCodec + Sync + Send + 'static,
{
    // The arrangement comes before the algorithm: constructors consume
    // it (and `DetClosest::with_backend` snapshots it, which is why the
    // anchor π0 lives in the policy state, restored afterwards).
    let arr: Arr = match restore.as_deref_mut() {
        None => Arr::fresh(spec.n),
        Some(r) => {
            let arr = Arr::decode_arr(r)?;
            if arr.len() != spec.n {
                return Err(CheckpointError::malformed(format!(
                    "arrangement covers {} nodes but the spec says {}",
                    arr.len(),
                    spec.n
                )));
            }
            arr
        }
    };
    let rng = SmallRng::seed_from_u64(spec.seed);
    match (spec.policy, spec.topology) {
        (PolicyKind::Rand, Topology::Cliques) => finish_tenant(
            Batched(Session::build(
                spec,
                RandCliques::with_policy(arr, rng, MovePolicy::SizeBiased),
            )),
            restore,
        ),
        (PolicyKind::Fair, Topology::Cliques) => finish_tenant(
            Batched(Session::build(
                spec,
                RandCliques::with_policy(arr, rng, MovePolicy::Fair),
            )),
            restore,
        ),
        (PolicyKind::SmallerMoves, Topology::Cliques) => finish_tenant(
            Batched(Session::build(
                spec,
                RandCliques::with_policy(arr, rng, MovePolicy::SmallerMoves),
            )),
            restore,
        ),
        (PolicyKind::Rand, Topology::Lines) => finish_tenant(
            Batched(Session::build(
                spec,
                RandLines::with_policies(
                    arr,
                    rng,
                    MovePolicy::SizeBiased,
                    RearrangePolicy::CostBiased,
                ),
            )),
            restore,
        ),
        (PolicyKind::Fair, Topology::Lines) => finish_tenant(
            Batched(Session::build(
                spec,
                RandLines::with_policies(arr, rng, MovePolicy::Fair, RearrangePolicy::Fair),
            )),
            restore,
        ),
        (PolicyKind::SmallerMoves, Topology::Lines) => finish_tenant(
            Batched(Session::build(
                spec,
                RandLines::with_policies(
                    arr,
                    rng,
                    MovePolicy::SmallerMoves,
                    RearrangePolicy::Cheapest,
                ),
            )),
            restore,
        ),
        (PolicyKind::Det, _) => finish_tenant(
            Sequential(Session::build(
                spec,
                DetClosest::with_backend(arr, LopConfig::default()),
            )),
            restore,
        ),
        (PolicyKind::Opt, _) => {
            let Some(target) = spec.target.clone() else {
                // `validate` already rejected this; keep the decode path
                // panic-free regardless.
                return Err(CheckpointError::malformed(
                    "policy opt without a replay target".to_string(),
                ));
            };
            finish_tenant(
                Sequential(Session::build(spec, OptReplay::new(arr, target))),
                restore,
            )
        }
    }
}

fn finish_tenant<T>(
    mut tenant: T,
    restore: Option<&mut ByteReader<'_>>,
) -> Result<Box<dyn TenantSession>, CheckpointError>
where
    T: RestoreBody + TenantSession + 'static,
{
    if let Some(r) = restore {
        tenant.restore_body(r)?;
    }
    Ok(Box::new(tenant))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;
    use mla_adversary::{random_clique_instance, random_line_instance, MergeShape};

    fn instance_events(topology: Topology, n: usize, seed: u64) -> Vec<RevealEvent> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let instance = match topology {
            Topology::Cliques => random_clique_instance(n, MergeShape::Uniform, &mut rng),
            Topology::Lines => random_line_instance(n, MergeShape::Uniform, &mut rng),
        };
        instance.events().to_vec()
    }

    #[test]
    fn session_outcome_is_bit_identical_to_engine_run() {
        for topology in [Topology::Cliques, Topology::Lines] {
            let n = 24;
            let events = instance_events(topology, n, 11);
            let instance = mla_graph::Instance::new(topology, n, events.clone()).unwrap();
            let reference = match topology {
                Topology::Cliques => Simulation::new(
                    instance,
                    RandCliques::new(SegmentArrangement::identity(n), SmallRng::seed_from_u64(7)),
                )
                .run()
                .unwrap(),
                Topology::Lines => Simulation::new(
                    instance,
                    RandLines::new(SegmentArrangement::identity(n), SmallRng::seed_from_u64(7)),
                )
                .run()
                .unwrap(),
            };
            let mut session = open_session(SessionSpec::new(
                topology,
                n,
                PolicyKind::Rand,
                BackendKind::Segment,
                7,
            ))
            .unwrap();
            // Apply in ragged frames to exercise the batch pipeline.
            for frame in events.chunks(5) {
                session.apply_events(frame).unwrap();
            }
            assert_eq!(session.outcome(), reference, "{topology:?}");
        }
    }

    #[test]
    fn checkpoint_roundtrips_mid_stream_and_replays_identically() {
        let n = 20;
        let events = instance_events(Topology::Cliques, n, 3);
        let spec = SessionSpec::new(
            Topology::Cliques,
            n,
            PolicyKind::Rand,
            BackendKind::Dense,
            5,
        );
        let mut uninterrupted = open_session(spec.clone()).unwrap();
        uninterrupted.apply_events(&events).unwrap();
        let want = uninterrupted.outcome();

        for cut in [0, 1, events.len() / 2, events.len() - 1, events.len()] {
            let mut first = open_session(spec.clone()).unwrap();
            first.apply_events(&events[..cut]).unwrap();
            let bytes = encode_session(first.as_ref());
            let mut resumed = decode_session(&bytes).unwrap();
            resumed.apply_events(&events[cut..]).unwrap();
            assert_eq!(resumed.outcome(), want, "cut at {cut}");
        }
    }

    #[test]
    fn out_of_range_queries_error_instead_of_panicking() {
        let spec = SessionSpec::new(
            Topology::Cliques,
            4,
            PolicyKind::Rand,
            BackendKind::Dense,
            1,
        );
        let session = open_session(spec).unwrap();
        assert!(session.position_of(Node::new(4)).is_err());
        assert_eq!(session.position_of(Node::new(3)).unwrap(), 3);
    }

    #[test]
    fn spec_validation_rejects_inconsistencies() {
        let missing_target =
            SessionSpec::new(Topology::Cliques, 4, PolicyKind::Opt, BackendKind::Dense, 1);
        assert!(open_session(missing_target).is_err());
        let stray_target = SessionSpec::new(
            Topology::Cliques,
            4,
            PolicyKind::Rand,
            BackendKind::Dense,
            1,
        )
        .target(Permutation::identity(4));
        assert!(open_session(stray_target).is_err());
        let short_target =
            SessionSpec::new(Topology::Cliques, 4, PolicyKind::Opt, BackendKind::Dense, 1)
                .target(Permutation::identity(3));
        assert!(open_session(short_target).is_err());
    }

    #[test]
    fn decode_rejects_spec_state_mismatches() {
        // Hand-craft a body whose spec says cliques but whose graph
        // state is lines: the cross-check must fire.
        let spec = SessionSpec::new(Topology::Cliques, 4, PolicyKind::Det, BackendKind::Dense, 1);
        let session = open_session(spec).unwrap();
        let good = encode_session(session.as_ref());
        let body = checkpoint::open(&good).unwrap();
        // The topology tag is byte 0 of the spec *and* the graph-state
        // tag right after it; flipping only the graph-state tag breaks
        // the cross-check (the offset is spec-length dependent, so
        // locate it by decoding the spec first).
        let mut r = ByteReader::new(body);
        let _ = SessionSpec::decode_from(&mut r).unwrap();
        let _ = Permutation::decode_from(&mut r).unwrap();
        let state_tag_offset = body.len() - r.remaining();
        let mut tampered = body.to_vec();
        tampered[state_tag_offset] = 1; // cliques -> lines
        let resealed = checkpoint::seal(&tampered);
        let err = decode_session(&resealed).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed { .. }), "{err:?}");
    }
}
