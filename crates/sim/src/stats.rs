//! Streaming statistics for experiment measurements.

/// Streaming mean/variance accumulator (Welford's algorithm), plus
/// minimum and maximum.
///
/// # Examples
///
/// ```
/// use mla_sim::OnlineStats;
///
/// let mut stats = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     stats.push(x);
/// }
/// assert_eq!(stats.count(), 8);
/// assert!((stats.mean() - 5.0).abs() < 1e-12);
/// assert!((stats.stddev() - 2.138_089_935).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn stderr(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.stddev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval for
    /// the mean.
    #[must_use]
    pub fn ci95(&self) -> f64 {
        1.959_963_985 * self.stderr()
    }

    /// Smallest observation (`∞` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// The harmonic number `H_n = 1 + 1/2 + … + 1/n`.
///
/// # Examples
///
/// ```
/// use mla_sim::harmonic;
/// assert!((harmonic(1) - 1.0).abs() < 1e-12);
/// assert!((harmonic(4) - 2.083_333_333).abs() < 1e-6);
/// assert_eq!(harmonic(0), 0.0);
/// ```
#[must_use]
pub fn harmonic(n: u64) -> f64 {
    (1..=n).map(|i| 1.0 / i as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let stats = OnlineStats::new();
        assert_eq!(stats.count(), 0);
        assert_eq!(stats.mean(), 0.0);
        assert_eq!(stats.variance(), 0.0);
        assert_eq!(stats.stderr(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut stats = OnlineStats::new();
        stats.push(3.5);
        assert_eq!(stats.mean(), 3.5);
        assert_eq!(stats.variance(), 0.0);
        assert_eq!(stats.min(), 3.5);
        assert_eq!(stats.max(), 3.5);
    }

    #[test]
    fn matches_two_pass_computation() {
        let data: Vec<f64> = (0..100).map(|i| ((i * 31) % 17) as f64).collect();
        let mut stats = OnlineStats::new();
        for &x in &data {
            stats.push(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let variance =
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((stats.mean() - mean).abs() < 1e-9);
        assert!((stats.variance() - variance).abs() < 1e-9);
        assert!(stats.ci95() > 0.0);
    }

    #[test]
    fn harmonic_values() {
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        // H_n ≈ ln n + γ for large n.
        let n = 100_000u64;
        let approx = (n as f64).ln() + 0.577_215_664_9;
        assert!((harmonic(n) - approx).abs() < 1e-4);
    }
}

/// Five-number summary of a sample (plus mean), for cost-distribution
/// reporting.
///
/// # Examples
///
/// ```
/// use mla_sim::Summary;
///
/// let summary = Summary::of(&[4.0, 1.0, 3.0, 2.0, 5.0]);
/// assert_eq!(summary.min, 1.0);
/// assert_eq!(summary.median, 3.0);
/// assert_eq!(summary.max, 5.0);
/// assert!((summary.mean - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest observation.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Largest observation.
    pub max: f64,
    /// Sample mean.
    pub mean: f64,
    /// Number of observations.
    pub count: usize,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Summary {
            min: sorted[0],
            p25: percentile_sorted(&sorted, 25.0),
            median: percentile_sorted(&sorted, 50.0),
            p75: percentile_sorted(&sorted, 75.0),
            p95: percentile_sorted(&sorted, 95.0),
            max: sorted[sorted.len() - 1],
            mean,
            count: sorted.len(),
        }
    }
}

/// Linear-interpolation percentile of a **sorted** sample.
///
/// # Panics
///
/// Panics on an empty sample or a percentile outside `0..=100`.
#[must_use]
pub fn percentile_sorted(sorted: &[f64], percentile: f64) -> f64 {
    assert!(!sorted.is_empty(), "cannot take a percentile of nothing");
    assert!(
        (0.0..=100.0).contains(&percentile),
        "percentile {percentile} out of range"
    );
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = percentile / 100.0 * (sorted.len() - 1) as f64;
    let low = rank.floor() as usize;
    let high = rank.ceil() as usize;
    let weight = rank - low as f64;
    sorted[low] * (1.0 - weight) + sorted[high] * weight
}

#[cfg(test)]
mod summary_tests {
    use super::*;

    #[test]
    fn percentiles_interpolate() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 4.0);
        assert!((percentile_sorted(&sorted, 50.0) - 2.5).abs() < 1e-12);
        assert_eq!(percentile_sorted(&[7.0], 50.0), 7.0);
    }

    #[test]
    fn summary_of_unsorted_sample() {
        let summary = Summary::of(&[10.0, 0.0, 5.0]);
        assert_eq!(summary.min, 0.0);
        assert_eq!(summary.max, 10.0);
        assert_eq!(summary.median, 5.0);
        assert_eq!(summary.count, 3);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_rejects_empty() {
        let _ = Summary::of(&[]);
    }
}
