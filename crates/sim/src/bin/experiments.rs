//! `mla-experiments`: run the experiment suite reproducing every theorem,
//! lemma and figure of *Learning Minimum Linear Arrangement of Cliques and
//! Lines* (ICDCS 2024).
//!
//! ```text
//! mla-experiments [--full | --tiny] [--seed N] [--csv DIR] [ID...]
//!
//!   --full     minutes-scale runs (the EXPERIMENTS.md numbers)
//!   --tiny     sub-second smoke runs
//!   --seed N   base seed (default 42)
//!   --csv DIR  also write each table as CSV into DIR
//!   ID...      experiment ids to run (default: all); see --list
//!   --list     print the experiment index and exit
//! ```

use std::io::Write as _;

use mla_sim::{all_experiments, find_experiment, Experiment, ExperimentContext, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut seed = 42u64;
    let mut csv_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut list = false;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--tiny" => scale = Scale::Tiny,
            "--quick" => scale = Scale::Quick,
            "--list" => list = true,
            "--seed" => {
                seed = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed requires an integer"));
            }
            "--csv" => {
                csv_dir = Some(
                    iter.next()
                        .unwrap_or_else(|| die("--csv requires a directory")),
                );
            }
            "--help" | "-h" => {
                print_help();
                return;
            }
            other if other.starts_with('-') => die(&format!("unknown flag {other}")),
            id => ids.push(id.to_owned()),
        }
    }

    if list {
        println!("{:<7} {:<28} title", "id", "reproduces");
        for experiment in all_experiments() {
            println!(
                "{:<7} {:<28} {}",
                experiment.id(),
                experiment.paper_ref(),
                experiment.title()
            );
        }
        return;
    }

    let experiments: Vec<Box<dyn Experiment>> = if ids.is_empty() {
        all_experiments()
    } else {
        ids.iter()
            .map(|id| {
                find_experiment(id).unwrap_or_else(|| die(&format!("unknown experiment {id}")))
            })
            .collect()
    };

    let ctx = ExperimentContext { scale, seed };
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| die(&format!("cannot create {dir}: {e}")));
    }
    println!(
        "running {} experiment(s) at scale {:?}, seed {}",
        experiments.len(),
        scale,
        seed
    );
    for experiment in experiments {
        println!();
        println!(
            "### {} — {} (reproduces {})",
            experiment.id(),
            experiment.title(),
            experiment.paper_ref()
        );
        let start = std::time::Instant::now();
        let tables = experiment.run(&ctx);
        for (index, table) in tables.iter().enumerate() {
            println!();
            print!("{}", table.render());
            if let Some(dir) = &csv_dir {
                let path = format!(
                    "{dir}/{}-{index}.csv",
                    experiment.id().to_lowercase().replace(' ', "-")
                );
                let mut file = std::fs::File::create(&path)
                    .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
                file.write_all(table.to_csv().as_bytes())
                    .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            }
        }
        println!("[{} finished in {:.2?}]", experiment.id(), start.elapsed());
    }
}

fn print_help() {
    println!(
        "mla-experiments [--full | --tiny] [--seed N] [--csv DIR] [--list] [ID...]\n\
         Runs the experiment suite; default scale is --quick. See DESIGN.md for the index."
    );
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}
