//! `mla-experiments`: run the experiment suite reproducing every theorem,
//! lemma and figure of *Learning Minimum Linear Arrangement of Cliques and
//! Lines* (ICDCS 2024).
//!
//! ```text
//! mla-experiments [--full | --tiny] [--seed N] [--threads N] [--csv DIR] [--json DIR] [ID...]
//! mla-experiments --scale N
//!
//!   --full       minutes-scale runs (the EXPERIMENTS.md numbers)
//!   --tiny       sub-second smoke runs
//!   --scale N    large-n smoke: one RandCliques + one RandLines run on the
//!                segment arrangement backend at n = N, then exit (CI uses
//!                this in release mode at n = 100000)
//!   --seed N     base seed (default 42)
//!   --threads N  campaign worker threads (default: available parallelism;
//!                never changes results, only wall-clock time)
//!   --csv DIR    also write each table as CSV into DIR
//!   --json DIR   also write per-experiment JSON campaign artifacts
//!                (runs + tables + metadata) and an index.json into DIR
//!   ID...        experiment ids to run (default: all); see --list
//!   --list       print the experiment index and exit
//! ```

use std::io::Write as _;
use std::sync::Arc;

use mla_runner::{
    git_describe, resolve_threads, ArtifactStore, CampaignReport, ReportMeta, RunSink,
};
use mla_sim::{all_experiments, find_experiment, Experiment, ExperimentContext, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut seed = 42u64;
    let mut threads = 0usize;
    let mut csv_dir: Option<String> = None;
    let mut json_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut list = false;
    let mut scale_n: Option<usize> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--tiny" => scale = Scale::Tiny,
            "--quick" => scale = Scale::Quick,
            "--list" => list = true,
            "--seed" => {
                seed = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed requires an integer"));
            }
            "--scale" => {
                scale_n = Some(
                    iter.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--scale requires a node count")),
                );
            }
            "--threads" => {
                threads = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--threads requires an integer"));
            }
            "--csv" => {
                csv_dir = Some(
                    iter.next()
                        .unwrap_or_else(|| die("--csv requires a directory")),
                );
            }
            "--json" => {
                json_dir = Some(
                    iter.next()
                        .unwrap_or_else(|| die("--json requires a directory")),
                );
            }
            "--help" | "-h" => {
                print_help();
                return;
            }
            other if other.starts_with('-') => die(&format!("unknown flag {other}")),
            id => ids.push(id.to_owned()),
        }
    }

    if let Some(n) = scale_n {
        run_scale_smoke(n, seed);
        return;
    }

    if list {
        println!("{:<7} {:<28} title", "id", "reproduces");
        for experiment in all_experiments() {
            println!(
                "{:<7} {:<28} {}",
                experiment.id(),
                experiment.paper_ref(),
                experiment.title()
            );
        }
        return;
    }

    let experiments: Vec<Box<dyn Experiment>> = if ids.is_empty() {
        all_experiments()
    } else {
        ids.iter()
            .map(|id| {
                find_experiment(id).unwrap_or_else(|| die(&format!("unknown experiment {id}")))
            })
            .collect()
    };

    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| die(&format!("cannot create {dir}: {e}")));
    }
    let mut store = json_dir.as_ref().map(|dir| {
        ArtifactStore::create(dir).unwrap_or_else(|e| die(&format!("cannot create {dir}: {e}")))
    });
    let git = store.as_ref().and_then(|_| git_describe());

    println!(
        "running {} experiment(s) at scale {:?}, seed {}, {} thread(s)",
        experiments.len(),
        scale,
        seed,
        resolve_threads(threads),
    );
    for experiment in experiments {
        println!();
        println!(
            "### {} — {} (reproduces {})",
            experiment.id(),
            experiment.title(),
            experiment.paper_ref()
        );
        // Only pay for per-run record collection when artifacts are on.
        let sink = store.as_ref().map(|_| Arc::new(RunSink::new()));
        let mut ctx = ExperimentContext::new(scale, seed).with_threads(threads);
        if let Some(sink) = &sink {
            ctx = ctx.with_sink(Arc::clone(sink));
        }
        let start = std::time::Instant::now();
        let tables = experiment
            .run(&ctx)
            .unwrap_or_else(|e| die(&format!("{} failed: {e}", experiment.id())));
        let elapsed = start.elapsed();
        for (index, table) in tables.iter().enumerate() {
            println!();
            print!("{}", table.render());
            if let Some(dir) = &csv_dir {
                let path = format!(
                    "{dir}/{}-{index}.csv",
                    experiment.id().to_lowercase().replace(' ', "-")
                );
                let mut file = std::fs::File::create(&path)
                    .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
                file.write_all(table.to_csv().as_bytes())
                    .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            }
        }
        if let Some(store) = &mut store {
            let report = CampaignReport {
                id: experiment.id().to_owned(),
                title: experiment.title().to_owned(),
                paper_ref: experiment.paper_ref().to_owned(),
                meta: ReportMeta {
                    base_seed: seed,
                    scale: scale.label().to_owned(),
                    threads: resolve_threads(threads),
                    git: git.clone(),
                    elapsed_ms: elapsed.as_secs_f64() * 1_000.0,
                },
                tables: tables.iter().map(mla_sim::Table::to_artifact).collect(),
                runs: sink.as_ref().expect("sink exists when store does").drain(),
            };
            let path = store
                .write(&report)
                .unwrap_or_else(|e| die(&format!("cannot write artifact: {e}")));
            println!("[artifact: {}]", path.display());
        }
        println!("[{} finished in {elapsed:.2?}]", experiment.id());
    }
    if let Some(store) = &store {
        let index = store
            .finish()
            .unwrap_or_else(|e| die(&format!("cannot write index: {e}")));
        println!();
        println!("[campaign index: {}]", index.display());
    }
}

/// Peak resident set size (`VmHWM`) in mebibytes, from `/proc/self/status`
/// (Linux only; `None` elsewhere).
fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|line| line.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// The `--scale N` path: a large-n smoke run with **streamed** reveals on
/// the segment backend — one merge generated per pull, no `Instance`, no
/// event vector, no per-event recording — with per-reveal feasibility
/// checking on (incremental, so it stays cheap). Emits a
/// `BENCH_scale.json` artifact (timings + peak RSS) next to the
/// arrangement bench artifact, and honors `MLA_SCALE_MAX_RSS_MB` as a
/// hard peak-RSS ceiling (CI sets it).
fn run_scale_smoke(n: usize, seed: u64) {
    use mla_adversary::{MergeShape, StreamingWorkload};
    use mla_core::{RandCliques, RandLines};
    use mla_graph::Topology;
    use mla_permutation::SegmentArrangement;
    use mla_runner::{Json, SeedSequence};
    use mla_sim::Simulation;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    if n < 2 {
        die("--scale needs n >= 2");
    }
    let seeds = SeedSequence::new(seed).child_str("scale-smoke");
    println!("scale smoke: streaming reveals, segment backend, n = {n}, seed {seed}");
    let mut cells: Vec<Json> = Vec::new();
    for topology in [Topology::Cliques, Topology::Lines] {
        let label = topology.to_string();
        let source = StreamingWorkload::new(
            topology,
            n,
            MergeShape::Uniform,
            seeds.child_str(&label).seed(0),
        );
        let coin = SmallRng::seed_from_u64(seeds.child_str(&label).seed(1));
        let start = std::time::Instant::now();
        let outcome = match topology {
            Topology::Cliques => Simulation::from_source(
                source,
                RandCliques::new(SegmentArrangement::identity(n), coin),
            )
            .check_feasibility(true)
            .record_events(false)
            .run(),
            Topology::Lines => Simulation::from_source(
                source,
                RandLines::new(SegmentArrangement::identity(n), coin),
            )
            .check_feasibility(true)
            .record_events(false)
            .run(),
        };
        let served = start.elapsed();
        let outcome = outcome.unwrap_or_else(|e| die(&format!("scale smoke failed: {e}")));
        let reveals = n - 1;
        let per_second = reveals as f64 / served.as_secs_f64().max(1e-9);
        println!(
            "  {label:<8} {reveals} reveals streamed, total cost {}, served in {served:.2?} \
             ({per_second:.0} reveals/s)",
            outcome.total_cost,
        );
        cells.push(
            Json::object()
                .field("n", n)
                .field("topology", label)
                .field("reveals", reveals)
                .field("total_cost", outcome.total_cost)
                .field("serve_seconds", Json::Number(served.as_secs_f64()))
                .field("reveals_per_second", Json::Number(per_second)),
        );
    }
    let peak = peak_rss_mb();
    match peak {
        Some(mb) => println!("  peak RSS {mb:.0} MiB"),
        None => println!("  peak RSS unavailable on this platform"),
    }

    // BENCH_scale.json next to BENCH_arrangement.json, so CI tracks the
    // E-SCALE regime's timing trajectory across PRs.
    let dir = std::env::var("MLA_BENCH_ARTIFACT_DIR")
        .unwrap_or_else(|_| "target/bench-artifacts".to_owned());
    if let Err(e) = std::fs::create_dir_all(&dir) {
        die(&format!("cannot create {dir}: {e}"));
    }
    let report = Json::object()
        .field("id", "BENCH_scale")
        .field(
            "description",
            "streaming --scale smoke: segment backend, streamed reveals, no event recording",
        )
        .field("seed", seed)
        .field("peak_rss_mb", peak.map_or(Json::Null, Json::Number))
        .field("cells", Json::Array(cells));
    let path = std::path::Path::new(&dir).join("BENCH_scale.json");
    if let Err(e) = std::fs::write(&path, report.render_pretty()) {
        die(&format!("cannot write {}: {e}", path.display()));
    }
    println!("[scale artifact: {}]", path.display());

    // Hard memory ceiling (CI): fail loudly instead of silently swapping.
    if let Ok(limit) = std::env::var("MLA_SCALE_MAX_RSS_MB") {
        let limit: f64 = limit
            .parse()
            .unwrap_or_else(|_| die("MLA_SCALE_MAX_RSS_MB must be a number"));
        match peak {
            Some(mb) if mb > limit => die(&format!(
                "peak RSS {mb:.0} MiB exceeds the {limit} MiB ceiling"
            )),
            Some(mb) => println!("  peak RSS {mb:.0} MiB within the {limit} MiB ceiling"),
            None => die("MLA_SCALE_MAX_RSS_MB set but peak RSS is unavailable"),
        }
    }
}

fn print_help() {
    println!(
        "mla-experiments [--full | --tiny] [--seed N] [--threads N] [--csv DIR] [--json DIR] [--list] [ID...]\n\
         Runs the experiment suite; default scale is --quick. See DESIGN.md for the index.\n\
         --scale N    large-n smoke run on the segment arrangement backend, then exit.\n\
         --threads N  campaign worker threads (default 0 = available parallelism).\n\
         \x20            Results are bit-identical for every thread count.\n\
         --json DIR   write per-experiment campaign artifacts (per-run costs, tables,\n\
         \x20            seed/scale/threads/git metadata) plus index.json into DIR."
    );
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}
