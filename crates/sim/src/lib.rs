//! # `mla-sim`
//!
//! Simulation engine, statistics and the experiment suite for the online
//! learning MinLA reproduction.
//!
//! * [`Simulation`] — drives an adversary against an [`OnlineMinla`]
//!   algorithm, verifying the MinLA feasibility invariant after every
//!   reveal and accounting exact costs; per-event recording is full,
//!   windowed ([`Simulation::record_window`]) or off;
//! * [`Simulation::parallel`] — the batched parallel executor: the
//!   [`batch`] conflict-detection layer ([`BatchPlanner`] /
//!   [`ConflictGraph`]) groups consecutive reveals into maximal batches
//!   of span-disjoint merges and serves each batch across worker
//!   threads, bit-identically to the sequential loop for every thread
//!   count;
//! * [`OnlineStats`] / [`harmonic`] — measurement utilities;
//! * [`Table`] — plain-text/CSV experiment output;
//! * [`all_experiments`] — the registry reproducing every theorem, lemma
//!   and figure of the paper (see `DESIGN.md` for the index, and the
//!   `mla-experiments` binary to run them).
//!
//! Every experiment submits its repetition loops through `mla-runner`'s
//! deterministic [`Campaign`](mla_runner::Campaign) executor: results are
//! bit-identical for every `--threads` count, and when an artifact sink
//! is installed on the [`ExperimentContext`], per-run records and tables
//! are persisted as JSON campaign artifacts.
//!
//! [`OnlineMinla`]: mla_core::OnlineMinla
//!
//! # Examples
//!
//! ```
//! use mla_adversary::{random_line_instance, MergeShape};
//! use mla_core::RandLines;
//! use mla_permutation::Permutation;
//! use mla_sim::Simulation;
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let instance = random_line_instance(16, MergeShape::Uniform, &mut rng);
//! let outcome = Simulation::new(
//!     instance,
//!     RandLines::new(Permutation::identity(16), SmallRng::seed_from_u64(2)),
//! )
//! .check_feasibility(true)
//! .run()
//! .expect("feasible run");
//! assert_eq!(outcome.per_event.len(), 15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod checkpoint;
mod engine;
mod error;
mod experiment;
pub mod experiments;
pub mod session;
mod stats;
mod table;

pub use batch::{conflict_graph_allocations, BatchPlanner, ConflictGraph, PlannedReveal};
pub use checkpoint::CheckpointError;
pub use engine::{ParallelSimulation, RunOutcome, Simulation};
pub use error::SimError;
pub use experiment::{all_experiments, find_experiment, Experiment, ExperimentContext, Scale};
pub use session::{
    decode_session, encode_session, open_session, ArrCodec, BackendKind, PolicyKind, RecordMode,
    Session, SessionSpec, TenantSession,
};
pub use stats::{harmonic, percentile_sorted, OnlineStats, Summary};
pub use table::Table;
