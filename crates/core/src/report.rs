//! Per-update cost reports.

use std::fmt;
use std::ops::Add;

/// The cost of serving one reveal, split the way the paper's analysis
/// splits it (Section 4): the *moving* part brings the two components next
/// to each other; the *rearranging* part (lines only) fixes the merged
/// component's internal order.
///
/// All costs are counted in adjacent transpositions and equal the Kendall
/// tau distance actually traveled — the moving part flips only
/// `X × (gap)` pairs and the rearranging part only intra-`X`, intra-`Z`
/// and `X × Z` pairs, so no pair is ever flipped twice within an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateReport {
    /// Cost of the moving part (`M` in the paper).
    pub moving_cost: u64,
    /// Cost of the rearranging part (`R` in the paper; zero for cliques).
    pub rearranging_cost: u64,
}

impl UpdateReport {
    /// A report with only a moving part.
    #[must_use]
    pub fn moving(cost: u64) -> Self {
        UpdateReport {
            moving_cost: cost,
            rearranging_cost: 0,
        }
    }

    /// Total cost of the update.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.moving_cost + self.rearranging_cost
    }
}

impl Add for UpdateReport {
    type Output = UpdateReport;

    fn add(self, other: UpdateReport) -> UpdateReport {
        UpdateReport {
            moving_cost: self.moving_cost + other.moving_cost,
            rearranging_cost: self.rearranging_cost + other.rearranging_cost,
        }
    }
}

impl fmt::Display for UpdateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cost {} (move {}, rearrange {})",
            self.total(),
            self.moving_cost,
            self.rearranging_cost
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_addition() {
        let a = UpdateReport {
            moving_cost: 3,
            rearranging_cost: 2,
        };
        let b = UpdateReport::moving(4);
        assert_eq!(a.total(), 5);
        assert_eq!(b.total(), 4);
        let sum = a + b;
        assert_eq!(sum.moving_cost, 7);
        assert_eq!(sum.rearranging_cost, 2);
        assert_eq!(UpdateReport::default().total(), 0);
    }

    #[test]
    fn display_format() {
        let report = UpdateReport {
            moving_cost: 1,
            rearranging_cost: 2,
        };
        assert_eq!(report.to_string(), "cost 3 (move 1, rearrange 2)");
    }
}
