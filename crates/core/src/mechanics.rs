//! Shared update mechanics: locating component blocks, the moving part
//! (Figure 1) and the rearranging part (Figure 2).
//!
//! Both randomized algorithms and all baselines are built from these
//! primitives, so their cost accounting is identical by construction:
//! every primitive returns the exact number of adjacent transpositions it
//! performed.

use mla_graph::ComponentSnapshot;
use mla_permutation::{Arrangement, Node};

/// Positions of the two merging components in the current permutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockLayout {
    /// Range of the `X` component.
    pub x_range: std::ops::Range<usize>,
    /// Range of the `Z` component.
    pub z_range: std::ops::Range<usize>,
}

impl BlockLayout {
    /// Locates the components; panics if either is not contiguous — that
    /// would mean the feasibility invariant was already broken before this
    /// update.
    ///
    /// # Panics
    ///
    /// Panics if a component does not occupy contiguous positions.
    #[must_use]
    pub fn locate<P: Arrangement + ?Sized>(
        perm: &P,
        x: &ComponentSnapshot,
        z: &ComponentSnapshot,
    ) -> Self {
        let x_range = perm
            .contiguous_range(x.nodes())
            // mla-lint: allow(panic-safety): feasibility invariant: every revealed component occupies one contiguous block
            .expect("X component must be contiguous (feasibility invariant)");
        let z_range = perm
            .contiguous_range(z.nodes())
            // mla-lint: allow(panic-safety): feasibility invariant: every revealed component occupies one contiguous block
            .expect("Z component must be contiguous (feasibility invariant)");
        BlockLayout { x_range, z_range }
    }

    /// Like [`BlockLayout::locate`], additionally returning each block's
    /// [`Orientation`] from the same lookups (the lines hot path: one
    /// oriented locate per merge).
    ///
    /// # Panics
    ///
    /// Panics if a component does not occupy contiguous positions.
    #[must_use]
    pub fn locate_oriented<P: Arrangement + ?Sized>(
        perm: &P,
        x: &ComponentSnapshot,
        z: &ComponentSnapshot,
    ) -> (Self, Orientation, Orientation) {
        let (x_range, x_forward) = perm
            .oriented_contiguous_range(x.nodes())
            // mla-lint: allow(panic-safety): feasibility invariant: every revealed component occupies one contiguous block
            .expect("X component must be contiguous (feasibility invariant)");
        let (z_range, z_forward) = perm
            .oriented_contiguous_range(z.nodes())
            // mla-lint: allow(panic-safety): feasibility invariant: every revealed component occupies one contiguous block
            .expect("Z component must be contiguous (feasibility invariant)");
        let orientation = |forward| {
            if forward {
                Orientation::Forward
            } else {
                Orientation::Reversed
            }
        };
        (
            BlockLayout { x_range, z_range },
            orientation(x_forward),
            orientation(z_forward),
        )
    }

    /// Returns `true` if `X` lies left of `Z`.
    #[must_use]
    pub fn x_is_left(&self) -> bool {
        self.x_range.start < self.z_range.start
    }

    /// Number of foreign nodes strictly between the two components.
    #[must_use]
    pub fn gap(&self) -> usize {
        if self.x_is_left() {
            self.z_range.start - self.x_range.end
        } else {
            self.x_range.start - self.z_range.end
        }
    }
}

/// Executes the moving part: the chosen component travels over the gap so
/// the two components become adjacent (preserving internal orders and
/// which side each component ends up on). Returns the cost
/// `|mover| × gap`.
///
/// # Panics
///
/// Panics if a component is not contiguous.
pub fn execute_move<P: Arrangement + ?Sized>(
    perm: &mut P,
    x: &ComponentSnapshot,
    z: &ComponentSnapshot,
    x_moves: bool,
) -> u64 {
    let layout = BlockLayout::locate(perm, x, z);
    execute_move_located(perm, &layout, x_moves)
}

/// The moving part against an already-located layout (the hot path: one
/// [`BlockLayout::locate`] per merge update, threaded through the moving,
/// rearranging and coalescing stages).
pub fn execute_move_located<P: Arrangement + ?Sized>(
    perm: &mut P,
    layout: &BlockLayout,
    x_moves: bool,
) -> u64 {
    if layout.gap() == 0 {
        return 0;
    }
    let (mover, stay_range) = if x_moves {
        (layout.x_range.clone(), layout.z_range.clone())
    } else {
        (layout.z_range.clone(), layout.x_range.clone())
    };
    let mover_is_left = mover.start < stay_range.start;
    let dest = if mover_is_left {
        // Shift right so the mover ends where the stayer begins.
        stay_range.start - mover.len()
    } else {
        // Shift left so the mover starts where the stayer ends.
        stay_range.end
    };
    perm.move_block(mover, dest)
}

/// The current orientation of a component block relative to its snapshot
/// path order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// The block reads exactly as the snapshot's node order.
    Forward,
    /// The block reads as the reversed snapshot order.
    Reversed,
}

/// Determines the orientation of `snapshot.nodes` inside the permutation.
/// Singleton blocks report [`Orientation::Forward`].
///
/// Under the feasibility invariant a contiguous line block reads either
/// forward or reversed, so its two endpoints decide in `O(1)` lookups;
/// debug builds still scan the whole block and panic on a scramble (a
/// feasibility violation the engine's incremental check also catches).
///
/// # Panics
///
/// In debug builds, panics if the block is neither forward nor reversed.
#[must_use]
pub fn orientation_of<P: Arrangement + ?Sized>(perm: &P, nodes: &[Node]) -> Orientation {
    if nodes.len() <= 1 {
        return Orientation::Forward;
    }
    #[cfg(debug_assertions)]
    {
        let positions: Vec<usize> = nodes.iter().map(|&v| perm.position_of(v)).collect();
        assert!(
            positions.windows(2).all(|w| w[0] < w[1]) || positions.windows(2).all(|w| w[0] > w[1]),
            "line component is neither forward nor reversed (feasibility violation)"
        );
    }
    if perm.position_of(nodes[0]) < perm.position_of(nodes[nodes.len() - 1]) {
        Orientation::Forward
    } else {
        Orientation::Reversed
    }
}

/// [`orientation_of`] when the block's range is already known: a single
/// position lookup decides — the snapshot's first node sits at the
/// range's start iff the block reads forward.
#[must_use]
pub fn orientation_in<P: Arrangement + ?Sized>(
    perm: &P,
    nodes: &[Node],
    range: &std::ops::Range<usize>,
) -> Orientation {
    if nodes.len() <= 1 {
        return Orientation::Forward;
    }
    debug_assert_eq!(orientation_of(perm, nodes) == Orientation::Forward, {
        perm.position_of(nodes[0]) == range.start
    });
    if perm.position_of(nodes[0]) == range.start {
        Orientation::Forward
    } else {
        Orientation::Reversed
    }
}

/// One of the two rearranging options of Figure 2: which blocks to reverse
/// and whether to swap them, with the total cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RearrangeOption {
    /// Reverse the `X` block (cost `C(|X|, 2)`).
    pub reverse_x: bool,
    /// Reverse the `Z` block (cost `C(|Z|, 2)`).
    pub reverse_z: bool,
    /// Swap the two adjacent blocks (cost `|X|·|Z|`).
    pub swap: bool,
    /// Total cost of this option in adjacent transpositions.
    pub cost: u64,
}

/// The two rearranging options for the merged line: reach the forward
/// target (`x.nodes ++ z.nodes` reading left to right) or the reversed
/// target. Their costs always sum to `C(|X|+|Z|, 2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RearrangeChoices {
    /// Ops to make the merged block read `x.nodes ++ z.nodes`.
    pub forward: RearrangeOption,
    /// Ops to make it read `reverse(z.nodes) ++ reverse(x.nodes)`.
    pub reversed: RearrangeOption,
}

fn binomial2(m: usize) -> u64 {
    let m = m as u64;
    m * m.saturating_sub(1) / 2
}

/// Computes both rearranging options for the current adjacent layout of
/// `X` and `Z`.
///
/// Preconditions: the two blocks are adjacent in `perm` (the moving part
/// ran first) and each is internally forward or reversed relative to its
/// snapshot.
///
/// # Panics
///
/// Panics on feasibility violations (non-contiguous or scrambled blocks).
#[must_use]
pub fn rearrange_choices<P: Arrangement + ?Sized>(
    perm: &P,
    x: &ComponentSnapshot,
    z: &ComponentSnapshot,
) -> RearrangeChoices {
    let layout = BlockLayout::locate(perm, x, z);
    assert_eq!(
        layout.gap(),
        0,
        "blocks must be adjacent before rearranging"
    );
    rearrange_choices_located(perm, &layout, x, z)
}

/// The rearranging options against an already-located layout.
///
/// Unlike [`rearrange_choices`], the blocks need not be adjacent yet:
/// the choices depend only on sizes, orientations and sides, none of
/// which the moving part changes — so they can be computed before or
/// after it (the engine's merge-update hot path computes them before,
/// with one layout lookup per merge).
#[must_use]
pub fn rearrange_choices_located<P: Arrangement + ?Sized>(
    perm: &P,
    layout: &BlockLayout,
    x: &ComponentSnapshot,
    z: &ComponentSnapshot,
) -> RearrangeChoices {
    let x_orientation = orientation_in(perm, x.nodes(), &layout.x_range);
    let z_orientation = orientation_in(perm, z.nodes(), &layout.z_range);
    rearrange_choices_pure(
        x.len(),
        z.len(),
        layout.x_is_left(),
        x_orientation,
        z_orientation,
    )
}

/// The closed-form core of the rearranging options: no arrangement
/// access at all — sizes, sides and orientations fully determine both
/// options and their costs.
#[must_use]
pub fn rearrange_choices_pure(
    x_len: usize,
    z_len: usize,
    x_left: bool,
    x_orientation: Orientation,
    z_orientation: Orientation,
) -> RearrangeChoices {
    // Forward target: X block left (order = snapshot), Z block right
    // (order = snapshot). Required ops relative to the current state:
    let forward = RearrangeOption {
        reverse_x: x_orientation == Orientation::Reversed,
        reverse_z: z_orientation == Orientation::Reversed,
        swap: !x_left,
        cost: 0,
    };
    // Reversed target: Z block left reading reverse(z.nodes), X block
    // right reading reverse(x.nodes) — the mirror image of the forward
    // target, so the op set is exactly complemented.
    let reversed = RearrangeOption {
        reverse_x: !forward.reverse_x,
        reverse_z: !forward.reverse_z,
        swap: !forward.swap,
        cost: 0,
    };
    let price = |option: RearrangeOption| -> u64 {
        let mut cost = 0u64;
        if option.reverse_x {
            cost += binomial2(x_len);
        }
        if option.reverse_z {
            cost += binomial2(z_len);
        }
        if option.swap {
            cost += (x_len * z_len) as u64;
        }
        cost
    };
    let choices = RearrangeChoices {
        forward: RearrangeOption {
            cost: price(forward),
            ..forward
        },
        reversed: RearrangeOption {
            cost: price(reversed),
            ..reversed
        },
    };
    debug_assert_eq!(
        choices.forward.cost + choices.reversed.cost,
        binomial2(x_len + z_len),
        "option costs must sum to C(|X|+|Z|, 2)"
    );
    choices
}

/// Applies a rearranging option. Returns the exact cost (always equals
/// `option.cost`).
///
/// # Panics
///
/// Panics if the blocks are not adjacent.
pub fn execute_rearrange<P: Arrangement + ?Sized>(
    perm: &mut P,
    x: &ComponentSnapshot,
    z: &ComponentSnapshot,
    option: RearrangeOption,
) -> u64 {
    let layout = BlockLayout::locate(perm, x, z);
    execute_rearrange_located(perm, &layout, option)
}

/// Applies a rearranging option against an already-located layout.
/// Returns the exact cost (always equals `option.cost`).
///
/// # Panics
///
/// Panics if the blocks are not adjacent.
pub fn execute_rearrange_located<P: Arrangement + ?Sized>(
    perm: &mut P,
    layout: &BlockLayout,
    option: RearrangeOption,
) -> u64 {
    assert_eq!(
        layout.gap(),
        0,
        "blocks must be adjacent before rearranging"
    );
    let mut cost = 0u64;
    if option.reverse_x {
        cost += perm.reverse_block(layout.x_range.clone());
    }
    if option.reverse_z {
        cost += perm.reverse_block(layout.z_range.clone());
    }
    if option.swap {
        let (left, right) = if layout.x_is_left() {
            (layout.x_range.clone(), layout.z_range.clone())
        } else {
            (layout.z_range.clone(), layout.x_range.clone())
        };
        cost += perm.swap_adjacent_blocks(left, right);
    }
    debug_assert_eq!(cost, option.cost);
    cost
}

/// Tells the arrangement backend that the just-merged components `X` and
/// `Z` now form one block (they are adjacent after the moving — and, for
/// lines, rearranging — part). A pure structural hint: segment backends
/// compact the two component segments into one so that the *next* merge
/// touching this component locates it in a single `O(log n)` splice; the
/// dense backend ignores it. Call once at the end of every `serve`.
///
/// # Panics
///
/// Panics if a component is not contiguous or the blocks are not
/// adjacent — the merge update did not run to completion.
pub fn coalesce_merged<P: Arrangement + ?Sized>(
    perm: &mut P,
    x: &ComponentSnapshot,
    z: &ComponentSnapshot,
) {
    let layout = BlockLayout::locate(perm, x, z);
    assert_eq!(layout.gap(), 0, "blocks must be adjacent before coalescing");
    let start = layout.x_range.start.min(layout.z_range.start);
    let end = layout.x_range.end.max(layout.z_range.end);
    perm.coalesce_range(start..end);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_permutation::{Permutation, SegmentArrangement};

    fn snapshot(indices: &[usize]) -> ComponentSnapshot {
        let nodes: Vec<Node> = indices.iter().map(|&i| Node::new(i)).collect();
        let joined = nodes[nodes.len() - 1];
        ComponentSnapshot::eager(nodes, joined)
    }

    #[test]
    fn layout_and_gap() {
        let perm = Permutation::from_indices(&[0, 1, 5, 2, 3, 4]).unwrap();
        let x = snapshot(&[0, 1]);
        let z = snapshot(&[2, 3]);
        let layout = BlockLayout::locate(&perm, &x, &z);
        assert!(layout.x_is_left());
        assert_eq!(layout.gap(), 1);
    }

    #[test]
    #[should_panic(expected = "must be contiguous")]
    fn locate_panics_on_scattered_block() {
        let perm = Permutation::from_indices(&[0, 2, 1, 3]).unwrap();
        let x = snapshot(&[0, 1]);
        let z = snapshot(&[3]);
        let _ = BlockLayout::locate(&perm, &x, &z);
    }

    #[test]
    fn execute_move_brings_adjacent_both_directions() {
        // X = {0,1} at left, Z = {4,5} at right, gap {2,3}.
        let base = Permutation::identity(6);
        let x = snapshot(&[0, 1]);
        let z = snapshot(&[4, 5]);

        let mut right = base.clone();
        let cost = execute_move(&mut right, &x, &z, true);
        assert_eq!(cost, 4); // |X|=2 over gap 2
        assert_eq!(right.to_index_vec(), vec![2, 3, 0, 1, 4, 5]);

        let mut left = base.clone();
        let cost = execute_move(&mut left, &x, &z, false);
        assert_eq!(cost, 4);
        assert_eq!(left.to_index_vec(), vec![0, 1, 4, 5, 2, 3]);
    }

    #[test]
    fn execute_move_zero_gap_is_free() {
        let mut perm = Permutation::identity(4);
        let x = snapshot(&[0, 1]);
        let z = snapshot(&[2, 3]);
        assert_eq!(execute_move(&mut perm, &x, &z, true), 0);
        assert_eq!(perm.to_index_vec(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn orientation_detection() {
        let perm = Permutation::from_indices(&[2, 1, 0, 3]).unwrap();
        assert_eq!(
            orientation_of(&perm, &[Node::new(2), Node::new(1), Node::new(0)]),
            Orientation::Forward
        );
        assert_eq!(
            orientation_of(&perm, &[Node::new(0), Node::new(1), Node::new(2)]),
            Orientation::Reversed
        );
        assert_eq!(orientation_of(&perm, &[Node::new(3)]), Orientation::Forward);
    }

    #[test]
    #[should_panic(expected = "neither forward nor reversed")]
    fn orientation_panics_on_scramble() {
        let perm = Permutation::from_indices(&[1, 0, 2]).unwrap();
        let _ = orientation_of(&perm, &[Node::new(0), Node::new(1), Node::new(2)]);
    }

    #[test]
    fn figure2_case_outward_endpoints() {
        // The exact configuration of Figure 2: X left (x_i at the inner
        // side? no — x_i at the LEFT end, i.e. snapshot reversed), Z right
        // with z_i at its left end (snapshot forward).
        //
        // Snapshots: x.nodes ends at x_i; z.nodes starts at z_i.
        // Current permutation: [x_i, a, | z_i, b] where X path is a-x_i
        // (so block reads reversed) and Z path is z_i-b (forward).
        // x_i = 1, a = 0, z_i = 2, b = 3.
        let perm = Permutation::from_indices(&[1, 0, 2, 3]).unwrap();
        let x = ComponentSnapshot::eager(vec![Node::new(0), Node::new(1)], Node::new(1));
        let z = ComponentSnapshot::eager(vec![Node::new(2), Node::new(3)], Node::new(2));
        let choices = rearrange_choices(&perm, &x, &z);
        // Forward target [0,1,2,3]: reverse X only → cost C(2,2)=1.
        assert!(choices.forward.reverse_x);
        assert!(!choices.forward.reverse_z);
        assert!(!choices.forward.swap);
        assert_eq!(choices.forward.cost, 1);
        // Reversed target [3,2,1,0]: reverse Z and swap → 1 + 4 = 5.
        assert_eq!(choices.reversed.cost, 5);
        // Paper invariant: costs sum to C(4,2) = 6.
        assert_eq!(choices.forward.cost + choices.reversed.cost, 6);
    }

    #[test]
    fn execute_rearrange_reaches_targets() {
        let x = ComponentSnapshot::eager(vec![Node::new(0), Node::new(1)], Node::new(1));
        let z = ComponentSnapshot::eager(vec![Node::new(2), Node::new(3)], Node::new(2));
        for start in [
            vec![1usize, 0, 2, 3],
            vec![0, 1, 2, 3],
            vec![2, 3, 1, 0],
            vec![3, 2, 0, 1],
        ] {
            let base = Permutation::from_indices(&start).unwrap();
            let choices = rearrange_choices(&base, &x, &z);
            let mut fwd = base.clone();
            let cost = execute_rearrange(&mut fwd, &x, &z, choices.forward);
            assert_eq!(cost, choices.forward.cost, "start {start:?}");
            assert_eq!(fwd.to_index_vec(), vec![0, 1, 2, 3], "start {start:?}");
            let mut rev = base.clone();
            let cost = execute_rearrange(&mut rev, &x, &z, choices.reversed);
            assert_eq!(cost, choices.reversed.cost, "start {start:?}");
            assert_eq!(rev.to_index_vec(), vec![3, 2, 1, 0], "start {start:?}");
        }
    }

    #[test]
    fn mechanics_are_backend_agnostic() {
        // The full merge update — move, rearrange, coalesce — must behave
        // identically on the dense and segment backends.
        let x = ComponentSnapshot::eager(vec![Node::new(0), Node::new(1)], Node::new(1));
        let z = ComponentSnapshot::eager(vec![Node::new(4), Node::new(5)], Node::new(4));
        let mut dense = Permutation::from_indices(&[1, 0, 2, 3, 4, 5]).unwrap();
        let mut segment = SegmentArrangement::from_permutation(&dense);
        let dense_move = execute_move(&mut dense, &x, &z, true);
        let segment_move = execute_move(&mut segment, &x, &z, true);
        assert_eq!(dense_move, segment_move);
        let dense_choices = rearrange_choices(&dense, &x, &z);
        let segment_choices = rearrange_choices(&segment, &x, &z);
        assert_eq!(dense_choices, segment_choices);
        let dense_cost = execute_rearrange(&mut dense, &x, &z, dense_choices.forward);
        let segment_cost = execute_rearrange(&mut segment, &x, &z, segment_choices.forward);
        assert_eq!(dense_cost, segment_cost);
        coalesce_merged(&mut dense, &x, &z);
        coalesce_merged(&mut segment, &x, &z);
        assert_eq!(segment.to_permutation(), dense);
        // After the coalesce hint the merged component is one segment.
        let merged: Vec<Node> = x.nodes().iter().chain(z.nodes().iter()).copied().collect();
        assert!(segment.contiguous_range(&merged).is_some());
    }

    #[test]
    fn rearrange_with_singletons() {
        let x = ComponentSnapshot::eager(vec![Node::new(0)], Node::new(0));
        let z = ComponentSnapshot::eager(vec![Node::new(1)], Node::new(1));
        let perm = Permutation::from_indices(&[1, 0, 2]).unwrap();
        let choices = rearrange_choices(&perm, &x, &z);
        // Forward target [0,1]: needs the swap (cost 1); reversed is free.
        assert_eq!(choices.forward.cost, 1);
        assert_eq!(choices.reversed.cost, 0);
        assert_eq!(choices.forward.cost + choices.reversed.cost, 1);
    }
}
