//! Policy-state snapshots for the checkpoint/restore stack.
//!
//! The arrangement an algorithm works on is serialized separately (the
//! session layer owns the backend and its codec); what remains is the
//! *policy* state — whatever an algorithm mutates across `serve` calls
//! beyond the arrangement itself. For the randomized policies that is
//! exactly the RNG stream position; for `Det` it is the `π0` anchor and
//! the exactness flag; for the replayer it is the target and the
//! jumped-yet bit.
//!
//! The contract mirrors the rest of the checkpoint stack: restoring the
//! policy state and replaying the remaining reveals must be
//! bit-identical to never having stopped. Transient scratch buffers
//! (e.g. `RandLines`' target buffer, rebuilt from scratch inside every
//! serve) are deliberately *not* state and are not encoded.

use mla_permutation::codec::{ByteReader, CodecError};

/// Snapshot/restore of an online algorithm's mutable policy state.
///
/// Implementations encode every field whose value can influence a future
/// [`serve`](crate::OnlineMinla::serve) call, *except* the arrangement
/// (owned by the session codec) and construction-time configuration
/// (owned by the session spec, which reconstructs the algorithm before
/// calling [`PolicyState::restore_state`]).
pub trait PolicyState {
    /// Appends the policy state to `out`.
    fn encode_state_into(&self, out: &mut Vec<u8>);

    /// Overwrites the policy state from bytes written by
    /// [`PolicyState::encode_state_into`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncated or inconsistent input; on error the
    /// algorithm must not be used further (it may be half-restored).
    fn restore_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError>;
}

/// Encodes a xoshiro256++ state as four little-endian `u64` lanes.
pub(crate) fn put_rng_state(out: &mut Vec<u8>, state: [u64; 4]) {
    for lane in state {
        mla_permutation::codec::put_u64(out, lane);
    }
}

/// Reads four little-endian `u64` lanes written by [`put_rng_state`].
pub(crate) fn read_rng_state(r: &mut ByteReader<'_>) -> Result<[u64; 4], CodecError> {
    Ok([r.u64()?, r.u64()?, r.u64()?, r.u64()?])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DetClosest, OnlineMinla, OptReplay, RandCliques, RandLines};
    use mla_graph::{GraphState, RevealEvent, Topology};
    use mla_offline::LopConfig;
    use mla_permutation::{Node, Permutation};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ev(a: usize, b: usize) -> RevealEvent {
        RevealEvent::new(Node::new(a), Node::new(b))
    }

    #[test]
    fn rng_policies_resume_their_streams() {
        let n = 16;
        let mut graph = GraphState::new(Topology::Cliques, n);
        let mut alg = RandCliques::new(Permutation::identity(n), SmallRng::seed_from_u64(9));
        for (a, b) in [(0, 1), (2, 3), (1, 2)] {
            let info = graph.apply(ev(a, b)).unwrap();
            alg.serve(ev(a, b), &info, &graph);
        }
        // Snapshot, then fork: a restored twin must replay the remainder
        // identically to the original.
        let mut state = Vec::new();
        alg.encode_state_into(&mut state);
        let mut twin = RandCliques::new(
            alg.arrangement().clone(),
            SmallRng::seed_from_u64(0xDEAD_BEEF),
        );
        twin.restore_state(&mut ByteReader::new(&state)).unwrap();
        let mut graph_twin = graph.clone();
        for (a, b) in [(4, 5), (0, 4), (6, 7), (5, 6)] {
            let info = graph.apply(ev(a, b)).unwrap();
            let report = alg.serve(ev(a, b), &info, &graph);
            let info_twin = graph_twin.apply(ev(a, b)).unwrap();
            let report_twin = twin.serve(ev(a, b), &info_twin, &graph_twin);
            assert_eq!(report, report_twin);
        }
        assert_eq!(
            alg.arrangement().to_index_vec(),
            twin.arrangement().to_index_vec()
        );
    }

    #[test]
    fn rand_lines_state_is_the_rng_alone() {
        let alg = RandLines::new(Permutation::identity(4), SmallRng::seed_from_u64(3));
        let mut state = Vec::new();
        alg.encode_state_into(&mut state);
        assert_eq!(state.len(), 32, "four u64 lanes");
    }

    #[test]
    fn det_snapshot_carries_the_anchor() {
        let pi0 = Permutation::from_indices(&[2, 0, 1, 3]).unwrap();
        let mut graph = GraphState::new(Topology::Cliques, 4);
        let mut alg = DetClosest::new(pi0.clone(), LopConfig::default());
        let info = graph.apply(ev(0, 3)).unwrap();
        alg.serve(ev(0, 3), &info, &graph);
        let mut state = Vec::new();
        alg.encode_state_into(&mut state);
        // Rebuild anchored at the *current* permutation — restore must
        // bring back the original anchor.
        let mut twin = DetClosest::with_backend(alg.arrangement().clone(), LopConfig::default());
        assert_ne!(twin.initial(), &pi0);
        twin.restore_state(&mut ByteReader::new(&state)).unwrap();
        assert_eq!(twin.initial(), &pi0);
        assert!(twin.is_exact());
    }

    #[test]
    fn opt_replay_snapshot_carries_target_and_jump_bit() {
        let target = Permutation::from_indices(&[1, 0, 3, 2]).unwrap();
        let mut graph = GraphState::new(Topology::Cliques, 4);
        let mut alg = OptReplay::new(Permutation::identity(4), target.clone());
        let info = graph.apply(ev(0, 1)).unwrap();
        assert!(alg.serve(ev(0, 1), &info, &graph).total() > 0);
        let mut state = Vec::new();
        alg.encode_state_into(&mut state);
        let mut twin = OptReplay::new(alg.arrangement().clone(), Permutation::identity(4));
        twin.restore_state(&mut ByteReader::new(&state)).unwrap();
        assert_eq!(twin.target(), &target);
        // Already jumped: the next serve must be free.
        let info = graph.apply(ev(2, 3)).unwrap();
        assert_eq!(twin.serve(ev(2, 3), &info, &graph).total(), 0);
    }
}
