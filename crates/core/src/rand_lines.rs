//! The paper's randomized algorithm for collections of lines (Section 4)
//! and its policy ablations.

use mla_graph::{GraphState, MergeInfo, RevealEvent, Topology};
use mla_permutation::{Arrangement, Permutation};
use rand::Rng;

use crate::batch::{
    fill_line_target, plan_move, BatchServe, MergeDecision, MergeLayout, MergePlan,
};
use crate::mechanics::RearrangeChoices;
use crate::policies::{MovePolicy, RearrangePolicy};
use crate::rand_cliques::x_moves;
use crate::report::UpdateReport;
use crate::traits::OnlineMinla;
use mla_permutation::Node;

/// `Rand` for lines: each update has two parts (Section 4.1).
///
/// * **Moving** — exactly as in the clique case: `X` moves with
///   probability `|Z| / (|X| + |Z|)` (Figure 1).
/// * **Rearranging** — the merged path must read in path order; of the two
///   reachable orientations, each is chosen with probability proportional
///   to the *other* option's cost (Figure 2), so the expected cost is
///   `2·cost_F·cost_R / (cost_F + cost_R)`.
///
/// Theorem 8: this algorithm is `8 ln n`-competitive against the oblivious
/// adversary.
///
/// Generic over the [`Arrangement`] backend, like
/// [`RandCliques`](crate::RandCliques).
///
/// # Examples
///
/// ```
/// use mla_core::{OnlineMinla, RandLines};
/// use mla_graph::{GraphState, RevealEvent, Topology};
/// use mla_permutation::{Node, Permutation};
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut alg = RandLines::new(Permutation::identity(4), SmallRng::seed_from_u64(1));
/// let mut graph = GraphState::new(Topology::Lines, 4);
/// let event = RevealEvent::new(Node::new(1), Node::new(2));
/// let info = graph.apply(event).unwrap();
/// alg.serve(event, &info, &graph);
/// assert!(graph.is_minla(alg.arrangement()));
/// ```
#[derive(Debug)]
pub struct RandLines<R, P = Permutation> {
    perm: P,
    rng: R,
    move_policy: MovePolicy,
    rearrange_policy: RearrangePolicy,
    name: &'static str,
    /// Reused buffer for each sequential merge's target path content.
    scratch: Vec<Node>,
}

impl<R: Rng, P: Arrangement> RandLines<R, P> {
    /// The paper's algorithm: size-biased move, cost-biased rearrange.
    #[must_use]
    pub fn new(initial: P, rng: R) -> Self {
        Self::with_policies(
            initial,
            rng,
            MovePolicy::SizeBiased,
            RearrangePolicy::CostBiased,
        )
    }

    /// An ablation variant with explicit policies.
    #[must_use]
    pub fn with_policies(
        initial: P,
        rng: R,
        move_policy: MovePolicy,
        rearrange_policy: RearrangePolicy,
    ) -> Self {
        let name = match (move_policy, rearrange_policy) {
            (MovePolicy::SizeBiased, RearrangePolicy::CostBiased) => "rand-lines",
            (MovePolicy::Fair, RearrangePolicy::Fair) => "fair-lines",
            (MovePolicy::SmallerMoves, RearrangePolicy::Cheapest) => "smaller-moves-lines",
            _ => "custom-lines",
        };
        RandLines {
            perm: initial,
            rng,
            move_policy,
            rearrange_policy,
            name,
            scratch: Vec::new(),
        }
    }

    /// The configured policies.
    #[must_use]
    pub fn policies(&self) -> (MovePolicy, RearrangePolicy) {
        (self.move_policy, self.rearrange_policy)
    }

    /// Rebuilds the merged path's target content into `scratch` without
    /// member lists: the forward target `x.nodes ++ z.nodes` is the
    /// post-merge path read across the just-committed edge `(a, b)`, so
    /// one two-sided adjacency walk outward from the joined endpoints
    /// reconstructs it — no member scan, no canonical-endpoint search,
    /// no intermediate allocation.
    ///
    /// `O(len)` — but only invoked when the rearranging option has
    /// positive cost, where the update itself is already `Ω(len)`.
    fn fill_target_from_state(&mut self, info: &MergeInfo, state: &GraphState, forward: bool) {
        let a = info.x.joined();
        let b = info.z.joined();
        let GraphState::Lines(lines) = state else {
            unreachable!("RandLines serves line reveals only");
        };
        self.scratch.clear();
        self.scratch.reserve(info.merged_len());
        // The a-side walk yields X from its joined end outward, i.e. the
        // snapshot order reversed; flip that prefix in place, then stream
        // the b-side walk, which is Z in snapshot order already.
        self.scratch.push(a);
        let (mut prev, mut cur) = (b, a);
        while let Some(next) = lines.next_along(cur, Some(prev)) {
            self.scratch.push(next);
            prev = cur;
            cur = next;
        }
        self.scratch.reverse();
        self.scratch.push(b);
        let (mut prev, mut cur) = (a, b);
        while let Some(next) = lines.next_along(cur, Some(prev)) {
            self.scratch.push(next);
            prev = cur;
            cur = next;
        }
        debug_assert_eq!(self.scratch.len(), info.merged_len());
        if !forward {
            self.scratch.reverse();
        }
        #[cfg(debug_assertions)]
        if let (Some(xs), Some(zs)) = (info.x.shadow_nodes(), info.z.shadow_nodes()) {
            let expect: Vec<Node> = if forward {
                xs.iter().chain(zs.iter()).copied().collect()
            } else {
                zs.iter().rev().chain(xs.iter().rev()).copied().collect()
            };
            debug_assert_eq!(self.scratch, expect, "lazy target reconstruction mismatch");
        }
    }

    /// Chooses between the two rearranging options under the configured
    /// policy. Returns `true` for the forward target.
    fn pick_forward(&mut self, choices: &RearrangeChoices) -> bool {
        let total = choices.forward.cost + choices.reversed.cost;
        if total == 0 {
            return true;
        }
        match self.rearrange_policy {
            RearrangePolicy::CostBiased => {
                // P[forward] = cost(reversed) / total — the probability of
                // a choice equals the normalized cost of the *other* one.
                (self.rng.gen_range(0..total)) < choices.reversed.cost
            }
            RearrangePolicy::Fair => self.rng.gen_bool(0.5),
            RearrangePolicy::Cheapest => choices.forward.cost <= choices.reversed.cost,
        }
    }
}

impl<R: Rng, P: Arrangement> OnlineMinla for RandLines<R, P> {
    type Arr = P;

    fn name(&self) -> &str {
        self.name
    }

    fn arrangement(&self) -> &P {
        &self.perm
    }

    fn serve(&mut self, _event: RevealEvent, info: &MergeInfo, state: &GraphState) -> UpdateReport {
        debug_assert_eq!(state.topology(), Topology::Lines);
        // One locate per merge. The rearranging choices depend only on
        // sizes, orientations and sides — none changed by the moving
        // part — so both parts are decided up front and the whole update
        // executes as a single backend operation: the merged path's final
        // content is known in closed form from the snapshots. Same
        // locate / decide semantics as the batched engine's pipeline
        // (`BatchServe`), but with the target staged in the reused
        // `scratch` buffer: the sequential loop never allocates per
        // merge, while `build_plan` must own its buffer because plans
        // cross threads.
        let layout = MergeLayout::locate(&self.perm, info);
        let decision = self.decide(info, &layout);
        let option = {
            let choices = layout.choices(info);
            if decision.forward {
                choices.forward
            } else {
                choices.reversed
            }
        };
        // A free option means every required op is a no-op (singleton
        // reversals) — skip the bulk rewrite so the backend's cheap
        // order-preserving fold applies.
        let target = if option.cost > 0 {
            if info.x.is_lazy() || info.z.is_lazy() {
                self.fill_target_from_state(info, state, decision.forward);
            } else {
                fill_line_target(&mut self.scratch, info, decision.forward);
            }
            Some(self.scratch.as_slice())
        } else {
            None
        };
        let (mover, stayer) = if decision.x_moves {
            (layout.layout.x_range.clone(), layout.layout.z_range.clone())
        } else {
            (layout.layout.z_range.clone(), layout.layout.x_range.clone())
        };
        let moving_cost = self.perm.merge_move(mover, stayer, target);
        UpdateReport {
            moving_cost,
            rearranging_cost: option.cost,
        }
    }

    fn wants_lazy_info(&self) -> bool {
        // Decisions need only sizes and orientations, both available
        // lazily; the rare rewritten target is rebuilt from the
        // post-merge graph state in `fill_target_from_state`.
        true
    }
}

impl<P: Arrangement> crate::snapshot::PolicyState for RandLines<rand::rngs::SmallRng, P> {
    fn encode_state_into(&self, out: &mut Vec<u8>) {
        // `scratch` is a transient buffer rebuilt inside every serve —
        // not state.
        crate::snapshot::put_rng_state(out, self.rng.to_state());
    }

    fn restore_state(
        &mut self,
        r: &mut mla_permutation::codec::ByteReader<'_>,
    ) -> Result<(), mla_permutation::codec::CodecError> {
        self.rng = rand::rngs::SmallRng::from_state(crate::snapshot::read_rng_state(r)?);
        Ok(())
    }
}

impl<R: Rng, P: Arrangement> BatchServe for RandLines<R, P> {
    fn decide(&mut self, info: &MergeInfo, layout: &MergeLayout) -> MergeDecision {
        // Draw order matters for seed reproducibility: the move coin
        // first, then (total cost permitting) the rearrange coin —
        // exactly the order sequential serving has always used.
        let x_moves = x_moves(&mut self.rng, self.move_policy, info.x.len(), info.z.len());
        let forward = self.pick_forward(&layout.choices(info));
        MergeDecision { x_moves, forward }
    }

    fn build_plan(info: &MergeInfo, layout: &MergeLayout, decision: MergeDecision) -> MergePlan {
        let choices = layout.choices(info);
        let option = if decision.forward {
            choices.forward
        } else {
            choices.reversed
        };
        // A free option means every required op is a no-op (singleton
        // reversals), i.e. the post-move content already reads as the
        // target — skip the bulk rewrite so the backend's cheap
        // order-preserving fold applies.
        let target = (option.cost > 0).then(|| {
            let mut content = Vec::new();
            fill_line_target(&mut content, info, decision.forward);
            content
        });
        plan_move(layout, decision.x_moves, target, option.cost)
    }

    fn arrangement_mut(&mut self) -> &mut P {
        &mut self.perm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_permutation::Node;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ev(a: usize, b: usize) -> RevealEvent {
        RevealEvent::new(Node::new(a), Node::new(b))
    }

    /// Grows a random line workload and checks invariants per update.
    fn random_run(seed: u64, n: usize, move_policy: MovePolicy, rearrange: RearrangePolicy) {
        use rand::Rng as _;
        let mut rng = SmallRng::seed_from_u64(seed);
        let pi0 = Permutation::random(n, &mut rng);
        let mut graph = GraphState::new(Topology::Lines, n);
        let mut alg = RandLines::with_policies(
            pi0,
            SmallRng::seed_from_u64(seed ^ 0xdead),
            move_policy,
            rearrange,
        );
        while graph.component_count() > 1 {
            // Choose two endpoints of distinct components.
            let components = graph.components();
            let i = rng.gen_range(0..components.len());
            let mut j = rng.gen_range(0..components.len());
            while j == i {
                j = rng.gen_range(0..components.len());
            }
            let pick = |path: &Vec<Node>, r: &mut SmallRng| {
                if r.gen_bool(0.5) {
                    path[0]
                } else {
                    path[path.len() - 1]
                }
            };
            let event = RevealEvent::new(
                pick(&components[i], &mut rng),
                pick(&components[j], &mut rng),
            );
            let before = alg.arrangement().clone();
            let info = graph.apply(event).unwrap();
            let report = alg.serve(event, &info, &graph);
            assert_eq!(
                report.total(),
                before.kendall_distance(alg.arrangement()),
                "cost must equal distance traveled (seed {seed})"
            );
            assert!(
                graph.is_minla(alg.arrangement()),
                "feasibility invariant (seed {seed})"
            );
        }
    }

    #[test]
    fn paper_policy_maintains_invariants() {
        for seed in 0..15 {
            random_run(
                seed,
                10,
                MovePolicy::SizeBiased,
                RearrangePolicy::CostBiased,
            );
        }
    }

    #[test]
    fn ablation_policies_maintain_invariants() {
        for seed in 0..8 {
            random_run(seed, 9, MovePolicy::Fair, RearrangePolicy::Fair);
            random_run(seed, 9, MovePolicy::SmallerMoves, RearrangePolicy::Cheapest);
        }
    }

    #[test]
    fn merged_path_reads_in_path_order() {
        let pi0 = Permutation::identity(6);
        let mut alg = RandLines::new(pi0, SmallRng::seed_from_u64(5));
        let mut graph = GraphState::new(Topology::Lines, 6);
        for event in [ev(0, 1), ev(1, 2), ev(4, 5), ev(2, 4)] {
            let info = graph.apply(event).unwrap();
            alg.serve(event, &info, &graph);
        }
        // Path 0-1-2-4-5 must be contiguous and monotone in the permutation.
        let path: Vec<Node> = [0usize, 1, 2, 4, 5].iter().map(|&i| Node::new(i)).collect();
        let range = alg.arrangement().contiguous_range(&path).unwrap();
        assert_eq!(range.len(), 5);
        let positions: Vec<usize> = path
            .iter()
            .map(|&v| alg.arrangement().position_of(v))
            .collect();
        assert!(
            positions.windows(2).all(|w| w[0] < w[1]) || positions.windows(2).all(|w| w[0] > w[1])
        );
    }

    #[test]
    fn cheapest_policy_is_deterministic() {
        // Two seeds, same sequence → identical permutations.
        let pi0 = Permutation::from_indices(&[3, 0, 2, 1, 4]).unwrap();
        let events = [ev(0, 1), ev(1, 2), ev(2, 3)];
        let mut results = Vec::new();
        for seed in [1u64, 99u64] {
            let mut graph = GraphState::new(Topology::Lines, 5);
            let mut alg = RandLines::with_policies(
                pi0.clone(),
                SmallRng::seed_from_u64(seed),
                MovePolicy::SmallerMoves,
                RearrangePolicy::Cheapest,
            );
            for event in events {
                let info = graph.apply(event).unwrap();
                alg.serve(event, &info, &graph);
            }
            results.push(alg.arrangement().clone());
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn rearrange_probability_is_cost_biased() {
        // Configuration where forward costs 1 and reversed costs 5 (see
        // mechanics::figure2 test): P[forward] = 5/6.
        let trials = 6000u32;
        let mut forward_count = 0u32;
        for seed in 0..trials {
            let pi0 = Permutation::from_indices(&[1, 0, 2, 3]).unwrap();
            let mut graph = GraphState::new(Topology::Lines, 4);
            // Build paths 0-1 and 2-3 without moving anything: reveal in a
            // way consistent with pi0 = [1,0,2,3]: path 0-1 reads reversed.
            let mut alg = RandLines::new(pi0, SmallRng::seed_from_u64(u64::from(seed)));
            for event in [ev(0, 1), ev(2, 3)] {
                let info = graph.apply(event).unwrap();
                let report = alg.serve(event, &info, &graph);
                assert_eq!(report.total(), 0, "setup merges must be free");
            }
            // Now join x_i = 1 with z_i = 2.
            let event = ev(1, 2);
            let info = graph.apply(event).unwrap();
            alg.serve(event, &info, &graph);
            if alg.arrangement().to_index_vec() == vec![0, 1, 2, 3] {
                forward_count += 1;
            } else {
                assert_eq!(alg.arrangement().to_index_vec(), vec![3, 2, 1, 0]);
            }
        }
        let frequency = f64::from(forward_count) / f64::from(trials);
        assert!(
            (frequency - 5.0 / 6.0).abs() < 0.03,
            "P[forward] ≈ 5/6, measured {frequency}"
        );
    }
}
