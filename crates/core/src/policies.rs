//! Decision policies for the randomized algorithms and their ablations.

/// How an algorithm decides **which component moves** in the moving part of
/// an update (Figure 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MovePolicy {
    /// The paper's `Rand`: `X` moves with probability `|Z| / (|X| + |Z|)`
    /// and `Z` with the complementary probability. Each component's move
    /// probability is proportional to the *other* side's size, so the
    /// smaller component is the likelier mover. This is the policy behind
    /// the `4 ln n` bound.
    #[default]
    SizeBiased,
    /// Ablation: a fair coin, ignoring sizes.
    Fair,
    /// Deterministic baseline from the self-adjusting-networks literature:
    /// the smaller component always moves toward the larger (ties: the
    /// event's `X` side moves).
    SmallerMoves,
}

/// How a line algorithm decides **which orientation** the merged path takes
/// in the rearranging part (Figure 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RearrangePolicy {
    /// The paper's `Rand`: pick a target orientation with probability
    /// proportional to the *other* option's cost. This is the policy
    /// behind the `8 ln n` bound.
    #[default]
    CostBiased,
    /// Ablation: a fair coin between the two orientations.
    Fair,
    /// Greedy baseline: always the cheaper rearrangement (ties: forward).
    Cheapest,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_paper_policies() {
        assert_eq!(MovePolicy::default(), MovePolicy::SizeBiased);
        assert_eq!(RearrangePolicy::default(), RearrangePolicy::CostBiased);
    }
}
