//! The online algorithm interface.
//!
//! [`OnlineMinla`] is the engine-facing contract: one [`serve`] call per
//! reveal, exact costs in adjacent transpositions, arrangement feasible
//! afterwards. Two opt-in refinements ride on top:
//!
//! * [`wants_lazy_info`] — size-only [`MergeInfo`] snapshots for
//!   policies that decide without member lists (the merge hot path);
//! * [`BatchServe`](crate::BatchServe) — the decide / plan / apply
//!   split the batched parallel executor drives.
//!
//! [`serve`]: OnlineMinla::serve
//! [`wants_lazy_info`]: OnlineMinla::wants_lazy_info

use mla_graph::{GraphState, MergeInfo, RevealEvent};
use mla_permutation::Arrangement;

use crate::report::UpdateReport;

/// An online algorithm for the learning MinLA problem.
///
/// The simulation engine owns the graph state: it applies each reveal,
/// obtains the [`MergeInfo`] (pre-merge component snapshots), and hands
/// both to the algorithm. The algorithm owns only its arrangement — any
/// [`Arrangement`] backend, chosen at construction — and must return the
/// exact cost (in adjacent transpositions) of its update.
///
/// After [`OnlineMinla::serve`] returns, the algorithm's arrangement must
/// be a MinLA of `state` — the engine can verify this invariant.
///
/// The trait is object-safe per backend: the engine can store
/// `Box<dyn OnlineMinla<Arr = Permutation>>`.
pub trait OnlineMinla {
    /// The arrangement backend this algorithm runs on.
    type Arr: Arrangement;

    /// Short machine-readable name (e.g. `"rand-cliques"`).
    fn name(&self) -> &str;

    /// The algorithm's current arrangement.
    fn arrangement(&self) -> &Self::Arr;

    /// Serves one reveal. `info` snapshots the merging components as they
    /// were *before* the merge; `state` is the graph *after* it.
    ///
    /// When the algorithm opted into lazy snapshots (see
    /// [`wants_lazy_info`](OnlineMinla::wants_lazy_info)), `info` may
    /// carry no member lists — implementations must then resolve block
    /// ranges through
    /// [`Arrangement::locate_component`] and reconstruct members from
    /// `state` only where genuinely needed.
    ///
    /// Returns the exact update cost.
    fn serve(&mut self, event: RevealEvent, info: &MergeInfo, state: &GraphState) -> UpdateReport;

    /// Returns `true` if this algorithm can serve reveals from **lazy**
    /// [`MergeInfo`] snapshots — sizes, joined endpoints and orientation
    /// bits only, no member lists
    /// ([`SnapshotMode::Lazy`](mla_graph::SnapshotMode)).
    ///
    /// Size-based policies (the paper's size-biased move and cost-biased
    /// rearrange) only need component *sizes* to decide and an `O(log n)`
    /// block locate to act, so materializing an `O(len)` member list per
    /// reveal is pure overhead. The engine asks this once at start-up and
    /// switches the graph state to lazy snapshots when both the algorithm
    /// (here) and its arrangement backend
    /// ([`Arrangement::supports_component_locate`]) agree.
    ///
    /// Default `false`: eager member lists, always correct.
    fn wants_lazy_info(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_permutation::{Permutation, SegmentArrangement};

    struct Stub<P>(P);

    impl<P: Arrangement> OnlineMinla for Stub<P> {
        type Arr = P;
        fn name(&self) -> &str {
            "stub"
        }
        fn arrangement(&self) -> &P {
            &self.0
        }
        fn serve(&mut self, _: RevealEvent, _: &MergeInfo, _: &GraphState) -> UpdateReport {
            UpdateReport::default()
        }
    }

    #[test]
    fn trait_is_object_safe_per_backend() {
        let dense: Box<dyn OnlineMinla<Arr = Permutation>> =
            Box::new(Stub(Permutation::identity(3)));
        assert_eq!(dense.name(), "stub");
        assert_eq!(dense.arrangement().len(), 3);
        let segment: Box<dyn OnlineMinla<Arr = SegmentArrangement>> =
            Box::new(Stub(SegmentArrangement::identity(3)));
        assert_eq!(segment.arrangement().len(), 3);
    }
}
