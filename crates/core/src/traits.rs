//! The online algorithm interface.

use mla_graph::{GraphState, MergeInfo, RevealEvent};
use mla_permutation::Arrangement;

use crate::report::UpdateReport;

/// An online algorithm for the learning MinLA problem.
///
/// The simulation engine owns the graph state: it applies each reveal,
/// obtains the [`MergeInfo`] (pre-merge component snapshots), and hands
/// both to the algorithm. The algorithm owns only its arrangement — any
/// [`Arrangement`] backend, chosen at construction — and must return the
/// exact cost (in adjacent transpositions) of its update.
///
/// After [`OnlineMinla::serve`] returns, the algorithm's arrangement must
/// be a MinLA of `state` — the engine can verify this invariant.
///
/// The trait is object-safe per backend: the engine can store
/// `Box<dyn OnlineMinla<Arr = Permutation>>`.
pub trait OnlineMinla {
    /// The arrangement backend this algorithm runs on.
    type Arr: Arrangement;

    /// Short machine-readable name (e.g. `"rand-cliques"`).
    fn name(&self) -> &str;

    /// The algorithm's current arrangement.
    fn arrangement(&self) -> &Self::Arr;

    /// Serves one reveal. `info` snapshots the merging components as they
    /// were *before* the merge; `state` is the graph *after* it.
    ///
    /// Returns the exact update cost.
    fn serve(&mut self, event: RevealEvent, info: &MergeInfo, state: &GraphState) -> UpdateReport;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_permutation::{Permutation, SegmentArrangement};

    struct Stub<P>(P);

    impl<P: Arrangement> OnlineMinla for Stub<P> {
        type Arr = P;
        fn name(&self) -> &str {
            "stub"
        }
        fn arrangement(&self) -> &P {
            &self.0
        }
        fn serve(&mut self, _: RevealEvent, _: &MergeInfo, _: &GraphState) -> UpdateReport {
            UpdateReport::default()
        }
    }

    #[test]
    fn trait_is_object_safe_per_backend() {
        let dense: Box<dyn OnlineMinla<Arr = Permutation>> =
            Box::new(Stub(Permutation::identity(3)));
        assert_eq!(dense.name(), "stub");
        assert_eq!(dense.arrangement().len(), 3);
        let segment: Box<dyn OnlineMinla<Arr = SegmentArrangement>> =
            Box::new(Stub(SegmentArrangement::identity(3)));
        assert_eq!(segment.arrangement().len(), 3);
    }
}
