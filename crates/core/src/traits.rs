//! The online algorithm interface.

use mla_graph::{GraphState, MergeInfo, RevealEvent};
use mla_permutation::Permutation;

use crate::report::UpdateReport;

/// An online algorithm for the learning MinLA problem.
///
/// The simulation engine owns the graph state: it applies each reveal,
/// obtains the [`MergeInfo`] (pre-merge component snapshots), and hands
/// both to the algorithm. The algorithm owns only its permutation and must
/// return the exact cost (in adjacent transpositions) of its update.
///
/// After [`OnlineMinla::serve`] returns, the algorithm's permutation must
/// be a MinLA of `state` — the engine can verify this invariant.
///
/// The trait is object-safe: the engine stores `Box<dyn OnlineMinla>`.
pub trait OnlineMinla {
    /// Short machine-readable name (e.g. `"rand-cliques"`).
    fn name(&self) -> &str;

    /// The algorithm's current permutation.
    fn permutation(&self) -> &Permutation;

    /// Serves one reveal. `info` snapshots the merging components as they
    /// were *before* the merge; `state` is the graph *after* it.
    ///
    /// Returns the exact update cost.
    fn serve(&mut self, event: RevealEvent, info: &MergeInfo, state: &GraphState) -> UpdateReport;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Stub(Permutation);

    impl OnlineMinla for Stub {
        fn name(&self) -> &str {
            "stub"
        }
        fn permutation(&self) -> &Permutation {
            &self.0
        }
        fn serve(&mut self, _: RevealEvent, _: &MergeInfo, _: &GraphState) -> UpdateReport {
            UpdateReport::default()
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let stub: Box<dyn OnlineMinla> = Box::new(Stub(Permutation::identity(3)));
        assert_eq!(stub.name(), "stub");
        assert_eq!(stub.permutation().len(), 3);
    }
}
