//! The deterministic algorithm `Det` (Section 2 of the paper).

use mla_graph::{GraphState, MergeInfo, RevealEvent};
use mla_offline::{closest_feasible, LopConfig};
use mla_permutation::{Arrangement, Permutation};

use crate::report::UpdateReport;
use crate::traits::OnlineMinla;

/// `Det`: upon each reveal, move to a MinLA of `G_i` that minimizes the
/// Kendall tau distance **to the initial permutation `π0`** (not to the
/// current one).
///
/// Theorem 1: `(2n−2)`-competitive for cliques and lines. Theorem 16: any
/// algorithm of this family is `Ω(n)`-competitive, so the analysis is
/// tight.
///
/// Finding the closest feasible permutation is NP-hard in general (see
/// `mla-offline`), so `Det` delegates to the configured solver: exact for
/// few multi-node components, heuristic beyond. The experiments that probe
/// `Det`'s competitive ratio (E-T1, E-T16) use instances where the exact
/// solver applies, so the implemented behavior *is* the analyzed family.
///
/// # Examples
///
/// ```
/// use mla_core::{DetClosest, OnlineMinla};
/// use mla_graph::{GraphState, RevealEvent, Topology};
/// use mla_offline::LopConfig;
/// use mla_permutation::{Node, Permutation};
///
/// let pi0 = Permutation::identity(4);
/// let mut alg = DetClosest::new(pi0, LopConfig::default());
/// let mut graph = GraphState::new(Topology::Cliques, 4);
/// let event = RevealEvent::new(Node::new(0), Node::new(2));
/// let info = graph.apply(event).unwrap();
/// let report = alg.serve(event, &info, &graph);
/// assert_eq!(report.total(), 1); // [0,2,1,3] is one swap from identity
/// assert!(graph.is_minla(alg.arrangement()));
/// ```
#[derive(Debug)]
pub struct DetClosest<P = Permutation> {
    pi0: Permutation,
    perm: P,
    config: LopConfig,
    /// Whether every solve so far used the exact solver.
    all_exact: bool,
}

impl DetClosest<Permutation> {
    /// Creates `Det` starting (and anchored) at `pi0`, on the dense
    /// backend.
    #[must_use]
    pub fn new(pi0: Permutation, config: LopConfig) -> Self {
        DetClosest {
            perm: pi0.clone(),
            pi0,
            config,
            all_exact: true,
        }
    }
}

impl<P: Arrangement> DetClosest<P> {
    /// Creates `Det` anchored at the dense snapshot of `initial`, running
    /// on any backend. (`Det` jumps to solver outputs wholesale, so the
    /// dense backend is the natural fit; the generic constructor exists
    /// for backend-equivalence testing.)
    #[must_use]
    pub fn with_backend(initial: P, config: LopConfig) -> Self {
        DetClosest {
            pi0: initial.to_permutation(),
            perm: initial,
            config,
            all_exact: true,
        }
    }

    /// `true` while every update so far was solved exactly, i.e. the run
    /// faithfully implements the analyzed family.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.all_exact
    }

    /// The anchor permutation `π0`.
    #[must_use]
    pub fn initial(&self) -> &Permutation {
        &self.pi0
    }
}

impl<P: Arrangement> crate::snapshot::PolicyState for DetClosest<P> {
    fn encode_state_into(&self, out: &mut Vec<u8>) {
        // The anchor is construction-time for a fresh run but *state* for
        // a restore: `with_backend` anchors at the decoded arrangement's
        // current order, which is not the original π0 mid-run.
        self.pi0.encode_into(out);
        mla_permutation::codec::put_bool(out, self.all_exact);
    }

    fn restore_state(
        &mut self,
        r: &mut mla_permutation::codec::ByteReader<'_>,
    ) -> Result<(), mla_permutation::codec::CodecError> {
        self.pi0 = Permutation::decode_from(r)?;
        self.all_exact = r.bool("det-closest all_exact")?;
        Ok(())
    }
}

impl<P: Arrangement> OnlineMinla for DetClosest<P> {
    type Arr = P;

    fn name(&self) -> &str {
        "det-closest"
    }

    fn arrangement(&self) -> &P {
        &self.perm
    }

    fn serve(
        &mut self,
        _event: RevealEvent,
        _info: &MergeInfo,
        state: &GraphState,
    ) -> UpdateReport {
        let placement = closest_feasible(state, &self.pi0, &self.config)
            // mla-lint: allow(panic-safety): the engine validates sizes up front and the Auto strategy always yields a placement
            .expect("engine guarantees matching sizes; Auto strategy cannot fail");
        self.all_exact &= placement.exact;
        let cost = self.perm.assign(&placement.perm);
        UpdateReport::moving(cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_graph::Topology;
    use mla_permutation::Node;

    fn ev(a: usize, b: usize) -> RevealEvent {
        RevealEvent::new(Node::new(a), Node::new(b))
    }

    #[test]
    fn det_stays_close_to_pi0() {
        let pi0 = Permutation::identity(6);
        let mut alg = DetClosest::new(pi0.clone(), LopConfig::default());
        let mut graph = GraphState::new(Topology::Cliques, 6);
        let mut total = 0u64;
        for event in [ev(0, 5), ev(1, 4)] {
            let info = graph.apply(event).unwrap();
            total += alg.serve(event, &info, &graph).total();
            assert!(graph.is_minla(alg.arrangement()));
        }
        assert!(alg.is_exact());
        assert!(total > 0);
        // Det's current permutation distance to pi0 never exceeds the
        // distance of the final closest feasible permutation (which here we
        // bound loosely by C(6,2)).
        assert!(pi0.kendall_distance(alg.arrangement()) <= 15);
    }

    #[test]
    fn det_on_lines_respects_orientation_feasibility() {
        let pi0 = Permutation::from_indices(&[5, 3, 1, 0, 2, 4]).unwrap();
        let mut alg = DetClosest::new(pi0, LopConfig::default());
        let mut graph = GraphState::new(Topology::Lines, 6);
        for event in [ev(0, 1), ev(1, 2), ev(3, 4)] {
            let info = graph.apply(event).unwrap();
            alg.serve(event, &info, &graph);
            assert!(graph.is_minla(alg.arrangement()));
        }
    }

    #[test]
    fn det_alternation_on_middle_node_instance() {
        // The Theorem 16 phenomenon in miniature: grow a line around the
        // middle node x = 2 of pi0 = [0,1,2,3,4]. Det keeps flipping x from
        // one side of the component to the other.
        let pi0 = Permutation::identity(5);
        let mut alg = DetClosest::new(pi0, LopConfig::default());
        let mut graph = GraphState::new(Topology::Lines, 5);
        // Request y1=1, y2=3 (x's neighbors): component {1,3}.
        let info = graph.apply(ev(1, 3)).unwrap();
        alg.serve(ev(1, 3), &info, &graph);
        let mut costs = Vec::new();
        // Grow with 0 then 4, attaching to component endpoints.
        for event in [ev(0, 1), ev(4, 3)] {
            let info = graph.apply(event).unwrap();
            costs.push(alg.serve(event, &info, &graph).total());
            assert!(graph.is_minla(alg.arrangement()));
        }
        // All updates must keep node 2 outside the growing component's
        // range yet Det pays to reshuffle.
        assert!(costs.iter().any(|&c| c > 0));
    }

    #[test]
    fn serve_cost_is_distance_traveled() {
        let pi0 = Permutation::from_indices(&[2, 0, 3, 1]).unwrap();
        let mut alg = DetClosest::new(pi0, LopConfig::default());
        let mut graph = GraphState::new(Topology::Cliques, 4);
        for event in [ev(0, 1), ev(2, 3)] {
            let before = alg.arrangement().clone();
            let info = graph.apply(event).unwrap();
            let report = alg.serve(event, &info, &graph);
            assert_eq!(report.total(), before.kendall_distance(alg.arrangement()));
        }
    }
}
