//! Replay of a precomputed offline trajectory.

use mla_graph::{GraphState, MergeInfo, RevealEvent};
use mla_permutation::{Arrangement, Permutation};

use crate::report::UpdateReport;
use crate::traits::OnlineMinla;

/// Replays the canonical offline strategy: jump to a precomputed target
/// permutation on the **first** reveal and never move again.
///
/// Used to verify empirically that offline upper bounds are *achievable*:
/// run `OptReplay` with the upper-bound permutation from
/// [`offline_optimum`](mla_offline::offline_optimum) through the engine
/// with feasibility checking on — the run passes iff the target is feasible
/// at every step, and its measured cost is exactly `d(π0, target)`.
///
/// # Examples
///
/// ```
/// use mla_core::{OnlineMinla, OptReplay};
/// use mla_graph::{GraphState, RevealEvent, Topology};
/// use mla_permutation::{Node, Permutation};
///
/// let pi0 = Permutation::identity(3);
/// let target = Permutation::from_indices(&[0, 2, 1]).unwrap();
/// let mut alg = OptReplay::new(pi0, target);
/// let mut graph = GraphState::new(Topology::Cliques, 3);
/// let event = RevealEvent::new(Node::new(0), Node::new(2));
/// let info = graph.apply(event).unwrap();
/// assert_eq!(alg.serve(event, &info, &graph).total(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct OptReplay<P = Permutation> {
    perm: P,
    target: Permutation,
    jumped: bool,
}

impl<P: Arrangement> OptReplay<P> {
    /// Creates a replayer that starts at `pi0` and jumps to `target` on the
    /// first reveal.
    #[must_use]
    pub fn new(pi0: P, target: Permutation) -> Self {
        OptReplay {
            perm: pi0,
            target,
            jumped: false,
        }
    }

    /// The target permutation.
    #[must_use]
    pub fn target(&self) -> &Permutation {
        &self.target
    }
}

impl<P: Arrangement> crate::snapshot::PolicyState for OptReplay<P> {
    fn encode_state_into(&self, out: &mut Vec<u8>) {
        self.target.encode_into(out);
        mla_permutation::codec::put_bool(out, self.jumped);
    }

    fn restore_state(
        &mut self,
        r: &mut mla_permutation::codec::ByteReader<'_>,
    ) -> Result<(), mla_permutation::codec::CodecError> {
        self.target = Permutation::decode_from(r)?;
        self.jumped = r.bool("opt-replay jumped")?;
        Ok(())
    }
}

impl<P: Arrangement> OnlineMinla for OptReplay<P> {
    type Arr = P;

    fn name(&self) -> &str {
        "opt-replay"
    }

    fn arrangement(&self) -> &P {
        &self.perm
    }

    fn serve(
        &mut self,
        _event: RevealEvent,
        _info: &MergeInfo,
        _state: &GraphState,
    ) -> UpdateReport {
        if self.jumped {
            return UpdateReport::default();
        }
        self.jumped = true;
        let cost = self.perm.assign(&self.target);
        UpdateReport::moving(cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_graph::Topology;
    use mla_permutation::Node;

    #[test]
    fn jumps_once_then_stays() {
        let pi0 = Permutation::identity(4);
        let target = Permutation::from_indices(&[1, 0, 3, 2]).unwrap();
        let mut alg = OptReplay::new(pi0, target.clone());
        let mut graph = GraphState::new(Topology::Cliques, 4);

        let e1 = RevealEvent::new(Node::new(0), Node::new(1));
        let info = graph.apply(e1).unwrap();
        assert_eq!(alg.serve(e1, &info, &graph).total(), 2);
        assert_eq!(alg.arrangement(), &target);

        let e2 = RevealEvent::new(Node::new(2), Node::new(3));
        let info = graph.apply(e2).unwrap();
        assert_eq!(alg.serve(e2, &info, &graph).total(), 0);
        assert_eq!(alg.arrangement(), &target);
        assert_eq!(alg.target(), &target);
    }
}
