//! The decide / plan / apply decomposition behind batched serving.
//!
//! A sequential [`OnlineMinla::serve`] interleaves three concerns:
//! drawing randomness, locating the merging blocks and pricing the
//! update, and mutating the arrangement. The engine's parallel serving
//! path needs them apart, because each runs in a different phase of the
//! batch pipeline:
//!
//! 1. **locate** ([`MergeLayout::locate`]) — pure `&Arrangement` reads,
//!    performed for a whole window of reveals from worker threads;
//! 2. **decide** ([`BatchServe::decide`]) — draws the merge's random
//!    choices from the algorithm's RNG, strictly in reveal order (this is
//!    what keeps batched runs bit-identical to sequential ones);
//! 3. **plan** ([`BatchServe::build_plan`]) — a pure function from
//!    snapshot + layout + decision to a priced [`MergePlan`], callable
//!    from worker threads (it never touches the arrangement);
//! 4. **apply** ([`BatchServe::apply_plan`]) — executes the plan as one
//!    [`merge_move`](mla_permutation::Arrangement::merge_move), in reveal
//!    order.
//!
//! The sequential `serve` of [`RandCliques`](crate::RandCliques) and
//! [`RandLines`](crate::RandLines) is implemented *through* this
//! decomposition, so there is exactly one copy of the update logic and
//! "batched ≡ sequential" holds by construction for the parts that do not
//! depend on scheduling.

use std::ops::Range;

use mla_graph::MergeInfo;
use mla_permutation::{Arrangement, Node};

use crate::mechanics::{rearrange_choices_pure, BlockLayout, Orientation, RearrangeChoices};
use crate::report::UpdateReport;
use crate::traits::OnlineMinla;

/// Where the two merging components sit in the arrangement, plus their
/// reading orientations — everything one oriented locate produces,
/// captured so later phases never re-read the arrangement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeLayout {
    /// Positions of the `X` and `Z` blocks.
    pub layout: BlockLayout,
    /// Orientation of the `X` block relative to its snapshot order.
    pub x_orientation: Orientation,
    /// Orientation of the `Z` block relative to its snapshot order.
    pub z_orientation: Orientation,
}

impl MergeLayout {
    /// Locates both components of `info` in `arr` (one oriented locate).
    ///
    /// Read-only: safe to call concurrently from worker threads for
    /// merges whose spans are pairwise disjoint — or for any set of
    /// merges, since reads never change the arrangement.
    ///
    /// # Panics
    ///
    /// Panics if a component is not contiguous (a feasibility violation
    /// predating this merge).
    #[must_use]
    pub fn locate<P: Arrangement + ?Sized>(arr: &P, info: &MergeInfo) -> Self {
        if info.x.is_lazy() || info.z.is_lazy() {
            return Self::locate_lazy(arr, info);
        }
        let (layout, x_orientation, z_orientation) =
            BlockLayout::locate_oriented(arr, &info.x, &info.z);
        MergeLayout {
            layout,
            x_orientation,
            z_orientation,
        }
    }

    /// The `O(log n)` locate for lazy snapshots: each component resolves
    /// through the backend's slot-based
    /// [`locate_component`](Arrangement::locate_component) — no member
    /// walk — and its orientation falls out of where the anchor (the
    /// joined endpoint) landed inside the block.
    ///
    /// Sound because the engine only enables lazy snapshots for algorithm
    /// runs, where every component is kept a single coalesced block, so
    /// the slot lookup is exact. Debug builds cross-check against the
    /// full member walk via the snapshots' shadow lists.
    ///
    /// # Panics
    ///
    /// Panics if a component fails to resolve as a single block — the
    /// lazy-mode equivalent of the feasibility-invariant panic in
    /// [`BlockLayout::locate`].
    fn locate_lazy<P: Arrangement + ?Sized>(arr: &P, info: &MergeInfo) -> Self {
        let resolve = |snapshot: &mla_graph::ComponentSnapshot| {
            let (range, anchor_pos) = arr
                .locate_component(snapshot.joined(), snapshot.len())
                // mla-lint: allow(panic-safety): trusted O(log n) locate; a miss means the feasibility/coalesce contract is already broken, and the debug shadow walk below cross-checks every hit
                .expect(
                    "lazy locate missed: component is not a single block \
                     (feasibility invariant or coalesce contract broken)",
                );
            let forward = snapshot.len() <= 1
                || if snapshot.joined_at_end() {
                    anchor_pos == range.end - 1
                } else {
                    anchor_pos == range.start
                };
            #[cfg(debug_assertions)]
            if let Some(nodes) = snapshot.shadow_nodes() {
                let (walked_range, walked_forward) = arr
                    .oriented_contiguous_range(nodes)
                    // mla-lint: allow(panic-safety): debug-only shadow walk; a non-contiguous component here is the cross-check itself failing
                    .expect("shadow member walk must agree that the component is contiguous");
                debug_assert_eq!(
                    range, walked_range,
                    "slot locate disagrees with member walk"
                );
                debug_assert_eq!(
                    forward, walked_forward,
                    "anchor orientation disagrees with member walk"
                );
            }
            let orientation = if forward {
                Orientation::Forward
            } else {
                Orientation::Reversed
            };
            (range, orientation)
        };
        let (x_range, x_orientation) = resolve(&info.x);
        let (z_range, z_orientation) = resolve(&info.z);
        MergeLayout {
            layout: BlockLayout { x_range, z_range },
            x_orientation,
            z_orientation,
        }
    }

    /// The half-open hull of positions this merge's update can touch: the
    /// update moves one block to the other over the gap between them, so
    /// every mutation stays inside `[min start, max end)`. Two merges
    /// whose spans are disjoint therefore commute — the conflict relation
    /// the batch planner is built on.
    #[must_use]
    pub fn span(&self) -> Range<usize> {
        let start = self.layout.x_range.start.min(self.layout.z_range.start);
        let end = self.layout.x_range.end.max(self.layout.z_range.end);
        start..end
    }

    /// The two rearranging options for this layout (lines), in closed
    /// form from sizes, sides and orientations.
    #[must_use]
    pub fn choices(&self, info: &MergeInfo) -> RearrangeChoices {
        rearrange_choices_pure(
            info.x.len(),
            info.z.len(),
            self.layout.x_is_left(),
            self.x_orientation,
            self.z_orientation,
        )
    }
}

/// The random choices of one merge update, drawn in reveal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeDecision {
    /// Whether `X` is the moving block.
    pub x_moves: bool,
    /// Lines only: whether the merged path should read forward
    /// (`x.nodes ++ z.nodes`). Always `true` for cliques, which have no
    /// rearranging part.
    pub forward: bool,
}

/// A fully decided and priced merge update, ready to execute as one
/// [`merge_move`](mla_permutation::Arrangement::merge_move).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergePlan {
    /// The block that travels over the gap.
    pub mover: Range<usize>,
    /// The block that stays put.
    pub stayer: Range<usize>,
    /// The merged block's final content (position order), when the
    /// rearranging part changes it; `None` for order-preserving merges.
    pub target: Option<Vec<Node>>,
    /// The exact update cost, priced in closed form at planning time.
    pub report: UpdateReport,
}

/// Online algorithms whose `serve` decomposes into decide / plan / apply,
/// making them eligible for the engine's batched parallel serving.
///
/// The contract: for every reveal,
/// `apply_plan(build_plan(info, locate(arr, info), decide(info, layout)))`
/// must be observably identical to `serve(event, info, state)` — same RNG
/// draws in the same order, same arrangement mutations, same reported
/// cost. `RandCliques` and `RandLines` implement `serve` through exactly
/// this pipeline.
pub trait BatchServe: OnlineMinla {
    /// Draws this merge's random choices. Called strictly in reveal
    /// order, whether the run is sequential or batched — the RNG stream
    /// is part of the determinism contract.
    fn decide(&mut self, info: &MergeInfo, layout: &MergeLayout) -> MergeDecision;

    /// Pure plan construction: no `self`, no arrangement access — safe on
    /// worker threads.
    fn build_plan(info: &MergeInfo, layout: &MergeLayout, decision: MergeDecision) -> MergePlan;

    /// Mutable access to the arrangement, for [`BatchServe::apply_plan`].
    fn arrangement_mut(&mut self) -> &mut Self::Arr;

    /// Executes a plan as a single backend `merge_move`. The returned
    /// report is the plan's closed-form price; debug builds verify the
    /// backend charged exactly that.
    fn apply_plan(&mut self, plan: MergePlan) -> UpdateReport {
        let moving_cost =
            self.arrangement_mut()
                .merge_move(plan.mover, plan.stayer, plan.target.as_deref());
        debug_assert_eq!(moving_cost, plan.report.moving_cost);
        plan.report
    }
}

/// Fills `content` with the merged path's target content for the chosen
/// orientation: `x.nodes ++ z.nodes` forward, or
/// `reverse(z.nodes) ++ reverse(x.nodes)`. Shared by `RandLines`'
/// batched plan construction (fresh buffer per plan — plans cross
/// threads) and its sequential `serve` (reused scratch buffer).
pub(crate) fn fill_line_target(content: &mut Vec<Node>, info: &MergeInfo, forward: bool) {
    content.clear();
    content.reserve(info.merged_len());
    if forward {
        content.extend(info.x.nodes().iter().copied());
        content.extend(info.z.nodes().iter().copied());
    } else {
        content.extend(info.z.nodes().iter().rev().copied());
        content.extend(info.x.nodes().iter().rev().copied());
    }
}

/// Shared plan construction: mover/stayer split plus the moving part's
/// closed-form price `|mover| × gap`; the caller supplies the rearranging
/// part (lines) or none (cliques).
pub(crate) fn plan_move(
    layout: &MergeLayout,
    x_moves: bool,
    target: Option<Vec<Node>>,
    rearranging_cost: u64,
) -> MergePlan {
    let gap = layout.layout.gap() as u64;
    let (mover, stayer) = if x_moves {
        (layout.layout.x_range.clone(), layout.layout.z_range.clone())
    } else {
        (layout.layout.z_range.clone(), layout.layout.x_range.clone())
    };
    let report = UpdateReport {
        moving_cost: mover.len() as u64 * gap,
        rearranging_cost,
    };
    MergePlan {
        mover,
        stayer,
        target,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RandCliques, RandLines};
    use mla_graph::{GraphState, RevealEvent, Topology};
    use mla_permutation::{Permutation, SegmentArrangement};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ev(a: usize, b: usize) -> RevealEvent {
        RevealEvent::new(Node::new(a), Node::new(b))
    }

    /// Drives one algorithm with `serve` and an identically seeded twin
    /// through the decide / plan / apply pipeline; both must agree on
    /// every report and on the final arrangement.
    fn check_decomposition<A, F>(topology: Topology, n: usize, make: F)
    where
        A: BatchServe,
        F: Fn() -> A,
    {
        let mut served_state = GraphState::new(topology, n);
        let mut planned_state = GraphState::new(topology, n);
        let mut serve_alg = make();
        let mut plan_alg = make();
        // A chain keeps both topologies valid and exercises non-trivial
        // gaps, orientations and rearrangements.
        for i in 1..n {
            let event = ev(i - 1, i);
            let info = served_state.apply(event).unwrap();
            let a = serve_alg.serve(event, &info, &served_state);
            let info = planned_state.apply(event).unwrap();
            let layout = MergeLayout::locate(plan_alg.arrangement(), &info);
            let decision = plan_alg.decide(&info, &layout);
            let plan = A::build_plan(&info, &layout, decision);
            let b = plan_alg.apply_plan(plan);
            assert_eq!(a, b, "{topology:?} step {i}");
            assert!(planned_state.is_minla(plan_alg.arrangement()));
        }
        assert_eq!(
            serve_alg.arrangement().to_permutation(),
            plan_alg.arrangement().to_permutation()
        );
    }

    /// The decomposed pipeline must reproduce `serve` exactly, RNG stream
    /// included, on both topologies and backends. Random starting
    /// arrangements make the gaps, orientations and rearrangements
    /// non-trivial.
    #[test]
    fn decomposition_matches_serve() {
        for seed in 0..5 {
            let pi0 = Permutation::random(16, &mut SmallRng::seed_from_u64(seed));
            check_decomposition(Topology::Cliques, 16, || {
                RandCliques::new(
                    SegmentArrangement::from_permutation(&pi0),
                    SmallRng::seed_from_u64(11 + seed),
                )
            });
            check_decomposition(Topology::Cliques, 16, || {
                RandCliques::new(pi0.clone(), SmallRng::seed_from_u64(11 + seed))
            });
            check_decomposition(Topology::Lines, 16, || {
                RandLines::new(
                    SegmentArrangement::from_permutation(&pi0),
                    SmallRng::seed_from_u64(11 + seed),
                )
            });
            check_decomposition(Topology::Lines, 16, || {
                RandLines::new(pi0.clone(), SmallRng::seed_from_u64(11 + seed))
            });
        }
    }

    #[test]
    fn span_is_the_hull_of_both_blocks() {
        let mut state = GraphState::new(Topology::Cliques, 8);
        let info = state.apply(ev(1, 6)).unwrap();
        let arr = Permutation::identity(8);
        let layout = MergeLayout::locate(&arr, &info);
        assert_eq!(layout.span(), 1..7);
    }
}
