//! # `mla-core`
//!
//! The paper's primary contribution: online algorithms for the learning
//! Minimum Linear Arrangement problem on collections of cliques and lines
//! (*Learning Minimum Linear Arrangement of Cliques and Lines*, ICDCS
//! 2024).
//!
//! | Algorithm | Paper | Guarantee |
//! |-----------|-------|-----------|
//! | [`RandCliques`] | Section 3, Figure 1 | `4 ln n`-competitive (Theorem 2) |
//! | [`RandLines`] | Section 4, Figure 2 | `8 ln n`-competitive (Theorem 8) |
//! | [`DetClosest`] | Section 2 | `(2n−2)`-competitive (Theorem 1), tight (Theorem 16) |
//! | [`OptReplay`] | Observation 7 | replays an offline trajectory |
//!
//! Ablation baselines are provided through [`MovePolicy`] and
//! [`RearrangePolicy`]: a fair coin instead of the size-biased /
//! cost-biased coins, and the deterministic smaller-moves / cheapest-move
//! rules from the self-adjusting networks literature.
//!
//! All algorithms implement [`OnlineMinla`]: the simulation engine applies
//! each reveal to the graph state and passes the pre-merge component
//! snapshots to the algorithm, which updates its arrangement and returns
//! the exact cost in adjacent transpositions.
//!
//! The randomized algorithms additionally implement [`BatchServe`] — the
//! decide / plan / apply decomposition of `serve` (module [`batch`]) that
//! the engine's batched parallel executor schedules across worker
//! threads: RNG draws stay in reveal order, plan construction is pure,
//! and span-disjoint merge updates commute, so batched runs are
//! bit-identical to sequential ones.
//!
//! Every algorithm is generic over the
//! [`Arrangement`](mla_permutation::Arrangement) backend: the dense
//! [`Permutation`](mla_permutation::Permutation) (the default type
//! parameter — `O(n)` block splices) or the
//! [`SegmentArrangement`](mla_permutation::SegmentArrangement)
//! (`O(log n)` splices, the large-`n` workhorse). Both backends produce
//! bit-identical permutations and costs — see the equivalence tests.
//!
//! # Examples
//!
//! ```
//! use mla_core::{OnlineMinla, RandCliques};
//! use mla_graph::{GraphState, RevealEvent, Topology};
//! use mla_permutation::{Node, Permutation};
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! let mut graph = GraphState::new(Topology::Cliques, 8);
//! let mut alg = RandCliques::new(Permutation::identity(8), SmallRng::seed_from_u64(42));
//! let mut total = 0;
//! for (a, b) in [(0, 4), (1, 5), (4, 5)] {
//!     let event = RevealEvent::new(Node::new(a), Node::new(b));
//!     let info = graph.apply(event).unwrap();
//!     total += alg.serve(event, &info, &graph).total();
//!     assert!(graph.is_minla(alg.arrangement()));
//! }
//! assert!(total > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
mod det;
pub mod mechanics;
mod opt_replay;
mod policies;
mod rand_cliques;
mod rand_lines;
mod report;
mod snapshot;
mod traits;

pub use batch::{BatchServe, MergeDecision, MergeLayout, MergePlan};
pub use det::DetClosest;
pub use opt_replay::OptReplay;
pub use policies::{MovePolicy, RearrangePolicy};
pub use rand_cliques::RandCliques;
pub use rand_lines::RandLines;
pub use report::UpdateReport;
pub use snapshot::PolicyState;
pub use traits::OnlineMinla;
