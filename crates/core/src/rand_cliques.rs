//! The paper's randomized algorithm for collections of cliques
//! (Section 3) and its policy ablations.

use mla_graph::{GraphState, MergeInfo, RevealEvent, Topology};
use mla_permutation::{Arrangement, Permutation};
use rand::Rng;

use crate::batch::{plan_move, BatchServe, MergeDecision, MergeLayout, MergePlan};
use crate::policies::MovePolicy;
use crate::report::UpdateReport;
use crate::traits::OnlineMinla;

/// `Rand` for cliques: when cliques `X` and `Z` merge, move `X` toward `Z`
/// with probability `|Z| / (|X| + |Z|)`, else move `Z` toward `X`
/// (Figure 1). The permutation keeps every clique contiguous, so it remains
/// a MinLA of every revealed graph.
///
/// Theorem 2 of the paper: this algorithm is `4 ln n`-competitive against
/// the oblivious adversary. [`MovePolicy`] ablations (fair coin,
/// deterministic smaller-moves) are provided for the ablation experiments.
///
/// Generic over the [`Arrangement`] backend: construct with a dense
/// [`Permutation`] for small `n`, or a
/// [`SegmentArrangement`](mla_permutation::SegmentArrangement) to serve
/// each merge in `O(log n)` splices at large `n`.
///
/// # Examples
///
/// ```
/// use mla_core::{OnlineMinla, RandCliques};
/// use mla_graph::{GraphState, RevealEvent, Topology};
/// use mla_permutation::{Node, Permutation};
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut alg = RandCliques::new(Permutation::identity(4), SmallRng::seed_from_u64(1));
/// let mut graph = GraphState::new(Topology::Cliques, 4);
/// let event = RevealEvent::new(Node::new(0), Node::new(3));
/// let info = graph.apply(event).unwrap();
/// let report = alg.serve(event, &info, &graph);
/// assert_eq!(report.total(), 2); // a singleton crossed the gap {1, 2}
/// assert!(graph.is_minla(alg.arrangement()));
/// ```
#[derive(Debug)]
pub struct RandCliques<R, P = Permutation> {
    perm: P,
    rng: R,
    policy: MovePolicy,
    name: &'static str,
}

impl<R: Rng, P: Arrangement> RandCliques<R, P> {
    /// The paper's algorithm: size-biased coin.
    #[must_use]
    pub fn new(initial: P, rng: R) -> Self {
        Self::with_policy(initial, rng, MovePolicy::SizeBiased)
    }

    /// An ablation variant with an explicit move policy.
    #[must_use]
    pub fn with_policy(initial: P, rng: R, policy: MovePolicy) -> Self {
        let name = match policy {
            MovePolicy::SizeBiased => "rand-cliques",
            MovePolicy::Fair => "fair-cliques",
            MovePolicy::SmallerMoves => "smaller-moves-cliques",
        };
        RandCliques {
            perm: initial,
            rng,
            policy,
            name,
        }
    }

    /// The configured move policy.
    #[must_use]
    pub fn policy(&self) -> MovePolicy {
        self.policy
    }
}

/// Decides whether `X` moves under the given policy.
pub(crate) fn x_moves<R: Rng>(
    rng: &mut R,
    policy: MovePolicy,
    x_size: usize,
    z_size: usize,
) -> bool {
    match policy {
        MovePolicy::SizeBiased => {
            // P[X moves] = |Z| / (|X| + |Z|).
            rng.gen_range(0..x_size + z_size) < z_size
        }
        MovePolicy::Fair => rng.gen_bool(0.5),
        MovePolicy::SmallerMoves => x_size <= z_size,
    }
}

impl<R: Rng, P: Arrangement> OnlineMinla for RandCliques<R, P> {
    type Arr = P;

    fn name(&self) -> &str {
        self.name
    }

    fn arrangement(&self) -> &P {
        &self.perm
    }

    fn serve(&mut self, _event: RevealEvent, info: &MergeInfo, state: &GraphState) -> UpdateReport {
        debug_assert_eq!(state.topology(), Topology::Cliques);
        // One locate, then the whole update — move + coalesce — as a
        // single backend operation, via the shared decide / plan / apply
        // decomposition (the batched engine runs the same three calls in
        // separate pipeline phases).
        let layout = MergeLayout::locate(&self.perm, info);
        let decision = self.decide(info, &layout);
        let plan = Self::build_plan(info, &layout, decision);
        self.apply_plan(plan)
    }

    fn wants_lazy_info(&self) -> bool {
        // Every policy decides from component sizes alone and the update
        // is a pure block move: member lists are never read, so lazy
        // snapshots plus the slot-based locate serve each merge in
        // `O(log n)` with no `O(len)` materialization.
        true
    }
}

impl<P: Arrangement> crate::snapshot::PolicyState for RandCliques<rand::rngs::SmallRng, P> {
    fn encode_state_into(&self, out: &mut Vec<u8>) {
        crate::snapshot::put_rng_state(out, self.rng.to_state());
    }

    fn restore_state(
        &mut self,
        r: &mut mla_permutation::codec::ByteReader<'_>,
    ) -> Result<(), mla_permutation::codec::CodecError> {
        self.rng = rand::rngs::SmallRng::from_state(crate::snapshot::read_rng_state(r)?);
        Ok(())
    }
}

impl<R: Rng, P: Arrangement> BatchServe for RandCliques<R, P> {
    fn decide(&mut self, info: &MergeInfo, _layout: &MergeLayout) -> MergeDecision {
        MergeDecision {
            x_moves: x_moves(&mut self.rng, self.policy, info.x.len(), info.z.len()),
            forward: true,
        }
    }

    fn build_plan(_info: &MergeInfo, layout: &MergeLayout, decision: MergeDecision) -> MergePlan {
        // Cliques have no rearranging part: any contiguous layout of a
        // clique is a MinLA, so the update is the moving part alone.
        plan_move(layout, decision.x_moves, None, 0)
    }

    fn arrangement_mut(&mut self) -> &mut P {
        &mut self.perm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_permutation::Node;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn run_one_merge(policy: MovePolicy, seed: u64) -> (Permutation, u64) {
        // X = {0,1} at positions 0..2, Z = {5} at position 5, gap 3.
        let pi0 = Permutation::identity(6);
        let mut graph = GraphState::new(Topology::Cliques, 6);
        graph
            .apply(RevealEvent::new(Node::new(0), Node::new(1)))
            .unwrap();
        let mut alg = RandCliques::with_policy(pi0, SmallRng::seed_from_u64(seed), policy);
        // First serve the {0,1} merge (gap 0, free).
        let mut replay = GraphState::new(Topology::Cliques, 6);
        let info = replay
            .apply(RevealEvent::new(Node::new(0), Node::new(1)))
            .unwrap();
        let report = alg.serve(RevealEvent::new(Node::new(0), Node::new(1)), &info, &replay);
        assert_eq!(report.total(), 0);
        // Now merge {0,1} with {5}.
        let event = RevealEvent::new(Node::new(0), Node::new(5));
        let info = replay.apply(event).unwrap();
        let report = alg.serve(event, &info, &replay);
        (alg.arrangement().clone(), report.total())
    }

    #[test]
    fn smaller_moves_is_deterministic() {
        // |X| = 2 > |Z| = 1 → Z moves: cost |Z| * gap = 1 * 3 = 3.
        for seed in 0..5 {
            let (perm, cost) = run_one_merge(MovePolicy::SmallerMoves, seed);
            assert_eq!(cost, 3);
            assert_eq!(perm.to_index_vec(), vec![0, 1, 5, 2, 3, 4]);
        }
    }

    #[test]
    fn size_biased_move_costs_match_choice() {
        // Either X moves (cost 2*3=6) or Z moves (cost 1*3=3).
        let mut seen = std::collections::HashSet::new();
        for seed in 0..50 {
            let (_, cost) = run_one_merge(MovePolicy::SizeBiased, seed);
            assert!(cost == 6 || cost == 3, "unexpected cost {cost}");
            seen.insert(cost);
        }
        assert_eq!(seen.len(), 2, "both outcomes should occur over 50 seeds");
    }

    #[test]
    fn size_biased_frequency_is_correct() {
        // P[X moves] = |Z|/(|X|+|Z|) = 1/3 here. Count over many seeds.
        let trials = 3000;
        let mut x_moved = 0u32;
        for seed in 0..trials {
            let (_, cost) = run_one_merge(MovePolicy::SizeBiased, seed as u64);
            if cost == 6 {
                x_moved += 1;
            }
        }
        let frequency = f64::from(x_moved) / f64::from(trials);
        assert!(
            (frequency - 1.0 / 3.0).abs() < 0.04,
            "P[X moves] ≈ 1/3, measured {frequency}"
        );
    }

    #[test]
    fn cost_equals_kendall_delta_across_random_runs() {
        let mut rng = SmallRng::seed_from_u64(77);
        use rand::Rng as _;
        for _ in 0..20 {
            let n = 12;
            let pi0 = Permutation::random(n, &mut rng);
            let mut graph = GraphState::new(Topology::Cliques, n);
            let mut alg = RandCliques::new(pi0, SmallRng::seed_from_u64(rng.gen()));
            while graph.component_count() > 1 {
                let components = graph.components();
                let i = rng.gen_range(0..components.len());
                let mut j = rng.gen_range(0..components.len());
                while j == i {
                    j = rng.gen_range(0..components.len());
                }
                let event = RevealEvent::new(components[i][0], components[j][0]);
                let before = alg.arrangement().clone();
                let info = graph.apply(event).unwrap();
                let report = alg.serve(event, &info, &graph);
                assert_eq!(
                    report.total(),
                    before.kendall_distance(alg.arrangement()),
                    "reported cost must equal distance traveled"
                );
                assert!(graph.is_minla(alg.arrangement()), "feasibility invariant");
            }
        }
    }

    #[test]
    fn names_reflect_policy() {
        let pi0 = Permutation::identity(2);
        let rng = SmallRng::seed_from_u64(0);
        assert_eq!(
            RandCliques::new(pi0.clone(), rng.clone()).name(),
            "rand-cliques"
        );
        assert_eq!(
            RandCliques::with_policy(pi0.clone(), rng.clone(), MovePolicy::Fair).name(),
            "fair-cliques"
        );
        assert_eq!(
            RandCliques::with_policy(pi0, rng, MovePolicy::SmallerMoves).name(),
            "smaller-moves-cliques"
        );
    }
}
