//! Property tests for the online algorithms: feasibility, exact cost
//! accounting and trajectory consistency across random workloads, policies
//! and seeds.

use mla_core::{DetClosest, MovePolicy, OnlineMinla, RandCliques, RandLines, RearrangePolicy};
use mla_graph::{GraphState, RevealEvent, Topology};
use mla_offline::LopConfig;
use mla_permutation::{Node, Permutation};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds a random full-merge workload for the topology.
fn random_events(topology: Topology, n: usize, seed: u64) -> Vec<RevealEvent> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut state = GraphState::new(topology, n);
    let mut events = Vec::new();
    while state.component_count() > 1 {
        let components = state.components();
        let i = rng.gen_range(0..components.len());
        let mut j = rng.gen_range(0..components.len());
        while j == i {
            j = rng.gen_range(0..components.len());
        }
        let pick = |c: &[Node], rng: &mut SmallRng| match topology {
            Topology::Cliques => c[rng.gen_range(0..c.len())],
            Topology::Lines => {
                if rng.gen_bool(0.5) {
                    c[0]
                } else {
                    c[c.len() - 1]
                }
            }
        };
        let event = RevealEvent::new(
            pick(&components[i], &mut rng),
            pick(&components[j], &mut rng),
        );
        state.apply(event).expect("constructed event is valid");
        events.push(event);
    }
    events
}

/// Drives an algorithm through a workload, asserting the two fundamental
/// invariants per reveal. Returns (total cost, final permutation).
fn drive<A: OnlineMinla>(
    topology: Topology,
    n: usize,
    events: &[RevealEvent],
    mut alg: A,
) -> (u64, Permutation) {
    let mut state = GraphState::new(topology, n);
    let mut total = 0u64;
    for &event in events {
        let before = alg.permutation().clone();
        let info = state.apply(event).unwrap();
        let report = alg.serve(event, &info, &state);
        assert_eq!(
            report.total(),
            before.kendall_distance(alg.permutation()),
            "reported cost must equal distance traveled"
        );
        assert!(state.is_minla(alg.permutation()), "feasibility invariant");
        total += report.total();
    }
    (total, alg.permutation().clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn rand_cliques_invariants((n, w_seed, a_seed, p_seed) in (4usize..20, any::<u64>(), any::<u64>(), any::<u64>())) {
        let events = random_events(Topology::Cliques, n, w_seed);
        let mut rng = SmallRng::seed_from_u64(p_seed);
        let pi0 = Permutation::random(n, &mut rng);
        for policy in [MovePolicy::SizeBiased, MovePolicy::Fair, MovePolicy::SmallerMoves] {
            let alg = RandCliques::with_policy(pi0.clone(), SmallRng::seed_from_u64(a_seed), policy);
            let (total, final_perm) = drive(Topology::Cliques, n, &events, alg);
            // Trajectory cost dominates the end-to-end distance.
            prop_assert!(pi0.kendall_distance(&final_perm) <= total);
        }
    }

    #[test]
    fn rand_lines_invariants((n, w_seed, a_seed, p_seed) in (4usize..20, any::<u64>(), any::<u64>(), any::<u64>())) {
        let events = random_events(Topology::Lines, n, w_seed);
        let mut rng = SmallRng::seed_from_u64(p_seed);
        let pi0 = Permutation::random(n, &mut rng);
        for (mp, rp) in [
            (MovePolicy::SizeBiased, RearrangePolicy::CostBiased),
            (MovePolicy::Fair, RearrangePolicy::Fair),
            (MovePolicy::SmallerMoves, RearrangePolicy::Cheapest),
        ] {
            let alg = RandLines::with_policies(pi0.clone(), SmallRng::seed_from_u64(a_seed), mp, rp);
            let (total, final_perm) = drive(Topology::Lines, n, &events, alg);
            prop_assert!(pi0.kendall_distance(&final_perm) <= total);
        }
    }

    #[test]
    fn final_line_reads_in_path_order((n, w_seed, a_seed) in (3usize..16, any::<u64>(), any::<u64>())) {
        // After a full merge the single path must be monotone in the
        // permutation, in either direction.
        let events = random_events(Topology::Lines, n, w_seed);
        let mut state = GraphState::new(Topology::Lines, n);
        let mut alg = RandLines::new(Permutation::identity(n), SmallRng::seed_from_u64(a_seed));
        for &event in &events {
            let info = state.apply(event).unwrap();
            alg.serve(event, &info, &state);
        }
        let path = state.component_nodes(Node::new(0));
        prop_assert_eq!(path.len(), n);
        let positions: Vec<usize> = path.iter().map(|&v| alg.permutation().position_of(v)).collect();
        prop_assert!(
            positions.windows(2).all(|w| w[0] < w[1])
                || positions.windows(2).all(|w| w[0] > w[1])
        );
    }

    #[test]
    fn det_is_deterministic_and_anchored((n, w_seed, p_seed) in (4usize..14, any::<u64>(), any::<u64>())) {
        let events = random_events(Topology::Cliques, n, w_seed);
        let truncated = &events[..events.len() / 2];
        let mut rng = SmallRng::seed_from_u64(p_seed);
        let pi0 = Permutation::random(n, &mut rng);
        let run = || {
            let alg = DetClosest::new(pi0.clone(), LopConfig::default());
            drive(Topology::Cliques, n, truncated, alg)
        };
        let (cost_a, perm_a) = run();
        let (cost_b, perm_b) = run();
        prop_assert_eq!(cost_a, cost_b);
        prop_assert_eq!(perm_a, perm_b);
    }

    #[test]
    fn rand_cliques_total_cost_distribution_depends_only_on_pi0(
        (n, w_seed) in (4usize..10, any::<u64>())
    ) {
        // Lemma 3 corollary: the FINAL permutation's distribution does not
        // depend on the merge order. Weak form checked here: two different
        // reveal orders of the same final partition produce the same
        // support of final relative orders for a fixed coin seed count.
        // (Full statistical checks live in E-L3; this guards the plumbing:
        // the same instance replayed twice with the same coins gives the
        // same outcome.)
        let events = random_events(Topology::Cliques, n, w_seed);
        let pi0 = Permutation::identity(n);
        let run = |coin: u64| {
            let alg = RandCliques::new(pi0.clone(), SmallRng::seed_from_u64(coin));
            drive(Topology::Cliques, n, &events, alg).1
        };
        prop_assert_eq!(run(7), run(7));
    }
}
