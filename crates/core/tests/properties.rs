//! Property tests for the online algorithms: feasibility, exact cost
//! accounting and trajectory consistency across random workloads, policies
//! and seeds.

use mla_core::{DetClosest, MovePolicy, OnlineMinla, RandCliques, RandLines, RearrangePolicy};
use mla_graph::{GraphState, RevealEvent, Topology};
use mla_offline::LopConfig;
use mla_permutation::{Arrangement, Node, Permutation};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds a random full-merge workload for the topology.
fn random_events(topology: Topology, n: usize, seed: u64) -> Vec<RevealEvent> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut state = GraphState::new(topology, n);
    let mut events = Vec::new();
    while state.component_count() > 1 {
        let components = state.components();
        let i = rng.gen_range(0..components.len());
        let mut j = rng.gen_range(0..components.len());
        while j == i {
            j = rng.gen_range(0..components.len());
        }
        let pick = |c: &[Node], rng: &mut SmallRng| match topology {
            Topology::Cliques => c[rng.gen_range(0..c.len())],
            Topology::Lines => {
                if rng.gen_bool(0.5) {
                    c[0]
                } else {
                    c[c.len() - 1]
                }
            }
        };
        let event = RevealEvent::new(
            pick(&components[i], &mut rng),
            pick(&components[j], &mut rng),
        );
        state.apply(event).expect("constructed event is valid");
        events.push(event);
    }
    events
}

/// Drives an algorithm through a workload, asserting the two fundamental
/// invariants per reveal. Returns (total cost, final permutation).
fn drive<A: OnlineMinla>(
    topology: Topology,
    n: usize,
    events: &[RevealEvent],
    mut alg: A,
) -> (u64, Permutation) {
    let mut state = GraphState::new(topology, n);
    let mut total = 0u64;
    for &event in events {
        let before = alg.arrangement().to_permutation();
        let info = state.apply(event).unwrap();
        let report = alg.serve(event, &info, &state);
        assert_eq!(
            report.total(),
            alg.arrangement().kendall_to(&before),
            "reported cost must equal distance traveled"
        );
        assert!(state.is_minla(alg.arrangement()), "feasibility invariant");
        assert!(
            state.merge_keeps_minla(alg.arrangement(), &info),
            "incremental feasibility must agree"
        );
        total += report.total();
    }
    (total, alg.arrangement().to_permutation())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn rand_cliques_invariants((n, w_seed, a_seed, p_seed) in (4usize..20, any::<u64>(), any::<u64>(), any::<u64>())) {
        let events = random_events(Topology::Cliques, n, w_seed);
        let mut rng = SmallRng::seed_from_u64(p_seed);
        let pi0 = Permutation::random(n, &mut rng);
        for policy in [MovePolicy::SizeBiased, MovePolicy::Fair, MovePolicy::SmallerMoves] {
            let alg = RandCliques::with_policy(pi0.clone(), SmallRng::seed_from_u64(a_seed), policy);
            let (total, final_perm) = drive(Topology::Cliques, n, &events, alg);
            // Trajectory cost dominates the end-to-end distance.
            prop_assert!(pi0.kendall_distance(&final_perm) <= total);
        }
    }

    #[test]
    fn rand_lines_invariants((n, w_seed, a_seed, p_seed) in (4usize..20, any::<u64>(), any::<u64>(), any::<u64>())) {
        let events = random_events(Topology::Lines, n, w_seed);
        let mut rng = SmallRng::seed_from_u64(p_seed);
        let pi0 = Permutation::random(n, &mut rng);
        for (mp, rp) in [
            (MovePolicy::SizeBiased, RearrangePolicy::CostBiased),
            (MovePolicy::Fair, RearrangePolicy::Fair),
            (MovePolicy::SmallerMoves, RearrangePolicy::Cheapest),
        ] {
            let alg = RandLines::with_policies(pi0.clone(), SmallRng::seed_from_u64(a_seed), mp, rp);
            let (total, final_perm) = drive(Topology::Lines, n, &events, alg);
            prop_assert!(pi0.kendall_distance(&final_perm) <= total);
        }
    }

    #[test]
    fn final_line_reads_in_path_order((n, w_seed, a_seed) in (3usize..16, any::<u64>(), any::<u64>())) {
        // After a full merge the single path must be monotone in the
        // permutation, in either direction.
        let events = random_events(Topology::Lines, n, w_seed);
        let mut state = GraphState::new(Topology::Lines, n);
        let mut alg = RandLines::new(Permutation::identity(n), SmallRng::seed_from_u64(a_seed));
        for &event in &events {
            let info = state.apply(event).unwrap();
            alg.serve(event, &info, &state);
        }
        let path = state.component_nodes(Node::new(0));
        prop_assert_eq!(path.len(), n);
        let positions: Vec<usize> = path.iter().map(|&v| alg.arrangement().position_of(v)).collect();
        prop_assert!(
            positions.windows(2).all(|w| w[0] < w[1])
                || positions.windows(2).all(|w| w[0] > w[1])
        );
    }

    #[test]
    fn det_is_deterministic_and_anchored((n, w_seed, p_seed) in (4usize..14, any::<u64>(), any::<u64>())) {
        let events = random_events(Topology::Cliques, n, w_seed);
        let truncated = &events[..events.len() / 2];
        let mut rng = SmallRng::seed_from_u64(p_seed);
        let pi0 = Permutation::random(n, &mut rng);
        let run = || {
            let alg = DetClosest::new(pi0.clone(), LopConfig::default());
            drive(Topology::Cliques, n, truncated, alg)
        };
        let (cost_a, perm_a) = run();
        let (cost_b, perm_b) = run();
        prop_assert_eq!(cost_a, cost_b);
        prop_assert_eq!(perm_a, perm_b);
    }

    #[test]
    fn rand_cliques_total_cost_distribution_depends_only_on_pi0(
        (n, w_seed) in (4usize..10, any::<u64>())
    ) {
        // Lemma 3 corollary: the FINAL permutation's distribution does not
        // depend on the merge order. Weak form checked here: two different
        // reveal orders of the same final partition produce the same
        // support of final relative orders for a fixed coin seed count.
        // (Full statistical checks live in E-L3; this guards the plumbing:
        // the same instance replayed twice with the same coins gives the
        // same outcome.)
        let events = random_events(Topology::Cliques, n, w_seed);
        let pi0 = Permutation::identity(n);
        let run = |coin: u64| {
            let alg = RandCliques::new(pi0.clone(), SmallRng::seed_from_u64(coin));
            drive(Topology::Cliques, n, &events, alg).1
        };
        prop_assert_eq!(run(7), run(7));
    }
}

// ---- backend equivalence: every algorithm, both topologies -------------

use mla_core::OptReplay;
use mla_permutation::SegmentArrangement;

/// Drives the same algorithm on both backends through the same reveals,
/// asserting bit-identical update reports and arrangements at every step.
fn drive_both<D, S, FD, FS>(topology: Topology, n: usize, events: &[RevealEvent], make: (FD, FS))
where
    D: OnlineMinla<Arr = Permutation>,
    S: OnlineMinla<Arr = SegmentArrangement>,
    FD: FnOnce(Permutation) -> D,
    FS: FnOnce(SegmentArrangement) -> S,
{
    let pi0 = Permutation::identity(n);
    let mut dense = make.0(pi0.clone());
    let mut segment = make.1(SegmentArrangement::from_permutation(&pi0));
    let mut dense_state = GraphState::new(topology, n);
    let mut segment_state = GraphState::new(topology, n);
    for &event in events {
        let dense_info = dense_state.apply(event).unwrap();
        let segment_info = segment_state.apply(event).unwrap();
        assert_eq!(dense_info, segment_info, "graph layer must agree");
        let dense_report = dense.serve(event, &dense_info, &dense_state);
        let segment_report = segment.serve(event, &segment_info, &segment_state);
        assert_eq!(
            dense_report, segment_report,
            "update reports diverged (moving and rearranging costs)"
        );
        assert_eq!(
            segment.arrangement().to_permutation(),
            *dense.arrangement(),
            "arrangements diverged after {event:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn rand_cliques_backends_are_bit_identical((n, w_seed, a_seed) in (2usize..24, any::<u64>(), any::<u64>())) {
        let events = random_events(Topology::Cliques, n, w_seed);
        for policy in [MovePolicy::SizeBiased, MovePolicy::Fair, MovePolicy::SmallerMoves] {
            drive_both(
                Topology::Cliques,
                n,
                &events,
                (
                    |pi0| RandCliques::with_policy(pi0, SmallRng::seed_from_u64(a_seed), policy),
                    |arr| RandCliques::with_policy(arr, SmallRng::seed_from_u64(a_seed), policy),
                ),
            );
        }
    }

    #[test]
    fn rand_lines_backends_are_bit_identical((n, w_seed, a_seed) in (2usize..24, any::<u64>(), any::<u64>())) {
        let events = random_events(Topology::Lines, n, w_seed);
        for (mp, rp) in [
            (MovePolicy::SizeBiased, RearrangePolicy::CostBiased),
            (MovePolicy::Fair, RearrangePolicy::Fair),
            (MovePolicy::SmallerMoves, RearrangePolicy::Cheapest),
        ] {
            drive_both(
                Topology::Lines,
                n,
                &events,
                (
                    |pi0| RandLines::with_policies(pi0, SmallRng::seed_from_u64(a_seed), mp, rp),
                    |arr| RandLines::with_policies(arr, SmallRng::seed_from_u64(a_seed), mp, rp),
                ),
            );
        }
    }

    #[test]
    fn det_closest_backends_are_bit_identical((n, w_seed) in (2usize..12, any::<u64>())) {
        for topology in [Topology::Cliques, Topology::Lines] {
            let events = random_events(topology, n, w_seed);
            let truncated = &events[..events.len().div_ceil(2)];
            drive_both(
                topology,
                n,
                truncated,
                (
                    |pi0| DetClosest::new(pi0, LopConfig::default()),
                    |arr| DetClosest::with_backend(arr, LopConfig::default()),
                ),
            );
        }
    }

    #[test]
    fn opt_replay_backends_are_bit_identical((n, w_seed, t_seed) in (2usize..16, any::<u64>(), any::<u64>())) {
        let events = random_events(Topology::Cliques, n, w_seed);
        let target = Permutation::random(n, &mut SmallRng::seed_from_u64(t_seed));
        drive_both(
            Topology::Cliques,
            n,
            &events[..1],
            (
                |pi0| OptReplay::new(pi0, target.clone()),
                |arr| OptReplay::new(arr, target.clone()),
            ),
        );
    }
}
