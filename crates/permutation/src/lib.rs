//! # `mla-permutation`
//!
//! Permutation substrate for the online learning Minimum Linear Arrangement
//! (MinLA) workspace — the data structures and counting primitives shared by
//! every other crate:
//!
//! * [`Node`] — dense node identifiers, distinct from positions;
//! * [`Arrangement`] — the backend-agnostic arrangement abstraction: the
//!   lookup, contiguity and block-operation vocabulary every online MinLA
//!   algorithm uses, priced in adjacent transpositions;
//! * [`Permutation`] — the **dense** backend: a linear arrangement with
//!   `O(1)` bidirectional lookups, block move / reverse / swap operations
//!   that return their exact cost in adjacent transpositions, and
//!   `O(n log n)` Kendall tau distance;
//! * [`SegmentArrangement`] — the **segment** backend: an ordered list of
//!   component segments over an implicit-key treap, `O(log n)` block
//!   splices with closed-form costs — the large-`n` workhorse (`Sync`:
//!   worker threads may locate blocks through `&self` concurrently);
//! * [`ShardedArrangement`] — the **partitioned** backend: one
//!   independent segment treap per fixed contiguous region, shallower
//!   walks plus partitioned-write batch execution
//!   ([`Arrangement::apply_merge_batch`] over [`MergeOp`]s) for
//!   multi-tenant workloads whose merges never cross regions;
//! * inversion counting ([`count_inversions`], [`FenwickTree`]);
//! * pair-set utilities mirroring the paper's `L_π` notation
//!   ([`concordant_pairs`], [`internal_concordant_pairs`],
//!   [`pair_set_difference`]).
//!
//! The cost model is the one from the paper *Learning Minimum Linear
//! Arrangement of Cliques and Lines* (ICDCS 2024): updating a permutation
//! costs the number of adjacent transpositions, i.e. the Kendall tau distance
//! between the old and new arrangements.
//!
//! # Examples
//!
//! ```
//! use mla_permutation::{Node, Permutation};
//!
//! // Arrange 6 nodes, then bring the block {3, 4} next to the block {0, 1}.
//! let mut pi = Permutation::identity(6);
//! let block = pi.contiguous_range(&[Node::new(3), Node::new(4)]).unwrap();
//! let cost = pi.move_block(block, 2);
//! assert_eq!(cost, 2); // 2 nodes crossed 1 foreign node
//! assert_eq!(pi.to_index_vec(), vec![0, 1, 3, 4, 2, 5]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arrangement;
pub mod codec;
mod error;
mod inversions;
mod node;
mod pairs;
mod perm;
mod segment;
pub mod shadow;
mod sharded;
mod transcript;

pub use arrangement::{Arrangement, MergeOp};
pub use error::PermutationError;
pub use shadow::ShadowLog;
pub use sharded::ShardedArrangement;

/// The maximum node count either arrangement backend can address.
///
/// Both backends store positions (and, for the segment backend, arena
/// slot ids with `u32::MAX` reserved as the null sentinel) as `u32`, so
/// arrangements are limited to `u32::MAX` nodes. Constructors enforce the
/// bound up front — [`Permutation::try_identity`] /
/// [`SegmentArrangement::try_identity`] return
/// [`PermutationError::CapacityExceeded`], the infallible constructors
/// panic — instead of silently truncating positions past `n = 2³²`.
pub const MAX_NODES: usize = u32::MAX as usize;
pub use inversions::{
    count_inversions, count_inversions_naive, count_inversions_usize, cross_inversions_sorted,
    FenwickTree,
};
pub use node::{all_nodes, Node};
pub use pairs::{concordant_pairs, internal_concordant_pairs, left_pairs, pair_set_difference};
pub use perm::Permutation;
pub use segment::SegmentArrangement;
pub use transcript::SwapTranscript;
