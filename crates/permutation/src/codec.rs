//! Minimal little-endian byte codec shared by the checkpoint/restore
//! stack.
//!
//! The serving layers (`mla-graph` state, `mla-core` policy snapshots,
//! `mla-sim` session checkpoints) all serialize through these helpers so
//! that every decoder is bounds-checked and returns a structured
//! [`CodecError`] instead of panicking on malformed bytes — the
//! corruption-fuzz suite feeds arbitrary mutations of valid checkpoints
//! through every decode path.
//!
//! The format is deliberately boring: fixed-width little-endian integers
//! and length-prefixed sequences, no varints, no alignment. Versioning,
//! magic headers and checksums live one layer up, in
//! `mla-sim`'s checkpoint container.

use std::fmt;

/// Structured decoding failure. Decoders never panic on malformed input;
/// they return one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The input ended before a fixed-width read could complete.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// The bytes decoded, but the value they encode is inconsistent
    /// (out-of-range index, duplicate node, bad tag, ...).
    Invalid {
        /// What was being decoded and why it was rejected.
        context: String,
    },
}

impl CodecError {
    /// Convenience constructor for [`CodecError::Invalid`].
    #[must_use]
    pub fn invalid(context: impl Into<String>) -> Self {
        CodecError::Invalid {
            context: context.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => {
                write!(f, "input truncated: needed {needed} bytes, had {remaining}")
            }
            CodecError::Invalid { context } => write!(f, "invalid encoding: {context}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Bounds-checked cursor over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `bytes`, positioned at the start.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes the next `len` bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if fewer than `len` bytes remain.
    pub fn bytes(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < len {
            return Err(CodecError::Truncated {
                needed: len,
                remaining: self.remaining(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.bytes(4)?;
        // mla-lint: allow(panic-safety): bytes() returned exactly 4 bytes
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.bytes(8)?;
        // mla-lint: allow(panic-safety): bytes() returned exactly 8 bytes
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads a little-endian `u128`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if fewer than 16 bytes remain.
    pub fn u128(&mut self) -> Result<u128, CodecError> {
        let b = self.bytes(16)?;
        // mla-lint: allow(panic-safety): bytes() returned exactly 16 bytes
        Ok(u128::from_le_bytes(b.try_into().expect("16-byte slice")))
    }

    /// Reads a `u64` length/count and checks it against a ceiling before
    /// any allocation sized by it.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] on short input, [`CodecError::Invalid`]
    /// if the count exceeds `max` (the standard guard against
    /// length-bomb payloads).
    pub fn count(&mut self, max: usize, what: &str) -> Result<usize, CodecError> {
        let raw = self.u64()?;
        let n = usize::try_from(raw)
            .map_err(|_| CodecError::invalid(format!("{what} count {raw} overflows usize")))?;
        if n > max {
            return Err(CodecError::invalid(format!(
                "{what} count {n} exceeds bound {max}"
            )));
        }
        Ok(n)
    }

    /// Reads a `bool` encoded as one byte (`0` or `1`).
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input, [`CodecError::Invalid`]
    /// for any byte other than `0`/`1`.
    pub fn bool(&mut self, what: &str) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::invalid(format!(
                "{what} flag must be 0 or 1, got {other}"
            ))),
        }
    }

    /// Succeeds only if every byte has been consumed.
    ///
    /// # Errors
    ///
    /// [`CodecError::Invalid`] if trailing bytes remain.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::invalid(format!(
                "{} trailing bytes after decode",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Appends one byte.
pub fn put_u8(out: &mut Vec<u8>, value: u8) {
    out.push(value);
}

/// Appends a `bool` as one byte.
pub fn put_bool(out: &mut Vec<u8>, value: bool) {
    out.push(u8::from(value));
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a little-endian `u128`.
pub fn put_u128(out: &mut Vec<u8>, value: u128) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a `usize` as a little-endian `u64` (lossless: the workspace
/// only targets 64-bit-or-smaller platforms).
pub fn put_len(out: &mut Vec<u8>, value: usize) {
    // mla-lint: allow(cast-hygiene): usize -> u64 is lossless on every supported (<= 64-bit) target
    put_u64(out, value as u64);
}

/// CRC-64/ECMA-182 (reflected), the checksum the checkpoint container
/// uses to reject bit-flipped payloads.
#[must_use]
pub fn crc64(bytes: &[u8]) -> u64 {
    const POLY: u64 = 0xC96C_5795_D787_0F42;
    let mut crc = !0u64;
    for &byte in bytes {
        crc ^= u64::from(byte);
        for _ in 0..8 {
            let mask = 0u64.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_bool(&mut buf, true);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_u128(&mut buf, u128::MAX / 3);
        put_len(&mut buf, 42);
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool("flag").unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.u128().unwrap(), u128::MAX / 3);
        assert_eq!(r.count(100, "answer").unwrap(), 42);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_trailing_bytes_are_structured_errors() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(
            r.u32(),
            Err(CodecError::Truncated {
                needed: 4,
                remaining: 2
            })
        ));
        let mut r = ByteReader::new(&[1, 2]);
        r.u8().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn counts_and_flags_are_validated() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 10);
        let mut r = ByteReader::new(&buf);
        assert!(matches!(r.count(9, "seg"), Err(CodecError::Invalid { .. })));
        let mut r = ByteReader::new(&[2]);
        assert!(matches!(r.bool("rev"), Err(CodecError::Invalid { .. })));
    }

    #[test]
    fn crc64_detects_any_single_bit_flip() {
        let base: Vec<u8> = (0u8..64).collect();
        let reference = crc64(&base);
        assert_eq!(crc64(&base), reference);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc64(&flipped), reference, "flip at {byte}:{bit}");
            }
        }
    }
}
