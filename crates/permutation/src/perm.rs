//! The [`Permutation`] type: a linear arrangement of `n` nodes.
//!
//! A permutation is stored in both directions — position → node and
//! node → position — so that lookups in either direction are `O(1)` and all
//! block operations can maintain both views in one pass.

use std::fmt;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::PermutationError;
use crate::inversions::count_inversions;
use crate::node::Node;

/// A linear arrangement (permutation) of the nodes `0..n`.
///
/// Position `0` is the leftmost slot. The permutation maintains the
/// bidirectional mapping between nodes and positions, and exposes the block
/// operations used by the online MinLA algorithms (move a contiguous block,
/// reverse a block, swap adjacent blocks), each returning its exact cost in
/// **adjacent transpositions** — the unit of cost in the online learning
/// MinLA model.
///
/// # Examples
///
/// ```
/// use mla_permutation::{Node, Permutation};
///
/// let mut pi = Permutation::identity(4);
/// assert_eq!(pi.position_of(Node::new(2)), 2);
///
/// // Move the block occupying positions 0..2 so that it starts at position 2:
/// // [0 1 2 3] -> [2 3 0 1], crossing 2 foreign nodes with a block of 2.
/// let cost = pi.move_block(0..2, 2);
/// assert_eq!(cost, 4);
/// assert_eq!(pi.to_index_vec(), vec![2, 3, 0, 1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Permutation {
    pos_to_node: Vec<Node>,
    node_to_pos: Vec<u32>,
}

/// Returns [`PermutationError::CapacityExceeded`] for node counts beyond
/// [`MAX_NODES`](crate::MAX_NODES) — checked **before** any allocation so
/// an oversized request can never corrupt state.
pub(crate) fn check_capacity(n: usize) -> Result<(), PermutationError> {
    if n > crate::MAX_NODES {
        Err(PermutationError::CapacityExceeded { n })
    } else {
        Ok(())
    }
}

impl Permutation {
    /// The identity arrangement: node `i` at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`MAX_NODES`](crate::MAX_NODES) (positions
    /// are stored as `u32`); use [`Permutation::try_identity`] for a
    /// non-panicking variant.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        // mla-lint: allow(panic-safety): documented panic; try_identity is the non-panicking variant
        Self::try_identity(n).expect("node count exceeds the dense backend's u32 capacity")
    }

    /// The identity arrangement, or
    /// [`PermutationError::CapacityExceeded`] if `n` exceeds
    /// [`MAX_NODES`](crate::MAX_NODES).
    ///
    /// # Errors
    ///
    /// Returns [`PermutationError::CapacityExceeded`] for `n >
    /// MAX_NODES`; the check runs before any allocation.
    pub fn try_identity(n: usize) -> Result<Self, PermutationError> {
        check_capacity(n)?;
        let pos_to_node = (0..n).map(Node::new).collect();
        let node_to_pos = (0..n).map(|p| p as u32).collect();
        Ok(Permutation {
            pos_to_node,
            node_to_pos,
        })
    }

    /// Builds a permutation from the node sequence in position order.
    ///
    /// # Errors
    ///
    /// Returns [`PermutationError::NodeOutOfRange`] if a node is not in
    /// `0..n`, [`PermutationError::DuplicateNode`] if a node repeats, and
    /// [`PermutationError::CapacityExceeded`] if the sequence is longer
    /// than [`MAX_NODES`](crate::MAX_NODES).
    ///
    /// # Examples
    ///
    /// ```
    /// use mla_permutation::{Node, Permutation};
    /// # fn main() -> Result<(), mla_permutation::PermutationError> {
    /// let pi = Permutation::from_nodes(vec![Node::new(2), Node::new(0), Node::new(1)])?;
    /// assert_eq!(pi.position_of(Node::new(2)), 0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_nodes(nodes: Vec<Node>) -> Result<Self, PermutationError> {
        let n = nodes.len();
        check_capacity(n)?;
        let mut node_to_pos = vec![u32::MAX; n];
        for (pos, &node) in nodes.iter().enumerate() {
            if node.index() >= n {
                return Err(PermutationError::NodeOutOfRange {
                    node: node.index(),
                    n,
                });
            }
            if node_to_pos[node.index()] != u32::MAX {
                return Err(PermutationError::DuplicateNode { node: node.index() });
            }
            node_to_pos[node.index()] = pos as u32;
        }
        Ok(Permutation {
            pos_to_node: nodes,
            node_to_pos,
        })
    }

    /// Builds a permutation from dense indices in position order.
    ///
    /// # Errors
    ///
    /// Same as [`Permutation::from_nodes`].
    pub fn from_indices(indices: &[usize]) -> Result<Self, PermutationError> {
        Self::from_nodes(indices.iter().map(|&i| Node::new(i)).collect())
    }

    /// Samples a uniformly random permutation of `n` nodes.
    #[must_use]
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut nodes: Vec<Node> = (0..n).map(Node::new).collect();
        nodes.shuffle(rng);
        // mla-lint: allow(panic-safety): shuffling the identity permutes it; from_nodes cannot reject it
        Self::from_nodes(nodes).expect("shuffled identity is a valid permutation")
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pos_to_node.len()
    }

    /// Returns `true` for the empty arrangement.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pos_to_node.is_empty()
    }

    /// The node at `position`.
    ///
    /// # Panics
    ///
    /// Panics if `position >= self.len()`.
    #[inline]
    #[must_use]
    pub fn node_at(&self, position: usize) -> Node {
        self.pos_to_node[position]
    }

    /// The position of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a node of this permutation.
    #[inline]
    #[must_use]
    pub fn position_of(&self, node: Node) -> usize {
        self.node_to_pos[node.index()] as usize
    }

    /// Returns `true` if `a` occupies a position strictly left of `b`.
    ///
    /// This is the predicate behind the paper's pair set `L_π`: the set of
    /// ordered pairs `(a, b)` with `a` left of `b`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    #[inline]
    #[must_use]
    pub fn is_left_of(&self, a: Node, b: Node) -> bool {
        self.position_of(a) < self.position_of(b)
    }

    /// View of the arrangement as a slice of nodes in position order.
    #[must_use]
    pub fn as_nodes(&self) -> &[Node] {
        &self.pos_to_node
    }

    /// The arrangement as a vector of dense indices in position order.
    #[must_use]
    pub fn to_index_vec(&self) -> Vec<usize> {
        self.pos_to_node.iter().map(|v| v.index()).collect()
    }

    /// Iterates over nodes in position order.
    pub fn iter(&self) -> std::slice::Iter<'_, Node> {
        self.pos_to_node.iter()
    }

    /// Serializes the permutation (length, then node ids in position
    /// order) for the checkpoint stack.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        crate::codec::put_len(out, self.len());
        for v in &self.pos_to_node {
            // mla-lint: allow(cast-hygiene): node ids are bounded by MAX_NODES = u32::MAX
            crate::codec::put_u32(out, v.index() as u32);
        }
    }

    /// Decodes a permutation written by [`Permutation::encode_into`],
    /// re-validating the permutation property.
    ///
    /// # Errors
    ///
    /// [`CodecError`](crate::codec::CodecError) on truncated input or if
    /// the decoded node list is not a permutation of `0..n`.
    pub fn decode_from(
        r: &mut crate::codec::ByteReader<'_>,
    ) -> Result<Self, crate::codec::CodecError> {
        let n = r.count(crate::MAX_NODES, "permutation node")?;
        let mut indices = Vec::with_capacity(n);
        for _ in 0..n {
            indices.push(r.u32()? as usize);
        }
        Self::from_indices(&indices)
            .map_err(|e| crate::codec::CodecError::invalid(format!("permutation: {e}")))
    }

    /// The inverse permutation: maps position `p` to the node whose
    /// *position* is `p` in `self`… i.e. a permutation in which node `i`
    /// sits at the position that node at position `i` had. Mostly useful in
    /// tests and algebraic identities.
    #[must_use]
    pub fn inverse(&self) -> Permutation {
        let n = self.len();
        let mut nodes = vec![Node::new(0); n];
        for pos in 0..n {
            nodes[self.pos_to_node[pos].index()] = Node::new(pos);
        }
        // mla-lint: allow(panic-safety): the inverse of a valid permutation is a permutation
        Permutation::from_nodes(nodes).expect("inverse of a permutation is a permutation")
    }

    /// Returns `true` if node `i` sits at position `i` for every `i`.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.pos_to_node
            .iter()
            .enumerate()
            .all(|(pos, v)| v.index() == pos)
    }

    /// Functional composition: the arrangement obtained by relabeling
    /// `self`'s nodes through `other`, i.e. position `p` holds
    /// `other.node_at(self.node_at(p).index())`.
    ///
    /// With this convention `a.compose(&a.inverse())` is the identity, and
    /// composition is associative (see the group-law property tests).
    ///
    /// # Panics
    ///
    /// Panics if the permutations have different lengths.
    #[must_use]
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len(), "compose: size mismatch");
        let nodes = self
            .pos_to_node
            .iter()
            .map(|&v| other.node_at(v.index()))
            .collect();
        // mla-lint: allow(panic-safety): composing two size-checked permutations yields a permutation
        Permutation::from_nodes(nodes).expect("composition of permutations is a permutation")
    }

    /// Positions of the given nodes, in the same order as `nodes`.
    ///
    /// # Panics
    ///
    /// Panics if any node is out of range.
    #[must_use]
    pub fn positions_of(&self, nodes: &[Node]) -> Vec<usize> {
        nodes.iter().map(|&v| self.position_of(v)).collect()
    }

    /// The given nodes sorted by their current position (left to right).
    ///
    /// # Panics
    ///
    /// Panics if any node is out of range.
    #[must_use]
    pub fn sort_by_position(&self, nodes: &[Node]) -> Vec<Node> {
        let mut sorted: Vec<Node> = nodes.to_vec();
        sorted.sort_by_key(|&v| self.position_of(v));
        sorted
    }

    /// If the given set of (distinct) nodes occupies contiguous positions,
    /// returns that position range; otherwise `None`.
    ///
    /// This is the *feasibility* primitive: a permutation is a MinLA of a
    /// collection of cliques iff every clique's node set is contiguous.
    ///
    /// # Examples
    ///
    /// ```
    /// use mla_permutation::{Node, Permutation};
    /// let pi = Permutation::from_indices(&[3, 0, 1, 2]).unwrap();
    /// assert_eq!(pi.contiguous_range(&[Node::new(0), Node::new(1)]), Some(1..3));
    /// assert_eq!(pi.contiguous_range(&[Node::new(3), Node::new(0)]), Some(0..2));
    /// assert_eq!(pi.contiguous_range(&[Node::new(3), Node::new(1)]), None);
    /// ```
    #[must_use]
    pub fn contiguous_range(&self, nodes: &[Node]) -> Option<std::ops::Range<usize>> {
        if nodes.is_empty() {
            return Some(0..0);
        }
        let mut min = usize::MAX;
        let mut max = 0usize;
        for &v in nodes {
            let p = self.position_of(v);
            min = min.min(p);
            max = max.max(p);
        }
        if max - min + 1 == nodes.len() {
            Some(min..max + 1)
        } else {
            None
        }
    }

    /// Swaps the nodes at `position` and `position + 1`. Cost: one adjacent
    /// transposition.
    ///
    /// # Panics
    ///
    /// Panics if `position + 1 >= self.len()`.
    pub fn swap_adjacent(&mut self, position: usize) {
        assert!(
            position + 1 < self.len(),
            "adjacent swap at position {position} out of bounds for length {}",
            self.len()
        );
        let a = self.pos_to_node[position];
        let b = self.pos_to_node[position + 1];
        self.pos_to_node[position] = b;
        self.pos_to_node[position + 1] = a;
        self.node_to_pos[a.index()] = (position + 1) as u32;
        self.node_to_pos[b.index()] = position as u32;
    }

    /// Moves the contiguous block occupying `src` so that it starts at
    /// position `dest`, preserving its internal order, and shifting the
    /// crossed nodes the other way. Returns the cost in adjacent
    /// transpositions: `src.len() × |dest − src.start|`.
    ///
    /// `dest` is the final start position of the block, so it must satisfy
    /// `dest + src.len() <= self.len()`.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of bounds or `dest` would push the block past
    /// either end.
    pub fn move_block(&mut self, src: std::ops::Range<usize>, dest: usize) -> u64 {
        let n = self.len();
        assert!(src.end <= n, "block {src:?} out of bounds for length {n}");
        assert!(src.start <= src.end, "invalid block range {src:?}");
        let len = src.len();
        assert!(
            dest + len <= n,
            "destination {dest} pushes block of length {len} past length {n}"
        );
        if len == 0 || dest == src.start {
            return 0;
        }
        let shift = dest.abs_diff(src.start);
        let cost = (len as u64) * (shift as u64);
        // Rotate the affected region: moving right rotates left-wards within
        // [src.start, dest + len), moving left rotates within [dest, src.end).
        if dest > src.start {
            self.pos_to_node[src.start..dest + len].rotate_left(len);
            self.refresh_positions(src.start, dest + len);
        } else {
            self.pos_to_node[dest..src.end].rotate_right(len);
            self.refresh_positions(dest, src.end);
        }
        cost
    }

    /// Reverses the block occupying `range`. Returns the cost in adjacent
    /// transpositions: `C(len, 2) = len·(len−1)/2`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds.
    pub fn reverse_block(&mut self, range: std::ops::Range<usize>) -> u64 {
        assert!(
            range.end <= self.len(),
            "block {range:?} out of bounds for length {}",
            self.len()
        );
        let len = range.len() as u64;
        self.pos_to_node[range.clone()].reverse();
        self.refresh_positions(range.start, range.end);
        len * len.saturating_sub(1) / 2
    }

    /// Swaps two adjacent blocks `left` and `right` (requires
    /// `left.end == right.start`), preserving internal orders. Returns the
    /// cost `left.len() × right.len()`.
    ///
    /// # Panics
    ///
    /// Panics if the blocks are not adjacent or out of bounds.
    pub fn swap_adjacent_blocks(
        &mut self,
        left: std::ops::Range<usize>,
        right: std::ops::Range<usize>,
    ) -> u64 {
        assert_eq!(
            left.end, right.start,
            "blocks {left:?} and {right:?} are not adjacent"
        );
        assert!(
            right.end <= self.len(),
            "block {right:?} out of bounds for length {}",
            self.len()
        );
        let cost = (left.len() as u64) * (right.len() as u64);
        self.pos_to_node[left.start..right.end].rotate_left(left.len());
        self.refresh_positions(left.start, right.end);
        cost
    }

    /// Overwrites the block at `range` with `content` — the bulk state
    /// transition behind a merge update's rearranging part, whose final
    /// block content is known in closed form. `content` must be a
    /// permutation of the nodes currently occupying `range`; positions
    /// outside the block are untouched.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds or the lengths differ. Debug
    /// builds additionally verify that `content` is a permutation of the
    /// block's current nodes.
    pub fn write_block(&mut self, range: std::ops::Range<usize>, content: &[Node]) {
        assert!(
            range.end <= self.len(),
            "block {range:?} out of bounds for length {}",
            self.len()
        );
        assert_eq!(
            range.len(),
            content.len(),
            "content length {} does not match block {range:?}",
            content.len()
        );
        debug_assert!(
            {
                let mut old: Vec<Node> = self.pos_to_node[range.clone()].to_vec();
                let mut new: Vec<Node> = content.to_vec();
                old.sort_unstable();
                new.sort_unstable();
                old == new
            },
            "content must be a permutation of the block's nodes"
        );
        self.pos_to_node[range.clone()].copy_from_slice(content);
        self.refresh_positions(range.start, range.end);
    }

    /// Kendall's tau distance to `other`: the number of node pairs ordered
    /// differently, which equals the minimum number of adjacent
    /// transpositions transforming one arrangement into the other.
    /// Computed in `O(n log n)`.
    ///
    /// # Panics
    ///
    /// Panics if the permutations have different lengths; see
    /// [`Permutation::try_kendall_distance`] for the fallible variant.
    ///
    /// # Examples
    ///
    /// ```
    /// use mla_permutation::Permutation;
    /// let a = Permutation::from_indices(&[0, 1, 2, 3]).unwrap();
    /// let b = Permutation::from_indices(&[3, 2, 1, 0]).unwrap();
    /// assert_eq!(a.kendall_distance(&b), 6);
    /// ```
    #[must_use]
    pub fn kendall_distance(&self, other: &Permutation) -> u64 {
        self.try_kendall_distance(other)
            // mla-lint: allow(panic-safety): documented panic; try_kendall_distance is the non-panicking variant
            .expect("kendall_distance: size mismatch")
    }

    /// Fallible Kendall's tau distance.
    ///
    /// # Errors
    ///
    /// Returns [`PermutationError::SizeMismatch`] if lengths differ.
    pub fn try_kendall_distance(&self, other: &Permutation) -> Result<u64, PermutationError> {
        if self.len() != other.len() {
            return Err(PermutationError::SizeMismatch {
                left: self.len(),
                right: other.len(),
            });
        }
        // Express `other` in `self` coordinates and count inversions.
        let seq: Vec<u32> = other
            .pos_to_node
            .iter()
            .map(|&v| self.node_to_pos[v.index()])
            .collect();
        Ok(count_inversions(&seq))
    }

    /// Restores `node_to_pos` for the half-open position range `[from, to)`.
    fn refresh_positions(&mut self, from: usize, to: usize) {
        for pos in from..to {
            self.node_to_pos[self.pos_to_node[pos].index()] = pos as u32;
        }
    }

    /// Checks internal consistency of the two views. Used by tests and
    /// debug assertions.
    #[doc(hidden)]
    #[must_use]
    pub fn check_consistent(&self) -> bool {
        self.pos_to_node.len() == self.node_to_pos.len()
            && (0..self.len()).all(|p| self.node_to_pos[self.pos_to_node[p].index()] == p as u32)
    }
}

impl fmt::Debug for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Permutation[")?;
        for (i, v) in self.pos_to_node.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", v.raw())?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<'a> IntoIterator for &'a Permutation {
    type Item = &'a Node;
    type IntoIter = std::slice::Iter<'a, Node>;

    fn into_iter(self) -> Self::IntoIter {
        self.pos_to_node.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn perm(indices: &[usize]) -> Permutation {
        Permutation::from_indices(indices).unwrap()
    }

    #[test]
    fn capacity_guard_rejects_oversized_requests() {
        let oversized = crate::MAX_NODES + 1;
        assert!(matches!(
            Permutation::try_identity(oversized),
            Err(PermutationError::CapacityExceeded { n }) if n == oversized
        ));
        assert_eq!(
            Permutation::try_identity(3).unwrap(),
            Permutation::identity(3)
        );
    }

    #[test]
    fn identity_round_trip() {
        let pi = Permutation::identity(5);
        for i in 0..5 {
            assert_eq!(pi.node_at(i), Node::new(i));
            assert_eq!(pi.position_of(Node::new(i)), i);
        }
        assert!(pi.check_consistent());
    }

    #[test]
    fn from_nodes_validation() {
        assert!(matches!(
            Permutation::from_indices(&[0, 0, 1]),
            Err(PermutationError::DuplicateNode { node: 0 })
        ));
        assert!(matches!(
            Permutation::from_indices(&[0, 3]),
            Err(PermutationError::NodeOutOfRange { node: 3, n: 2 })
        ));
        assert!(Permutation::from_indices(&[]).unwrap().is_empty());
    }

    #[test]
    fn is_left_of_matches_positions() {
        let pi = perm(&[2, 0, 1]);
        assert!(pi.is_left_of(Node::new(2), Node::new(0)));
        assert!(pi.is_left_of(Node::new(0), Node::new(1)));
        assert!(!pi.is_left_of(Node::new(1), Node::new(2)));
    }

    #[test]
    fn inverse_is_involutive() {
        let mut rng = SmallRng::seed_from_u64(7);
        let pi = Permutation::random(20, &mut rng);
        assert_eq!(pi.inverse().inverse(), pi);
    }

    #[test]
    fn swap_adjacent_updates_both_views() {
        let mut pi = perm(&[0, 1, 2]);
        pi.swap_adjacent(1);
        assert_eq!(pi.to_index_vec(), vec![0, 2, 1]);
        assert!(pi.check_consistent());
    }

    #[test]
    fn move_block_right_and_left() {
        let mut pi = perm(&[0, 1, 2, 3, 4]);
        // Move block [1, 2] (positions 1..3) to start at position 3.
        let cost = pi.move_block(1..3, 3);
        assert_eq!(cost, 4);
        assert_eq!(pi.to_index_vec(), vec![0, 3, 4, 1, 2]);
        assert!(pi.check_consistent());
        // Move it back.
        let cost_back = pi.move_block(3..5, 1);
        assert_eq!(cost_back, 4);
        assert_eq!(pi.to_index_vec(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn move_block_zero_cases() {
        let mut pi = perm(&[0, 1, 2]);
        assert_eq!(pi.move_block(1..1, 0), 0);
        assert_eq!(pi.move_block(0..2, 0), 0);
        assert_eq!(pi.to_index_vec(), vec![0, 1, 2]);
    }

    #[test]
    fn move_block_cost_equals_kendall_delta() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..50 {
            let n = 12;
            let before = Permutation::random(n, &mut rng);
            let mut after = before.clone();
            let start = rng.gen_range(0..n);
            let end = rng.gen_range(start..=n);
            let len = end - start;
            let dest = rng.gen_range(0..=n - len);
            let cost = after.move_block(start..end, dest);
            assert_eq!(cost, before.kendall_distance(&after));
            assert!(after.check_consistent());
        }
    }

    #[test]
    fn reverse_block_cost_equals_kendall_delta() {
        let mut rng = SmallRng::seed_from_u64(43);
        for _ in 0..50 {
            let n = 12;
            let before = Permutation::random(n, &mut rng);
            let mut after = before.clone();
            let start = rng.gen_range(0..n);
            let end = rng.gen_range(start..=n);
            let cost = after.reverse_block(start..end);
            assert_eq!(cost, before.kendall_distance(&after));
            let len = (end - start) as u64;
            assert_eq!(cost, len * (len.saturating_sub(1)) / 2);
        }
    }

    #[test]
    fn swap_adjacent_blocks_cost_and_layout() {
        let mut pi = perm(&[0, 1, 2, 3, 4]);
        let cost = pi.swap_adjacent_blocks(1..3, 3..5);
        assert_eq!(cost, 4);
        assert_eq!(pi.to_index_vec(), vec![0, 3, 4, 1, 2]);
        assert!(pi.check_consistent());
    }

    #[test]
    #[should_panic(expected = "not adjacent")]
    fn swap_non_adjacent_blocks_panics() {
        let mut pi = perm(&[0, 1, 2, 3, 4]);
        let _ = pi.swap_adjacent_blocks(0..1, 3..5);
    }

    #[test]
    fn kendall_distance_properties() {
        let a = perm(&[0, 1, 2, 3]);
        let b = perm(&[1, 0, 3, 2]);
        assert_eq!(a.kendall_distance(&b), 2);
        assert_eq!(b.kendall_distance(&a), 2);
        assert_eq!(a.kendall_distance(&a), 0);
    }

    #[test]
    fn kendall_distance_size_mismatch() {
        let a = Permutation::identity(3);
        let b = Permutation::identity(4);
        assert_eq!(
            a.try_kendall_distance(&b),
            Err(PermutationError::SizeMismatch { left: 3, right: 4 })
        );
    }

    #[test]
    fn contiguous_range_cases() {
        let pi = perm(&[4, 2, 3, 0, 1]);
        assert_eq!(
            pi.contiguous_range(&[Node::new(2), Node::new(3)]),
            Some(1..3)
        );
        assert_eq!(
            pi.contiguous_range(&[Node::new(0), Node::new(1)]),
            Some(3..5)
        );
        assert_eq!(pi.contiguous_range(&[Node::new(4), Node::new(3)]), None);
        assert_eq!(pi.contiguous_range(&[]), Some(0..0));
        assert_eq!(pi.contiguous_range(&[Node::new(4)]), Some(0..1));
    }

    #[test]
    fn sort_by_position_orders_left_to_right() {
        let pi = perm(&[3, 1, 0, 2]);
        let sorted = pi.sort_by_position(&[Node::new(0), Node::new(2), Node::new(3)]);
        assert_eq!(sorted, vec![Node::new(3), Node::new(0), Node::new(2)]);
    }

    #[test]
    fn random_is_seed_deterministic() {
        let mut rng1 = SmallRng::seed_from_u64(9);
        let mut rng2 = SmallRng::seed_from_u64(9);
        assert_eq!(
            Permutation::random(30, &mut rng1),
            Permutation::random(30, &mut rng2)
        );
    }

    #[test]
    fn debug_format() {
        let pi = perm(&[1, 0]);
        assert_eq!(format!("{pi:?}"), "Permutation[1 0]");
    }
}
