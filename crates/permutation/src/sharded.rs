//! [`ShardedArrangement`]: a partitioned arrangement backend — one
//! independent [`SegmentArrangement`] per fixed contiguous region.
//!
//! Multi-tenant (sharded) workloads never merge components across
//! tenants, so an arrangement serving them decomposes into fixed position
//! regions that evolve independently. This backend stores exactly that: a
//! forest of per-region segment treaps over a fixed region partition of
//! both the **position space** and the **node-id space** (region `r`
//! permutes node ids `bounds[r]..bounds[r+1]` within positions
//! `bounds[r]..bounds[r+1]`). Two wins over one global treap:
//!
//! * **shallower walks** — every tree walk costs `O(log (region size))`
//!   instead of `O(log n)`;
//! * **partitioned writes** — ops touching different regions are
//!   mutations of *disjoint Rust objects*, so a batch of span-disjoint
//!   merges executes on worker threads with plain `&mut` distribution
//!   (`iter_mut`), no locks, no `unsafe`
//!   ([`Arrangement::apply_merge_batch`]).
//!
//! The price is a **region-locality restriction**: every block operation
//! must stay inside one region (a cross-region merge would migrate nodes
//! between sub-arrangements). Region-local operations are observably
//! identical to the dense backend; a region-crossing operation panics
//! with a clear message — construct the partition to match the workload's
//! tenancy, or use [`ShardedArrangement::identity`] (a single region,
//! fully general, equivalent to a plain [`SegmentArrangement`]).

use std::fmt;
use std::ops::Range;
use std::sync::Mutex;

use crate::arrangement::{Arrangement, MergeOp};
use crate::node::Node;
use crate::perm::Permutation;
use crate::segment::SegmentArrangement;

/// A linear arrangement partitioned into independently evolving regions,
/// each backed by its own [`SegmentArrangement`].
///
/// # Examples
///
/// ```
/// use mla_permutation::{Arrangement, Node, ShardedArrangement};
///
/// // Two regions of 4 nodes each; all ops must stay within a region.
/// let mut arr = ShardedArrangement::with_regions(&[4, 4]);
/// let cost = arr.move_block(0..2, 2);       // region 0
/// assert_eq!(cost, 4);
/// let cost = arr.move_block(4..5, 7);       // region 1
/// assert_eq!(cost, 3);
/// assert_eq!(
///     arr.to_permutation().to_index_vec(),
///     vec![2, 3, 0, 1, 5, 6, 7, 4],
/// );
/// assert_eq!(arr.position_of(Node::new(4)), 7);
/// ```
#[derive(Clone)]
pub struct ShardedArrangement {
    regions: Vec<SegmentArrangement>,
    /// Region boundaries over both positions and node ids:
    /// `bounds[r]..bounds[r + 1]` is region `r`; `bounds[0] = 0`,
    /// `bounds[len] = n`, strictly increasing.
    bounds: Vec<usize>,
}

impl ShardedArrangement {
    /// The identity arrangement as a **single** region — fully general
    /// (no region-locality restriction can ever trip), observably a
    /// [`SegmentArrangement`].
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`MAX_NODES`](crate::MAX_NODES).
    #[must_use]
    pub fn identity(n: usize) -> Self {
        if n == 0 {
            return ShardedArrangement {
                regions: Vec::new(),
                bounds: vec![0],
            };
        }
        Self::with_regions(&[n])
    }

    /// The identity arrangement partitioned into the given non-empty
    /// region sizes: region `r` owns node ids (and positions)
    /// `offset..offset + sizes[r]`.
    ///
    /// # Panics
    ///
    /// Panics if any region size is zero, or any region exceeds
    /// [`MAX_NODES`](crate::MAX_NODES).
    #[must_use]
    pub fn with_regions(sizes: &[usize]) -> Self {
        let mut bounds = Vec::with_capacity(sizes.len() + 1);
        bounds.push(0usize);
        let mut regions = Vec::with_capacity(sizes.len());
        let mut end = 0usize;
        for &size in sizes {
            assert!(size > 0, "region sizes must be positive");
            regions.push(SegmentArrangement::identity(size));
            end += size;
            bounds.push(end);
        }
        ShardedArrangement { regions, bounds }
    }

    /// Number of regions.
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// The position/node-id range of region `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn region_range(&self, r: usize) -> Range<usize> {
        self.bounds[r]..self.bounds[r + 1]
    }

    /// The region containing position (= node id) `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= self.len()`.
    #[must_use]
    pub fn region_of(&self, p: usize) -> usize {
        assert!(
            p < self.len(),
            "position {p} out of bounds for length {}",
            self.len()
        );
        self.bounds.partition_point(|&b| b <= p) - 1
    }

    /// The region wholly containing `range`, or a panic describing the
    /// region-locality violation.
    fn region_of_range(&self, range: &Range<usize>, what: &str) -> usize {
        let r = self.region_of(range.start);
        assert!(
            range.end <= self.bounds[r + 1],
            "{what} {range:?} crosses the region boundary at {} — \
             sharded arrangements only support region-local operations",
            self.bounds[r + 1],
        );
        r
    }

    /// Translates global node ids to a region's local ids.
    fn to_local(&self, r: usize, nodes: &[Node]) -> Vec<Node> {
        let base = self.bounds[r];
        nodes.iter().map(|v| Node::new(v.index() - base)).collect()
    }

    /// Returns `true` if every node id lies in region `r`.
    fn all_in_region(&self, r: usize, nodes: &[Node]) -> bool {
        let range = self.region_range(r);
        nodes.iter().all(|v| range.contains(&v.index()))
    }
}

impl Arrangement for ShardedArrangement {
    fn len(&self) -> usize {
        // mla-lint: allow(panic-safety): bounds always holds at least the origin 0
        *self.bounds.last().expect("bounds always holds the origin")
    }

    fn node_at(&self, position: usize) -> Node {
        let r = self.region_of(position);
        let base = self.bounds[r];
        Node::new(self.regions[r].node_at(position - base).index() + base)
    }

    fn position_of(&self, node: Node) -> usize {
        let r = self.region_of(node.index());
        let base = self.bounds[r];
        base + self.regions[r].position_of(Node::new(node.index() - base))
    }

    fn contiguous_range(&self, nodes: &[Node]) -> Option<Range<usize>> {
        if nodes.is_empty() {
            return Some(0..0);
        }
        let r = self.region_of(nodes[0].index());
        if self.all_in_region(r, nodes) {
            let base = self.bounds[r];
            let local = self.to_local(r, nodes);
            return self.regions[r]
                .contiguous_range(&local)
                .map(|range| range.start + base..range.end + base);
        }
        // Nodes from several regions: fall back to the generic min/max
        // scan (such a set can still be contiguous across a boundary).
        let mut min = usize::MAX;
        let mut max = 0usize;
        for &v in nodes {
            let p = self.position_of(v);
            min = min.min(p);
            max = max.max(p);
        }
        (max - min + 1 == nodes.len()).then_some(min..max + 1)
    }

    fn oriented_contiguous_range(&self, nodes: &[Node]) -> Option<(Range<usize>, bool)> {
        if nodes.is_empty() {
            return Some((0..0, true));
        }
        let r = self.region_of(nodes[0].index());
        if self.all_in_region(r, nodes) {
            let base = self.bounds[r];
            let local = self.to_local(r, nodes);
            return self.regions[r]
                .oriented_contiguous_range(&local)
                .map(|(range, forward)| (range.start + base..range.end + base, forward));
        }
        let range = self.contiguous_range(nodes)?;
        let forward = nodes.len() <= 1 || self.position_of(nodes[0]) == range.start;
        Some((range, forward))
    }

    fn locate_component(&self, anchor: Node, len: usize) -> Option<(Range<usize>, usize)> {
        // Merges are region-local, so a component is always wholly inside
        // the anchor's region; a `len` that cannot fit simply misses in
        // the region-local locate.
        let r = self.region_of(anchor.index());
        let base = self.bounds[r];
        self.regions[r]
            .locate_component(Node::new(anchor.index() - base), len)
            .map(|(range, anchor_pos)| (range.start + base..range.end + base, anchor_pos + base))
    }

    fn supports_component_locate(&self) -> bool {
        true
    }

    fn move_block(&mut self, src: Range<usize>, dest: usize) -> u64 {
        if src.is_empty() && src.start <= self.len() && dest <= self.len() {
            return 0;
        }
        let r = self.region_of_range(&src, "block");
        let base = self.bounds[r];
        assert!(
            (base..=self.bounds[r + 1] - src.len()).contains(&dest),
            "destination {dest} would move block {src:?} across the \
             boundary of region {r} — sharded arrangements only support \
             region-local operations"
        );
        self.regions[r].move_block(src.start - base..src.end - base, dest - base)
    }

    fn reverse_block(&mut self, range: Range<usize>) -> u64 {
        if range.is_empty() {
            return 0;
        }
        let r = self.region_of_range(&range, "block");
        let base = self.bounds[r];
        self.regions[r].reverse_block(range.start - base..range.end - base)
    }

    fn swap_adjacent_blocks(&mut self, left: Range<usize>, right: Range<usize>) -> u64 {
        assert_eq!(
            left.end, right.start,
            "blocks {left:?} and {right:?} are not adjacent"
        );
        if left.is_empty() && right.is_empty() {
            return 0;
        }
        let hull = left.start..right.end;
        let r = self.region_of_range(&hull, "block pair");
        let base = self.bounds[r];
        self.regions[r].swap_adjacent_blocks(
            left.start - base..left.end - base,
            right.start - base..right.end - base,
        )
    }

    fn kendall_to(&self, target: &Permutation) -> u64 {
        self.to_permutation().kendall_distance(target)
    }

    fn assign(&mut self, target: &Permutation) -> u64 {
        assert_eq!(
            self.len(),
            target.len(),
            "assign: size mismatch ({} vs {})",
            self.len(),
            target.len()
        );
        // Node ids may never leave their regions; a region-preserving
        // target decomposes into per-region assignments, and because
        // cross-region pair orders are unchanged, the total Kendall cost
        // is the sum of the local ones.
        let mut cost = 0u64;
        for r in 0..self.regions.len() {
            let range = self.region_range(r);
            let base = range.start;
            let slice: Vec<Node> = (range.clone())
                .map(|p| {
                    let v = target.node_at(p);
                    assert!(
                        range.contains(&v.index()),
                        "assign target moves node {v:?} out of region {r} \
                         ({range:?}) — sharded arrangements only support \
                         region-preserving targets"
                    );
                    Node::new(v.index() - base)
                })
                .collect();
            let local = Permutation::from_nodes(slice)
                // mla-lint: allow(panic-safety): a region-preserving slice of a permutation is itself a permutation (checked just above)
                .expect("a region-preserving slice of a permutation is a permutation");
            cost += self.regions[r].assign(&local);
        }
        cost
    }

    fn coalesce_range(&mut self, range: Range<usize>) {
        if range.is_empty() {
            return;
        }
        let r = self.region_of_range(&range, "block");
        let base = self.bounds[r];
        self.regions[r].coalesce_range(range.start - base..range.end - base);
    }

    fn to_permutation(&self) -> Permutation {
        let mut nodes = Vec::with_capacity(self.len());
        for (r, region) in self.regions.iter().enumerate() {
            let base = self.bounds[r];
            nodes.extend(
                region
                    .to_permutation()
                    .iter()
                    .map(|v| Node::new(v.index() + base)),
            );
        }
        // mla-lint: allow(panic-safety): regions partition the node universe
        Permutation::from_nodes(nodes).expect("regions partition the node universe")
    }

    fn merge_move(
        &mut self,
        mover: Range<usize>,
        stayer: Range<usize>,
        target: Option<&[Node]>,
    ) -> u64 {
        let hull = mover.start.min(stayer.start)..mover.end.max(stayer.end);
        let r = self.region_of_range(&hull, "merge");
        let base = self.bounds[r];
        let local_target = target.map(|content| self.to_local(r, content));
        self.regions[r].merge_move(
            mover.start - base..mover.end - base,
            stayer.start - base..stayer.end - base,
            local_target.as_deref(),
        )
    }

    fn write_merged_block(&mut self, range: Range<usize>, content: &[Node]) {
        if range.is_empty() && content.is_empty() {
            return;
        }
        let r = self.region_of_range(&range, "block");
        let base = self.bounds[r];
        let local = self.to_local(r, content);
        self.regions[r].write_merged_block(range.start - base..range.end - base, &local);
    }

    /// Partitioned-parallel batch execution: ops are grouped by region,
    /// and regions are distributed over `threads` scoped workers — each
    /// worker holds `&mut` to *its* regions only (plain `iter_mut`
    /// distribution, no locks, no `unsafe`). Within a region ops run in
    /// op order, so every region's sub-arrangement (treap shape, arena
    /// free lists, priority streams included) evolves identically for
    /// every thread count.
    fn apply_merge_batch(&mut self, ops: Vec<MergeOp>, threads: usize) -> Vec<u64> {
        // Small batches, single region or no parallelism: sequential.
        if threads <= 1 || ops.len() < 2 || self.regions.len() < 2 {
            return ops
                .into_iter()
                .map(|op| self.merge_move(op.mover, op.stayer, op.target.as_deref()))
                .collect();
        }
        let count = ops.len();
        // Group ops by region, keeping (original index, localized op).
        let mut groups: Vec<Vec<(usize, MergeOp)>> = vec![Vec::new(); self.regions.len()];
        for (index, op) in ops.into_iter().enumerate() {
            let hull = op.span();
            let r = self.region_of_range(&hull, "merge");
            let base = self.bounds[r];
            let localized = MergeOp {
                mover: op.mover.start - base..op.mover.end - base,
                stayer: op.stayer.start - base..op.stayer.end - base,
                target: op.target.map(|content| self.to_local(r, &content)),
            };
            groups[r].push((index, localized));
        }
        // Each busy region pairs with exclusive `&mut` access to its
        // sub-arrangement; distributing those pairs over workers is safe
        // by construction. The shadow log (debug builds only) records
        // every write claim and re-checks the planner's disjointness
        // promise at commit — see [`crate::shadow`].
        let shadow = crate::shadow::ShadowLog::new();
        let bounds = &self.bounds;
        let mut work: Vec<RegionWork<'_>> = self
            .regions
            .iter_mut()
            .enumerate()
            .zip(groups)
            .filter(|(_, group)| !group.is_empty())
            .map(|((r, region), group)| (r, bounds[r], region, group))
            .collect();
        let mut costs = vec![0u64; count];
        if work.len() <= 1 {
            for (r, base, region, group) in work {
                for (index, op) in group {
                    let hull = op.span();
                    shadow.claim(0, r, base + hull.start..base + hull.end);
                    costs[index] = region.merge_move(op.mover, op.stayer, op.target.as_deref());
                }
            }
            shadow.assert_disjoint("apply_merge_batch");
            return costs;
        }
        let workers = threads.min(work.len());
        let queue = Mutex::new(std::mem::take(&mut work));
        let harvested: Vec<Vec<(usize, u64)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let queue = &queue;
                    let shadow = &shadow;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let Some((r, base, region, group)) =
                                // mla-lint: allow(panic-safety): a poisoned queue means a worker already panicked; propagating is the only sound response
                                queue.lock().expect("queue poisoned").pop()
                            else {
                                return local;
                            };
                            for (index, op) in group {
                                let hull = op.span();
                                shadow.claim(worker, r, base + hull.start..base + hull.end);
                                local.push((
                                    index,
                                    region.merge_move(op.mover, op.stayer, op.target.as_deref()),
                                ));
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                // mla-lint: allow(panic-safety): worker panics are re-raised on the coordinating thread by design
                .map(|handle| handle.join().expect("batch worker panicked"))
                .collect()
        });
        shadow.assert_disjoint("apply_merge_batch");
        for (index, cost) in harvested.into_iter().flatten() {
            costs[index] = cost;
        }
        costs
    }
}

/// One unit of partitioned batch work: `(region index, region base
/// offset, exclusive region access, localized ops with original index)`.
type RegionWork<'a> = (
    usize,
    usize,
    &'a mut SegmentArrangement,
    Vec<(usize, MergeOp)>,
);

impl fmt::Debug for ShardedArrangement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedArrangement")
            .field("n", &self.len())
            .field("regions", &self.region_count())
            .finish_non_exhaustive()
    }
}

impl PartialEq for ShardedArrangement {
    fn eq(&self, other: &Self) -> bool {
        self.bounds == other.bounds && self.regions.iter().zip(&other.regions).all(|(a, b)| a == b)
    }
}

impl Eq for ShardedArrangement {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_lookups_across_regions() {
        let arr = ShardedArrangement::with_regions(&[3, 5, 2]);
        assert_eq!(arr.len(), 10);
        assert_eq!(arr.region_count(), 3);
        assert_eq!(arr.region_range(1), 3..8);
        assert_eq!(arr.region_of(7), 1);
        for p in 0..10 {
            assert_eq!(arr.node_at(p), Node::new(p));
            assert_eq!(arr.position_of(Node::new(p)), p);
        }
        assert_eq!(arr.to_permutation(), Permutation::identity(10));
    }

    #[test]
    fn region_local_ops_match_dense() {
        let mut sharded = ShardedArrangement::with_regions(&[4, 6]);
        let mut dense = Permutation::identity(10);
        for (src, dest) in [(0..2usize, 2usize), (4..7, 6), (8..10, 4)] {
            assert_eq!(
                sharded.move_block(src.clone(), dest),
                dense.move_block(src, dest)
            );
        }
        assert_eq!(sharded.reverse_block(5..9), dense.reverse_block(5..9));
        assert_eq!(
            sharded.swap_adjacent_blocks(0..2, 2..4),
            Arrangement::swap_adjacent_blocks(&mut dense, 0..2, 2..4)
        );
        assert_eq!(sharded.to_permutation(), dense);
        let nodes = [Node::new(4), Node::new(5)];
        assert_eq!(
            sharded.contiguous_range(&nodes),
            Arrangement::contiguous_range(&dense, &nodes)
        );
    }

    #[test]
    fn merge_move_and_kendall() {
        let mut arr = ShardedArrangement::with_regions(&[6, 4]);
        // Merge {0,1} (mover) into {4,5} within region 0.
        let cost = arr.merge_move(0..2, 4..6, None);
        assert_eq!(cost, 4);
        assert_eq!(
            arr.to_permutation().to_index_vec(),
            vec![2, 3, 0, 1, 4, 5, 6, 7, 8, 9]
        );
        let target = arr.to_permutation();
        assert_eq!(arr.kendall_to(&target), 0);
        assert_eq!(arr.kendall_to(&Permutation::identity(10)), 4);
    }

    #[test]
    fn assign_region_preserving() {
        let mut arr = ShardedArrangement::with_regions(&[3, 3]);
        let target = Permutation::from_indices(&[2, 1, 0, 3, 5, 4]).unwrap();
        let cost = arr.assign(&target);
        assert_eq!(cost, 4); // 3 inversions in region 0 + 1 in region 1
        assert_eq!(arr.to_permutation(), target);
    }

    #[test]
    #[should_panic(expected = "region-preserving")]
    fn assign_rejects_region_crossing_targets() {
        let mut arr = ShardedArrangement::with_regions(&[3, 3]);
        let target = Permutation::from_indices(&[3, 1, 2, 0, 4, 5]).unwrap();
        let _ = arr.assign(&target);
    }

    #[test]
    #[should_panic(expected = "region-local")]
    fn cross_region_move_panics() {
        let mut arr = ShardedArrangement::with_regions(&[4, 4]);
        let _ = arr.move_block(2..6, 0);
    }

    #[test]
    #[should_panic(expected = "region-local")]
    fn cross_region_destination_panics() {
        let mut arr = ShardedArrangement::with_regions(&[4, 4]);
        let _ = arr.move_block(0..2, 5);
    }

    #[test]
    fn batch_apply_is_thread_count_invariant() {
        let sizes = [5usize, 7, 6, 4];
        let ops = || {
            vec![
                MergeOp {
                    mover: 0..2,
                    stayer: 3..5,
                    target: None,
                },
                MergeOp {
                    mover: 9..12,
                    stayer: 5..7,
                    target: None,
                },
                MergeOp {
                    mover: 12..13,
                    stayer: 16..18,
                    target: None,
                },
                MergeOp {
                    mover: 20..21,
                    stayer: 21..22,
                    target: Some(vec![Node::new(21), Node::new(20)]),
                },
            ]
        };
        let mut reference = ShardedArrangement::with_regions(&sizes);
        let sequential: Vec<u64> = ops()
            .into_iter()
            .map(|op| reference.merge_move(op.mover, op.stayer, op.target.as_deref()))
            .collect();
        for threads in [1usize, 2, 4, 8] {
            let mut arr = ShardedArrangement::with_regions(&sizes);
            let costs = arr.apply_merge_batch(ops(), threads);
            assert_eq!(costs, sequential, "costs diverged at T={threads}");
            assert_eq!(arr, reference, "arrangement diverged at T={threads}");
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    fn shadow_checker_catches_overlapping_batch() {
        // Two overlapping merges in region 0 (spans 0..4 and 2..6) plus
        // one in region 1 so the partitioned path engages. The planner's
        // ConflictGraph would never seal this batch; feeding it directly
        // must trip the debug-build shadow checker at commit.
        let ops = vec![
            MergeOp {
                mover: 0..2,
                stayer: 2..4,
                target: None,
            },
            MergeOp {
                mover: 2..4,
                stayer: 4..6,
                target: None,
            },
            MergeOp {
                mover: 8..9,
                stayer: 9..10,
                target: None,
            },
        ];
        let err = std::panic::catch_unwind(move || {
            let mut arr = ShardedArrangement::with_regions(&[8, 4]);
            arr.apply_merge_batch(ops, 2)
        })
        .expect_err("overlapping batch must trip the shadow checker");
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("overlapping write claims"), "{message}");
    }

    #[test]
    fn single_region_is_fully_general() {
        let mut sharded = ShardedArrangement::identity(8);
        let mut segment = SegmentArrangement::identity(8);
        assert_eq!(sharded.move_block(1..3, 5), segment.move_block(1..3, 5));
        assert_eq!(sharded.to_permutation(), segment.to_permutation());
        assert_eq!(ShardedArrangement::identity(0).len(), 0);
    }
}
