//! Pair-set (`L_π`) utilities.
//!
//! The paper's analysis is phrased in terms of the set `L_π` of ordered node
//! pairs `(x, y)` with `x` left of `y` in the permutation `π`. This module
//! provides the counting primitives used to evaluate the closed-form
//! probabilities of Lemma 3 and Lemma 10 and the `|L_{π0} \ L_{πOpt}|`
//! potential that lower-bounds the offline optimum (Observation 7):
//!
//! * [`concordant_pairs`] — `|X × Y ∩ L_π|`: pairs with the `X` node left of
//!   the `Y` node;
//! * [`pair_set_difference`] — `|L_a \ L_b|`, which equals the Kendall tau
//!   distance;
//! * [`internal_concordant_pairs`] — `|L_→T ∩ L_π|` for an oriented block.

use crate::inversions::cross_inversions_sorted;
use crate::node::Node;
use crate::perm::Permutation;

/// Counts pairs `(x, y) ∈ X × Y` such that `x` is left of `y` in `pi` —
/// the quantity `|X × Y ∩ L_π|` from Lemma 3 of the paper.
///
/// `X` and `Y` must be disjoint node sets; this is not checked (shared nodes
/// are counted according to position comparisons, with a node never counted
/// against itself).
///
/// Runs in `O((|X| + |Y|) log(|X| + |Y|))`.
///
/// # Examples
///
/// ```
/// use mla_permutation::{concordant_pairs, Node, Permutation};
///
/// let pi = Permutation::from_indices(&[0, 2, 1, 3]).unwrap();
/// let x = [Node::new(0), Node::new(1)];
/// let y = [Node::new(2), Node::new(3)];
/// // (0,2), (0,3), (1,3) are concordant; (1,2) is not.
/// assert_eq!(concordant_pairs(&pi, &x, &y), 3);
/// ```
#[must_use]
pub fn concordant_pairs(pi: &Permutation, x: &[Node], y: &[Node]) -> u64 {
    let mut x_pos: Vec<u32> = x.iter().map(|&v| pi.position_of(v) as u32).collect();
    let mut y_pos: Vec<u32> = y.iter().map(|&v| pi.position_of(v) as u32).collect();
    x_pos.sort_unstable();
    y_pos.sort_unstable();
    // Total pairs minus pairs where the X node is right of the Y node.
    let total = (x.len() as u64) * (y.len() as u64);
    total - cross_inversions_sorted(&x_pos, &y_pos)
}

/// Counts `|L_a \ L_b|`: ordered pairs that are left-to-right in `a` but not
/// in `b`. For permutations over the same node set this equals the Kendall
/// tau distance `d(a, b)`; the function exists to make analysis code read
/// like the paper.
///
/// # Panics
///
/// Panics if the permutations have different lengths.
#[must_use]
pub fn pair_set_difference(a: &Permutation, b: &Permutation) -> u64 {
    a.kendall_distance(b)
}

/// Counts pairs `(t, t')` of nodes of the block `oriented` (given in a fixed
/// orientation order) such that `t` precedes `t'` in the orientation **and**
/// `t` is left of `t'` in `pi` — the quantity `|L_→T ∩ L_π|` from Lemma 10.
///
/// Runs in `O(m log m)` for a block of `m` nodes.
///
/// # Examples
///
/// ```
/// use mla_permutation::{internal_concordant_pairs, Node, Permutation};
///
/// let pi = Permutation::from_indices(&[2, 0, 1]).unwrap();
/// let orientation = [Node::new(0), Node::new(1), Node::new(2)];
/// // Orientation pairs: (0,1), (0,2), (1,2). In pi only (0,1) agrees.
/// assert_eq!(internal_concordant_pairs(&pi, &orientation), 1);
/// ```
#[must_use]
pub fn internal_concordant_pairs(pi: &Permutation, oriented: &[Node]) -> u64 {
    let positions: Vec<u32> = oriented.iter().map(|&v| pi.position_of(v) as u32).collect();
    let m = positions.len() as u64;
    let total = m * m.saturating_sub(1) / 2;
    total - crate::inversions::count_inversions(&positions)
}

/// Enumerates `L_π` as ordered pairs, leftmost-first. Quadratic; intended
/// for tests and tiny instances only.
#[must_use]
pub fn left_pairs(pi: &Permutation) -> Vec<(Node, Node)> {
    let nodes = pi.as_nodes();
    let mut pairs = Vec::with_capacity(nodes.len() * nodes.len().saturating_sub(1) / 2);
    for i in 0..nodes.len() {
        for j in (i + 1)..nodes.len() {
            pairs.push((nodes[i], nodes[j]));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perm(indices: &[usize]) -> Permutation {
        Permutation::from_indices(indices).unwrap()
    }

    fn nodes(indices: &[usize]) -> Vec<Node> {
        indices.iter().map(|&i| Node::new(i)).collect()
    }

    #[test]
    fn concordant_pairs_extremes() {
        let pi = perm(&[0, 1, 2, 3, 4, 5]);
        let x = nodes(&[0, 1, 2]);
        let y = nodes(&[3, 4, 5]);
        assert_eq!(concordant_pairs(&pi, &x, &y), 9);
        assert_eq!(concordant_pairs(&pi, &y, &x), 0);
    }

    #[test]
    fn concordant_pairs_interleaved() {
        let pi = perm(&[0, 3, 1, 4, 2, 5]);
        let x = nodes(&[0, 1, 2]);
        let y = nodes(&[3, 4, 5]);
        // Naive count.
        let mut naive = 0;
        for &a in &x {
            for &b in &y {
                if pi.is_left_of(a, b) {
                    naive += 1;
                }
            }
        }
        assert_eq!(concordant_pairs(&pi, &x, &y), naive);
        assert_eq!(
            concordant_pairs(&pi, &x, &y) + concordant_pairs(&pi, &y, &x),
            9
        );
    }

    #[test]
    fn concordant_pairs_empty_sets() {
        let pi = perm(&[0, 1]);
        assert_eq!(concordant_pairs(&pi, &[], &nodes(&[0])), 0);
        assert_eq!(concordant_pairs(&pi, &nodes(&[0]), &[]), 0);
    }

    #[test]
    fn pair_set_difference_is_distance() {
        let a = perm(&[0, 1, 2, 3]);
        let b = perm(&[1, 3, 0, 2]);
        assert_eq!(pair_set_difference(&a, &b), a.kendall_distance(&b));
    }

    #[test]
    fn internal_concordant_extremes() {
        let pi = perm(&[0, 1, 2, 3]);
        let fwd = nodes(&[0, 1, 2, 3]);
        let rev = nodes(&[3, 2, 1, 0]);
        assert_eq!(internal_concordant_pairs(&pi, &fwd), 6);
        assert_eq!(internal_concordant_pairs(&pi, &rev), 0);
    }

    #[test]
    fn internal_concordant_complement() {
        // For any orientation, forward + reversed counts = C(m, 2).
        let pi = perm(&[4, 0, 3, 1, 2]);
        let fwd = nodes(&[1, 3, 0, 4]);
        let rev: Vec<Node> = fwd.iter().rev().copied().collect();
        let m = fwd.len() as u64;
        assert_eq!(
            internal_concordant_pairs(&pi, &fwd) + internal_concordant_pairs(&pi, &rev),
            m * (m - 1) / 2
        );
    }

    #[test]
    fn left_pairs_enumeration() {
        let pi = perm(&[1, 0, 2]);
        let pairs = left_pairs(&pi);
        assert_eq!(
            pairs,
            vec![
                (Node::new(1), Node::new(0)),
                (Node::new(1), Node::new(2)),
                (Node::new(0), Node::new(2)),
            ]
        );
    }

    #[test]
    fn distance_equals_left_pair_disagreements() {
        // |L_a \ L_b| computed naively equals kendall distance.
        let a = perm(&[2, 0, 3, 1]);
        let b = perm(&[0, 1, 2, 3]);
        let la = left_pairs(&a);
        let mut disagreements = 0u64;
        for (x, y) in la {
            if !b.is_left_of(x, y) {
                disagreements += 1;
            }
        }
        assert_eq!(disagreements, a.kendall_distance(&b));
    }
}
