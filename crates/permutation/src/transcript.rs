//! Explicit adjacent-swap transcripts.
//!
//! The cost model counts *adjacent transpositions*, and the block
//! operations on [`Permutation`] report their cost as closed-form counts.
//! This module makes those counts **executable**: it generates the actual
//! sequence of adjacent swaps realizing a block move, block reversal or
//! block swap, so tests (and skeptical users) can replay them one by one
//! and confirm that
//!
//! 1. the sequence length equals the reported cost, and
//! 2. replaying the sequence reproduces the block operation exactly.

use crate::perm::Permutation;

/// A sequence of adjacent transpositions; entry `p` means "swap positions
/// `p` and `p + 1`".
///
/// # Examples
///
/// ```
/// use mla_permutation::{Permutation, SwapTranscript};
///
/// let mut perm = Permutation::identity(4);
/// let transcript = SwapTranscript::for_block_move(0..2, 2, 4);
/// assert_eq!(transcript.len(), 4); // 2 nodes × 2 crossed positions
/// transcript.apply(&mut perm);
/// assert_eq!(perm.to_index_vec(), vec![2, 3, 0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SwapTranscript {
    swaps: Vec<usize>,
}

impl SwapTranscript {
    /// The empty transcript.
    #[must_use]
    pub fn new() -> Self {
        SwapTranscript::default()
    }

    /// Number of adjacent swaps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.swaps.len()
    }

    /// Returns `true` if no swaps are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.swaps.is_empty()
    }

    /// The recorded swap positions.
    #[must_use]
    pub fn swaps(&self) -> &[usize] {
        &self.swaps
    }

    /// Applies the transcript to a permutation, one adjacent swap at a
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if a swap position is out of bounds for `perm`.
    pub fn apply(&self, perm: &mut Permutation) {
        for &position in &self.swaps {
            perm.swap_adjacent(position);
        }
    }

    /// The transcript realizing
    /// [`Permutation::move_block`]`(src, dest)` on a permutation of `n`
    /// nodes: bubble the block one position at a time.
    ///
    /// # Panics
    ///
    /// Panics if the operation would be out of bounds.
    #[must_use]
    pub fn for_block_move(src: std::ops::Range<usize>, dest: usize, n: usize) -> Self {
        assert!(src.end <= n, "block {src:?} out of bounds for length {n}");
        let len = src.len();
        assert!(dest + len <= n, "destination {dest} out of bounds");
        let mut swaps = Vec::new();
        if len == 0 {
            return SwapTranscript { swaps };
        }
        if dest > src.start {
            // Move right: repeatedly swap the element just after the block
            // across the whole block (equivalently, bubble the block right
            // one slot per round).
            for shift in 0..(dest - src.start) {
                let block_start = src.start + shift;
                // The foreign element sits at block_start + len; walk it
                // left across the block.
                for p in (block_start..block_start + len).rev() {
                    swaps.push(p);
                }
            }
        } else {
            // Move left symmetrically.
            for shift in 0..(src.start - dest) {
                let block_start = src.start - shift;
                // Foreign element at block_start - 1 walks right across.
                for p in (block_start - 1)..(block_start - 1 + len) {
                    swaps.push(p);
                }
            }
        }
        SwapTranscript { swaps }
    }

    /// The transcript realizing [`Permutation::reverse_block`]`(range)`:
    /// selection-style bubbling, `C(len, 2)` swaps.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn for_block_reverse(range: std::ops::Range<usize>, n: usize) -> Self {
        assert!(
            range.end <= n,
            "block {range:?} out of bounds for length {n}"
        );
        let mut swaps = Vec::new();
        // For i from range.start..range.end, bubble the element currently
        // at range.end-1 left to position i: reverses the block in
        // C(len, 2) adjacent swaps.
        for i in range.clone() {
            for p in (i..range.end - 1).rev() {
                swaps.push(p);
            }
        }
        SwapTranscript { swaps }
    }

    /// The transcript realizing
    /// [`Permutation::swap_adjacent_blocks`]`(left, right)`:
    /// `|left| × |right|` swaps.
    ///
    /// # Panics
    ///
    /// Panics if the blocks are not adjacent or out of bounds.
    #[must_use]
    pub fn for_block_swap(
        left: std::ops::Range<usize>,
        right: std::ops::Range<usize>,
        n: usize,
    ) -> Self {
        assert_eq!(left.end, right.start, "blocks must be adjacent");
        assert!(right.end <= n, "blocks out of bounds for length {n}");
        // Swapping two adjacent blocks = moving the left block right by
        // |right| positions.
        Self::for_block_move(left.clone(), left.start + right.len(), n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn block_move_transcript_matches_operation() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..60 {
            let n = rng.gen_range(1..14);
            let base = Permutation::random(n, &mut rng);
            let start = rng.gen_range(0..n);
            let end = rng.gen_range(start..=n);
            let len = end - start;
            let dest = rng.gen_range(0..=n - len);

            let mut direct = base.clone();
            let cost = direct.move_block(start..end, dest);

            let transcript = SwapTranscript::for_block_move(start..end, dest, n);
            let mut replayed = base.clone();
            transcript.apply(&mut replayed);

            assert_eq!(transcript.len() as u64, cost, "length must equal cost");
            assert_eq!(replayed, direct, "replay must reproduce the operation");
        }
    }

    #[test]
    fn block_reverse_transcript_matches_operation() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..60 {
            let n = rng.gen_range(1..14);
            let base = Permutation::random(n, &mut rng);
            let start = rng.gen_range(0..n);
            let end = rng.gen_range(start..=n);

            let mut direct = base.clone();
            let cost = direct.reverse_block(start..end);

            let transcript = SwapTranscript::for_block_reverse(start..end, n);
            let mut replayed = base.clone();
            transcript.apply(&mut replayed);

            assert_eq!(transcript.len() as u64, cost);
            assert_eq!(replayed, direct);
        }
    }

    #[test]
    fn block_swap_transcript_matches_operation() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..60 {
            let n = rng.gen_range(2..14);
            let base = Permutation::random(n, &mut rng);
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(a..=n);
            let c = rng.gen_range(b..=n);
            if a == b || b == c {
                continue;
            }
            let mut direct = base.clone();
            let cost = direct.swap_adjacent_blocks(a..b, b..c);

            let transcript = SwapTranscript::for_block_swap(a..b, b..c, n);
            let mut replayed = base.clone();
            transcript.apply(&mut replayed);

            assert_eq!(transcript.len() as u64, cost);
            assert_eq!(replayed, direct);
        }
    }

    #[test]
    fn empty_and_identity_transcripts() {
        let transcript = SwapTranscript::for_block_move(1..1, 0, 3);
        assert!(transcript.is_empty());
        let transcript = SwapTranscript::for_block_move(0..2, 0, 3);
        assert!(transcript.is_empty());
        assert!(SwapTranscript::new().is_empty());
        assert_eq!(SwapTranscript::new().swaps(), &[] as &[usize]);
    }
}
