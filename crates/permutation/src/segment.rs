//! [`SegmentArrangement`]: the segment-based arrangement backend.
//!
//! Every revealed graph in the paper is a disjoint union of cliques or
//! lines, so an online algorithm's arrangement is always a sequence of
//! **component segments**. This backend stores the arrangement as an
//! ordered list of such segments over an implicit-key treap (an
//! order-statistic index on segment lengths), so that the block operations
//! of the update mechanics splice whole segments in `O(log n)` with costs
//! computed in closed form from segment lengths and offsets — instead of
//! the dense backend's `O(n)` memmove per operation.
//!
//! * Position/node lookups walk the treap: `O(log n)`.
//! * [`move_block`](SegmentArrangement::move_block) /
//!   [`swap_adjacent_blocks`](SegmentArrangement::swap_adjacent_blocks)
//!   on segment-aligned ranges are pure tree splices: `O(log n)`.
//! * [`reverse_block`](SegmentArrangement::reverse_block) of a single
//!   segment flips a lazy orientation bit: `O(log n)`.
//! * [`coalesce_range`](SegmentArrangement::coalesce_range) — the hint the
//!   update mechanics emit after each merge — compacts the two merging
//!   segments into one, amortized against the merge size (the graph layer
//!   already pays the same to snapshot the components).
//! * Ranges that do **not** align with segment boundaries fall back to
//!   splitting or rebuilding the touched segments (`O(segment)`), so the
//!   backend is correct for arbitrary operation sequences, merely fastest
//!   on the component-structured ones the algorithms produce.
//!
//! The backend is observably identical to the dense [`Permutation`]:
//! same layouts, same costs, same panics (see the equivalence property
//! tests in `tests/properties.rs`).
//!
//! **Supported range:** at most [`MAX_NODES`](crate::MAX_NODES) =
//! `u32::MAX` nodes. Positions, in-segment offsets and arena slot ids are
//! stored as `u32` (with `u32::MAX` as the arena's null sentinel);
//! constructors reject larger node counts up front instead of silently
//! truncating those fields.

use std::fmt;
use std::ops::Range;
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};

use crate::arrangement::Arrangement;
use crate::inversions::count_inversions;
use crate::node::Node;
use crate::perm::Permutation;

/// Arena null marker.
const NIL: u32 = u32::MAX;

/// Cap on recycled content buffers held by the arena's pool: enough to
/// absorb the alloc/free churn of a merge-heavy run (each merge frees at
/// most one buffer), small enough that the pool never holds more than a
/// few KB of empty capacity.
const POOL_CAP: usize = 64;

/// One seqlock-published "this range is exactly this segment" fact.
/// `version == u64::MAX` means never written.
#[derive(Debug)]
struct MemoSlot {
    /// Sequence word: even = stable, odd = a publish is in progress.
    seq: AtomicU64,
    /// Arrangement version the fact was recorded at.
    version: AtomicU64,
    /// The range's start position.
    start: AtomicU64,
    /// Packed `len << 32 | slot` (both bounded by the `u32` capacity).
    len_slot: AtomicU64,
}

impl MemoSlot {
    fn empty() -> Self {
        MemoSlot {
            seq: AtomicU64::new(0),
            version: AtomicU64::new(u64::MAX),
            start: AtomicU64::new(0),
            len_slot: AtomicU64::new(0),
        }
    }
}

/// The last two verified range→segment facts (the two blocks a merge
/// update locates), so the update itself needs no rediscovery walks.
///
/// Published through a two-entry **seqlock** over plain atomics: readers
/// and writers never block each other. The previous `Mutex` + `try_lock`
/// scheme kept the type `Sync` but serialized every recall through one
/// lock word and dropped facts whenever peeks contended; here contention
/// costs at most a missed cache entry. Torn reads are impossible — a
/// reader re-checks the sequence word after reading the fields and
/// simply misses on any concurrent publish, which is always safe: the
/// memo is a pure cache, consulted only at the version it was recorded
/// (any mutation bumps the version through `&mut self`).
#[derive(Debug)]
struct SegMemo {
    entries: [MemoSlot; 2],
    /// Rotating write cursor: alternating publishes overwrite the older
    /// entry, preserving the keep-the-last-two semantics.
    cursor: AtomicUsize,
}

impl SegMemo {
    fn empty() -> Self {
        SegMemo {
            entries: [MemoSlot::empty(), MemoSlot::empty()],
            cursor: AtomicUsize::new(0),
        }
    }

    /// Publishes a fact; skips (never blocks) under contention.
    fn publish(&self, version: u64, start: usize, len: u32, slot: u32) {
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed) & 1;
        let entry = &self.entries[idx];
        let seq = entry.seq.load(Ordering::Relaxed);
        if seq & 1 == 1 {
            return;
        }
        if entry
            .seq
            .compare_exchange(
                seq,
                seq.wrapping_add(1),
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_err()
        {
            return;
        }
        entry.version.store(version, Ordering::Relaxed);
        entry.start.store(start as u64, Ordering::Relaxed);
        entry
            .len_slot
            .store((u64::from(len) << 32) | u64::from(slot), Ordering::Relaxed);
        entry.seq.store(seq.wrapping_add(2), Ordering::Release);
    }

    /// Looks up a fact for `range` recorded at `version`; misses (rather
    /// than blocks) on concurrent publishes.
    fn recall(&self, version: u64, range: &Range<usize>) -> Option<u32> {
        for entry in &self.entries {
            let Some((fact_version, start, len_slot)) = Self::read_entry(entry) else {
                continue;
            };
            if fact_version == version
                && start as usize == range.start
                && (len_slot >> 32) as usize == range.len()
            {
                return Some(len_slot as u32);
            }
        }
        None
    }

    /// Seqlock read of one entry: `None` on a concurrent publish.
    fn read_entry(entry: &MemoSlot) -> Option<(u64, u64, u64)> {
        let seq = entry.seq.load(Ordering::Acquire);
        if seq & 1 == 1 {
            return None;
        }
        let version = entry.version.load(Ordering::Relaxed);
        let start = entry.start.load(Ordering::Relaxed);
        let len_slot = entry.len_slot.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        (entry.seq.load(Ordering::Relaxed) == seq).then_some((version, start, len_slot))
    }

    /// A point-in-time copy (for `Clone`); entries caught mid-publish
    /// come out empty, which only costs a possible rediscovery walk.
    fn snapshot(&self) -> SegMemo {
        let copy = SegMemo::empty();
        for (i, entry) in self.entries.iter().enumerate() {
            if let Some((version, start, len_slot)) = Self::read_entry(entry) {
                copy.entries[i].version.store(version, Ordering::Relaxed);
                copy.entries[i].start.store(start, Ordering::Relaxed);
                copy.entries[i].len_slot.store(len_slot, Ordering::Relaxed);
            }
        }
        copy.cursor
            .store(self.cursor.load(Ordering::Relaxed), Ordering::Relaxed);
        copy
    }
}

/// SplitMix64 — deterministic treap priorities from an allocation counter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hot treap-navigation fields as parallel `u32` arrays (SoA).
///
/// The old AoS layout interleaved each segment's 24-byte `Vec` header
/// with its tree links, so every descent hop dragged a 48-byte node
/// through the cache. Here one hop touches ~16 bytes of dense `u32`
/// arrays (`left`/`right` or `parent`, `subtree`, `len`), and the `len`
/// mirror keeps descents off the content arrays entirely. All counts are
/// bounded by the backend's [`MAX_NODES`](crate::MAX_NODES) capacity, so
/// `u32` everywhere; 32 priority bits keep treap collisions rare enough
/// at any supported size (ties only cost a slightly lopsided merge).
#[derive(Debug, Clone, Default)]
struct SegTree {
    /// Treap heap priority (deterministic, from the allocation counter).
    prio: Vec<u32>,
    left: Vec<u32>,
    right: Vec<u32>,
    parent: Vec<u32>,
    /// Total node count of the subtree rooted at the slot.
    subtree: Vec<u32>,
    /// Node count of the slot's own segment — a mirror of
    /// `content[slot].nodes.len()`, kept in sync by every content
    /// mutator (`0` for free slots).
    len: Vec<u32>,
}

impl SegTree {
    fn with_capacity(n: usize) -> Self {
        SegTree {
            prio: Vec::with_capacity(n),
            left: Vec::with_capacity(n),
            right: Vec::with_capacity(n),
            parent: Vec::with_capacity(n),
            subtree: Vec::with_capacity(n),
            len: Vec::with_capacity(n),
        }
    }

    /// Appends one zeroed slot to every array.
    fn push_slot(&mut self) {
        self.prio.push(0);
        self.left.push(NIL);
        self.right.push(NIL);
        self.parent.push(NIL);
        self.subtree.push(0);
        self.len.push(0);
    }

    fn clear(&mut self) {
        self.prio.clear();
        self.left.clear();
        self.right.clear();
        self.parent.clear();
        self.subtree.clear();
        self.len.clear();
    }
}

/// Cold per-segment payload, only touched when a lookup or splice
/// actually reaches the segment's content.
#[derive(Debug, Clone)]
struct SegContent {
    /// Content in storage order; read right-to-left when `reversed`.
    nodes: Vec<Node>,
    /// Lazy orientation: `true` means the segment reads as the reversed
    /// storage order.
    reversed: bool,
}

/// A linear arrangement stored as an ordered list of segments over an
/// implicit-key treap — `O(log n)` block splices for the segment-aligned
/// operations the online MinLA algorithms perform.
///
/// # Examples
///
/// ```
/// use mla_permutation::{Arrangement, Node, Permutation, SegmentArrangement};
///
/// let mut arr = SegmentArrangement::identity(4);
/// let cost = arr.move_block(0..2, 2);
/// assert_eq!(cost, 4);
/// assert_eq!(arr.to_permutation().to_index_vec(), vec![2, 3, 0, 1]);
/// assert_eq!(arr.position_of(Node::new(0)), 2);
/// ```
pub struct SegmentArrangement {
    /// Hot treap-navigation fields, SoA (see [`SegTree`]).
    tree: SegTree,
    /// Cold per-segment content, indexed by the same slot ids.
    content: Vec<SegContent>,
    free: Vec<u32>,
    /// Recycled content buffers (bounded by [`POOL_CAP`]): merges free
    /// one segment buffer each, and the next rebuild reuses it instead
    /// of round-tripping the allocator.
    pool: Vec<Vec<Node>>,
    root: u32,
    /// Node → arena slot of its segment.
    node_seg: Vec<u32>,
    /// Node → offset in its segment's **storage** order.
    node_off: Vec<u32>,
    /// Allocation counter feeding the deterministic priority stream.
    prio_counter: u64,
    /// Mutation counter: bumped before every structural change so the
    /// range memo below can be trusted only between mutations.
    version: u64,
    /// Seqlock-published range→segment facts; keeps the whole
    /// arrangement `Sync` without a lock: the engine's batched serving
    /// path locates a window of merges from worker threads through
    /// `&self` reads.
    memo: SegMemo,
}

impl Clone for SegmentArrangement {
    fn clone(&self) -> Self {
        SegmentArrangement {
            tree: self.tree.clone(),
            content: self.content.clone(),
            free: self.free.clone(),
            // Pooled buffers are unobservable spare capacity.
            pool: Vec::new(),
            root: self.root,
            node_seg: self.node_seg.clone(),
            node_off: self.node_off.clone(),
            prio_counter: self.prio_counter,
            version: self.version,
            memo: self.memo.snapshot(),
        }
    }
}

impl SegmentArrangement {
    /// The identity arrangement: node `i` at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`MAX_NODES`](crate::MAX_NODES) — positions,
    /// in-segment offsets and arena slot ids are `u32` (with `u32::MAX`
    /// reserved as the null sentinel), so the backend supports at most
    /// `u32::MAX` nodes. Use [`SegmentArrangement::try_identity`] for a
    /// non-panicking variant.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        // mla-lint: allow(panic-safety): documented panic; try_identity is the non-panicking variant
        Self::try_identity(n).expect("node count exceeds the segment backend's u32 capacity")
    }

    /// The identity arrangement, or
    /// [`PermutationError`](crate::PermutationError) if `n` exceeds
    /// [`MAX_NODES`](crate::MAX_NODES).
    ///
    /// # Errors
    ///
    /// Returns [`CapacityExceeded`](crate::PermutationError::CapacityExceeded)
    /// for `n > MAX_NODES`; the check runs before any allocation, so an
    /// oversized request can never leave truncated `u32` offsets behind.
    pub fn try_identity(n: usize) -> Result<Self, crate::PermutationError> {
        crate::perm::check_capacity(n)?;
        Ok(Self::from_order((0..n).map(Node::new), n))
    }

    /// Builds the segment arrangement matching a dense permutation (whose
    /// own constructors already enforce the shared `u32` capacity bound).
    #[must_use]
    pub fn from_permutation(perm: &Permutation) -> Self {
        Self::from_order(perm.iter().copied(), perm.len())
    }

    /// Builds from nodes in position order, one singleton segment per node
    /// (components start as singletons), in `O(n)`. Callers have already
    /// checked `n <= MAX_NODES`.
    fn from_order(nodes: impl Iterator<Item = Node>, n: usize) -> Self {
        debug_assert!(n <= crate::MAX_NODES, "capacity must be checked upstream");
        let mut arr = SegmentArrangement {
            tree: SegTree::with_capacity(n),
            content: Vec::with_capacity(n),
            free: Vec::new(),
            pool: Vec::new(),
            root: NIL,
            node_seg: vec![NIL; n],
            node_off: vec![0; n],
            prio_counter: 0,
            version: 0,
            memo: SegMemo::empty(),
        };
        let slots: Vec<u32> = nodes.map(|v| arr.alloc_seg(vec![v], false)).collect();
        debug_assert_eq!(slots.len(), n, "builder must supply exactly n nodes");
        let root = arr.build(&slots);
        arr.set_root(root);
        arr
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.node_seg.len()
    }

    /// Returns `true` for the empty arrangement.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.node_seg.is_empty()
    }

    /// Number of live segments (an internal structure measure: one per
    /// coalesced component in algorithm runs).
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.content.len() - self.free.len()
    }

    /// The node at `position`.
    ///
    /// # Panics
    ///
    /// Panics if `position >= self.len()`.
    #[must_use]
    pub fn node_at(&self, position: usize) -> Node {
        assert!(
            position < self.len(),
            "position {position} out of bounds for length {}",
            self.len()
        );
        let mut t = self.root;
        let mut pos = position;
        loop {
            let i = t as usize;
            let left = self.tree.left[i];
            let left_size = self.sub(left);
            let here = self.tree.len[i] as usize;
            if pos < left_size {
                t = left;
            } else if pos < left_size + here {
                let index = pos - left_size;
                let seg = &self.content[i];
                let storage = if seg.reversed {
                    here - 1 - index
                } else {
                    index
                };
                return seg.nodes[storage];
            } else {
                pos -= left_size + here;
                t = self.tree.right[i];
            }
        }
    }

    /// The position of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a node of this arrangement.
    #[must_use]
    pub fn position_of(&self, node: Node) -> usize {
        let slot = self.node_seg[node.index()];
        self.seg_start(slot) + self.in_seg_index(node)
    }

    /// Returns `true` if `a` occupies a position strictly left of `b`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    #[must_use]
    pub fn is_left_of(&self, a: Node, b: Node) -> bool {
        self.position_of(a) < self.position_of(b)
    }

    /// If the given set of (distinct) nodes occupies contiguous positions,
    /// returns that position range; otherwise `None`.
    ///
    /// Fast path: when the nodes are exactly one segment (the steady state
    /// for coalesced components) this costs `O(|nodes|)` slot comparisons
    /// plus one `O(log n)` rank query; otherwise it falls back to the
    /// dense backend's min/max scan at `O(|nodes| log n)`.
    ///
    /// # Panics
    ///
    /// Panics if any node is out of range.
    #[must_use]
    pub fn contiguous_range(&self, nodes: &[Node]) -> Option<Range<usize>> {
        if nodes.is_empty() {
            return Some(0..0);
        }
        let slot = self.node_seg[nodes[0].index()];
        if self.seg_len(slot) == nodes.len()
            && nodes.iter().all(|&v| self.node_seg[v.index()] == slot)
        {
            let start = self.seg_start(slot);
            self.remember_segment(start, nodes.len(), slot);
            return Some(start..start + nodes.len());
        }
        let mut min = usize::MAX;
        let mut max = 0usize;
        for &v in nodes {
            let p = self.position_of(v);
            min = min.min(p);
            max = max.max(p);
        }
        if max - min + 1 == nodes.len() {
            Some(min..max + 1)
        } else {
            None
        }
    }

    /// Moves the block occupying `src` so that it starts at position
    /// `dest`. Returns the closed-form cost `src.len() × |dest − src.start|`
    /// — no node is touched when the range is segment-aligned.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of bounds or `dest` would push the block
    /// past either end.
    pub fn move_block(&mut self, src: Range<usize>, dest: usize) -> u64 {
        let n = self.len();
        assert!(src.end <= n, "block {src:?} out of bounds for length {n}");
        assert!(src.start <= src.end, "invalid block range {src:?}");
        let len = src.len();
        assert!(
            dest + len <= n,
            "destination {dest} pushes block of length {len} past length {n}"
        );
        if len == 0 || dest == src.start {
            return 0;
        }
        let shift = dest.abs_diff(src.start);
        let cost = (len as u64) * (shift as u64);
        // Fast path: a segment-exact source splices as unlink + reinsert
        // (no boundary splits).
        let exact = self.exact_segment(&src);
        self.bump_version();
        if let Some(slot) = exact {
            self.unlink_seg(slot);
            self.insert_seg_at(slot, dest);
            return cost;
        }
        let (before, block, after) = self.extract(src);
        let rest = self.merge(before, after);
        let (left, right) = self.split(rest, dest);
        let joined = self.merge(left, block);
        let root = self.merge(joined, right);
        self.set_root(root);
        cost
    }

    /// Reverses the block occupying `range`. Returns the cost
    /// `C(len, 2)`. A single-segment range flips a lazy orientation bit;
    /// a multi-segment range is compacted into one reversed segment.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds.
    pub fn reverse_block(&mut self, range: Range<usize>) -> u64 {
        assert!(
            range.end <= self.len(),
            "block {range:?} out of bounds for length {}",
            self.len()
        );
        let len = range.len() as u64;
        let cost = len * len.saturating_sub(1) / 2;
        if range.len() <= 1 {
            return cost;
        }
        // Fast path: reversing a whole segment is a lazy flag flip — no
        // tree restructuring, subtree sizes unchanged (the range memo
        // stays valid: boundaries are untouched).
        if let Some(slot) = self.exact_segment(&range) {
            let seg = &mut self.content[slot as usize];
            seg.reversed = !seg.reversed;
            return cost;
        }
        self.bump_version();
        let (before, block, after) = self.extract(range);
        let block = self.reverse_detached(block);
        let joined = self.merge(before, block);
        let root = self.merge(joined, after);
        self.set_root(root);
        cost
    }

    /// Swaps two adjacent blocks, preserving internal orders. Returns the
    /// cost `left.len() × right.len()`.
    ///
    /// # Panics
    ///
    /// Panics if the blocks are not adjacent or out of bounds.
    pub fn swap_adjacent_blocks(&mut self, left: Range<usize>, right: Range<usize>) -> u64 {
        assert_eq!(
            left.end, right.start,
            "blocks {left:?} and {right:?} are not adjacent"
        );
        assert!(
            right.end <= self.len(),
            "block {right:?} out of bounds for length {}",
            self.len()
        );
        let cost = (left.len() as u64) * (right.len() as u64);
        self.bump_version();
        let root = self.root;
        let (before, rest) = self.split(root, left.start);
        let (first, rest) = self.split(rest, left.len());
        let (second, after) = self.split(rest, right.len());
        let joined = self.merge(before, second);
        let joined = self.merge(joined, first);
        let root = self.merge(joined, after);
        self.set_root(root);
        cost
    }

    /// Kendall's tau distance to a dense target, via one `O(n)`
    /// materialization and an `O(n log n)` inversion count.
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    #[must_use]
    pub fn kendall_to(&self, target: &Permutation) -> u64 {
        assert_eq!(
            self.len(),
            target.len(),
            "kendall_to: size mismatch ({} vs {})",
            self.len(),
            target.len()
        );
        let order = self.collect_all();
        let mut position = vec![0u32; self.len()];
        for (pos, v) in order.iter().enumerate() {
            position[v.index()] = pos as u32;
        }
        let seq: Vec<u32> = target.iter().map(|&v| position[v.index()]).collect();
        count_inversions(&seq)
    }

    /// Replaces the arrangement with `target`, returning the Kendall tau
    /// cost of the jump. The new state is stored as a single segment.
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    pub fn assign(&mut self, target: &Permutation) -> u64 {
        let cost = self.kendall_to(target);
        self.bump_version();
        self.tree.clear();
        self.content.clear();
        self.free.clear();
        if target.is_empty() {
            self.set_root(NIL);
            return cost;
        }
        let slot = self.alloc_seg(target.iter().copied().collect(), false);
        self.set_root(slot);
        cost
    }

    /// Compacts the segments covering `range` into one (the hint emitted
    /// by the update mechanics after each component merge). Never changes
    /// the observable arrangement. Amortized `O(min)` against the merge
    /// when one side can absorb the other in place, `O(range)` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds.
    pub fn coalesce_range(&mut self, range: Range<usize>) {
        assert!(
            range.end <= self.len(),
            "block {range:?} out of bounds for length {}",
            self.len()
        );
        if range.len() <= 1 {
            return;
        }
        // Already one segment? Both ends sharing a segment implies the
        // whole (contiguous) range does. Steady state for repeated hints.
        let first_node = self.node_at(range.start);
        let last_node = self.node_at(range.end - 1);
        let first_slot = self.node_seg[first_node.index()];
        let last_slot = self.node_seg[last_node.index()];
        if first_slot == last_slot {
            return;
        }
        // Fast path — the shape every merge update produces: exactly two
        // adjacent segments. Absorb content in place, unlink the emptied
        // tree node; no boundary splits, no re-merge of the whole range.
        if self.in_seg_index(first_node) == 0
            && self.in_seg_index(last_node) == self.seg_len(last_slot) - 1
            && self.seg_len(first_slot) + self.seg_len(last_slot) == range.len()
        {
            self.bump_version();
            let (kept, emptied) = self.absorb_adjacent_content(first_slot, last_slot);
            self.unlink_seg(emptied);
            self.free_seg(emptied);
            self.recompute_sizes_upward(kept);
            return;
        }
        self.bump_version();
        let (before, block, after) = self.extract(range);
        let block = self.compact_detached(block);
        let joined = self.merge(before, block);
        let root = self.merge(joined, after);
        self.set_root(root);
    }

    /// Materializes the arrangement as a dense [`Permutation`].
    #[must_use]
    pub fn to_permutation(&self) -> Permutation {
        Permutation::from_nodes(self.collect_all())
            // mla-lint: allow(panic-safety): segments partition the node universe by construction
            .expect("segment arrangement always holds a valid permutation")
    }

    /// [`contiguous_range`](SegmentArrangement::contiguous_range) plus
    /// the block's reading direction. On the single-segment fast path the
    /// orientation bit falls out of the node→offset map for free — no
    /// extra tree walk.
    ///
    /// # Panics
    ///
    /// Panics if any node is out of range.
    #[must_use]
    pub fn oriented_contiguous_range(&self, nodes: &[Node]) -> Option<(Range<usize>, bool)> {
        if nodes.is_empty() {
            return Some((0..0, true));
        }
        let slot = self.node_seg[nodes[0].index()];
        if self.seg_len(slot) == nodes.len()
            && nodes.iter().all(|&v| self.node_seg[v.index()] == slot)
        {
            let start = self.seg_start(slot);
            self.remember_segment(start, nodes.len(), slot);
            let forward = nodes.len() <= 1 || self.in_seg_index(nodes[0]) == 0;
            return Some((start..start + nodes.len(), forward));
        }
        let range = self.contiguous_range(nodes)?;
        let forward = nodes.len() <= 1 || self.position_of(nodes[0]) == range.start;
        Some((range, forward))
    }

    /// Completes one merge update in a single pass — see
    /// [`Arrangement::merge_move`] for the contract. The fast path (both
    /// blocks segment-exact, the steady state under coalesce hints)
    /// unlinks the mover's tree node and folds its content into the
    /// stayer's segment: ~5 tree walks per merge instead of the ~13 the
    /// primitive-op sequence costs.
    ///
    /// # Panics
    ///
    /// Panics if the ranges overlap or are out of bounds, or if
    /// `target`'s length is not the blocks' combined length.
    pub fn merge_move(
        &mut self,
        mover: Range<usize>,
        stayer: Range<usize>,
        target: Option<&[Node]>,
    ) -> u64 {
        let dest = crate::arrangement::merge_move_dest(&mover, &stayer);
        assert!(
            mover.end.max(stayer.end) <= self.len(),
            "blocks {mover:?}/{stayer:?} out of bounds for length {}",
            self.len()
        );
        if let Some(content) = target {
            assert_eq!(
                content.len(),
                mover.len() + stayer.len(),
                "target length must equal the blocks' combined length"
            );
        }
        let gap = dest.abs_diff(mover.start);
        let cost = (mover.len() as u64) * (gap as u64);
        let mover_is_left = mover.start < stayer.start;
        if mover.is_empty() || stayer.is_empty() {
            // Degenerate blocks: fall back to the primitive sequence.
            let moved = self.move_block(mover.clone(), dest);
            debug_assert_eq!(moved, cost);
            let merged = dest.min(stayer.start)..(dest + mover.len()).max(stayer.end);
            if let Some(content) = target {
                self.write_merged_block(merged.clone(), content);
            }
            self.coalesce_range(merged);
            return cost;
        }
        let mover_exact = self.exact_segment(&mover);
        let stayer_exact = self.exact_segment(&stayer);
        let (Some(mover_slot), Some(stayer_slot)) = (mover_exact, stayer_exact) else {
            let moved = self.move_block(mover.clone(), dest);
            debug_assert_eq!(moved, cost);
            let merged = dest.min(stayer.start)..(dest + mover.len()).max(stayer.end);
            if let Some(content) = target {
                self.write_merged_block(merged.clone(), content);
            }
            self.coalesce_range(merged);
            return cost;
        };
        self.bump_version();
        self.unlink_seg(mover_slot);
        match target {
            Some(content) => {
                // Rearranged merge: the merged block's content is known in
                // closed form — overwrite the stayer segment wholesale,
                // reusing its buffer.
                self.free_seg(mover_slot);
                self.replace_seg_content(stayer_slot, content);
            }
            None => {
                // Order-preserving merge: fold the mover's content into
                // the stayer at the junction side.
                self.fold_into_seg(stayer_slot, mover_slot, mover_is_left);
            }
        }
        self.recompute_sizes_upward(stayer_slot);
        cost
    }

    /// Bulk-overwrites the block at `range` with `content` — see
    /// [`Arrangement::write_merged_block`].
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds or the lengths differ.
    pub fn write_merged_block(&mut self, range: Range<usize>, content: &[Node]) {
        assert!(
            range.end <= self.len(),
            "block {range:?} out of bounds for length {}",
            self.len()
        );
        assert_eq!(
            range.len(),
            content.len(),
            "content length {} does not match block {range:?}",
            content.len()
        );
        if range.is_empty() {
            return;
        }
        let exact = self.exact_segment(&range);
        self.bump_version();
        if let Some(slot) = exact {
            self.replace_seg_content(slot, content);
            self.recompute_sizes_upward(slot);
            return;
        }
        let (before, block, after) = self.extract(range);
        self.free_subtree(block);
        let fresh = self.alloc_seg(content.to_vec(), false);
        let joined = self.merge(before, fresh);
        let root = self.merge(joined, after);
        self.set_root(root);
    }

    /// Resolves a coalesced component's block from one member in
    /// `O(log n)` — see [`Arrangement::locate_component`] for the full
    /// contract. The segment backend keeps every coalesced component as
    /// exactly one segment, so the anchor's slot *is* the block: the
    /// answer needs one array lookup plus one rank walk, never a member
    /// walk. Returns `None` when the anchor's segment length disagrees
    /// with `len` (the component is not — or not yet — one segment, e.g.
    /// mid-way through a primitive-op sequence), signalling the caller to
    /// fall back to the member-walking locate.
    ///
    /// The located range is published to the range memo, so the merge
    /// update that follows hits its segment-exact fast path without a
    /// rediscovery walk.
    ///
    /// # Panics
    ///
    /// Panics if `anchor` is out of range.
    #[must_use]
    pub fn locate_component(&self, anchor: Node, len: usize) -> Option<(Range<usize>, usize)> {
        let slot = self.node_seg[anchor.index()];
        if self.seg_len(slot) != len {
            return None;
        }
        let start = self.seg_start(slot);
        self.remember_segment(start, len, slot);
        let anchor_pos = start + self.in_seg_index(anchor);
        Some((start..start + len, anchor_pos))
    }

    /// Checks internal consistency: in-order traversal, both lookup
    /// directions, subtree sizes and the SoA length mirror must agree.
    /// Used by tests.
    #[doc(hidden)]
    #[must_use]
    pub fn check_consistent(&self) -> bool {
        let order = self.collect_all();
        if order.len() != self.len() || self.sub(self.root) != self.len() {
            return false;
        }
        if (0..self.content.len()).any(|i| self.tree.len[i] as usize != self.content[i].nodes.len())
        {
            return false;
        }
        order
            .iter()
            .enumerate()
            .all(|(pos, &v)| self.position_of(v) == pos && self.node_at(pos) == v)
    }

    /// Serializes the arrangement for the checkpoint stack: node count,
    /// priority-stream counter, then the live segments in position order
    /// (storage-order node list + lazy-reversal flag each).
    ///
    /// The treap *shape* and arena slot ids are deliberately **not**
    /// encoded — they are unobservable (every cost is closed-form in
    /// positions and sizes) and a decode rebuilds a fresh balanced treap
    /// over the same segment partition. The partition itself *is*
    /// observable: `locate_component` trusts that an algorithm run keeps
    /// every component one coalesced segment, so a checkpoint must
    /// restore the exact segment boundaries, storage orders and
    /// orientation flags, not just the flat permutation.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        crate::codec::put_len(out, self.len());
        crate::codec::put_u64(out, self.prio_counter);
        let slots = if self.root == NIL {
            Vec::new()
        } else {
            self.collect_slots(self.root)
        };
        crate::codec::put_len(out, slots.len());
        for slot in slots {
            let seg = &self.content[slot as usize];
            crate::codec::put_bool(out, seg.reversed);
            crate::codec::put_len(out, seg.nodes.len());
            for v in &seg.nodes {
                // mla-lint: allow(cast-hygiene): node ids are bounded by MAX_NODES = u32::MAX
                crate::codec::put_u32(out, v.index() as u32);
            }
        }
    }

    /// Decodes an arrangement written by
    /// [`SegmentArrangement::encode_into`], re-validating that the
    /// segments partition `0..n` (every node exactly once, no empty
    /// segment) before rebuilding the treap.
    ///
    /// # Errors
    ///
    /// [`CodecError`](crate::codec::CodecError) on truncated input or an
    /// inconsistent segment partition.
    pub fn decode_from(
        r: &mut crate::codec::ByteReader<'_>,
    ) -> Result<Self, crate::codec::CodecError> {
        use crate::codec::CodecError;
        let n = r.count(crate::MAX_NODES, "arrangement node")?;
        let prio_counter = r.u64()?;
        let seg_count = r.count(n, "segment")?;
        let mut arr = SegmentArrangement {
            tree: SegTree::with_capacity(n),
            content: Vec::with_capacity(seg_count),
            free: Vec::new(),
            pool: Vec::new(),
            root: NIL,
            node_seg: vec![NIL; n],
            node_off: vec![0; n],
            prio_counter: 0,
            version: 0,
            memo: SegMemo::empty(),
        };
        let mut seen = vec![false; n];
        let mut covered = 0usize;
        let mut slots = Vec::with_capacity(seg_count);
        for _ in 0..seg_count {
            let reversed = r.bool("segment reversal")?;
            let len = r.count(n - covered, "segment length")?;
            if len == 0 {
                return Err(CodecError::invalid("empty segment in arrangement"));
            }
            let mut nodes = Vec::with_capacity(len);
            for _ in 0..len {
                let raw = r.u32()? as usize;
                if raw >= n {
                    return Err(CodecError::invalid(format!(
                        "segment node {raw} out of range for n = {n}"
                    )));
                }
                if seen[raw] {
                    return Err(CodecError::invalid(format!(
                        "node {raw} appears in two segments"
                    )));
                }
                seen[raw] = true;
                nodes.push(Node::new(raw));
            }
            covered += len;
            slots.push(arr.alloc_seg(nodes, reversed));
        }
        if covered != n {
            return Err(CodecError::invalid(format!(
                "segments cover {covered} of {n} nodes"
            )));
        }
        let root = arr.build(&slots);
        arr.set_root(root);
        // Rebuilding drew fresh priorities from a zeroed counter; future
        // draws must continue the checkpointed stream.
        arr.prio_counter = prio_counter;
        Ok(arr)
    }

    // ---- treap internals ----------------------------------------------

    fn sub(&self, t: u32) -> usize {
        if t == NIL {
            0
        } else {
            self.tree.subtree[t as usize] as usize
        }
    }

    /// Node count of slot `t`'s own segment (the SoA `len` mirror).
    fn seg_len(&self, t: u32) -> usize {
        self.tree.len[t as usize] as usize
    }

    /// Re-syncs the `len` mirror after a content mutation of slot `t`.
    fn sync_len(&mut self, t: u32) {
        self.tree.len[t as usize] = self.content[t as usize].nodes.len() as u32;
    }

    /// Returns a content buffer to the bounded pool.
    fn recycle(&mut self, mut buf: Vec<Node>) {
        if buf.capacity() > 0 && self.pool.len() < POOL_CAP {
            buf.clear();
            self.pool.push(buf);
        }
    }

    /// A cleared buffer from the pool (grown to `capacity`), or a fresh
    /// allocation.
    fn take_buffer(&mut self, capacity: usize) -> Vec<Node> {
        match self.pool.pop() {
            Some(mut buf) => {
                buf.reserve(capacity);
                buf
            }
            None => Vec::with_capacity(capacity),
        }
    }

    fn next_prio(&mut self) -> u32 {
        self.prio_counter = self.prio_counter.wrapping_add(1);
        (splitmix64(self.prio_counter) >> 32) as u32
    }

    /// Allocates a detached segment and points its nodes' lookup entries
    /// at it.
    fn alloc_seg(&mut self, nodes: Vec<Node>, reversed: bool) -> u32 {
        let prio = self.next_prio();
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.tree.push_slot();
                self.content.push(SegContent {
                    nodes: Vec::new(),
                    reversed: false,
                });
                (self.content.len() - 1) as u32
            }
        };
        for (off, v) in nodes.iter().enumerate() {
            self.node_seg[v.index()] = slot;
            self.node_off[v.index()] = off as u32;
        }
        let i = slot as usize;
        self.tree.prio[i] = prio;
        self.tree.left[i] = NIL;
        self.tree.right[i] = NIL;
        self.tree.parent[i] = NIL;
        self.tree.subtree[i] = nodes.len() as u32;
        self.tree.len[i] = nodes.len() as u32;
        self.content[i].nodes = nodes;
        self.content[i].reversed = reversed;
        slot
    }

    fn free_seg(&mut self, slot: u32) {
        let buf = std::mem::take(&mut self.content[slot as usize].nodes);
        self.recycle(buf);
        self.tree.len[slot as usize] = 0;
        self.free.push(slot);
    }

    /// Recomputes `subtree` and re-parents the children of `t`.
    fn upd(&mut self, t: u32) {
        let i = t as usize;
        let (left, right) = (self.tree.left[i], self.tree.right[i]);
        let total = self.tree.len[i] as usize + self.sub(left) + self.sub(right);
        // mla-lint: allow(cast-hygiene): subtree node counts are bounded by MAX_NODES = u32::MAX
        self.tree.subtree[i] = total as u32;
        if left != NIL {
            self.tree.parent[left as usize] = t;
        }
        if right != NIL {
            self.tree.parent[right as usize] = t;
        }
    }

    fn set_root(&mut self, root: u32) {
        self.root = root;
        if root != NIL {
            self.tree.parent[root as usize] = NIL;
        }
    }

    /// Builds a treap from detached segments in position order, `O(n)`
    /// via the right-spine stack method.
    fn build(&mut self, slots: &[u32]) -> u32 {
        let mut spine: Vec<u32> = Vec::new();
        for &slot in slots {
            let mut last = NIL;
            while let Some(&top) = spine.last() {
                if self.tree.prio[top as usize] >= self.tree.prio[slot as usize] {
                    break;
                }
                spine.pop();
                self.upd(top);
                last = top;
            }
            self.tree.left[slot as usize] = last;
            if let Some(&top) = spine.last() {
                self.tree.right[top as usize] = slot;
            }
            spine.push(slot);
        }
        let mut root = NIL;
        while let Some(top) = spine.pop() {
            self.upd(top);
            root = top;
        }
        root
    }

    /// Rank of segment `slot`: total nodes strictly left of it, via parent
    /// pointers in `O(log n)` expected.
    fn seg_start(&self, slot: u32) -> usize {
        let mut acc = self.sub(self.tree.left[slot as usize]);
        let mut current = slot;
        let mut parent = self.tree.parent[slot as usize];
        while parent != NIL {
            let i = parent as usize;
            if self.tree.right[i] == current {
                acc += self.sub(self.tree.left[i]) + self.tree.len[i] as usize;
            }
            current = parent;
            parent = self.tree.parent[i];
        }
        acc
    }

    /// Splits off the first `k` nodes. Interior cuts split the containing
    /// segment's content (the only non-`O(log n)` case).
    fn split(&mut self, t: u32, k: usize) -> (u32, u32) {
        if t == NIL {
            debug_assert_eq!(k, 0, "split point beyond tree");
            return (NIL, NIL);
        }
        let i = t as usize;
        let (left_child, right_child, seg_len) = (
            self.tree.left[i],
            self.tree.right[i],
            self.tree.len[i] as usize,
        );
        let left_size = self.sub(left_child);
        if k <= left_size {
            let (a, b) = self.split(left_child, k);
            self.tree.left[i] = b;
            self.upd(t);
            (a, t)
        } else if k >= left_size + seg_len {
            let (a, b) = self.split(right_child, k - left_size - seg_len);
            self.tree.right[i] = a;
            self.upd(t);
            (t, b)
        } else {
            // Interior cut: split this segment's content in two.
            let cut = k - left_size;
            let tail = self.split_seg_content(t, cut);
            self.tree.right[i] = NIL;
            self.upd(t);
            let rest = self.merge(tail, right_child);
            (t, rest)
        }
    }

    /// Joins two treaps (every node of `l` left of every node of `r`).
    fn merge(&mut self, l: u32, r: u32) -> u32 {
        if l == NIL {
            return r;
        }
        if r == NIL {
            return l;
        }
        if self.tree.prio[l as usize] >= self.tree.prio[r as usize] {
            let lr = self.tree.right[l as usize];
            let m = self.merge(lr, r);
            self.tree.right[l as usize] = m;
            self.upd(l);
            l
        } else {
            let rl = self.tree.left[r as usize];
            let m = self.merge(l, rl);
            self.tree.left[r as usize] = m;
            self.upd(r);
            r
        }
    }

    /// Splits out `range` as a detached subtree: `(before, block, after)`.
    fn extract(&mut self, range: Range<usize>) -> (u32, u32, u32) {
        let root = self.root;
        let (before, rest) = self.split(root, range.start);
        let (block, after) = self.split(rest, range.len());
        (before, block, after)
    }

    /// Cuts the first `cut` arrangement-order nodes off segment `t`,
    /// keeping them in `t`; returns a new detached segment holding the
    /// remainder. `O(segment)`.
    fn split_seg_content(&mut self, t: u32, cut: usize) -> u32 {
        let i = t as usize;
        let reversed = self.content[i].reversed;
        let len = self.content[i].nodes.len();
        debug_assert!(cut > 0 && cut < len, "interior cut expected");
        if reversed {
            // Arrangement order is reversed storage: the first `cut`
            // arrangement nodes are the last `cut` storage nodes.
            let mut stored = std::mem::take(&mut self.content[i].nodes);
            let kept = stored.split_off(len - cut);
            for (off, v) in kept.iter().enumerate() {
                self.node_off[v.index()] = off as u32;
            }
            self.content[i].nodes = kept;
            self.sync_len(t);
            self.alloc_seg(stored, true)
        } else {
            let tail = self.content[i].nodes.split_off(cut);
            self.sync_len(t);
            self.alloc_seg(tail, false)
        }
    }

    /// Reverses a detached subtree: a lazy flag flip when it is a single
    /// segment, otherwise compaction into one reversed segment.
    fn reverse_detached(&mut self, block: u32) -> u32 {
        debug_assert_ne!(block, NIL);
        let i = block as usize;
        if self.tree.left[i] == NIL && self.tree.right[i] == NIL {
            let seg = &mut self.content[i];
            seg.reversed = !seg.reversed;
            return block;
        }
        let mut order = self.take_buffer(self.sub(block));
        self.collect_subtree_into(block, &mut order);
        self.free_subtree(block);
        self.alloc_seg(order, true)
    }

    /// Compacts a detached subtree into a single segment, absorbing the
    /// smaller neighbor in place when the orientation allows a tail
    /// append (the common two-segment merge case).
    fn compact_detached(&mut self, block: u32) -> u32 {
        debug_assert_ne!(block, NIL);
        if self.tree.left[block as usize] == NIL && self.tree.right[block as usize] == NIL {
            return block;
        }
        let slots = self.collect_slots(block);
        if slots.len() == 2 {
            return self.coalesce_pair(slots[0], slots[1]);
        }
        let mut order = self.take_buffer(self.sub(block));
        self.collect_subtree_into(block, &mut order);
        self.free_subtree(block);
        self.alloc_seg(order, false)
    }

    /// Merges two detached adjacent segments (`first` arrangement-left of
    /// `second`) into one, appending at a storage tail when possible.
    fn coalesce_pair(&mut self, first: u32, second: u32) -> u32 {
        // Detach both from their two-node tree.
        for &slot in &[first, second] {
            let i = slot as usize;
            self.tree.left[i] = NIL;
            self.tree.right[i] = NIL;
            self.tree.parent[i] = NIL;
            self.tree.subtree[i] = self.tree.len[i];
        }
        let (kept, emptied) = self.absorb_adjacent_content(first, second);
        self.free_seg(emptied);
        self.tree.subtree[kept as usize] = self.tree.len[kept as usize];
        kept
    }

    /// In-order nodes of a detached subtree (arrangement order).
    fn collect_subtree(&self, t: u32) -> Vec<Node> {
        let mut out = Vec::with_capacity(self.sub(t));
        self.collect_subtree_into(t, &mut out);
        out
    }

    /// [`collect_subtree`](Self::collect_subtree) into a caller-supplied
    /// (typically pooled) buffer.
    fn collect_subtree_into(&self, t: u32, out: &mut Vec<Node>) {
        let mut stack: Vec<u32> = Vec::new();
        let mut current = t;
        while current != NIL || !stack.is_empty() {
            while current != NIL {
                stack.push(current);
                current = self.tree.left[current as usize];
            }
            // mla-lint: allow(panic-safety): loop guard: the stack is non-empty when popped
            let slot = stack.pop().expect("loop guard ensures non-empty stack");
            let seg = &self.content[slot as usize];
            if seg.reversed {
                out.extend(seg.nodes.iter().rev().copied());
            } else {
                out.extend(seg.nodes.iter().copied());
            }
            current = self.tree.right[slot as usize];
        }
    }

    /// Arena slots of a detached subtree, in arrangement order.
    fn collect_slots(&self, t: u32) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stack: Vec<u32> = Vec::new();
        let mut current = t;
        while current != NIL || !stack.is_empty() {
            while current != NIL {
                stack.push(current);
                current = self.tree.left[current as usize];
            }
            // mla-lint: allow(panic-safety): loop guard: the stack is non-empty when popped
            let slot = stack.pop().expect("loop guard ensures non-empty stack");
            out.push(slot);
            current = self.tree.right[slot as usize];
        }
        out
    }

    /// Invalidates the range memo (call before any structural change).
    fn bump_version(&mut self) {
        self.version = self.version.wrapping_add(1);
    }

    /// Records a verified range→segment fact for the current version
    /// through the seqlock: under cross-thread contention the fact is
    /// simply not recorded (the memo is a pure cache).
    fn remember_segment(&self, start: usize, len: usize, slot: u32) {
        let Ok(len) = u32::try_from(len) else { return };
        self.memo.publish(self.version, start, len, slot);
    }

    /// Looks up a remembered, still-valid range→segment fact. Misses
    /// (rather than blocks) on concurrent publishes.
    fn recall_segment(&self, range: &Range<usize>) -> Option<u32> {
        self.memo.recall(self.version, range)
    }

    /// The arrangement-order index of `node` inside its segment.
    fn in_seg_index(&self, node: Node) -> usize {
        let slot = self.node_seg[node.index()];
        let off = self.node_off[node.index()] as usize;
        if self.content[slot as usize].reversed {
            self.seg_len(slot) - 1 - off
        } else {
            off
        }
    }

    /// Returns the segment slot iff `range` covers exactly one segment.
    fn exact_segment(&self, range: &Range<usize>) -> Option<u32> {
        if range.is_empty() {
            return None;
        }
        if let Some(slot) = self.recall_segment(range) {
            return Some(slot);
        }
        let first = self.node_at(range.start);
        let slot = self.node_seg[first.index()];
        (self.seg_len(slot) == range.len() && self.in_seg_index(first) == 0).then_some(slot)
    }

    /// Recomputes subtree sizes from `t` up to the root (child links and
    /// segment contents must already be final).
    fn recompute_sizes_upward(&mut self, t: u32) {
        let mut current = t;
        while current != NIL {
            let i = current as usize;
            let (left, right) = (self.tree.left[i], self.tree.right[i]);
            self.tree.subtree[i] =
                (self.tree.len[i] as usize + self.sub(left) + self.sub(right)) as u32;
            current = self.tree.parent[i];
        }
    }

    /// Unlinks segment `slot` from the tree in place by merging its
    /// children into its position. Heap order is preserved: both children
    /// carry lower priorities than `slot`, hence than its parent. The
    /// slot itself is left detached (content untouched, not freed).
    fn unlink_seg(&mut self, slot: u32) {
        let i = slot as usize;
        let (left, right, parent) = (self.tree.left[i], self.tree.right[i], self.tree.parent[i]);
        let replacement = self.merge(left, right);
        if parent == NIL {
            self.set_root(replacement);
        } else {
            let p = parent as usize;
            if self.tree.left[p] == slot {
                self.tree.left[p] = replacement;
            } else {
                self.tree.right[p] = replacement;
            }
            if replacement != NIL {
                self.tree.parent[replacement as usize] = parent;
            }
            self.recompute_sizes_upward(parent);
        }
        self.tree.left[i] = NIL;
        self.tree.right[i] = NIL;
        self.tree.parent[i] = NIL;
        self.tree.subtree[i] = self.tree.len[i];
    }

    /// Reinserts a detached segment so that it starts at `position`.
    fn insert_seg_at(&mut self, slot: u32, position: usize) {
        let root = self.root;
        let (left, right) = self.split(root, position);
        let joined = self.merge(left, slot);
        let root = self.merge(joined, right);
        self.set_root(root);
    }

    /// Absorbs the content of adjacent segment `second` (arrangement-right
    /// of `first`) into `first` — or vice versa when the orientations make
    /// that the cheap tail append — leaving both slots' tree links
    /// untouched. Returns `(kept, emptied)`.
    fn absorb_adjacent_content(&mut self, first: u32, second: u32) -> (u32, u32) {
        let first_reversed = self.content[first as usize].reversed;
        let second_reversed = self.content[second as usize].reversed;
        if !first_reversed {
            // Append `second`'s arrangement order to `first`'s tail.
            let absorbed = std::mem::take(&mut self.content[second as usize].nodes);
            self.sync_len(second);
            self.push_storage_tail(first, &absorbed, second_reversed);
            self.recycle(absorbed);
            (first, second)
        } else if second_reversed {
            // `second` reads right-to-left, so `first`'s reversed
            // arrangement order — its storage order — appends at the tail.
            let absorbed = std::mem::take(&mut self.content[first as usize].nodes);
            self.sync_len(first);
            self.push_storage_tail(second, &absorbed, false);
            self.recycle(absorbed);
            (second, first)
        } else {
            // first reversed, second forward: rebuild into `first` forward.
            let first_nodes = std::mem::take(&mut self.content[first as usize].nodes);
            let second_nodes = std::mem::take(&mut self.content[second as usize].nodes);
            self.sync_len(second);
            let mut order = self.take_buffer(first_nodes.len() + second_nodes.len());
            order.extend(first_nodes.iter().rev().copied());
            order.extend(second_nodes.iter().copied());
            self.recycle(first_nodes);
            self.recycle(second_nodes);
            self.install_seg_content(first, order);
            (first, second)
        }
    }

    /// Appends `nodes` — iterated in storage order, reversed when `rev` —
    /// onto `dst`'s storage tail, keeping the node→segment/offset maps in
    /// sync. The single place absorb bookkeeping lives.
    fn push_storage_tail(&mut self, dst: u32, nodes: &[Node], rev: bool) {
        let base = self.content[dst as usize].nodes.len();
        if rev {
            self.push_tail_inner(dst, base, nodes.iter().rev().copied());
        } else {
            self.push_tail_inner(dst, base, nodes.iter().copied());
        }
        self.sync_len(dst);
    }

    fn push_tail_inner(&mut self, dst: u32, base: usize, iter: impl Iterator<Item = Node>) {
        for (i, v) in iter.enumerate() {
            self.node_seg[v.index()] = dst;
            self.node_off[v.index()] = (base + i) as u32;
            self.content[dst as usize].nodes.push(v);
        }
    }

    /// Installs `content` as `slot`'s storage (forward order), syncing the
    /// node maps and recycling the displaced buffer. The owned-buffer
    /// sibling of `replace_seg_content`.
    fn install_seg_content(&mut self, slot: u32, content: Vec<Node>) {
        for (off, v) in content.iter().enumerate() {
            self.node_seg[v.index()] = slot;
            self.node_off[v.index()] = off as u32;
        }
        let old = std::mem::replace(&mut self.content[slot as usize].nodes, content);
        self.recycle(old);
        self.content[slot as usize].reversed = false;
        self.sync_len(slot);
    }

    /// Overwrites a (linked) segment's content in place, forward order,
    /// reusing its buffer. Subtree sizes are NOT fixed up — callers do
    /// that.
    fn replace_seg_content(&mut self, slot: u32, content: &[Node]) {
        for (off, v) in content.iter().enumerate() {
            self.node_seg[v.index()] = slot;
            self.node_off[v.index()] = off as u32;
        }
        let c = &mut self.content[slot as usize];
        c.nodes.clear();
        c.nodes.extend_from_slice(content);
        c.reversed = false;
        self.sync_len(slot);
    }

    /// Folds the content of detached segment `other` into linked segment
    /// `slot`, attaching it on the left or right side in arrangement
    /// order (preserving both internal orders). Frees `other`. Subtree
    /// sizes are NOT fixed up — callers do that.
    fn fold_into_seg(&mut self, slot: u32, other: u32, other_is_left: bool) {
        let other_nodes = std::mem::take(&mut self.content[other as usize].nodes);
        let other_reversed = self.content[other as usize].reversed;
        self.free_seg(other);
        let keep_reversed = self.content[slot as usize].reversed;
        // Cheap tail appends: arrangement-right content onto a forward
        // segment (in arrangement order), or arrangement-left content
        // onto a reversed one (in reversed arrangement order).
        if !other_is_left && !keep_reversed {
            self.push_storage_tail(slot, &other_nodes, other_reversed);
            self.recycle(other_nodes);
            return;
        }
        if other_is_left && keep_reversed {
            self.push_storage_tail(slot, &other_nodes, !other_reversed);
            self.recycle(other_nodes);
            return;
        }
        // Otherwise rebuild the merged content forward, other side first
        // or last as dictated.
        let keep_nodes = std::mem::take(&mut self.content[slot as usize].nodes);
        let mut order = self.take_buffer(keep_nodes.len() + other_nodes.len());
        let extend_arr = |order: &mut Vec<Node>, nodes: &[Node], reversed: bool| {
            if reversed {
                order.extend(nodes.iter().rev().copied());
            } else {
                order.extend(nodes.iter().copied());
            }
        };
        if other_is_left {
            extend_arr(&mut order, &other_nodes, other_reversed);
            extend_arr(&mut order, &keep_nodes, keep_reversed);
        } else {
            extend_arr(&mut order, &keep_nodes, keep_reversed);
            extend_arr(&mut order, &other_nodes, other_reversed);
        }
        self.recycle(other_nodes);
        self.recycle(keep_nodes);
        self.install_seg_content(slot, order);
    }

    fn free_subtree(&mut self, t: u32) {
        for slot in self.collect_slots(t) {
            self.free_seg(slot);
        }
    }

    fn collect_all(&self) -> Vec<Node> {
        if self.root == NIL {
            return Vec::new();
        }
        self.collect_subtree(self.root)
    }
}

impl Arrangement for SegmentArrangement {
    fn len(&self) -> usize {
        SegmentArrangement::len(self)
    }

    fn node_at(&self, position: usize) -> Node {
        SegmentArrangement::node_at(self, position)
    }

    fn position_of(&self, node: Node) -> usize {
        SegmentArrangement::position_of(self, node)
    }

    fn contiguous_range(&self, nodes: &[Node]) -> Option<Range<usize>> {
        SegmentArrangement::contiguous_range(self, nodes)
    }

    fn move_block(&mut self, src: Range<usize>, dest: usize) -> u64 {
        SegmentArrangement::move_block(self, src, dest)
    }

    fn reverse_block(&mut self, range: Range<usize>) -> u64 {
        SegmentArrangement::reverse_block(self, range)
    }

    fn swap_adjacent_blocks(&mut self, left: Range<usize>, right: Range<usize>) -> u64 {
        SegmentArrangement::swap_adjacent_blocks(self, left, right)
    }

    fn kendall_to(&self, target: &Permutation) -> u64 {
        SegmentArrangement::kendall_to(self, target)
    }

    fn assign(&mut self, target: &Permutation) -> u64 {
        SegmentArrangement::assign(self, target)
    }

    fn coalesce_range(&mut self, range: Range<usize>) {
        SegmentArrangement::coalesce_range(self, range);
    }

    fn to_permutation(&self) -> Permutation {
        SegmentArrangement::to_permutation(self)
    }

    fn oriented_contiguous_range(&self, nodes: &[Node]) -> Option<(Range<usize>, bool)> {
        SegmentArrangement::oriented_contiguous_range(self, nodes)
    }

    fn locate_component(&self, anchor: Node, len: usize) -> Option<(Range<usize>, usize)> {
        SegmentArrangement::locate_component(self, anchor, len)
    }

    fn supports_component_locate(&self) -> bool {
        true
    }

    fn merge_move(
        &mut self,
        mover: Range<usize>,
        stayer: Range<usize>,
        target: Option<&[Node]>,
    ) -> u64 {
        SegmentArrangement::merge_move(self, mover, stayer, target)
    }

    fn write_merged_block(&mut self, range: Range<usize>, content: &[Node]) {
        SegmentArrangement::write_merged_block(self, range, content);
    }
}

impl fmt::Debug for SegmentArrangement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SegmentArrangement[")?;
        for (i, v) in self.collect_all().iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", v.raw())?;
        }
        write!(f, "]")
    }
}

impl PartialEq for SegmentArrangement {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.collect_all() == other.collect_all()
    }
}

impl Eq for SegmentArrangement {}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(indices: &[usize]) -> SegmentArrangement {
        SegmentArrangement::from_permutation(&Permutation::from_indices(indices).unwrap())
    }

    #[test]
    fn identity_round_trip() {
        let arr = SegmentArrangement::identity(5);
        for i in 0..5 {
            assert_eq!(arr.node_at(i), Node::new(i));
            assert_eq!(arr.position_of(Node::new(i)), i);
        }
        assert!(arr.check_consistent());
        assert_eq!(arr.to_permutation(), Permutation::identity(5));
    }

    #[test]
    fn codec_roundtrip_preserves_partition_orientation_and_prio_stream() {
        // Build an arrangement whose segments are multi-node, reversed and
        // interleaved, then round-trip it through the byte codec.
        let mut arr = seg(&[3, 0, 1, 2, 4, 5, 6, 7]);
        arr.coalesce_range(0..3);
        arr.reverse_block(4..7);
        arr.coalesce_range(4..8);
        let order = arr.to_permutation();
        let segments = arr.segment_count();
        let mut bytes = Vec::new();
        arr.encode_into(&mut bytes);
        let mut r = crate::codec::ByteReader::new(&bytes);
        let mut back = SegmentArrangement::decode_from(&mut r).unwrap();
        r.finish().unwrap();
        assert!(back.check_consistent());
        assert_eq!(back.to_permutation(), order);
        assert_eq!(back.segment_count(), segments);
        assert_eq!(back.prio_counter, arr.prio_counter);
        // Coalesced components stay locatable after the round trip.
        let (range, _) = back.locate_component(Node::new(3), 3).unwrap();
        assert_eq!(range, 0..3);
        // Future priority draws continue the checkpointed stream.
        assert_eq!(back.next_prio(), arr.next_prio());
    }

    #[test]
    fn codec_rejects_inconsistent_partitions() {
        use crate::codec::{put_bool, put_len, put_u32, put_u64, ByteReader, CodecError};
        // Node out of range.
        let mut bad = Vec::new();
        put_len(&mut bad, 2);
        put_u64(&mut bad, 0);
        put_len(&mut bad, 1);
        put_bool(&mut bad, false);
        put_len(&mut bad, 2);
        put_u32(&mut bad, 0);
        put_u32(&mut bad, 9);
        assert!(matches!(
            SegmentArrangement::decode_from(&mut ByteReader::new(&bad)),
            Err(CodecError::Invalid { .. })
        ));
        // Duplicate node across segments.
        let mut dup = Vec::new();
        put_len(&mut dup, 2);
        put_u64(&mut dup, 0);
        put_len(&mut dup, 2);
        for _ in 0..2 {
            put_bool(&mut dup, false);
            put_len(&mut dup, 1);
            put_u32(&mut dup, 0);
        }
        assert!(matches!(
            SegmentArrangement::decode_from(&mut ByteReader::new(&dup)),
            Err(CodecError::Invalid { .. })
        ));
        // Truncated input.
        let mut arr = SegmentArrangement::identity(4);
        let mut bytes = Vec::new();
        arr.coalesce_range(0..2);
        arr.encode_into(&mut bytes);
        for cut in 0..bytes.len() {
            assert!(
                SegmentArrangement::decode_from(&mut ByteReader::new(&bytes[..cut])).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn capacity_guard_rejects_oversized_requests() {
        // The guard runs before any allocation, so asking for more nodes
        // than u32 can address fails cleanly instead of truncating.
        let oversized = crate::MAX_NODES + 1;
        assert!(matches!(
            SegmentArrangement::try_identity(oversized),
            Err(crate::PermutationError::CapacityExceeded { n }) if n == oversized
        ));
        assert!(SegmentArrangement::try_identity(4).is_ok());
    }

    #[test]
    fn empty_arrangement() {
        let arr = SegmentArrangement::identity(0);
        assert!(arr.is_empty());
        assert_eq!(arr.to_permutation(), Permutation::identity(0));
        assert_eq!(arr.contiguous_range(&[]), Some(0..0));
        assert!(arr.check_consistent());
    }

    #[test]
    fn move_block_matches_dense() {
        let mut arr = SegmentArrangement::identity(5);
        let mut pi = Permutation::identity(5);
        assert_eq!(arr.move_block(1..3, 3), pi.move_block(1..3, 3));
        assert_eq!(arr.to_permutation(), pi);
        assert!(arr.check_consistent());
        assert_eq!(arr.move_block(3..5, 1), pi.move_block(3..5, 1));
        assert_eq!(arr.to_permutation(), pi);
        assert_eq!(arr.move_block(1..1, 0), 0);
        assert_eq!(arr.move_block(0..2, 0), 0);
    }

    #[test]
    fn reverse_block_lazy_flag_and_fallback() {
        let mut arr = SegmentArrangement::identity(6);
        let mut pi = Permutation::identity(6);
        // Coalesce 2..5 into one segment, then the reversal is a bit flip.
        arr.coalesce_range(2..5);
        assert_eq!(arr.reverse_block(2..5), pi.reverse_block(2..5));
        assert_eq!(arr.to_permutation(), pi);
        // Multi-segment reversal falls back to compaction.
        assert_eq!(arr.reverse_block(0..6), pi.reverse_block(0..6));
        assert_eq!(arr.to_permutation(), pi);
        assert!(arr.check_consistent());
    }

    #[test]
    fn reversed_segment_lookups() {
        let mut arr = SegmentArrangement::identity(4);
        arr.coalesce_range(0..4);
        arr.reverse_block(0..4);
        assert_eq!(arr.position_of(Node::new(0)), 3);
        assert_eq!(arr.node_at(0), Node::new(3));
        assert!(arr.check_consistent());
    }

    #[test]
    fn swap_adjacent_blocks_matches_dense() {
        let mut arr = seg(&[0, 1, 2, 3, 4]);
        let mut pi = Permutation::from_indices(&[0, 1, 2, 3, 4]).unwrap();
        assert_eq!(arr.swap_adjacent_blocks(1..3, 3..5), 4);
        pi.swap_adjacent_blocks(1..3, 3..5);
        assert_eq!(arr.to_permutation(), pi);
        assert!(arr.check_consistent());
    }

    #[test]
    #[should_panic(expected = "not adjacent")]
    fn swap_non_adjacent_panics() {
        let mut arr = SegmentArrangement::identity(5);
        let _ = arr.swap_adjacent_blocks(0..1, 3..5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn move_block_out_of_bounds_panics() {
        let mut arr = SegmentArrangement::identity(3);
        let _ = arr.move_block(1..4, 0);
    }

    #[test]
    fn contiguous_range_fast_and_slow_paths() {
        let mut arr = seg(&[4, 2, 3, 0, 1]);
        // Slow path: nodes spread over singleton segments.
        assert_eq!(
            arr.contiguous_range(&[Node::new(2), Node::new(3)]),
            Some(1..3)
        );
        assert_eq!(arr.contiguous_range(&[Node::new(4), Node::new(3)]), None);
        // Fast path after coalescing.
        arr.coalesce_range(1..3);
        assert_eq!(arr.segment_count(), 4);
        assert_eq!(
            arr.contiguous_range(&[Node::new(2), Node::new(3)]),
            Some(1..3)
        );
        assert_eq!(arr.contiguous_range(&[Node::new(4)]), Some(0..1));
    }

    #[test]
    fn coalesce_orientation_cases() {
        // Exercise all three coalesce_pair branches via reversals.
        for (rev_left, rev_right) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut arr = SegmentArrangement::identity(6);
            let mut pi = Permutation::identity(6);
            arr.coalesce_range(0..3);
            arr.coalesce_range(3..6);
            if rev_left {
                arr.reverse_block(0..3);
                pi.reverse_block(0..3);
            }
            if rev_right {
                arr.reverse_block(3..6);
                pi.reverse_block(3..6);
            }
            arr.coalesce_range(0..6);
            assert_eq!(arr.segment_count(), 1, "({rev_left}, {rev_right})");
            assert_eq!(arr.to_permutation(), pi, "({rev_left}, {rev_right})");
            assert!(arr.check_consistent(), "({rev_left}, {rev_right})");
        }
    }

    #[test]
    fn interior_splits_of_reversed_segments() {
        let mut arr = SegmentArrangement::identity(8);
        let mut pi = Permutation::identity(8);
        arr.coalesce_range(0..8);
        arr.reverse_block(0..8);
        pi.reverse_block(0..8);
        // Move a range that cuts the single reversed segment twice.
        assert_eq!(arr.move_block(2..5, 4), pi.move_block(2..5, 4));
        assert_eq!(arr.to_permutation(), pi);
        assert!(arr.check_consistent());
    }

    #[test]
    fn kendall_and_assign_match_dense() {
        let mut arr = seg(&[2, 0, 1, 3]);
        let target = Permutation::from_indices(&[3, 1, 0, 2]).unwrap();
        let dense = Permutation::from_indices(&[2, 0, 1, 3]).unwrap();
        assert_eq!(arr.kendall_to(&target), dense.kendall_distance(&target));
        let cost = arr.assign(&target);
        assert_eq!(cost, dense.kendall_distance(&target));
        assert_eq!(arr.to_permutation(), target);
        assert_eq!(arr.assign(&target), 0);
        assert!(arr.check_consistent());
    }

    #[test]
    fn debug_format_matches_order() {
        let arr = seg(&[1, 0]);
        assert_eq!(format!("{arr:?}"), "SegmentArrangement[1 0]");
    }

    #[test]
    fn equality_is_by_arrangement_order() {
        let mut a = SegmentArrangement::identity(4);
        let b = SegmentArrangement::identity(4);
        assert_eq!(a, b);
        a.coalesce_range(0..4); // structure differs, order identical
        assert_eq!(a, b);
        a.reverse_block(0..4);
        assert_ne!(a, b);
    }

    #[test]
    fn randomized_ops_match_dense() {
        // Deterministic pseudo-random op fuzz against the dense reference.
        let mut state = 0x1234_5678_u64;
        let mut next = move |bound: usize| {
            state = splitmix64(state);
            (state % bound.max(1) as u64) as usize
        };
        for n in [1usize, 2, 3, 7, 16, 33] {
            let mut arr = SegmentArrangement::identity(n);
            let mut pi = Permutation::identity(n);
            for _ in 0..120 {
                match next(4) {
                    0 => {
                        let start = next(n + 1);
                        let end = start + next(n - start + 1);
                        let len = end - start;
                        let dest = next(n - len + 1);
                        assert_eq!(
                            arr.move_block(start..end, dest),
                            pi.move_block(start..end, dest)
                        );
                    }
                    1 => {
                        let start = next(n + 1);
                        let end = start + next(n - start + 1);
                        assert_eq!(arr.reverse_block(start..end), pi.reverse_block(start..end));
                    }
                    2 => {
                        let start = next(n + 1);
                        let mid = start + next(n - start + 1);
                        let end = mid + next(n - mid + 1);
                        assert_eq!(
                            arr.swap_adjacent_blocks(start..mid, mid..end),
                            pi.swap_adjacent_blocks(start..mid, mid..end)
                        );
                    }
                    _ => {
                        let start = next(n + 1);
                        let end = start + next(n - start + 1);
                        arr.coalesce_range(start..end);
                    }
                }
                assert_eq!(arr.to_permutation(), pi);
                assert!(arr.check_consistent());
            }
        }
    }

    #[test]
    fn locate_component_matches_walk() {
        let mut arr = SegmentArrangement::identity(8);
        arr.coalesce_range(2..5);
        // Nodes 2..5 now live in one segment: the slot-based locate must
        // agree with the member-walk contiguous_range.
        let members = [Node::new(2), Node::new(3), Node::new(4)];
        let walked = arr.contiguous_range(&members).unwrap();
        let (range, anchor_pos) = arr.locate_component(Node::new(3), 3).unwrap();
        assert_eq!(range, walked);
        assert_eq!(arr.node_at(anchor_pos), Node::new(3));
        // A length mismatch means the component is not a single segment:
        // locate must decline rather than guess.
        assert_eq!(arr.locate_component(Node::new(3), 2), None);
        assert_eq!(arr.locate_component(Node::new(0), 3), None);
    }

    #[test]
    fn locate_component_survives_reversal() {
        let mut arr = SegmentArrangement::identity(8);
        arr.coalesce_range(2..6);
        arr.reverse_block(2..6);
        let (range, anchor_pos) = arr.locate_component(Node::new(5), 4).unwrap();
        assert_eq!(range, 2..6);
        assert_eq!(arr.node_at(anchor_pos), Node::new(5));
        assert_eq!(anchor_pos, 2);
    }

    #[test]
    fn range_memo_is_safe_under_concurrent_readers() {
        // The seqlock memo must never serve a torn entry: every recall hit
        // used by the exact-segment fast path has to name the segment that
        // actually covers the queried range. Hammer it from many readers.
        let n = 64usize;
        let mut arr = SegmentArrangement::identity(n);
        for block in 0..n / 8 {
            arr.coalesce_range(block * 8..(block + 1) * 8);
        }
        let arr = &arr;
        std::thread::scope(|scope| {
            for t in 0..4 {
                scope.spawn(move || {
                    for round in 0..200 {
                        let block = (t * 7 + round) % (n / 8);
                        let start = block * 8;
                        let anchor = arr.node_at(start + round % 8);
                        let (range, anchor_pos) = arr.locate_component(anchor, 8).unwrap();
                        assert_eq!(range, start..start + 8);
                        assert_eq!(arr.node_at(anchor_pos), anchor);
                        let members: Vec<Node> = (start..start + 8).map(Node::new).collect();
                        assert_eq!(arr.contiguous_range(&members), Some(start..start + 8));
                    }
                });
            }
        });
        assert!(arr.check_consistent());
    }
}
