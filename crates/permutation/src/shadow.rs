//! Debug-build data-race shadow checker for the partitioned-write
//! executor.
//!
//! [`Arrangement::apply_merge_batch`](crate::Arrangement::apply_merge_batch)
//! distributes per-region `&mut` sub-arrangements over scoped workers.
//! Its safety argument is *structural* — Rust's borrow rules make
//! overlapping mutable access unrepresentable — but the argument rests
//! on an upstream promise: the batch planner only seals batches whose
//! merge spans are pairwise disjoint, so grouping ops by region is a
//! partition of the touched coordinates.
//!
//! This module *checks* that promise dynamically in debug builds. While
//! a batch executes, every worker records a [`Claim`] — `(worker,
//! region, global span)` — for each op it applies; when the batch
//! commits, [`ShadowLog::assert_disjoint`] sorts the claims by start
//! coordinate and verifies that no two overlap, aborting with both
//! offending claims otherwise. The check deliberately uses a different
//! algorithm (sort + adjacent comparison) than the planner's conflict
//! graph (ordered-map predecessor/successor probes), so a bug in the
//! sealing logic cannot hide itself in the checker.
//!
//! In release builds (`cfg(not(debug_assertions))`) the whole checker
//! compiles to a field-less unit type with empty inlined methods: no
//! allocation, no locking, no branches on the hot path.

#[cfg(not(debug_assertions))]
pub use self::disabled::{Claim, ShadowLog};
#[cfg(debug_assertions)]
pub use self::enabled::{Claim, ShadowLog};

/// The real checker, compiled into debug builds only.
#[cfg(debug_assertions)]
mod enabled {
    use std::ops::Range;
    use std::sync::Mutex;

    /// One recorded write claim: worker `worker` applied a merge whose
    /// hull is `span` (global coordinates) inside region `region`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Claim {
        /// Index of the scoped worker that performed the write.
        pub worker: usize,
        /// Region index the write landed in.
        pub region: usize,
        /// Global-coordinate hull of the merge op.
        pub span: Range<usize>,
    }

    /// A per-batch log of write claims, asserted disjoint at commit.
    #[derive(Debug, Default)]
    pub struct ShadowLog {
        claims: Mutex<Vec<Claim>>,
    }

    impl ShadowLog {
        /// Creates an empty log for one batch.
        #[must_use]
        pub fn new() -> Self {
            Self::default()
        }

        /// Records one write claim. Callable concurrently from workers.
        pub fn claim(&self, worker: usize, region: usize, span: Range<usize>) {
            self.claims
                .lock()
                // mla-lint: allow(panic-safety): debug-only checker; a poisoned log means a worker already panicked
                .expect("shadow log poisoned")
                .push(Claim {
                    worker,
                    region,
                    span,
                });
        }

        /// Number of claims recorded so far.
        #[must_use]
        pub fn len(&self) -> usize {
            // mla-lint: allow(panic-safety): debug-only checker; a poisoned log means a worker already panicked
            self.claims.lock().expect("shadow log poisoned").len()
        }

        /// `true` when no claims have been recorded.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Asserts that all recorded claims are pairwise disjoint,
        /// panicking with both offending claims otherwise. `context`
        /// names the call site in the failure message.
        ///
        /// # Panics
        ///
        /// Panics when two claims overlap — i.e. the batch violated the
        /// partitioned-write contract the planner was supposed to seal.
        pub fn assert_disjoint(&self, context: &str) {
            // mla-lint: allow(panic-safety): debug-only checker; a poisoned log means a worker already panicked
            let mut claims = self.claims.lock().expect("shadow log poisoned");
            claims.sort_by_key(|claim| (claim.span.start, claim.span.end));
            for pair in claims.windows(2) {
                let (a, b) = (&pair[0], &pair[1]);
                if a.span.end > b.span.start {
                    // mla-lint: allow(panic-safety): the shadow checker exists to abort on a detected write overlap (debug builds only)
                    panic!(
                        "shadow checker: overlapping write claims in {context}: \
                         worker {} region {} span {:?} vs worker {} region {} span {:?}",
                        a.worker, a.region, a.span, b.worker, b.region, b.span
                    );
                }
            }
        }
    }
}

/// The zero-cost stand-in compiled into release builds.
#[cfg(not(debug_assertions))]
mod disabled {
    use std::ops::Range;

    /// Release-build stand-in for the debug claim record (never built).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Claim;

    /// Release-build stand-in: same API as the debug checker, no state.
    #[derive(Debug, Default)]
    pub struct ShadowLog;

    impl ShadowLog {
        /// Creates the stateless stand-in.
        #[inline(always)]
        #[must_use]
        pub fn new() -> Self {
            Self
        }

        /// No-op in release builds.
        #[inline(always)]
        pub fn claim(&self, _worker: usize, _region: usize, _span: Range<usize>) {}

        /// Always zero in release builds.
        #[inline(always)]
        #[must_use]
        pub fn len(&self) -> usize {
            0
        }

        /// Always `true` in release builds.
        #[inline(always)]
        #[must_use]
        pub fn is_empty(&self) -> bool {
            true
        }

        /// No-op in release builds.
        #[inline(always)]
        pub fn assert_disjoint(&self, _context: &str) {}
    }
}

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::ShadowLog;

    #[test]
    fn disjoint_claims_pass() {
        let log = ShadowLog::new();
        log.claim(0, 0, 0..4);
        log.claim(1, 1, 4..9);
        log.claim(0, 2, 9..10);
        log.assert_disjoint("test");
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn overlapping_claims_abort() {
        let log = ShadowLog::new();
        log.claim(0, 0, 0..4);
        log.claim(1, 0, 3..6);
        let err = std::panic::catch_unwind(move || log.assert_disjoint("test"))
            .expect_err("overlap must trip the checker");
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("overlapping write claims"), "{message}");
    }

    #[test]
    fn touching_spans_are_disjoint() {
        let log = ShadowLog::new();
        log.claim(0, 0, 0..4);
        log.claim(1, 0, 4..8);
        log.assert_disjoint("test");
    }
}
