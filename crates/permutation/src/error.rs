//! Error types for permutation construction and manipulation.

use std::error::Error;
use std::fmt;

/// Error returned when constructing a [`Permutation`](crate::Permutation)
/// from invalid data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PermutationError {
    /// A node identifier appeared more than once.
    DuplicateNode {
        /// The offending node index.
        node: usize,
    },
    /// A node identifier was outside the dense range `0..n`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes of the permutation.
        n: usize,
    },
    /// Two permutations of different sizes were combined.
    SizeMismatch {
        /// Size of the left-hand side.
        left: usize,
        /// Size of the right-hand side.
        right: usize,
    },
    /// The requested node count exceeds the addressable capacity of the
    /// arrangement backends ([`MAX_NODES`](crate::MAX_NODES)): positions
    /// and arena slots are stored as `u32`, so constructing a larger
    /// arrangement would silently truncate instead of corrupting state.
    CapacityExceeded {
        /// The requested node count.
        n: usize,
    },
}

impl fmt::Display for PermutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PermutationError::DuplicateNode { node } => {
                write!(f, "node v{node} appears more than once")
            }
            PermutationError::NodeOutOfRange { node, n } => {
                write!(f, "node v{node} is outside the dense range 0..{n}")
            }
            PermutationError::SizeMismatch { left, right } => {
                write!(f, "permutation sizes differ: {left} vs {right}")
            }
            PermutationError::CapacityExceeded { n } => {
                write!(
                    f,
                    "node count {n} exceeds the arrangement capacity of {} nodes",
                    crate::MAX_NODES
                )
            }
        }
    }
}

impl Error for PermutationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            PermutationError::DuplicateNode { node: 3 }.to_string(),
            "node v3 appears more than once"
        );
        assert_eq!(
            PermutationError::NodeOutOfRange { node: 9, n: 4 }.to_string(),
            "node v9 is outside the dense range 0..4"
        );
        assert_eq!(
            PermutationError::SizeMismatch { left: 2, right: 5 }.to_string(),
            "permutation sizes differ: 2 vs 5"
        );
    }

    #[test]
    fn implements_error_and_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<PermutationError>();
    }
}
