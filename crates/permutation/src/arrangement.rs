//! The backend-agnostic [`Arrangement`] abstraction.
//!
//! Every online MinLA algorithm in this workspace manipulates a linear
//! arrangement through the same small vocabulary: position/node lookups,
//! the contiguity query behind the feasibility invariant, and the three
//! block operations of the paper's update mechanics (move, reverse, swap),
//! each priced in **adjacent transpositions**. This trait captures exactly
//! that vocabulary so the algorithms, the simulation engine and the
//! experiments are generic over the storage layout:
//!
//! * [`Permutation`] — the dense backend: `O(1)` lookups, `O(n)` block
//!   splices (a memmove plus a position refresh);
//! * [`SegmentArrangement`](crate::SegmentArrangement) — the segment
//!   backend: an ordered list of component segments over an implicit-key
//!   treap, `O(log n)` block splices with costs computed in closed form.
//!
//! The trait is object-safe: adaptive adversaries receive the online
//! algorithm's arrangement as `&dyn Arrangement`.

use std::ops::Range;

use crate::node::Node;
use crate::perm::Permutation;

/// A mutable linear arrangement of the nodes `0..n`.
///
/// All mutating operations return their exact cost in adjacent
/// transpositions — the unit of cost in the online learning MinLA model —
/// and every implementation must be **observably identical** to the dense
/// [`Permutation`] reference: same layouts, same costs, same panics on
/// invalid ranges (see the backend-equivalence property tests).
///
/// **Cost width.** Per-operation costs fit `u64` for every supported
/// node count: each is bounded by `C(n, 2) < 2⁶³` at the
/// [`MAX_NODES`](crate::MAX_NODES) capacity limit. *Totals* accumulated
/// over a run do not — a full clique workload's cost grows like `n³/6`
/// and exceeds `u64::MAX` near `n ≈ 4.7×10⁶` — so run-level accumulators
/// (`mla-sim`'s `RunOutcome`) are `u128`.
pub trait Arrangement {
    /// Number of nodes.
    fn len(&self) -> usize;

    /// Returns `true` for the empty arrangement.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The node at `position`.
    ///
    /// # Panics
    ///
    /// Panics if `position >= self.len()`.
    fn node_at(&self, position: usize) -> Node;

    /// The position of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a node of this arrangement.
    fn position_of(&self, node: Node) -> usize;

    /// Returns `true` if `a` occupies a position strictly left of `b`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    fn is_left_of(&self, a: Node, b: Node) -> bool {
        self.position_of(a) < self.position_of(b)
    }

    /// If the given set of (distinct) nodes occupies contiguous positions,
    /// returns that position range; otherwise `None`. This is the
    /// *feasibility* primitive: an arrangement is a MinLA of a collection
    /// of cliques iff every clique's node set is contiguous.
    ///
    /// # Panics
    ///
    /// Panics if any node is out of range.
    fn contiguous_range(&self, nodes: &[Node]) -> Option<Range<usize>>;

    /// [`contiguous_range`](Arrangement::contiguous_range) plus the
    /// block's reading direction: the second component is `true` iff
    /// `nodes[0]` sits at the range's start (the block reads in snapshot
    /// order; singletons report `true`). This is the lines feasibility
    /// primitive — backends can answer the orientation bit without a
    /// second position lookup.
    ///
    /// # Panics
    ///
    /// Panics if any node is out of range.
    fn oriented_contiguous_range(&self, nodes: &[Node]) -> Option<(Range<usize>, bool)> {
        let range = self.contiguous_range(nodes)?;
        let forward = nodes.len() <= 1 || self.position_of(nodes[0]) == range.start;
        Some((range, forward))
    }

    /// Resolves a coalesced component's block from a single member in
    /// `O(log n)`, without walking the member list: given any `anchor`
    /// node of a component known to occupy one contiguous block of
    /// exactly `len` positions, returns the block's position range and
    /// the anchor's absolute position within it.
    ///
    /// This is the lazy-`MergeInfo` locate primitive. Backends that track
    /// component blocks structurally (the segment backend keeps every
    /// coalesced component as exactly one segment) override it; the
    /// default — and any backend that cannot certify the block from its
    /// own structure — returns `None`, and the caller falls back to the
    /// member-walking [`contiguous_range`](Arrangement::contiguous_range).
    ///
    /// A `Some((range, anchor_pos))` answer guarantees `range.len() == len`
    /// and `node_at(anchor_pos) == anchor` with `anchor_pos ∈ range`; it
    /// does **not** re-verify that the caller's component is really that
    /// block — the caller owns that invariant (debug builds cross-check
    /// it against the full walk).
    ///
    /// # Panics
    ///
    /// Panics if `anchor` is out of range.
    fn locate_component(&self, anchor: Node, len: usize) -> Option<(Range<usize>, usize)> {
        let _ = (anchor, len);
        None
    }

    /// Returns `true` if
    /// [`locate_component`](Arrangement::locate_component) can answer for
    /// components of this backend (so the lazy merge path is worth
    /// taking).
    fn supports_component_locate(&self) -> bool {
        false
    }

    /// Moves the contiguous block occupying `src` so that it starts at
    /// position `dest`, preserving its internal order. Returns the cost
    /// `src.len() × |dest − src.start|`.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of bounds or `dest` would push the block
    /// past either end.
    fn move_block(&mut self, src: Range<usize>, dest: usize) -> u64;

    /// Reverses the block occupying `range`. Returns the cost
    /// `C(len, 2) = len·(len−1)/2`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds.
    fn reverse_block(&mut self, range: Range<usize>) -> u64;

    /// Swaps two adjacent blocks (requires `left.end == right.start`),
    /// preserving internal orders. Returns the cost `left.len() × right.len()`.
    ///
    /// # Panics
    ///
    /// Panics if the blocks are not adjacent or out of bounds.
    fn swap_adjacent_blocks(&mut self, left: Range<usize>, right: Range<usize>) -> u64;

    /// Kendall's tau distance to a dense target: the minimum number of
    /// adjacent transpositions transforming this arrangement into
    /// `target`.
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    fn kendall_to(&self, target: &Permutation) -> u64;

    /// Replaces this arrangement with `target`, returning the Kendall tau
    /// cost of the jump (exactly [`kendall_to`](Arrangement::kendall_to)).
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    fn assign(&mut self, target: &Permutation) -> u64;

    /// Structural hint: the nodes in `range` now form one logical block
    /// (a merged component) that future operations will treat as a unit.
    /// Backends may compact internal structure; the arrangement itself is
    /// **never** observably changed. The dense backend ignores the hint.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds.
    fn coalesce_range(&mut self, range: Range<usize>) {
        let _ = range;
    }

    /// Materializes the arrangement as a dense [`Permutation`].
    fn to_permutation(&self) -> Permutation;

    /// Completes one full merge update in a single operation — the hot
    /// path of every online algorithm, so backends can specialize it:
    ///
    /// 1. **Moving part**: the `mover` block travels over the gap to sit
    ///    flush against `stayer` (exactly [`move_block`] semantics with
    ///    the destination derived from the two ranges; the stayer does
    ///    not move). Returns that cost, `mover.len() × gap`.
    /// 2. **Rearranging part** (lines): if `target` is given, the merged
    ///    block's content becomes `target` — which must be a permutation
    ///    of the two blocks' nodes. The caller accounts this part's cost
    ///    in closed form (see the mechanics' rearrange choices).
    /// 3. **Coalesce hint**: as [`coalesce_range`] over the merged range.
    ///
    /// Observably identical to the equivalent primitive-op sequence —
    /// the backend-equivalence property tests pin this down.
    ///
    /// [`move_block`]: Arrangement::move_block
    /// [`coalesce_range`]: Arrangement::coalesce_range
    ///
    /// # Panics
    ///
    /// Panics if the ranges overlap or are out of bounds, or if
    /// `target`'s length is not the blocks' combined length.
    fn merge_move(
        &mut self,
        mover: Range<usize>,
        stayer: Range<usize>,
        target: Option<&[Node]>,
    ) -> u64 {
        let dest = merge_move_dest(&mover, &stayer);
        let cost = self.move_block(mover.clone(), dest);
        let merged = dest.min(stayer.start)..(dest + mover.len()).max(stayer.end);
        if let Some(content) = target {
            self.write_merged_block(merged.clone(), content);
        }
        self.coalesce_range(merged);
        cost
    }

    /// Bulk-overwrites the (contiguous) block at `range` with `content`,
    /// a permutation of its current nodes — the primitive behind
    /// [`merge_move`](Arrangement::merge_move)'s rearranging part.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds or the lengths differ.
    fn write_merged_block(&mut self, range: Range<usize>, content: &[Node]);

    /// Applies a batch of **span-disjoint** merge updates, returning each
    /// update's moving cost in op order. Observably equivalent to calling
    /// [`merge_move`](Arrangement::merge_move) for each op in order — and
    /// that is exactly the default implementation; `threads` is a hint
    /// that partitioned backends
    /// ([`ShardedArrangement`](crate::ShardedArrangement)) use to execute
    /// ops of different partitions on worker threads. Because the spans
    /// are disjoint, the ops commute, so any execution order yields the
    /// identical arrangement.
    ///
    /// The caller guarantees pairwise-disjoint spans (the engine's batch
    /// planner seals exactly such batches); backends need not re-check.
    ///
    /// # Panics
    ///
    /// Panics as [`merge_move`](Arrangement::merge_move) does for any op.
    fn apply_merge_batch(&mut self, ops: Vec<MergeOp>, threads: usize) -> Vec<u64> {
        let _ = threads;
        ops.into_iter()
            .map(|op| self.merge_move(op.mover, op.stayer, op.target.as_deref()))
            .collect()
    }
}

/// One decided merge update — the arguments of one
/// [`Arrangement::merge_move`] call, owned so batches can be shipped to
/// worker threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeOp {
    /// The block that travels over the gap.
    pub mover: Range<usize>,
    /// The block that stays put.
    pub stayer: Range<usize>,
    /// Final merged content (position order) when the rearranging part
    /// changes it; `None` for order-preserving merges.
    pub target: Option<Vec<Node>>,
}

impl MergeOp {
    /// The half-open hull of positions this op mutates.
    #[must_use]
    pub fn span(&self) -> Range<usize> {
        let start = self.mover.start.min(self.stayer.start);
        let end = self.mover.end.max(self.stayer.end);
        start..end
    }
}

/// The [`move_block`](Arrangement::move_block) destination that lands
/// `mover` flush against `stayer` on its own side.
///
/// # Panics
///
/// Panics if the ranges overlap.
#[must_use]
pub fn merge_move_dest(mover: &Range<usize>, stayer: &Range<usize>) -> usize {
    if mover.start < stayer.start {
        assert!(
            mover.end <= stayer.start,
            "blocks {mover:?} and {stayer:?} overlap"
        );
        stayer.start - mover.len()
    } else {
        assert!(
            stayer.end <= mover.start,
            "blocks {stayer:?} and {mover:?} overlap"
        );
        stayer.end
    }
}

impl Arrangement for Permutation {
    fn len(&self) -> usize {
        Permutation::len(self)
    }

    fn node_at(&self, position: usize) -> Node {
        Permutation::node_at(self, position)
    }

    fn position_of(&self, node: Node) -> usize {
        Permutation::position_of(self, node)
    }

    fn is_left_of(&self, a: Node, b: Node) -> bool {
        Permutation::is_left_of(self, a, b)
    }

    fn contiguous_range(&self, nodes: &[Node]) -> Option<Range<usize>> {
        Permutation::contiguous_range(self, nodes)
    }

    fn move_block(&mut self, src: Range<usize>, dest: usize) -> u64 {
        Permutation::move_block(self, src, dest)
    }

    fn reverse_block(&mut self, range: Range<usize>) -> u64 {
        Permutation::reverse_block(self, range)
    }

    fn swap_adjacent_blocks(&mut self, left: Range<usize>, right: Range<usize>) -> u64 {
        Permutation::swap_adjacent_blocks(self, left, right)
    }

    fn kendall_to(&self, target: &Permutation) -> u64 {
        self.kendall_distance(target)
    }

    fn assign(&mut self, target: &Permutation) -> u64 {
        let cost = self.kendall_distance(target);
        target.clone_into(self);
        cost
    }

    fn to_permutation(&self) -> Permutation {
        self.clone()
    }

    fn write_merged_block(&mut self, range: Range<usize>, content: &[Node]) {
        self.write_block(range, content);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn as_dyn(arrangement: &dyn Arrangement) -> Vec<usize> {
        (0..arrangement.len())
            .map(|p| arrangement.node_at(p).index())
            .collect()
    }

    #[test]
    fn trait_is_object_safe_and_delegates() {
        let mut pi = Permutation::identity(4);
        let cost = Arrangement::move_block(&mut pi, 0..2, 2);
        assert_eq!(cost, 4);
        assert_eq!(as_dyn(&pi), vec![2, 3, 0, 1]);
        assert!(Arrangement::is_left_of(&pi, Node::new(2), Node::new(0)));
        assert!(!Arrangement::is_empty(&pi));
    }

    #[test]
    fn assign_costs_the_kendall_distance() {
        let mut pi = Permutation::identity(4);
        let target = Permutation::from_indices(&[3, 2, 1, 0]).unwrap();
        assert_eq!(Arrangement::kendall_to(&pi, &target), 6);
        assert_eq!(Arrangement::assign(&mut pi, &target), 6);
        assert_eq!(pi, target);
        assert_eq!(Arrangement::assign(&mut pi, &target), 0);
    }

    #[test]
    fn coalesce_is_a_no_op_for_dense() {
        let mut pi = Permutation::from_indices(&[1, 0, 2]).unwrap();
        let before = pi.clone();
        Arrangement::coalesce_range(&mut pi, 0..2);
        assert_eq!(pi, before);
    }

    #[test]
    fn to_permutation_round_trips() {
        let pi = Permutation::from_indices(&[2, 0, 1]).unwrap();
        assert_eq!(Arrangement::to_permutation(&pi), pi);
    }
}
