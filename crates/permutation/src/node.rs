//! The [`Node`] identifier newtype.
//!
//! Nodes of the revealed graph are dense integer identifiers `0..n`. A
//! dedicated newtype keeps node identifiers from being confused with
//! *positions* in a permutation (plain `usize`), which is the single most
//! common class of bug in linear-arrangement code.

use std::fmt;

/// Identifier of a graph node.
///
/// Node identifiers are dense: an instance on `n` nodes uses exactly the
/// identifiers `Node(0), …, Node(n - 1)`.
///
/// # Examples
///
/// ```
/// use mla_permutation::Node;
///
/// let v = Node::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.to_string(), "v3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Node(u32);

impl Node {
    /// Creates a node identifier from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    #[must_use]
    pub fn new(index: usize) -> Self {
        // mla-lint: allow(panic-safety): documented panic: node ids are u32 by the MAX_NODES capacity contract
        Node(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index of this node, usable for slice indexing.
    ///
    /// # Examples
    ///
    /// ```
    /// use mla_permutation::Node;
    /// let sizes = [10usize, 20, 30];
    /// assert_eq!(sizes[Node::new(1).index()], 20);
    /// ```
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` representation.
    #[inline]
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for Node {
    #[inline]
    fn from(value: u32) -> Self {
        Node(value)
    }
}

impl From<Node> for u32 {
    #[inline]
    fn from(value: Node) -> Self {
        value.0
    }
}

impl From<Node> for usize {
    #[inline]
    fn from(value: Node) -> Self {
        value.index()
    }
}

impl fmt::Debug for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Returns the vector of all `n` node identifiers in index order.
///
/// # Examples
///
/// ```
/// use mla_permutation::{all_nodes, Node};
/// assert_eq!(all_nodes(3), vec![Node::new(0), Node::new(1), Node::new(2)]);
/// ```
#[must_use]
pub fn all_nodes(n: usize) -> Vec<Node> {
    (0..n).map(Node::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index_round_trip() {
        for i in [0usize, 1, 7, 1000, u32::MAX as usize] {
            assert_eq!(Node::new(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32::MAX")]
    fn new_rejects_oversized_index() {
        let _ = Node::new(u32::MAX as usize + 1);
    }

    #[test]
    fn conversions() {
        let v = Node::from(5u32);
        assert_eq!(u32::from(v), 5);
        assert_eq!(usize::from(v), 5);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", Node::new(2)), "v2");
        assert_eq!(format!("{:?}", Node::new(2)), "v2");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Node::new(1) < Node::new(2));
        assert_eq!(Node::new(3), Node::new(3));
    }

    #[test]
    fn all_nodes_is_dense() {
        let nodes = all_nodes(4);
        assert_eq!(nodes.len(), 4);
        for (i, v) in nodes.iter().enumerate() {
            assert_eq!(v.index(), i);
        }
        assert!(all_nodes(0).is_empty());
    }
}
