//! Inversion counting primitives.
//!
//! An *inversion* of a sequence `s` is a pair of indices `i < j` with
//! `s[i] > s[j]`. Kendall's tau distance between two permutations equals the
//! inversion count of one permutation expressed in the coordinates of the
//! other, so fast inversion counting is the workhorse of every cost
//! computation in this workspace.
//!
//! Two counters are provided:
//!
//! * [`count_inversions`] — offline merge-sort counter, `O(n log n)`;
//! * [`FenwickTree`] — a binary indexed tree for incremental counting, used
//!   when building block weight matrices in `mla-offline`.

/// Counts inversions of `seq` in `O(n log n)` by merge sort.
///
/// The input is copied; the original slice is left untouched. Values may
/// repeat; equal values do **not** count as inversions (the count is the
/// number of strictly decreasing pairs), matching Kendall's tau for
/// permutations where all values are distinct.
///
/// # Examples
///
/// ```
/// use mla_permutation::count_inversions;
///
/// assert_eq!(count_inversions(&[0, 1, 2, 3]), 0);
/// assert_eq!(count_inversions(&[3, 2, 1, 0]), 6);
/// assert_eq!(count_inversions(&[2, 0, 1]), 2);
/// ```
#[must_use]
pub fn count_inversions(seq: &[u32]) -> u64 {
    let mut work = seq.to_vec();
    let mut buffer = vec![0u32; seq.len()];
    merge_count(&mut work, &mut buffer)
}

/// Counts inversions of a `usize` sequence; convenience wrapper around
/// [`count_inversions`].
///
/// # Panics
///
/// Panics if any value exceeds `u32::MAX`.
#[must_use]
pub fn count_inversions_usize(seq: &[usize]) -> u64 {
    let as_u32: Vec<u32> = seq
        .iter()
        // mla-lint: allow(panic-safety): documented panic: the u32 input contract of the inversion counter
        .map(|&v| u32::try_from(v).expect("sequence value exceeds u32::MAX"))
        .collect();
    count_inversions(&as_u32)
}

/// Reference quadratic inversion counter, used to cross-check the merge-sort
/// counter in tests and small-instance code paths.
#[must_use]
pub fn count_inversions_naive(seq: &[u32]) -> u64 {
    let mut count = 0u64;
    for i in 0..seq.len() {
        for j in (i + 1)..seq.len() {
            if seq[i] > seq[j] {
                count += 1;
            }
        }
    }
    count
}

fn merge_count(data: &mut [u32], buffer: &mut [u32]) -> u64 {
    let n = data.len();
    if n <= 1 {
        return 0;
    }
    // Insertion sort for tiny runs: faster and avoids deep recursion.
    if n <= 16 {
        let mut inversions = 0u64;
        for i in 1..n {
            let value = data[i];
            let mut j = i;
            while j > 0 && data[j - 1] > value {
                data[j] = data[j - 1];
                j -= 1;
            }
            inversions += (i - j) as u64;
            data[j] = value;
        }
        return inversions;
    }
    let mid = n / 2;
    let mut inversions = {
        let (left, right) = data.split_at_mut(mid);
        merge_count(left, &mut buffer[..mid]) + merge_count(right, &mut buffer[mid..])
    };
    // Chunk-level dispositions first: a presorted pair of halves needs no
    // merge at all, and a fully crossed pair is one multiplication plus an
    // in-place rotation. Both are common on the near-sorted sequences the
    // cost computations produce.
    if data[mid - 1] <= data[mid] {
        return inversions;
    }
    if data[n - 1] < data[0] {
        inversions += (mid as u64) * ((n - mid) as u64);
        data.rotate_left(mid);
        return inversions;
    }
    // Merge while counting cross inversions. The select is written so the
    // compiler can lower it to conditional moves instead of a hard-to-
    // predict branch: on random data this branch is a coin flip.
    let (mut i, mut j, mut k) = (0usize, mid, 0usize);
    while i < mid && j < n {
        let take_left = data[i] <= data[j];
        buffer[k] = if take_left { data[i] } else { data[j] };
        inversions += if take_left { 0 } else { (mid - i) as u64 };
        i += usize::from(take_left);
        j += usize::from(!take_left);
        k += 1;
    }
    buffer[k..k + (mid - i)].copy_from_slice(&data[i..mid]);
    let k = k + (mid - i);
    buffer[k..k + (n - j)].copy_from_slice(&data[j..n]);
    data.copy_from_slice(&buffer[..n]);
    inversions
}

/// A Fenwick (binary indexed) tree over `0..n` supporting point updates and
/// prefix-sum queries in `O(log n)`.
///
/// Used for incremental inversion counting: scanning a sequence left to
/// right, the number of previously seen values strictly greater than the
/// current one is `seen_so_far - prefix_sum(value)`.
///
/// # Examples
///
/// ```
/// use mla_permutation::FenwickTree;
///
/// let mut tree = FenwickTree::new(4);
/// tree.add(2, 1);
/// tree.add(0, 1);
/// assert_eq!(tree.prefix_sum(0), 1); // values <= 0
/// assert_eq!(tree.prefix_sum(2), 2); // values <= 2
/// assert_eq!(tree.total(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FenwickTree {
    tree: Vec<u64>,
}

impl FenwickTree {
    /// Creates a tree over the value universe `0..n`, all counts zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        FenwickTree {
            tree: vec![0; n + 1],
        }
    }

    /// Number of distinct values the tree indexes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Returns `true` if the tree indexes an empty universe.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds `delta` to the count of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value >= self.len()`.
    pub fn add(&mut self, value: usize, delta: u64) {
        assert!(value < self.len(), "fenwick value {value} out of range");
        let mut i = value + 1;
        // `get_mut` folds the loop condition and the bounds check into one
        // test, keeping the hot loop free of a panic branch.
        while let Some(slot) = self.tree.get_mut(i) {
            *slot += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Returns the sum of counts of all values `<= value`.
    ///
    /// Querying beyond the universe is allowed and clamps to the total.
    #[must_use]
    pub fn prefix_sum(&self, value: usize) -> u64 {
        let mut i = (value + 1).min(self.tree.len() - 1);
        let mut sum = 0;
        // `i` strictly decreases and started in bounds, so the `get`
        // always hits; writing it this way keeps the panic machinery out
        // of the loop body.
        while i > 0 {
            sum += self.tree.get(i).copied().unwrap_or(0);
            i &= i - 1;
        }
        sum
    }

    /// Returns the sum of counts of values in `lo..=hi` (inclusive).
    #[must_use]
    pub fn range_sum(&self, lo: usize, hi: usize) -> u64 {
        if lo > hi {
            return 0;
        }
        let upper = self.prefix_sum(hi);
        if lo == 0 {
            upper
        } else {
            upper - self.prefix_sum(lo - 1)
        }
    }

    /// Returns the total count stored in the tree.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.prefix_sum(self.tree.len().saturating_sub(1))
    }
}

/// Counts pairs `(i, j)` with `i < j` and `a[i] > b[j]` where `a` and `b` are
/// two sorted ascending slices — the number of *cross inversions* contributed
/// when a block with values `a` is placed to the left of a block with values
/// `b`.
///
/// Both slices must be sorted ascending; this is debug-asserted.
///
/// # Examples
///
/// ```
/// use mla_permutation::cross_inversions_sorted;
///
/// // a = [5, 7] left of b = [1, 6]: pairs (5,1), (7,1), (7,6) invert.
/// assert_eq!(cross_inversions_sorted(&[5, 7], &[1, 6]), 3);
/// ```
#[must_use]
pub fn cross_inversions_sorted(a: &[u32], b: &[u32]) -> u64 {
    debug_assert!(a.windows(2).all(|w| w[0] <= w[1]), "a must be sorted");
    debug_assert!(b.windows(2).all(|w| w[0] <= w[1]), "b must be sorted");
    // For each element of b, count elements of a strictly greater.
    let mut count = 0u64;
    let mut i = 0usize; // pointer into a: first element > b[j]
    for &bj in b {
        while i < a.len() && a[i] <= bj {
            i += 1;
        }
        count += (a.len() - i) as u64;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton() {
        assert_eq!(count_inversions(&[]), 0);
        assert_eq!(count_inversions(&[7]), 0);
    }

    #[test]
    fn sorted_has_zero() {
        let seq: Vec<u32> = (0..100).collect();
        assert_eq!(count_inversions(&seq), 0);
    }

    #[test]
    fn reversed_has_maximum() {
        let seq: Vec<u32> = (0..100).rev().collect();
        assert_eq!(count_inversions(&seq), 100 * 99 / 2);
    }

    #[test]
    fn duplicates_do_not_count() {
        assert_eq!(count_inversions(&[1, 1, 1]), 0);
        assert_eq!(count_inversions(&[2, 1, 1]), 2);
        assert_eq!(count_inversions(&[1, 2, 1]), 1);
    }

    #[test]
    fn matches_naive_on_fixed_cases() {
        let cases: Vec<Vec<u32>> = vec![
            vec![2, 0, 1],
            vec![5, 4, 4, 3, 9, 0],
            vec![0, 2, 1, 4, 3, 6, 5],
            (0..50).map(|i| (i * 7919) % 50).collect(),
        ];
        for seq in cases {
            assert_eq!(
                count_inversions(&seq),
                count_inversions_naive(&seq),
                "mismatch on {seq:?}"
            );
        }
    }

    #[test]
    fn usize_wrapper_agrees() {
        let seq = [3usize, 1, 2, 0];
        let as_u32 = [3u32, 1, 2, 0];
        assert_eq!(count_inversions_usize(&seq), count_inversions(&as_u32));
    }

    #[test]
    fn fenwick_incremental_inversions() {
        // Count inversions of a sequence by scanning with a Fenwick tree and
        // compare against the merge-sort counter.
        let seq: Vec<u32> = vec![4, 1, 3, 0, 2, 5, 9, 7, 8, 6];
        let mut tree = FenwickTree::new(10);
        let mut inversions = 0u64;
        for (seen, &v) in seq.iter().enumerate() {
            inversions += seen as u64 - tree.prefix_sum(v as usize);
            tree.add(v as usize, 1);
        }
        assert_eq!(inversions, count_inversions(&seq));
        assert_eq!(tree.total(), seq.len() as u64);
    }

    #[test]
    fn fenwick_range_sum() {
        let mut tree = FenwickTree::new(8);
        for v in 0..8 {
            tree.add(v, (v + 1) as u64);
        }
        assert_eq!(tree.range_sum(2, 4), 3 + 4 + 5);
        assert_eq!(tree.range_sum(0, 7), tree.total());
        assert_eq!(tree.range_sum(5, 3), 0);
    }

    #[test]
    fn fenwick_empty() {
        let tree = FenwickTree::new(0);
        assert!(tree.is_empty());
        assert_eq!(tree.total(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fenwick_add_out_of_range() {
        let mut tree = FenwickTree::new(3);
        tree.add(3, 1);
    }

    #[test]
    fn cross_inversions_basic() {
        assert_eq!(cross_inversions_sorted(&[], &[1, 2]), 0);
        assert_eq!(cross_inversions_sorted(&[1, 2], &[]), 0);
        assert_eq!(cross_inversions_sorted(&[0, 1], &[2, 3]), 0);
        assert_eq!(cross_inversions_sorted(&[2, 3], &[0, 1]), 4);
        assert_eq!(cross_inversions_sorted(&[1, 3], &[2, 4]), 1);
    }

    #[test]
    fn cross_inversions_matches_naive() {
        let a = [1u32, 4, 6, 9];
        let b = [0u32, 3, 5, 7, 8];
        let mut naive = 0u64;
        for &x in &a {
            for &y in &b {
                if x > y {
                    naive += 1;
                }
            }
        }
        assert_eq!(cross_inversions_sorted(&a, &b), naive);
    }
}
