//! Property-based tests for the permutation substrate.
//!
//! These pin down the algebraic facts the rest of the workspace (and the
//! paper's analysis) relies on: Kendall tau is a metric, block operations
//! cost exactly their Kendall delta, and the fast counters agree with
//! quadratic reference implementations.

use mla_permutation::{
    concordant_pairs, count_inversions, count_inversions_naive, internal_concordant_pairs,
    left_pairs, Node, Permutation,
};
use proptest::prelude::*;

/// Strategy: a permutation of `n` nodes encoded as a shuffled index vector.
fn permutation(n: usize) -> impl Strategy<Value = Permutation> {
    Just(()).prop_perturb(move |(), mut rng| {
        let mut indices: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            indices.swap(i, j);
        }
        Permutation::from_indices(&indices).expect("shuffle produces a valid permutation")
    })
}

fn sized_permutation() -> impl Strategy<Value = Permutation> {
    (1usize..40).prop_flat_map(permutation)
}

proptest! {
    #[test]
    fn inversion_counter_matches_naive(seq in proptest::collection::vec(0u32..64, 0..128)) {
        prop_assert_eq!(count_inversions(&seq), count_inversions_naive(&seq));
    }

    #[test]
    fn kendall_is_a_metric((a, b, c) in (1usize..24).prop_flat_map(|n| {
        (permutation(n), permutation(n), permutation(n))
    })) {
        let dab = a.kendall_distance(&b);
        let dba = b.kendall_distance(&a);
        let dac = a.kendall_distance(&c);
        let dcb = c.kendall_distance(&b);
        // Identity of indiscernibles.
        prop_assert_eq!(a.kendall_distance(&a), 0);
        prop_assert_eq!(dab == 0, a == b);
        // Symmetry.
        prop_assert_eq!(dab, dba);
        // Triangle inequality.
        prop_assert!(dab <= dac + dcb);
    }

    #[test]
    fn kendall_equals_pairwise_disagreements((a, b) in (1usize..16).prop_flat_map(|n| {
        (permutation(n), permutation(n))
    })) {
        let mut disagreements = 0u64;
        for (x, y) in left_pairs(&a) {
            if !b.is_left_of(x, y) {
                disagreements += 1;
            }
        }
        prop_assert_eq!(disagreements, a.kendall_distance(&b));
    }

    #[test]
    fn move_block_cost_is_kendall_delta(
        (before, start, len_frac, dest_frac) in sized_permutation()
            .prop_flat_map(|p| {
                let n = p.len();
                (Just(p), 0..n, any::<f64>(), any::<f64>())
            })
    ) {
        let n = before.len();
        let max_len = n - start;
        let len = ((len_frac.abs() % 1.0) * (max_len as f64 + 1.0)) as usize;
        let len = len.min(max_len);
        let dest = ((dest_frac.abs() % 1.0) * ((n - len) as f64 + 1.0)) as usize;
        let dest = dest.min(n - len);
        let mut after = before.clone();
        let cost = after.move_block(start..start + len, dest);
        prop_assert_eq!(cost, before.kendall_distance(&after));
        prop_assert!(after.check_consistent());
    }

    #[test]
    fn reverse_block_cost_is_kendall_delta(
        (before, start, end) in sized_permutation().prop_flat_map(|p| {
            let n = p.len();
            (Just(p), 0..=n, 0..=n)
        })
    ) {
        let (lo, hi) = if start <= end { (start, end) } else { (end, start) };
        let mut after = before.clone();
        let cost = after.reverse_block(lo..hi);
        prop_assert_eq!(cost, before.kendall_distance(&after));
        prop_assert!(after.check_consistent());
    }

    #[test]
    fn block_ops_preserve_permutation_property(p in sized_permutation()) {
        let n = p.len();
        let mut q = p.clone();
        let mid = n / 2;
        q.reverse_block(0..mid);
        let _ = q.move_block(0..mid, n - mid);
        prop_assert!(q.check_consistent());
        // Every node appears exactly once.
        let mut seen = vec![false; n];
        for &v in q.as_nodes() {
            prop_assert!(!seen[v.index()]);
            seen[v.index()] = true;
        }
    }

    #[test]
    fn concordant_pairs_partition(p in permutation(12)) {
        // For disjoint X, Y: concordant(X, Y) + concordant(Y, X) = |X||Y|.
        let x: Vec<Node> = (0..5).map(Node::new).collect();
        let y: Vec<Node> = (5..12).map(Node::new).collect();
        let fwd = concordant_pairs(&p, &x, &y);
        let bwd = concordant_pairs(&p, &y, &x);
        prop_assert_eq!(fwd + bwd, (x.len() * y.len()) as u64);
    }

    #[test]
    fn internal_concordant_partition(p in permutation(10)) {
        let fwd: Vec<Node> = (0..10).map(Node::new).collect();
        let rev: Vec<Node> = fwd.iter().rev().copied().collect();
        let m = fwd.len() as u64;
        prop_assert_eq!(
            internal_concordant_pairs(&p, &fwd) + internal_concordant_pairs(&p, &rev),
            m * (m - 1) / 2
        );
    }

    #[test]
    fn inverse_composition_identity(p in sized_permutation()) {
        let inv = p.inverse();
        // node i sits at position p_pos(i); in the inverse, the node at
        // position i is the node whose position in p is i.
        for pos in 0..p.len() {
            let node = p.node_at(pos);
            prop_assert_eq!(inv.node_at(node.index()).index(), pos);
        }
    }

    #[test]
    fn swap_adjacent_changes_distance_by_one(p in (2usize..30).prop_flat_map(permutation)) {
        let mut q = p.clone();
        let pos = p.len() / 2 - 1;
        q.swap_adjacent(pos);
        prop_assert_eq!(p.kendall_distance(&q), 1);
    }
}

proptest! {
    #[test]
    fn composition_group_laws((a, b, c) in (1usize..20).prop_flat_map(|n| {
        (permutation(n), permutation(n), permutation(n))
    })) {
        let n = a.len();
        let identity = Permutation::identity(n);
        // Identity element.
        prop_assert_eq!(a.compose(&identity), a.clone());
        prop_assert_eq!(identity.compose(&a), a.clone());
        prop_assert!(identity.is_identity());
        // Inverses.
        prop_assert!(a.compose(&a.inverse()).is_identity());
        prop_assert!(a.inverse().compose(&a).is_identity());
        // Associativity.
        prop_assert_eq!(a.compose(&b).compose(&c), a.compose(&b.compose(&c)));
    }

    #[test]
    fn kendall_is_right_invariant((a, b, g) in (1usize..20).prop_flat_map(|n| {
        (permutation(n), permutation(n), permutation(n))
    })) {
        // Kendall tau is invariant under relabeling both arrangements by
        // the same permutation.
        let da = a.kendall_distance(&b);
        let db = a.compose(&g).kendall_distance(&b.compose(&g));
        prop_assert_eq!(da, db);
    }
}
