//! Property-based tests for the permutation substrate.
//!
//! These pin down the algebraic facts the rest of the workspace (and the
//! paper's analysis) relies on: Kendall tau is a metric, block operations
//! cost exactly their Kendall delta, and the fast counters agree with
//! quadratic reference implementations.

use mla_permutation::{
    concordant_pairs, count_inversions, count_inversions_naive, internal_concordant_pairs,
    left_pairs, Node, Permutation,
};
use proptest::prelude::*;

/// Strategy: a permutation of `n` nodes encoded as a shuffled index vector.
fn permutation(n: usize) -> impl Strategy<Value = Permutation> {
    Just(()).prop_perturb(move |(), mut rng| {
        let mut indices: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            indices.swap(i, j);
        }
        Permutation::from_indices(&indices).expect("shuffle produces a valid permutation")
    })
}

fn sized_permutation() -> impl Strategy<Value = Permutation> {
    (1usize..40).prop_flat_map(permutation)
}

proptest! {
    #[test]
    fn inversion_counter_matches_naive(seq in proptest::collection::vec(0u32..64, 0..128)) {
        prop_assert_eq!(count_inversions(&seq), count_inversions_naive(&seq));
    }

    #[test]
    fn kendall_is_a_metric((a, b, c) in (1usize..24).prop_flat_map(|n| {
        (permutation(n), permutation(n), permutation(n))
    })) {
        let dab = a.kendall_distance(&b);
        let dba = b.kendall_distance(&a);
        let dac = a.kendall_distance(&c);
        let dcb = c.kendall_distance(&b);
        // Identity of indiscernibles.
        prop_assert_eq!(a.kendall_distance(&a), 0);
        prop_assert_eq!(dab == 0, a == b);
        // Symmetry.
        prop_assert_eq!(dab, dba);
        // Triangle inequality.
        prop_assert!(dab <= dac + dcb);
    }

    #[test]
    fn kendall_equals_pairwise_disagreements((a, b) in (1usize..16).prop_flat_map(|n| {
        (permutation(n), permutation(n))
    })) {
        let mut disagreements = 0u64;
        for (x, y) in left_pairs(&a) {
            if !b.is_left_of(x, y) {
                disagreements += 1;
            }
        }
        prop_assert_eq!(disagreements, a.kendall_distance(&b));
    }

    #[test]
    fn move_block_cost_is_kendall_delta(
        (before, start, len_frac, dest_frac) in sized_permutation()
            .prop_flat_map(|p| {
                let n = p.len();
                (Just(p), 0..n, any::<f64>(), any::<f64>())
            })
    ) {
        let n = before.len();
        let max_len = n - start;
        let len = ((len_frac.abs() % 1.0) * (max_len as f64 + 1.0)) as usize;
        let len = len.min(max_len);
        let dest = ((dest_frac.abs() % 1.0) * ((n - len) as f64 + 1.0)) as usize;
        let dest = dest.min(n - len);
        let mut after = before.clone();
        let cost = after.move_block(start..start + len, dest);
        prop_assert_eq!(cost, before.kendall_distance(&after));
        prop_assert!(after.check_consistent());
    }

    #[test]
    fn reverse_block_cost_is_kendall_delta(
        (before, start, end) in sized_permutation().prop_flat_map(|p| {
            let n = p.len();
            (Just(p), 0..=n, 0..=n)
        })
    ) {
        let (lo, hi) = if start <= end { (start, end) } else { (end, start) };
        let mut after = before.clone();
        let cost = after.reverse_block(lo..hi);
        prop_assert_eq!(cost, before.kendall_distance(&after));
        prop_assert!(after.check_consistent());
    }

    #[test]
    fn block_ops_preserve_permutation_property(p in sized_permutation()) {
        let n = p.len();
        let mut q = p.clone();
        let mid = n / 2;
        q.reverse_block(0..mid);
        let _ = q.move_block(0..mid, n - mid);
        prop_assert!(q.check_consistent());
        // Every node appears exactly once.
        let mut seen = vec![false; n];
        for &v in q.as_nodes() {
            prop_assert!(!seen[v.index()]);
            seen[v.index()] = true;
        }
    }

    #[test]
    fn concordant_pairs_partition(p in permutation(12)) {
        // For disjoint X, Y: concordant(X, Y) + concordant(Y, X) = |X||Y|.
        let x: Vec<Node> = (0..5).map(Node::new).collect();
        let y: Vec<Node> = (5..12).map(Node::new).collect();
        let fwd = concordant_pairs(&p, &x, &y);
        let bwd = concordant_pairs(&p, &y, &x);
        prop_assert_eq!(fwd + bwd, (x.len() * y.len()) as u64);
    }

    #[test]
    fn internal_concordant_partition(p in permutation(10)) {
        let fwd: Vec<Node> = (0..10).map(Node::new).collect();
        let rev: Vec<Node> = fwd.iter().rev().copied().collect();
        let m = fwd.len() as u64;
        prop_assert_eq!(
            internal_concordant_pairs(&p, &fwd) + internal_concordant_pairs(&p, &rev),
            m * (m - 1) / 2
        );
    }

    #[test]
    fn inverse_composition_identity(p in sized_permutation()) {
        let inv = p.inverse();
        // node i sits at position p_pos(i); in the inverse, the node at
        // position i is the node whose position in p is i.
        for pos in 0..p.len() {
            let node = p.node_at(pos);
            prop_assert_eq!(inv.node_at(node.index()).index(), pos);
        }
    }

    #[test]
    fn swap_adjacent_changes_distance_by_one(p in (2usize..30).prop_flat_map(permutation)) {
        let mut q = p.clone();
        let pos = p.len() / 2 - 1;
        q.swap_adjacent(pos);
        prop_assert_eq!(p.kendall_distance(&q), 1);
    }
}

proptest! {
    #[test]
    fn composition_group_laws((a, b, c) in (1usize..20).prop_flat_map(|n| {
        (permutation(n), permutation(n), permutation(n))
    })) {
        let n = a.len();
        let identity = Permutation::identity(n);
        // Identity element.
        prop_assert_eq!(a.compose(&identity), a.clone());
        prop_assert_eq!(identity.compose(&a), a.clone());
        prop_assert!(identity.is_identity());
        // Inverses.
        prop_assert!(a.compose(&a.inverse()).is_identity());
        prop_assert!(a.inverse().compose(&a).is_identity());
        // Associativity.
        prop_assert_eq!(a.compose(&b).compose(&c), a.compose(&b.compose(&c)));
    }

    #[test]
    fn kendall_is_right_invariant((a, b, g) in (1usize..20).prop_flat_map(|n| {
        (permutation(n), permutation(n), permutation(n))
    })) {
        // Kendall tau is invariant under relabeling both arrangements by
        // the same permutation.
        let da = a.kendall_distance(&b);
        let db = a.compose(&g).kendall_distance(&b.compose(&g));
        prop_assert_eq!(da, db);
    }
}

// ---- backend equivalence: SegmentArrangement vs dense Permutation ------

use mla_permutation::{Arrangement, SegmentArrangement};

/// One randomly generated arrangement operation.
#[derive(Debug, Clone)]
enum Op {
    Move {
        src: std::ops::Range<usize>,
        dest: usize,
    },
    Reverse(std::ops::Range<usize>),
    SwapBlocks {
        mid: usize,
        start: usize,
        end: usize,
    },
    Coalesce(std::ops::Range<usize>),
    Assign(Vec<usize>),
    /// The composite merge update; `pattern` (a permutation of the two
    /// blocks' combined length) selects the rearranging target from the
    /// state at execution time.
    MergeMove {
        mover: std::ops::Range<usize>,
        stayer: std::ops::Range<usize>,
        pattern: Option<Vec<usize>>,
    },
    /// Bulk block-content overwrite, `pattern` relative to the block's
    /// nodes at execution time.
    WriteBlock {
        range: std::ops::Range<usize>,
        pattern: Vec<usize>,
    },
}

/// A random permutation of `0..len` drawn from the strategy RNG.
fn pattern_of(
    len: usize,
    next: impl Fn(usize, &mut TestRng) -> usize,
    rng: &mut TestRng,
) -> Vec<usize> {
    let mut indices: Vec<usize> = (0..len).collect();
    for i in (1..len).rev() {
        let j = next(i + 1, rng);
        indices.swap(i, j);
    }
    indices
}

/// Strategy: a random op sequence for an arrangement of `n` nodes,
/// including the empty/full/boundary-adjacent edge cases the dense
/// asserts allow. (The vendored proptest has no `prop_oneof`, so the ops
/// are drawn from the perturbation RNG.)
fn op_sequence() -> impl Strategy<Value = (Permutation, Vec<Op>)> {
    (1usize..24).prop_flat_map(|n| {
        permutation(n).prop_perturb(move |start, mut rng| {
            let next =
                |bound: usize, rng: &mut TestRng| (rng.next_u64() % bound.max(1) as u64) as usize;
            let count = next(40, &mut rng);
            let mut ops = Vec::with_capacity(count);
            for _ in 0..count {
                ops.push(match next(17, &mut rng) {
                    0..=3 => {
                        let start = next(n + 1, &mut rng);
                        let end = start + next(n - start + 1, &mut rng);
                        let dest = next(n - (end - start) + 1, &mut rng);
                        Op::Move {
                            src: start..end,
                            dest,
                        }
                    }
                    4..=6 => {
                        let start = next(n + 1, &mut rng);
                        let end = start + next(n - start + 1, &mut rng);
                        Op::Reverse(start..end)
                    }
                    7..=9 => {
                        let start = next(n + 1, &mut rng);
                        let mid = start + next(n - start + 1, &mut rng);
                        let end = mid + next(n - mid + 1, &mut rng);
                        Op::SwapBlocks { start, mid, end }
                    }
                    10 | 11 => {
                        let start = next(n + 1, &mut rng);
                        let end = start + next(n - start + 1, &mut rng);
                        Op::Coalesce(start..end)
                    }
                    12 => Op::Assign(pattern_of(n, next, &mut rng)),
                    13 | 14 if n >= 2 => {
                        // Two disjoint non-empty blocks; mover on a random
                        // side; rearranging target on a coin flip.
                        let mut cuts = [
                            next(n + 1, &mut rng),
                            next(n + 1, &mut rng),
                            next(n + 1, &mut rng),
                            next(n + 1, &mut rng),
                        ];
                        cuts.sort_unstable();
                        let [a, mut b, mut c, mut d] = cuts;
                        if b == a {
                            b = a + 1;
                        }
                        c = c.max(b);
                        if d <= c {
                            d = c + 1;
                        }
                        if d > n {
                            Op::Coalesce(0..n)
                        } else {
                            let (first, second) = (a..b, c..d);
                            let (mover, stayer) = if next(2, &mut rng) == 0 {
                                (first, second)
                            } else {
                                (second, first)
                            };
                            let pattern = (next(2, &mut rng) == 0)
                                .then(|| pattern_of(mover.len() + stayer.len(), next, &mut rng));
                            Op::MergeMove {
                                mover,
                                stayer,
                                pattern,
                            }
                        }
                    }
                    15 | 16 => {
                        let start = next(n + 1, &mut rng);
                        let end = start + next(n - start + 1, &mut rng);
                        Op::WriteBlock {
                            range: start..end,
                            pattern: pattern_of(end - start, next, &mut rng),
                        }
                    }
                    _ => Op::Coalesce(0..n),
                });
            }
            (start, ops)
        })
    })
}

proptest! {
    #[test]
    fn segment_backend_is_bit_identical_to_dense((start, ops) in op_sequence()) {
        let mut dense = start.clone();
        let mut segment = SegmentArrangement::from_permutation(&start);
        for operation in &ops {
            let (dense_cost, segment_cost) = match operation.clone() {
                Op::Move { src, dest } => (
                    dense.move_block(src.clone(), dest),
                    segment.move_block(src, dest),
                ),
                Op::Reverse(range) => (
                    dense.reverse_block(range.clone()),
                    segment.reverse_block(range),
                ),
                Op::SwapBlocks { start, mid, end } => (
                    dense.swap_adjacent_blocks(start..mid, mid..end),
                    segment.swap_adjacent_blocks(start..mid, mid..end),
                ),
                Op::Coalesce(range) => {
                    Arrangement::coalesce_range(&mut dense, range.clone());
                    segment.coalesce_range(range);
                    (0, 0)
                }
                Op::Assign(indices) => {
                    let target = Permutation::from_indices(&indices).expect("valid shuffle");
                    (Arrangement::assign(&mut dense, &target), segment.assign(&target))
                }
                Op::MergeMove {
                    mover,
                    stayer,
                    pattern,
                } => {
                    // The rearranging target is a pattern-shuffle of the
                    // two blocks' current nodes.
                    let target: Option<Vec<Node>> = pattern.map(|pattern| {
                        let pool: Vec<Node> = mover
                            .clone()
                            .chain(stayer.clone())
                            .map(|p| dense.node_at(p))
                            .collect();
                        pattern.iter().map(|&i| pool[i]).collect()
                    });
                    (
                        Arrangement::merge_move(
                            &mut dense,
                            mover.clone(),
                            stayer.clone(),
                            target.as_deref(),
                        ),
                        segment.merge_move(mover, stayer, target.as_deref()),
                    )
                }
                Op::WriteBlock { range, pattern } => {
                    let pool: Vec<Node> = range.clone().map(|p| dense.node_at(p)).collect();
                    let content: Vec<Node> = pattern.iter().map(|&i| pool[i]).collect();
                    Arrangement::write_merged_block(&mut dense, range.clone(), &content);
                    segment.write_merged_block(range, &content);
                    (0, 0)
                }
            };
            prop_assert_eq!(dense_cost, segment_cost, "cost diverged on {:?}", operation);
            prop_assert_eq!(&segment.to_permutation(), &dense, "layout diverged on {:?}", operation);
            prop_assert!(segment.check_consistent());
        }
        // Lookups agree in both directions after the full sequence.
        for pos in 0..dense.len() {
            prop_assert_eq!(segment.node_at(pos), dense.node_at(pos));
            prop_assert_eq!(
                segment.position_of(dense.node_at(pos)),
                pos
            );
        }
    }

    #[test]
    fn contiguous_range_agrees_across_backends((p, raw) in (1usize..20).prop_flat_map(|n| {
        (permutation(n), proptest::collection::vec(0usize..n, 0..8))
    })) {
        // Distinct node subsets, including empty and full sets.
        let mut nodes: Vec<Node> = raw.into_iter().map(Node::new).collect();
        nodes.sort_unstable();
        nodes.dedup();
        let mut segment = SegmentArrangement::from_permutation(&p);
        prop_assert_eq!(
            segment.contiguous_range(&nodes),
            p.contiguous_range(&nodes)
        );
        let all: Vec<Node> = p.iter().copied().collect();
        prop_assert_eq!(segment.contiguous_range(&all), Some(0..p.len()));
        prop_assert_eq!(segment.contiguous_range(&[]), Some(0..0));
        // Coalescing must never change the answer.
        segment.coalesce_range(0..p.len());
        prop_assert_eq!(
            segment.contiguous_range(&nodes),
            p.contiguous_range(&nodes)
        );
    }

    #[test]
    fn kendall_to_agrees_across_backends((a, b) in (1usize..20).prop_flat_map(|n| {
        (permutation(n), permutation(n))
    })) {
        let segment = SegmentArrangement::from_permutation(&a);
        prop_assert_eq!(segment.kendall_to(&b), a.kendall_distance(&b));
    }
}

// ---- lazy locate: slot-based locate vs the full member walk ------------

use mla_permutation::ShardedArrangement;

/// Raw schedule picks, resolved against the live component list at
/// execution time: `(region_pick, first_pick, second_pick,
/// reverse_target, shuffle_pick)`. Between merges, `shuffle_pick`
/// optionally moves a whole component elsewhere in its region or
/// reverses it in place — the other two block operations an algorithm
/// run interleaves with merges.
type MergePick = (usize, usize, usize, bool, usize);

/// Strategy: an initial permutation plus a raw merge schedule. The picks
/// are drawn as plain integers (the component list shrinks as merges
/// execute, so the actual pair is resolved modulo the live count).
fn merge_schedule() -> impl Strategy<Value = (Permutation, Vec<MergePick>)> {
    (2usize..28).prop_flat_map(|n| {
        permutation(n).prop_perturb(move |start, mut rng| {
            let next =
                |bound: usize, rng: &mut TestRng| (rng.next_u64() % bound.max(1) as u64) as usize;
            let count = next(n, &mut rng);
            let picks = (0..count)
                .map(|_| {
                    (
                        next(1 << 16, &mut rng),
                        next(1 << 16, &mut rng),
                        next(1 << 16, &mut rng),
                        next(2, &mut rng) == 0,
                        next(1 << 16, &mut rng),
                    )
                })
                .collect();
            (start, picks)
        })
    })
}

/// Replays a merge schedule on `arr` (merges stay inside one region of
/// `regions`, mirroring the sharded backend's region-local contract) and
/// after **every** merge checks the slot-based `locate_component` against
/// the full member walk, for every component and every possible anchor.
fn check_locate_under_merges<A: Arrangement>(
    arr: &mut A,
    regions: &[std::ops::Range<usize>],
    picks: &[MergePick],
) {
    // Components per region, each a member list in arbitrary order.
    let mut comps: Vec<Vec<Vec<Node>>> = regions
        .iter()
        .map(|r| {
            r.clone()
                .map(|pos| vec![arr.node_at(pos)])
                .collect::<Vec<_>>()
        })
        .collect();
    let check_all = |arr: &A, comps: &[Vec<Vec<Node>>]| {
        for members in comps.iter().flatten() {
            let walked = arr
                .contiguous_range(members)
                .expect("merged components stay contiguous");
            if !arr.supports_component_locate() {
                continue;
            }
            for &anchor in members {
                let (range, anchor_pos) = arr
                    .locate_component(anchor, members.len())
                    .expect("locate must answer for a coalesced component");
                assert_eq!(range, walked, "locate range diverged from the member walk");
                assert!(range.contains(&anchor_pos));
                assert_eq!(arr.node_at(anchor_pos), anchor);
                // A wrong component size must miss, never alias a block.
                assert_eq!(arr.locate_component(anchor, members.len() + 1), None);
            }
        }
    };
    check_all(arr, &comps);
    for &(region_pick, first_pick, second_pick, reverse, shuffle_pick) in picks {
        let region = region_pick % comps.len();
        // Interleave the other two whole-block operations a run uses:
        // move a component to a random spot in its region, or reverse
        // it in place. Neither may break a later locate.
        if !comps[region].is_empty() {
            let c = shuffle_pick % comps[region].len();
            let range = arr
                .contiguous_range(&comps[region][c])
                .expect("component is contiguous");
            let region_span = regions[region].clone();
            match shuffle_pick % 3 {
                0 => {
                    // Valid destinations land flush against another
                    // component (or the region start) — anything else
                    // would split a block and break the contiguity
                    // invariant the locate contract rests on.
                    let mut dests = vec![region_span.start];
                    for (j, other) in comps[region].iter().enumerate() {
                        if j == c {
                            continue;
                        }
                        let rc = arr
                            .contiguous_range(other)
                            .expect("component is contiguous");
                        dests.push(if rc.start > range.start {
                            rc.end - range.len()
                        } else {
                            rc.end
                        });
                    }
                    let dest = dests[first_pick % dests.len()];
                    arr.move_block(range, dest);
                }
                1 => {
                    arr.reverse_block(range);
                }
                _ => {}
            }
            check_all(arr, &comps);
        }
        if comps[region].len() < 2 {
            continue;
        }
        let a = first_pick % comps[region].len();
        let mut b = second_pick % comps[region].len();
        if b == a {
            b = (b + 1) % comps[region].len();
        }
        let mover = arr
            .contiguous_range(&comps[region][a])
            .expect("component is contiguous");
        let stayer = arr
            .contiguous_range(&comps[region][b])
            .expect("component is contiguous");
        // Half the merges rewrite the merged block reversed, so reversed
        // segments (and reversed-orientation locates) are exercised too.
        let target: Option<Vec<Node>> = reverse.then(|| {
            let mut pool: Vec<Node> = mover
                .clone()
                .chain(stayer.clone())
                .map(|p| arr.node_at(p))
                .collect();
            pool.reverse();
            pool
        });
        arr.merge_move(mover, stayer, target.as_deref());
        let absorbed = std::mem::take(&mut comps[region][a]);
        comps[region][b].extend(absorbed);
        comps[region].swap_remove(a);
        check_all(arr, &comps);
    }
}

proptest! {
    #[test]
    fn segment_locate_matches_full_walk_under_merge_fuzz((start, picks) in merge_schedule()) {
        let n = start.len();
        let mut segment = SegmentArrangement::from_permutation(&start);
        prop_assert!(segment.supports_component_locate());
        check_locate_under_merges(&mut segment, std::slice::from_ref(&(0..n)), &picks);
        prop_assert!(segment.check_consistent());
    }

    #[test]
    fn sharded_locate_matches_full_walk_under_merge_fuzz((start, picks) in merge_schedule()) {
        // Two regions (the sharded contract: merges are region-local); the
        // initial order inside each region is the identity.
        let n = start.len();
        let mid = n / 2;
        let regions: Vec<std::ops::Range<usize>> = if mid == 0 {
            std::iter::once(0..n).collect()
        } else {
            vec![0..mid, mid..n]
        };
        let sizes: Vec<usize> = regions.iter().map(std::iter::ExactSizeIterator::len).collect();
        let mut sharded = ShardedArrangement::with_regions(&sizes);
        prop_assert!(sharded.supports_component_locate());
        check_locate_under_merges(&mut sharded, &regions, &picks);
    }

    #[test]
    fn dense_backend_reports_no_locate_support((start, picks) in merge_schedule()) {
        // The dense backend has no structural block tracking: it must
        // advertise that (so callers fall back to the member walk), and
        // the default locate must answer `None` — which
        // `check_locate_under_merges` skips over while still replaying
        // the identical merge schedule.
        let n = start.len();
        let mut dense = start.clone();
        prop_assert!(!Arrangement::supports_component_locate(&dense));
        prop_assert_eq!(Arrangement::locate_component(&dense, dense.node_at(0), 1), None);
        check_locate_under_merges(&mut dense, std::slice::from_ref(&(0..n)), &picks);
    }
}

#[test]
fn swap_adjacent_blocks_boundary_cases_match() {
    // Empty blocks at either side and blocks meeting at the array ends.
    for (left, right) in [(0..0, 0..4), (0..4, 4..4), (0..2, 2..4), (4..4, 4..4)] {
        let mut dense = Permutation::identity(4);
        let mut segment = SegmentArrangement::identity(4);
        assert_eq!(
            dense.swap_adjacent_blocks(left.clone(), right.clone()),
            segment.swap_adjacent_blocks(left.clone(), right.clone()),
            "({left:?}, {right:?})"
        );
        assert_eq!(segment.to_permutation(), dense, "({left:?}, {right:?})");
    }
}
