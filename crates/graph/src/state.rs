//! Unified dynamic graph state over both topologies, plus MinLA
//! feasibility checking.

use mla_permutation::{Arrangement, Node};

use crate::clique_state::{clique_minla_value, CliqueState};
use crate::error::GraphError;
use crate::event::{RevealEvent, Topology};
use crate::line_state::{path_minla_value, LineState};

/// How much of a merging component a peek should snapshot.
///
/// The paper's randomized policies place a merge from component **sizes**
/// and block **ranges** alone, so walking both member lists on every peek
/// (`O(|X| + |Z|)`) is wasted work on the merge hot path. A
/// [`Lazy`](SnapshotMode::Lazy) peek skips the walks and produces
/// size-only snapshots in `O(α(n))`; callers that still need the lists
/// (jump algorithms, feasibility cross-checks, tests) use
/// [`Eager`](SnapshotMode::Eager) — the default and the historical
/// behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotMode {
    /// Snapshot the full member lists (`O(|X| + |Z|)` walks).
    Eager,
    /// Snapshot only sizes and joined endpoints (`O(α(n))`).
    Lazy,
}

/// Snapshot of one merging component, taken just before the merge.
///
/// Comes in two flavors (see [`SnapshotMode`]): **eager** snapshots carry
/// the full member list behind [`nodes`](ComponentSnapshot::nodes);
/// **lazy** ones carry only the size and the joined endpoint — enough for
/// the size-biased policies and for an `O(log n)` block locate via
/// [`Arrangement::locate_component`] — and panic if the list is asked
/// for. In debug builds a lazy snapshot additionally carries a shadow
/// member list so the lazy locate path can be cross-checked against the
/// full walk ([`ComponentSnapshot::shadow_nodes`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentSnapshot {
    /// Members; empty for (release-build) lazy snapshots.
    nodes: Vec<Node>,
    /// Component size (always populated, lazy or not).
    len: usize,
    /// The node named in the reveal event on this side.
    joined: Node,
    /// Where the joined endpoint sits in snapshot order: `true` for the
    /// lines `X` side (the walk ends at `a`), `false` for the lines `Z`
    /// side and for cliques (the walk starts at the joined node). Lets
    /// the lazy locate derive the block's reading direction from the
    /// anchor position alone.
    joined_at_end: bool,
    lazy: bool,
}

impl ComponentSnapshot {
    /// An eager snapshot carrying the full member list. For lines the
    /// list is in **path order**, oriented so that the joined endpoint is
    /// last for the `X` side and first for the `Z` side (the merged path
    /// reads `x.nodes() ++ z.nodes()`); for cliques the order is
    /// arbitrary with the joined node first.
    #[must_use]
    pub fn eager(nodes: Vec<Node>, joined: Node) -> Self {
        let len = nodes.len();
        let joined_at_end = len > 1 && nodes[len - 1] == joined;
        ComponentSnapshot {
            nodes,
            len,
            joined,
            joined_at_end,
            lazy: false,
        }
    }

    /// A lazy snapshot: size and joined endpoint only.
    #[must_use]
    pub fn lazy(len: usize, joined: Node, joined_at_end: bool) -> Self {
        ComponentSnapshot {
            nodes: Vec::new(),
            len,
            joined,
            joined_at_end,
            lazy: true,
        }
    }

    /// A lazy snapshot that also carries the member list, so debug builds
    /// can cross-check the lazy locate path against the full walk.
    #[must_use]
    pub fn lazy_with_shadow(nodes: Vec<Node>, joined: Node) -> Self {
        let mut snapshot = Self::eager(nodes, joined);
        snapshot.lazy = true;
        snapshot
    }

    /// Component size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the snapshot is empty (never produced by a valid
    /// merge, but useful for default values).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The node named in the reveal event on this side.
    #[must_use]
    pub fn joined(&self) -> Node {
        self.joined
    }

    /// Whether the joined endpoint is last (`true`) or first (`false`) in
    /// snapshot order — see the field docs.
    #[must_use]
    pub fn joined_at_end(&self) -> bool {
        self.joined_at_end
    }

    /// Returns `true` for a size-only (lazy) snapshot.
    #[must_use]
    pub fn is_lazy(&self) -> bool {
        self.lazy
    }

    /// The member list of an eager snapshot.
    ///
    /// # Panics
    ///
    /// Panics on a lazy snapshot — callers on the lazy path must place
    /// the merge from sizes and block ranges (or rebuild the list from
    /// the graph state) instead.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        assert!(
            !self.lazy,
            "lazy component snapshots carry no member list; \
             peek eagerly or rebuild the list from the graph state"
        );
        &self.nodes
    }

    /// The member list when one was materialized — eager snapshots
    /// always, lazy ones only in debug builds (the cross-check shadow).
    #[must_use]
    pub fn shadow_nodes(&self) -> Option<&[Node]> {
        (self.nodes.len() == self.len).then_some(&self.nodes[..])
    }
}

/// The result of applying one reveal: the two components that merged, in
/// the paper's notation `X_i` (containing the event's `a`) and `Z_i`
/// (containing the event's `b`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeInfo {
    /// Component `X_i`.
    pub x: ComponentSnapshot,
    /// Component `Z_i`.
    pub z: ComponentSnapshot,
}

impl MergeInfo {
    /// Total size of the merged component.
    #[must_use]
    pub fn merged_len(&self) -> usize {
        self.x.len() + self.z.len()
    }
}

/// Dynamic state of the revealed graph, for either topology.
///
/// This is the single entry point the simulation engine and the online
/// algorithms use: apply reveals, query components, and check the MinLA
/// feasibility invariant.
///
/// # Examples
///
/// ```
/// use mla_graph::{GraphState, RevealEvent, Topology};
/// use mla_permutation::{Node, Permutation};
///
/// let mut state = GraphState::new(Topology::Cliques, 4);
/// state.apply(RevealEvent::new(Node::new(1), Node::new(3))).unwrap();
///
/// // {1,3} must be contiguous for a permutation to be a MinLA.
/// let good = Permutation::from_indices(&[0, 1, 3, 2]).unwrap();
/// let bad = Permutation::from_indices(&[1, 0, 3, 2]).unwrap();
/// assert!(state.is_minla(&good));
/// assert!(!state.is_minla(&bad));
/// ```
#[derive(Debug, Clone)]
pub enum GraphState {
    /// Collection of disjoint cliques.
    Cliques(CliqueState),
    /// Collection of disjoint lines.
    Lines(LineState),
}

impl GraphState {
    /// Creates the empty graph `G_0` on `n` nodes under the given topology.
    #[must_use]
    pub fn new(topology: Topology, n: usize) -> Self {
        match topology {
            Topology::Cliques => GraphState::Cliques(CliqueState::new(n)),
            Topology::Lines => GraphState::Lines(LineState::new(n)),
        }
    }

    /// The topology of this state.
    #[must_use]
    pub fn topology(&self) -> Topology {
        match self {
            GraphState::Cliques(_) => Topology::Cliques,
            GraphState::Lines(_) => Topology::Lines,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        match self {
            GraphState::Cliques(s) => s.n(),
            GraphState::Lines(s) => s.n(),
        }
    }

    /// Number of components.
    #[must_use]
    pub fn component_count(&self) -> usize {
        match self {
            GraphState::Cliques(s) => s.component_count(),
            GraphState::Lines(s) => s.component_count(),
        }
    }

    /// Returns `true` if `a` and `b` are in the same component.
    #[must_use]
    pub fn same_component(&self, a: Node, b: Node) -> bool {
        match self {
            GraphState::Cliques(s) => s.same_component(a, b),
            GraphState::Lines(s) => s.same_component(a, b),
        }
    }

    /// A representative node identifying `v`'s component: two nodes share
    /// a component iff their representatives are equal. Only stable
    /// between mutations.
    #[must_use]
    pub fn component_id(&self, v: Node) -> Node {
        match self {
            GraphState::Cliques(s) => s.component_id(v),
            GraphState::Lines(s) => s.component_id(v),
        }
    }

    /// Nodes of the component containing `v`. For lines, in path order
    /// (canonical orientation); for cliques, arbitrary order.
    #[must_use]
    pub fn component_nodes(&self, v: Node) -> Vec<Node> {
        match self {
            GraphState::Cliques(s) => s.component_nodes(v),
            GraphState::Lines(s) => s.path_of(v),
        }
    }

    /// All components as node lists. For lines, each in path order.
    #[must_use]
    pub fn components(&self) -> Vec<Vec<Node>> {
        match self {
            GraphState::Cliques(s) => s.components(),
            GraphState::Lines(s) => s.components_ordered(),
        }
    }

    /// Applies one reveal. Equivalent to [`GraphState::peek`] followed by
    /// [`GraphState::commit`].
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of the underlying state; see
    /// [`CliqueState::apply`] and [`LineState::apply`].
    pub fn apply(&mut self, event: RevealEvent) -> Result<MergeInfo, GraphError> {
        self.apply_with(event, SnapshotMode::Eager)
    }

    /// [`GraphState::apply`] with an explicit [`SnapshotMode`]: `Lazy`
    /// performs the same validation and merge but returns size-only
    /// snapshots, making the whole call `O(α(n))` instead of
    /// `O(|X| + |Z|)`.
    ///
    /// # Errors
    ///
    /// Same as [`GraphState::apply`].
    pub fn apply_with(
        &mut self,
        event: RevealEvent,
        mode: SnapshotMode,
    ) -> Result<MergeInfo, GraphError> {
        let info = self.peek_with(event, mode)?;
        self.commit(event);
        Ok(info)
    }

    /// Validates one reveal and snapshots the two components it would
    /// merge, without mutating the state. This is the read-only half of
    /// [`GraphState::apply`] — it only reads `&self`, so a batch of
    /// reveals against the same state can be peeked from worker threads
    /// concurrently (the engine's parallel serving path does exactly
    /// that, then commits the non-conflicting prefix in reveal order).
    ///
    /// # Errors
    ///
    /// Same as [`GraphState::apply`].
    pub fn peek(&self, event: RevealEvent) -> Result<MergeInfo, GraphError> {
        self.peek_with(event, SnapshotMode::Eager)
    }

    /// [`GraphState::peek`] with an explicit [`SnapshotMode`]: `Lazy`
    /// runs the same validation but snapshots only sizes and joined
    /// endpoints, in `O(α(n))`. In debug builds lazy snapshots still
    /// carry shadow member lists so downstream lazy-locate cross-checks
    /// can run.
    ///
    /// # Errors
    ///
    /// Same as [`GraphState::apply`].
    pub fn peek_with(
        &self,
        event: RevealEvent,
        mode: SnapshotMode,
    ) -> Result<MergeInfo, GraphError> {
        match self {
            GraphState::Cliques(s) => s.peek_with(event, mode),
            GraphState::Lines(s) => s.peek_with(event, mode),
        }
    }

    /// The mutating half of [`GraphState::apply`]: merges the two
    /// components in `O(α(n))` without rebuilding the snapshots. Must
    /// follow a successful [`GraphState::peek`] of the same event with no
    /// intervening mutation.
    ///
    /// # Panics
    ///
    /// Panics if the peek contract is violated (the event is not
    /// currently a valid merge).
    pub fn commit(&mut self, event: RevealEvent) {
        match self {
            GraphState::Cliques(s) => s.commit(event),
            GraphState::Lines(s) => s.commit(event),
        }
    }

    /// Serializes the state (a topology tag, then the topology-specific
    /// payload) for the checkpoint stack.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            GraphState::Cliques(s) => {
                mla_permutation::codec::put_u8(out, 0);
                s.encode_into(out);
            }
            GraphState::Lines(s) => {
                mla_permutation::codec::put_u8(out, 1);
                s.encode_into(out);
            }
        }
    }

    /// Decodes a state written by [`GraphState::encode_into`].
    ///
    /// # Errors
    ///
    /// [`CodecError`](mla_permutation::codec::CodecError) on truncated or
    /// inconsistent input.
    pub fn decode_from(
        r: &mut mla_permutation::codec::ByteReader<'_>,
    ) -> Result<Self, mla_permutation::codec::CodecError> {
        match r.u8()? {
            0 => Ok(GraphState::Cliques(CliqueState::decode_from(r)?)),
            1 => Ok(GraphState::Lines(LineState::decode_from(r)?)),
            other => Err(mla_permutation::codec::CodecError::invalid(format!(
                "unknown graph-state topology tag {other}"
            ))),
        }
    }

    /// All edges of the revealed graph so far.
    #[must_use]
    pub fn edges(&self) -> Vec<(Node, Node)> {
        match self {
            GraphState::Cliques(s) => s.edges(),
            GraphState::Lines(s) => s.edges(),
        }
    }

    /// Total stretch `Σ_{(u,v)∈E} |π(u) − π(v)|` of the arrangement `pi`
    /// over the revealed edges.
    ///
    /// # Panics
    ///
    /// Panics if `pi` does not cover all nodes of the graph.
    #[must_use]
    pub fn arrangement_cost<P: Arrangement + ?Sized>(&self, pi: &P) -> u128 {
        // u128 totals: a single clique's stretch sum exceeds u64 past
        // m ≈ 4.7×10⁶ (it equals (m³−m)/6 at the optimum).
        self.edges()
            .iter()
            .map(|&(u, v)| pi.position_of(u).abs_diff(pi.position_of(v)) as u128)
            .sum()
    }

    /// The optimum MinLA value of the revealed graph: the sum of the
    /// closed-form optima of its components (`(m³−m)/6` per clique, `m−1`
    /// per path). Returned as `u128`: the clique optimum alone exceeds
    /// `u64::MAX` near `m ≈ 4.7×10⁶`.
    #[must_use]
    pub fn minla_value(&self) -> u128 {
        match self {
            GraphState::Cliques(s) => s
                .components()
                .iter()
                .map(|c| clique_minla_value(c.len()))
                .sum(),
            GraphState::Lines(s) => s
                .components()
                .iter()
                .map(|c| path_minla_value(c.len()))
                .sum(),
        }
    }

    /// Checks the paper's feasibility invariant: is `pi` a minimum linear
    /// arrangement of the revealed graph?
    ///
    /// * Cliques: every clique occupies contiguous positions.
    /// * Lines: every path occupies contiguous positions **and** its
    ///   internal order is path order, forward or reversed.
    ///
    /// Runs in `O(n)` (amortized over components). For the per-reveal
    /// check inside the simulation engine, prefer the incremental
    /// [`GraphState::merge_keeps_minla`].
    ///
    /// # Panics
    ///
    /// Panics if `pi` has a different node count than the graph.
    #[must_use]
    pub fn is_minla<P: Arrangement + ?Sized>(&self, pi: &P) -> bool {
        assert_eq!(
            pi.len(),
            self.n(),
            "permutation covers {} nodes, graph has {}",
            pi.len(),
            self.n()
        );
        match self {
            GraphState::Cliques(s) => s
                .components()
                .iter()
                .all(|c| pi.contiguous_range(c).is_some()),
            GraphState::Lines(s) => s.components_ordered().iter().all(|path| {
                if pi.contiguous_range(path).is_none() {
                    return false;
                }
                is_monotone_in(pi, path)
            }),
        }
    }

    /// Incremental per-reveal feasibility: assuming `pi` was a MinLA of
    /// the graph *before* the merge recorded in `info`, is it still one
    /// now? Only the merged component can have broken the invariant —
    /// block moves shift foreign components without reordering them — so
    /// this validates just the two merging segments, in `O(|X| + |Z|)`
    /// instead of the full `O(n)` scan of [`GraphState::is_minla`].
    ///
    /// * Cliques: the merged node set must be contiguous.
    /// * Lines: the merged path `x.nodes ++ z.nodes` must additionally
    ///   read in path order, forward or reversed.
    ///
    /// With **lazy** snapshots the member lists are rebuilt from the
    /// graph state instead, so the call must happen *after* the merge was
    /// committed (the engine always checks post-commit); the cost is
    /// still `O(|X| + |Z|)`, paid only when feasibility checking is on.
    ///
    /// # Panics
    ///
    /// Panics if `info` names nodes outside `pi`.
    #[must_use]
    pub fn merge_keeps_minla<P: Arrangement + ?Sized>(&self, pi: &P, info: &MergeInfo) -> bool {
        if info.x.is_lazy() || info.z.is_lazy() {
            // Lazy snapshots carry no member lists, so the check rebuilds
            // what it needs from the graph state. Distinct positions cover
            // a contiguous block iff `max - min + 1 == len`, and a strictly
            // monotone walk over an interval of positions must step by
            // exactly ±1 — so the streaming envelope (lines) is as strong
            // as the materialized contiguity + monotonicity passes it
            // replaces.
            let expected = info.merged_len();
            return match self {
                GraphState::Cliques(s) => {
                    // One member walk feeding `contiguous_range`, whose
                    // coalesced-component fast path costs O(len) slot
                    // comparisons plus a single tree descent — streaming
                    // per-member `position_of` lookups would pay O(log n)
                    // each on the segment backend.
                    let merged = s.component_nodes(info.x.joined());
                    merged.len() == expected && pi.contiguous_range(&merged).is_some()
                }
                GraphState::Lines(s) => {
                    // The merged path is reverse(a-side walk) ++ b-side
                    // walk around the just-joined edge (a, b). It is
                    // monotone in `pi` iff every outward step on the a
                    // side moves against the a→b position direction and
                    // every step on the b side moves along it.
                    let (a, b) = (info.x.joined(), info.z.joined());
                    let (pa, pb) = (pi.position_of(a), pi.position_of(b));
                    let mut len = 2usize;
                    let mut min = pa.min(pb);
                    let mut max = pa.max(pb);
                    for (start, anchor, start_pos, outward_up) in
                        [(a, b, pa, pa > pb), (b, a, pb, pb > pa)]
                    {
                        let mut prev = anchor;
                        let mut cur = start;
                        let mut last = start_pos;
                        while let Some(next) = s.next_along(cur, Some(prev)) {
                            let p = pi.position_of(next);
                            if (p > last) != outward_up {
                                return false;
                            }
                            min = min.min(p);
                            max = max.max(p);
                            len += 1;
                            last = p;
                            prev = cur;
                            cur = next;
                        }
                    }
                    len == expected && max - min + 1 == len
                }
            };
        }
        let merged: Vec<Node> = info
            .x
            .nodes()
            .iter()
            .chain(info.z.nodes().iter())
            .copied()
            .collect();
        if pi.contiguous_range(&merged).is_none() {
            return false;
        }
        match self {
            GraphState::Cliques(_) => true,
            GraphState::Lines(_) => is_monotone_in(pi, &merged),
        }
    }
}

/// Returns `true` if the nodes of `path` appear in `pi` in exactly the
/// given order or exactly the reversed order.
fn is_monotone_in<P: Arrangement + ?Sized>(pi: &P, path: &[Node]) -> bool {
    if path.len() <= 2 {
        return true;
    }
    let positions: Vec<usize> = path.iter().map(|&v| pi.position_of(v)).collect();
    positions.windows(2).all(|w| w[0] < w[1]) || positions.windows(2).all(|w| w[0] > w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_permutation::Permutation;

    fn ev(a: usize, b: usize) -> RevealEvent {
        RevealEvent::new(Node::new(a), Node::new(b))
    }

    #[test]
    fn clique_feasibility_requires_contiguity_only() {
        let mut state = GraphState::new(Topology::Cliques, 5);
        state.apply(ev(0, 1)).unwrap();
        state.apply(ev(1, 2)).unwrap();
        // {0,1,2} contiguous in any internal order is feasible.
        for arrangement in [[2usize, 0, 1, 3, 4], [1, 2, 0, 4, 3], [0, 1, 2, 3, 4]] {
            let pi = Permutation::from_indices(&arrangement).unwrap();
            assert!(state.is_minla(&pi), "{arrangement:?} should be feasible");
        }
        let bad = Permutation::from_indices(&[0, 3, 1, 2, 4]).unwrap();
        assert!(!state.is_minla(&bad));
    }

    #[test]
    fn line_feasibility_requires_path_order() {
        let mut state = GraphState::new(Topology::Lines, 5);
        state.apply(ev(0, 1)).unwrap();
        state.apply(ev(1, 2)).unwrap();
        // Path 0-1-2: contiguous in path order or reversed.
        let fwd = Permutation::from_indices(&[0, 1, 2, 3, 4]).unwrap();
        let rev = Permutation::from_indices(&[3, 2, 1, 0, 4]).unwrap();
        let scrambled = Permutation::from_indices(&[1, 0, 2, 3, 4]).unwrap();
        assert!(state.is_minla(&fwd));
        assert!(state.is_minla(&rev));
        assert!(!state.is_minla(&scrambled));
    }

    #[test]
    fn arrangement_cost_matches_minla_value_when_feasible() {
        let mut state = GraphState::new(Topology::Cliques, 6);
        state.apply(ev(0, 1)).unwrap();
        state.apply(ev(0, 2)).unwrap();
        state.apply(ev(4, 5)).unwrap();
        let pi = Permutation::from_indices(&[2, 0, 1, 3, 5, 4]).unwrap();
        assert!(state.is_minla(&pi));
        assert_eq!(state.arrangement_cost(&pi), state.minla_value());
        // Infeasible arrangements cost strictly more.
        let bad = Permutation::from_indices(&[2, 3, 0, 1, 5, 4]).unwrap();
        assert!(!state.is_minla(&bad));
        assert!(state.arrangement_cost(&bad) > state.minla_value());
    }

    #[test]
    fn line_arrangement_cost_matches_value() {
        let mut state = GraphState::new(Topology::Lines, 4);
        state.apply(ev(0, 1)).unwrap();
        state.apply(ev(1, 2)).unwrap();
        state.apply(ev(2, 3)).unwrap();
        let rev = Permutation::from_indices(&[3, 2, 1, 0]).unwrap();
        assert!(state.is_minla(&rev));
        assert_eq!(state.arrangement_cost(&rev), 3);
        assert_eq!(state.minla_value(), 3);
    }

    #[test]
    fn merge_info_lengths() {
        let mut state = GraphState::new(Topology::Cliques, 4);
        state.apply(ev(0, 1)).unwrap();
        let info = state.apply(ev(0, 2)).unwrap();
        assert_eq!(info.x.len(), 2);
        assert_eq!(info.z.len(), 1);
        assert_eq!(info.merged_len(), 3);
        assert!(!info.x.is_empty());
    }

    #[test]
    fn unified_accessors() {
        let mut state = GraphState::new(Topology::Lines, 3);
        assert_eq!(state.topology(), Topology::Lines);
        assert_eq!(state.n(), 3);
        assert_eq!(state.component_count(), 3);
        state.apply(ev(0, 2)).unwrap();
        assert!(state.same_component(Node::new(0), Node::new(2)));
        assert_eq!(state.component_nodes(Node::new(0)).len(), 2);
        assert_eq!(state.components().len(), 2);
        assert_eq!(state.edges().len(), 1);
    }

    #[test]
    fn incremental_check_agrees_with_full_scan() {
        // Cliques: after merging {0,1} with {2}, contiguity of {0,1,2}
        // decides feasibility.
        let mut state = GraphState::new(Topology::Cliques, 5);
        state.apply(ev(0, 1)).unwrap();
        let info = state.apply(ev(1, 2)).unwrap();
        let good = Permutation::from_indices(&[2, 0, 1, 3, 4]).unwrap();
        let bad = Permutation::from_indices(&[0, 3, 1, 2, 4]).unwrap();
        assert!(state.merge_keeps_minla(&good, &info));
        assert!(state.is_minla(&good));
        assert!(!state.merge_keeps_minla(&bad, &info));
        assert!(!state.is_minla(&bad));

        // Lines: the merged path must additionally be monotone.
        let mut lines = GraphState::new(Topology::Lines, 5);
        lines.apply(ev(0, 1)).unwrap();
        let info = lines.apply(ev(1, 2)).unwrap();
        let forward = Permutation::from_indices(&[0, 1, 2, 3, 4]).unwrap();
        let reversed = Permutation::from_indices(&[3, 2, 1, 0, 4]).unwrap();
        let scrambled = Permutation::from_indices(&[1, 0, 2, 3, 4]).unwrap();
        assert!(lines.merge_keeps_minla(&forward, &info));
        assert!(lines.merge_keeps_minla(&reversed, &info));
        assert!(!lines.merge_keeps_minla(&scrambled, &info));
        assert!(!lines.is_minla(&scrambled));
    }

    #[test]
    fn generic_checks_accept_the_segment_backend() {
        use mla_permutation::SegmentArrangement;
        let mut state = GraphState::new(Topology::Cliques, 4);
        let info = state.apply(ev(1, 3)).unwrap();
        let arr = SegmentArrangement::from_permutation(
            &Permutation::from_indices(&[0, 1, 3, 2]).unwrap(),
        );
        assert!(state.is_minla(&arr));
        assert!(state.merge_keeps_minla(&arr, &info));
        assert_eq!(state.arrangement_cost(&arr), 1);
        let dynamic: &dyn mla_permutation::Arrangement = &arr;
        assert!(state.is_minla(dynamic));
    }

    #[test]
    #[should_panic(expected = "permutation covers")]
    fn is_minla_size_mismatch_panics() {
        let state = GraphState::new(Topology::Cliques, 3);
        let pi = Permutation::identity(4);
        let _ = state.is_minla(&pi);
    }
}
