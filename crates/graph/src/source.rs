//! [`RevealSource`]: streaming reveal sequences.
//!
//! The paper's online model delivers the graph one merge at a time, so
//! nothing about a run requires the whole request sequence in memory. A
//! `RevealSource` is the streaming counterpart of [`Instance`]: an
//! iterator-style producer of [`RevealEvent`]s with **exact** size hints
//! and a seedable [`restart`](RevealSource::restart), so large-`n`
//! workloads (`n = 10⁷+`) can be generated lazily — `O(n)` generator
//! state instead of a materialized `Vec<RevealEvent>` — and replayed
//! bit-identically (e.g. to drive a second backend over the same
//! sequence without cloning anything).
//!
//! Two implementations ship with the workspace:
//!
//! * [`InstanceSource`] (here) — the trivial adapter over a validated
//!   [`Instance`], for code that already holds one;
//! * `StreamingWorkload` (in `mla-adversary`) — the lazy random-workload
//!   generator, which advances its Fenwick/component state one merge per
//!   pull.
//!
//! Streamed events are **not** pre-validated the way `Instance::new`
//! validates: consumers (the `mla-sim` engine) validate each event as it
//! is applied and surface malformed reveals as typed errors.

use crate::error::GraphError;
use crate::event::{RevealEvent, Topology};
use crate::instance::Instance;
use crate::state::GraphState;

/// A streaming producer of reveal events.
///
/// Implementations must be **deterministic**: after
/// [`restart`](RevealSource::restart), the exact same event sequence
/// replays. Size hints are exact, not lower bounds — campaign code sizes
/// buffers and progress accounting from them.
///
/// The trait is object-safe; the simulation engine consumes
/// `Box<dyn RevealSource>`.
///
/// # Examples
///
/// ```
/// use mla_graph::{Instance, InstanceSource, RevealEvent, RevealSource, Topology};
/// use mla_permutation::Node;
///
/// let instance = Instance::new(
///     Topology::Cliques,
///     3,
///     vec![RevealEvent::new(Node::new(0), Node::new(2))],
/// )
/// .unwrap();
/// let mut source = InstanceSource::new(instance);
/// assert_eq!(source.remaining(), 1);
/// assert!(source.next_event().is_some());
/// assert_eq!(source.remaining(), 0);
/// source.restart();
/// assert_eq!(source.remaining(), 1);
/// ```
pub trait RevealSource {
    /// Topology of the produced reveals.
    fn topology(&self) -> Topology;

    /// Number of nodes of the generated instance.
    fn n(&self) -> usize;

    /// Total number of events the full sequence contains (exact; does not
    /// change as events are pulled).
    fn len(&self) -> usize;

    /// Returns `true` if the full sequence contains no events.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events not yet emitted (exact size hint).
    fn remaining(&self) -> usize;

    /// Produces the next reveal, or `None` once the sequence is over.
    fn next_event(&mut self) -> Option<RevealEvent>;

    /// Rewinds to the start of the sequence. Deterministic sources replay
    /// the identical event sequence afterwards (seeded generators re-seed
    /// from their stored seed).
    fn restart(&mut self);
}

/// Materializes and validates the **rest** of a source as an
/// [`Instance`] — the bridge back to offline post-analysis (solvers,
/// merge trees) for sequences that fit in memory. Call
/// [`restart`](RevealSource::restart) first to capture the full
/// sequence.
///
/// # Errors
///
/// Returns the first [`GraphError`] if the streamed events do not replay
/// cleanly under the source's topology and node count.
pub fn collect_instance<S: RevealSource + ?Sized>(source: &mut S) -> Result<Instance, GraphError> {
    let mut events = Vec::with_capacity(source.remaining());
    while let Some(event) = source.next_event() {
        events.push(event);
    }
    Instance::new(source.topology(), source.n(), events)
}

/// The trivial [`RevealSource`] over a validated [`Instance`]: replays
/// its events in order; `restart` rewinds the cursor.
#[derive(Debug, Clone)]
pub struct InstanceSource {
    instance: Instance,
    cursor: usize,
}

impl InstanceSource {
    /// Wraps a validated instance.
    #[must_use]
    pub fn new(instance: Instance) -> Self {
        InstanceSource {
            instance,
            cursor: 0,
        }
    }

    /// The wrapped instance.
    #[must_use]
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Unwraps the inner instance.
    #[must_use]
    pub fn into_instance(self) -> Instance {
        self.instance
    }
}

impl From<Instance> for InstanceSource {
    fn from(instance: Instance) -> Self {
        InstanceSource::new(instance)
    }
}

impl RevealSource for InstanceSource {
    fn topology(&self) -> Topology {
        self.instance.topology()
    }

    fn n(&self) -> usize {
        self.instance.n()
    }

    fn len(&self) -> usize {
        self.instance.len()
    }

    fn remaining(&self) -> usize {
        self.instance.len() - self.cursor
    }

    fn next_event(&mut self) -> Option<RevealEvent> {
        let event = self.instance.events().get(self.cursor).copied();
        self.cursor += usize::from(event.is_some());
        event
    }

    fn restart(&mut self) {
        self.cursor = 0;
    }
}

/// Replays a whole source against a fresh [`GraphState`], returning the
/// final state. Streaming counterpart of [`Instance::final_state`];
/// unlike it, the events are validated on the fly.
///
/// # Errors
///
/// Returns the first [`GraphError`] produced by an invalid reveal.
pub fn final_state_of<S: RevealSource + ?Sized>(source: &mut S) -> Result<GraphState, GraphError> {
    let mut state = GraphState::new(source.topology(), source.n());
    while let Some(event) = source.next_event() {
        state.apply(event)?;
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mla_permutation::Node;

    fn ev(a: usize, b: usize) -> RevealEvent {
        RevealEvent::new(Node::new(a), Node::new(b))
    }

    fn sample_instance() -> Instance {
        Instance::new(Topology::Lines, 4, vec![ev(0, 1), ev(1, 2), ev(2, 3)]).unwrap()
    }

    #[test]
    fn instance_source_round_trip() {
        let instance = sample_instance();
        let mut source = InstanceSource::new(instance.clone());
        assert_eq!(source.topology(), Topology::Lines);
        assert_eq!(source.n(), 4);
        assert_eq!(RevealSource::len(&source), 3);
        assert!(!RevealSource::is_empty(&source));
        let streamed: Vec<RevealEvent> = std::iter::from_fn(|| source.next_event()).collect();
        assert_eq!(streamed, instance.events());
        assert_eq!(source.remaining(), 0);
        assert_eq!(source.next_event(), None);
    }

    #[test]
    fn restart_replays_identically() {
        let mut source = InstanceSource::new(sample_instance());
        let first: Vec<RevealEvent> = std::iter::from_fn(|| source.next_event()).collect();
        source.restart();
        let second: Vec<RevealEvent> = std::iter::from_fn(|| source.next_event()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn collect_round_trips_through_instance() {
        let instance = sample_instance();
        let mut source = InstanceSource::new(instance.clone());
        let collected = collect_instance(&mut source).unwrap();
        assert_eq!(collected, instance);
        // A drained source collects to the empty instance.
        let empty = collect_instance(&mut source).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn final_state_matches_instance_replay() {
        let instance = sample_instance();
        let mut source = InstanceSource::new(instance.clone());
        let state = final_state_of(&mut source).unwrap();
        assert_eq!(state.components(), instance.final_state().components());
    }

    #[test]
    fn trait_is_object_safe() {
        let mut boxed: Box<dyn RevealSource> = Box::new(InstanceSource::new(sample_instance()));
        assert_eq!(boxed.remaining(), 3);
        assert!(boxed.next_event().is_some());
        boxed.restart();
        assert_eq!(boxed.remaining(), 3);
    }
}
