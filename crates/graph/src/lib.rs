//! # `mla-graph`
//!
//! Dynamic graph substrate for the online learning MinLA workspace: the
//! revealed graph `G_0 ⊆ G_1 ⊆ … ⊆ G_k` where every `G_i` is a collection of
//! disjoint **cliques** or **lines**, per the ICDCS 2024 paper *Learning
//! Minimum Linear Arrangement of Cliques and Lines*.
//!
//! * [`GraphState`] — apply [`RevealEvent`]s, query components, check the
//!   MinLA feasibility invariant ([`GraphState::is_minla`]);
//! * [`CliqueState`] / [`LineState`] — the per-topology dynamic states with
//!   full reveal validation;
//! * [`Instance`] — an offline-validated (oblivious) request sequence;
//! * [`RevealSource`] — streaming request sequences: iterator-style
//!   reveal production with exact size hints and seedable restart, so
//!   `n = 10⁷+` workloads never materialize an event vector;
//! * [`MergeTree`] — the dendrogram of a request sequence;
//! * [`UnionFind`] — disjoint sets with per-root member lists;
//! * closed-form MinLA optima: [`clique_minla_value`] (`(m³−m)/6`) and
//!   [`path_minla_value`] (`m−1`).
//!
//! # Examples
//!
//! ```
//! use mla_graph::{GraphState, RevealEvent, Topology};
//! use mla_permutation::{Node, Permutation};
//!
//! let mut g = GraphState::new(Topology::Lines, 4);
//! g.apply(RevealEvent::new(Node::new(1), Node::new(2))).unwrap();
//! g.apply(RevealEvent::new(Node::new(2), Node::new(3))).unwrap();
//!
//! // The path 1-2-3 must be contiguous and in path order:
//! let pi = Permutation::from_indices(&[0, 3, 2, 1]).unwrap();
//! assert!(g.is_minla(&pi));
//! assert_eq!(g.arrangement_cost(&pi), g.minla_value());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clique_state;
mod error;
mod event;
mod instance;
mod line_state;
mod merge_tree;
mod source;
mod state;
mod text;
mod union_find;

pub use clique_state::{clique_minla_value, CliqueState};
pub use error::GraphError;
pub use event::{RevealEvent, Topology};
pub use instance::Instance;
pub use line_state::{path_minla_value, LineState};
pub use merge_tree::{MergeTree, TreeId};
pub use source::{collect_instance, final_state_of, InstanceSource, RevealSource};
pub use state::{ComponentSnapshot, GraphState, MergeInfo, SnapshotMode};
pub use text::{instance_to_text, text_to_instance, ParseInstanceError};
pub use union_find::UnionFind;
