//! Offline-validated problem instances (oblivious request sequences).

use mla_permutation::Node;

use crate::error::GraphError;
use crate::event::{RevealEvent, Topology};
use crate::merge_tree::MergeTree;
use crate::state::GraphState;

/// A complete, validated request sequence: the topology, the node count and
/// the ordered reveals `G_1, …, G_k`.
///
/// An `Instance` captures an **oblivious** adversary — the whole sequence is
/// fixed up front. (Adaptive adversaries, like the one in Theorem 16, are a
/// separate trait in `mla-sim`.)
///
/// # Examples
///
/// ```
/// use mla_graph::{Instance, RevealEvent, Topology};
/// use mla_permutation::Node;
///
/// let instance = Instance::new(
///     Topology::Cliques,
///     4,
///     vec![
///         RevealEvent::new(Node::new(0), Node::new(1)),
///         RevealEvent::new(Node::new(2), Node::new(3)),
///         RevealEvent::new(Node::new(0), Node::new(3)),
///     ],
/// )
/// .unwrap();
/// assert_eq!(instance.final_state().component_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    topology: Topology,
    n: usize,
    events: Vec<RevealEvent>,
}

impl Instance {
    /// Creates and validates an instance by replaying its reveals.
    ///
    /// # Errors
    ///
    /// Returns the first [`GraphError`] produced during replay, or
    /// [`GraphError::TooManyReveals`] if more than `n − 1` reveals are
    /// given.
    pub fn new(topology: Topology, n: usize, events: Vec<RevealEvent>) -> Result<Self, GraphError> {
        if events.len() + 1 > n.max(1) {
            return Err(GraphError::TooManyReveals {
                reveals: events.len(),
                n,
            });
        }
        let mut state = GraphState::new(topology, n);
        for &event in &events {
            state.apply(event)?;
        }
        Ok(Instance {
            topology,
            n,
            events,
        })
    }

    /// The topology of the instance.
    #[must_use]
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The reveal sequence.
    #[must_use]
    pub fn events(&self) -> &[RevealEvent] {
        &self.events
    }

    /// Number of reveals `k`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the instance has no reveals.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Replays all reveals and returns the final graph state `G_k`.
    #[must_use]
    pub fn final_state(&self) -> GraphState {
        let mut state = GraphState::new(self.topology, self.n);
        for &event in &self.events {
            state
                .apply(event)
                // mla-lint: allow(panic-safety): Instance::new validated this event sequence at construction
                .expect("validated instance replays cleanly");
        }
        state
    }

    /// The components of the final graph `G_k` (for lines: in path order).
    #[must_use]
    pub fn final_components(&self) -> Vec<Vec<Node>> {
        self.final_state().components()
    }

    /// Builds the merge tree of the instance (leaves = nodes, one internal
    /// node per reveal).
    #[must_use]
    pub fn merge_tree(&self) -> MergeTree {
        MergeTree::from_instance(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(a: usize, b: usize) -> RevealEvent {
        RevealEvent::new(Node::new(a), Node::new(b))
    }

    #[test]
    fn valid_instance_round_trip() {
        let instance = Instance::new(Topology::Lines, 3, vec![ev(0, 1), ev(1, 2)]).unwrap();
        assert_eq!(instance.n(), 3);
        assert_eq!(instance.len(), 2);
        assert!(!instance.is_empty());
        assert_eq!(instance.topology(), Topology::Lines);
        assert_eq!(
            instance.final_components(),
            vec![vec![Node::new(0), Node::new(1), Node::new(2)]]
        );
    }

    #[test]
    fn invalid_instances_are_rejected() {
        // Cycle for lines.
        assert!(Instance::new(Topology::Lines, 3, vec![ev(0, 1), ev(1, 2), ev(2, 0)]).is_err());
        // Re-merge for cliques.
        assert!(matches!(
            Instance::new(Topology::Cliques, 4, vec![ev(0, 1), ev(1, 0)]),
            Err(GraphError::SameComponent { .. })
        ));
        // Too many reveals.
        assert!(matches!(
            Instance::new(Topology::Cliques, 2, vec![ev(0, 1), ev(0, 1)]),
            Err(GraphError::TooManyReveals { reveals: 2, n: 2 })
        ));
    }

    #[test]
    fn empty_instance() {
        let instance = Instance::new(Topology::Cliques, 5, vec![]).unwrap();
        assert!(instance.is_empty());
        assert_eq!(instance.final_state().component_count(), 5);
    }
}
